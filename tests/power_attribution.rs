//! Powertrace invariants across the whole registry (DESIGN.md §3 S18).
//!
//! Every supported Mapping × Platform pair must close its energy
//! books: a non-empty power timeline whose epochs telescope to the
//! run energy, per-phase energy deltas that sum to the run total
//! within 1e-9 relative, and — wherever an activity-based energy
//! model exists — no phase priced at exactly zero joules (static
//! power alone makes any phase with a span cost something).

use sar_repro::sar_epiphany::{all_mappings, mapping_named};
use sar_repro::sim_harness::{all_platforms, platform_named, run, Workload};

const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= REL_TOL * b.abs().max(1.0),
        "{what}: {a} vs {b}"
    );
}

/// Every supported Mapping × Platform combination, by registry name.
fn registered_pairs() -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    for m in all_mappings() {
        for p in all_platforms() {
            if m.supports(p.kind()) {
                pairs.push((m.name().to_string(), p.label().to_string()));
            }
        }
    }
    assert!(pairs.len() >= 13, "registry shrank: {} pairs", pairs.len());
    pairs
}

#[test]
fn every_pair_closes_its_energy_books() {
    for (mapping, platform) in registered_pairs() {
        let m = mapping_named(&mapping).expect("registered mapping");
        let p = platform_named(&platform).expect("registered platform");
        let w = Workload::named(m.kernel(), true).expect("registered kernel");
        let r = run(m.as_ref(), &w, p.as_ref())
            .expect("supported pair runs")
            .record;
        let pair = format!("{mapping} x {platform}");
        let total = r.energy_j();

        // Phase deltas (including any synthetic "unattributed" phase)
        // account for every joule of the run.
        let phase_sum: f64 = r.phases.iter().map(|ph| ph.energy_j).sum();
        close(phase_sum, total, &format!("{pair}: sum(phases.energy_j)"));

        // The power block exists for every pair and its timeline
        // telescopes to the same total.
        let power = r
            .power
            .as_ref()
            .unwrap_or_else(|| panic!("{pair}: v4 record carries no power block"));
        assert!(
            !power.timeline.is_empty(),
            "{pair}: power timeline is empty"
        );
        close(
            power.timeline.total_j(),
            total,
            &format!("{pair}: timeline total"),
        );
        let attributed: f64 = power.phases.iter().map(|ph| ph.energy.total_j()).sum();
        close(attributed, total, &format!("{pair}: sum(power.phases)"));

        // Phase records and their power entries stay index-aligned.
        assert_eq!(
            r.phases.len(),
            power.phases.len(),
            "{pair}: phase/power-phase count mismatch"
        );
        for (ph, pp) in r.phases.iter().zip(&power.phases) {
            assert_eq!((ph.name.as_str(), ph.index), (pp.name.as_str(), pp.index));
            close(
                pp.energy.total_j(),
                ph.energy_j,
                &format!("{pair}: phase '{}' energy", ph.name),
            );
        }

        // With a live energy model, no phase is priced at zero — and
        // with datasheet power, pricing is power × time everywhere.
        if r.energy.is_modelled() {
            for ph in &r.phases {
                assert!(
                    ph.energy_j > 0.0,
                    "{pair}: phase '{}[{}]' carries zero energy under a live model",
                    ph.name,
                    ph.index
                );
            }
        } else if r.power_w > 0.0 {
            for ph in &r.phases {
                assert!(
                    ph.energy_j > 0.0 || ph.time_ms == 0.0,
                    "{pair}: datasheet-priced phase '{}[{}]' with time but no energy",
                    ph.name,
                    ph.index
                );
            }
        }

        // Attribution sanity: shares and fractions are finite and the
        // dominant share is a share.
        for pp in &power.phases {
            let a = &pp.attribution;
            assert!(
                (0.0..=1.0).contains(&a.dominant_share),
                "{pair}: dominant_share {}",
                a.dominant_share
            );
            assert!(
                (0.0..=1.0).contains(&a.compute_fraction)
                    && (0.0..=1.0).contains(&a.stall_fraction),
                "{pair}: fractions out of range"
            );
            // busiest_link_fraction may legitimately exceed 1 (posted
            // write tails); the flag must agree with the value.
            assert_eq!(
                a.busiest_link_over_unity,
                a.busiest_link_fraction > 1.0,
                "{pair}: over-unity flag disagrees with the fraction"
            );
        }
    }
}

#[test]
fn timeline_peaks_bound_average_power() {
    for (mapping, platform) in registered_pairs() {
        let m = mapping_named(&mapping).expect("registered mapping");
        let p = platform_named(&platform).expect("registered platform");
        let w = Workload::named(m.kernel(), true).expect("registered kernel");
        let r = run(m.as_ref(), &w, p.as_ref())
            .expect("supported pair runs")
            .record;
        let power = r.power.as_ref().expect("power block");
        let peak = power.peak_power_w(r.elapsed.clock);
        let avg = r.avg_power_w();
        // Synthesised timelines quantise phase times to whole cycles,
        // so allow that rounding (≲1e-6 relative on small runs) before
        // insisting the peak bounds the average.
        assert!(
            peak + 1e-12 >= avg * (1.0 - 1e-3),
            "{mapping} x {platform}: peak {peak} W below average {avg} W"
        );
    }
}
