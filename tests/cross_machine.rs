//! Cross-machine integration: the functional results must be identical
//! on every modelled machine (the paper's Fig. 7c = 7d observation),
//! while the *timing* must respond to architecture knobs in the
//! physically sensible direction.

use sar_repro::desim::Frequency;
use sar_repro::epiphany::EpiphanyParams;
use sar_repro::refcpu::RefCpuParams;
use sar_repro::sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_repro::sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_repro::sar_epiphany::rda_spmd::{self, RdaSpmdOptions};
use sar_repro::sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload, RdaWorkload};
use sar_repro::sar_epiphany::{autofocus_ref, autofocus_seq, ffbp_ref, ffbp_seq, rda_seq};

#[test]
fn all_machines_form_the_same_ffbp_image() {
    let w = FfbpWorkload::small();
    let a = ffbp_ref::run(&w, RefCpuParams::default()).image;
    let b = ffbp_seq::run(&w, EpiphanyParams::default()).image;
    let c = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default()).image;
    assert_eq!(a.as_slice(), b.as_slice());
    assert_eq!(b.as_slice(), c.as_slice());
}

#[test]
fn all_machines_form_the_same_rda_image() {
    let w = RdaWorkload::small();
    let plain = sar_repro::sar_core::rda::rda(&w.raw, &w.geom, &w.config).image;
    let a = rda_seq::run(&w, EpiphanyParams::default()).image;
    let b = rda_spmd::run(&w, EpiphanyParams::default(), RdaSpmdOptions::default()).image;
    assert_eq!(plain.as_slice(), a.as_slice());
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn all_machines_compute_the_same_criterion_sweep() {
    let w = AutofocusWorkload::small();
    let a = autofocus_ref::run(&w, autofocus_ref::params()).sweep;
    let b = autofocus_seq::run(&w, autofocus_seq::params()).sweep;
    let c = autofocus_mpmd::run(&w, autofocus_mpmd::params(), Placement::neighbor()).sweep;
    assert_eq!(a, b);
    for ((s1, v1), (s2, v2)) in b.iter().zip(&c) {
        assert_eq!(s1, s2);
        assert!((v1 - v2).abs() <= 1e-3 * v1.abs().max(1.0));
    }
}

#[test]
fn simulated_runs_are_deterministic() {
    let w = FfbpWorkload::small();
    let a = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    let b = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    assert_eq!(a.record.elapsed.cycles, b.record.elapsed.cycles);
    assert_eq!(a.external_misses, b.external_misses);
}

#[test]
fn faster_clock_means_less_wall_time_same_cycles() {
    let w = AutofocusWorkload::small();
    let slow = autofocus_seq::run(
        &w,
        EpiphanyParams {
            clock: Frequency::mhz(400.0),
            ..autofocus_seq::params()
        },
    );
    let fast = autofocus_seq::run(
        &w,
        EpiphanyParams {
            clock: Frequency::ghz(1.0),
            ..autofocus_seq::params()
        },
    );
    assert_eq!(slow.record.elapsed.cycles, fast.record.elapsed.cycles);
    let ratio = slow.record.elapsed.seconds() / fast.record.elapsed.seconds();
    assert!(
        (ratio - 2.5).abs() < 1e-6,
        "1 GHz / 400 MHz = 2.5x, got {ratio}"
    );
}

#[test]
fn wider_elink_speeds_up_ffbp() {
    let w = FfbpWorkload::small();
    let mut narrow_params = EpiphanyParams::default();
    narrow_params.emesh.elink_bytes_per_cycle = 1;
    let narrow = ffbp_spmd::run(&w, narrow_params, SpmdOptions::default());
    let nominal = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    assert!(
        narrow.record.elapsed.seconds() > nominal.record.elapsed.seconds(),
        "an 8x narrower eLink must hurt FFBP"
    );
}

#[test]
fn slower_sdram_hurts_the_sequential_port_most() {
    let w = FfbpWorkload::small();
    let mut slow_mem = EpiphanyParams::default();
    slow_mem.sdram.row_hit_cycles *= 4;
    slow_mem.sdram.row_miss_cycles *= 4;
    let seq_nominal = ffbp_seq::run(&w, EpiphanyParams::default());
    let seq_slow = ffbp_seq::run(&w, slow_mem);
    let penalty = seq_slow.record.elapsed.seconds() / seq_nominal.record.elapsed.seconds();
    assert!(
        penalty > 1.5,
        "per-element blocking reads must feel 4x SDRAM latency, got {penalty:.2}x"
    );
}

#[test]
fn prefetchless_i7_approaches_epiphany_seq_behaviour() {
    // With its prefetcher off, the i7 model keeps its caches but pays
    // cold-miss latency whenever the stage working set exceeds them —
    // which needs a workload bigger than the tiny test image (whose
    // stages fit in L2 and hide the prefetcher entirely).
    let geom = sar_repro::sar_core::geometry::SarGeometry {
        num_pulses: 128,
        ..sar_repro::sar_core::geometry::SarGeometry::paper_size()
    };
    let scene = sar_repro::sar_core::scene::Scene::six_targets(geom);
    let w = FfbpWorkload {
        geom,
        data: sar_repro::sar_core::scene::simulate_compressed_data(&scene, 0.0, 7),
        config: Default::default(),
    };
    let on = ffbp_ref::run(&w, RefCpuParams::default());
    let off = ffbp_ref::run(&w, RefCpuParams::without_prefetch());
    // The prefetcher can only help, and the cache hierarchy (with or
    // without it) keeps the i7 model essentially compute-bound on this
    // streaming kernel — the paper's "prefetching mechanisms combined
    // with three levels of caches" argument. The dramatic contrast is
    // with the cacheless Epiphany port, which stalls on most cycles.
    assert!(off.record.elapsed.seconds() >= on.record.elapsed.seconds());
    let stalls = on.record.metric("mem_stall_fraction").unwrap();
    assert!(
        stalls < 0.10,
        "cached i7 should be compute-bound, stalls {stalls:.2}"
    );
    let epi = ffbp_seq::run(&w, EpiphanyParams::default());
    let busy_fraction = {
        // All stall time on the Epiphany port is eLink/SDRAM latency.
        let total = epi.record.elapsed.seconds();
        let i7_equiv = on.record.elapsed.seconds();
        total / i7_equiv
    };
    assert!(
        busy_fraction > 1.5,
        "the cacheless port should be far slower: {busy_fraction:.2}x"
    );
}

/// Satellite of the harness refactor: *every* registered mapping on
/// *every* platform it supports must reproduce the plain `sar-core`
/// algorithm's functional output — the paper's machine-independence
/// claim, now enforced across the full registry instead of a
/// hand-picked trio.
#[test]
fn every_mapping_on_every_platform_matches_the_plain_algorithms() {
    use sar_repro::desim::OpCounts;
    use sar_repro::sar_core::autofocus::sweep_criterion;
    use sar_repro::sar_core::ffbp::ffbp;
    use sar_repro::sar_epiphany::all_mappings;
    use sar_repro::sim_harness::{all_platforms, run, Workload};

    let ffbp_w = FfbpWorkload::small();
    let af_w = AutofocusWorkload::small();
    let rda_w = RdaWorkload::small();
    let plain_image = ffbp(&ffbp_w.data, &ffbp_w.geom, &ffbp_w.config).image;
    let plain_rda = sar_repro::sar_core::rda::rda(&rda_w.raw, &rda_w.geom, &rda_w.config).image;
    let plain_sweep = sweep_criterion(
        &af_w.f_minus,
        &af_w.f_plus,
        af_w.max_shift,
        af_w.hypotheses,
        &af_w.config,
        &mut OpCounts::default(),
    );

    let mut checked = 0usize;
    for m in all_mappings() {
        let w = match m.kernel() {
            "ffbp" => Workload::Ffbp(ffbp_w.clone()),
            "rda" => Workload::Rda(rda_w.clone()),
            _ => Workload::Autofocus(af_w.clone()),
        };
        for p in all_platforms() {
            if !m.supports(p.kind()) {
                continue;
            }
            let out = run(m.as_ref(), &w, p.as_ref())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", m.name(), p.label()));
            if m.kernel() == "ffbp" {
                let image = out.image.expect("ffbp mappings return the image");
                assert_eq!(
                    image.as_slice(),
                    plain_image.as_slice(),
                    "{} on {} diverged from plain FFBP",
                    m.name(),
                    p.label()
                );
            } else if m.kernel() == "rda" {
                let image = out.image.expect("rda mappings return the image");
                assert_eq!(
                    image.as_slice(),
                    plain_rda.as_slice(),
                    "{} on {} diverged from plain RDA",
                    m.name(),
                    p.label()
                );
            } else {
                let sweep = out.sweep.expect("autofocus mappings return the sweep");
                assert_eq!(sweep.len(), plain_sweep.len());
                for (&(s1, v1), &(s2, v2)) in sweep.iter().zip(&plain_sweep) {
                    assert_eq!(s1, s2, "{} on {}: shift grid", m.name(), p.label());
                    assert!(
                        (v1 - v2).abs() <= 1e-3 * v2.abs().max(1.0),
                        "{} on {}: criterion at {s1}: {v1} vs {v2}",
                        m.name(),
                        p.label()
                    );
                }
            }
            checked += 1;
        }
    }
    // Every mapping runs once per platform it supports: the three
    // host-kind mappings on the host, the seven Epiphany-kind mappings
    // on both the e16 and the e64.
    let expected: usize = all_mappings()
        .iter()
        .map(|m| {
            all_platforms()
                .iter()
                .filter(|p| m.supports(p.kind()))
                .count()
        })
        .sum();
    assert!(
        expected >= 8,
        "registry shrank below the original trio-era floor"
    );
    assert_eq!(
        checked, expected,
        "expected every supported (mapping, platform) pair to run once"
    );
}
