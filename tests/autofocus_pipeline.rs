//! Integration tests for the Figure-4 pipeline extensions: non-linear
//! tracks, motion compensation, per-merge autofocus, and the
//! process-network implementation of the criterion.

use sar_repro::sar_core::autofocus::integrated::{ffbp_with_autofocus, IntegratedConfig};
use sar_repro::sar_core::ffbp::{ffbp, FfbpConfig};
use sar_repro::sar_core::geometry::SarGeometry;
use sar_repro::sar_core::quality::{normalized_rmse, response_width, Axis};
use sar_repro::sar_core::scene::{simulate_compressed_data, simulate_with_track, Scene};
use sar_repro::sar_core::track::FlightTrack;
use sar_repro::sar_epiphany::autofocus_mpmd::Placement;
use sar_repro::sar_epiphany::workloads::AutofocusWorkload;
use sar_repro::sar_epiphany::{autofocus_net, autofocus_seq};

#[test]
fn track_errors_defocus_and_autofocus_recovers() {
    let geom = SarGeometry::test_size();
    let scene = Scene::single_target(geom);
    let clean = simulate_compressed_data(&scene, 0.0, 0);
    let track = FlightTrack::step(geom.num_pulses, 1.5);
    let perturbed = simulate_with_track(&scene, &track, 0.0, 0);

    let ideal = ffbp(&clean, &geom, &FfbpConfig::default());
    let plain = ffbp(&perturbed, &geom, &FfbpConfig::default());
    let recovered = ffbp_with_autofocus(&perturbed, &geom, &IntegratedConfig::default());

    let (p_ideal, _, _) = ideal.image.peak();
    let (p_plain, _, _) = plain.image.peak();
    let (p_auto, _, _) = recovered.image.peak();

    assert!(p_plain < p_ideal, "a step track must cost focus");
    assert!(p_auto > p_plain, "autofocus must recover focus");
    assert!(
        normalized_rmse(&recovered.image, &ideal.image)
            <= normalized_rmse(&plain.image, &ideal.image) + 1e-6,
        "the recovered image should be no farther from the ideal"
    );
}

#[test]
fn straight_track_simulation_matches_legacy_entry_point() {
    let geom = SarGeometry::test_size();
    let scene = Scene::six_targets(geom);
    let a = simulate_compressed_data(&scene, 0.0, 3);
    let b = simulate_with_track(&scene, &FlightTrack::straight(geom.num_pulses), 0.0, 3);
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn perturbed_track_broadens_the_response() {
    let geom = SarGeometry {
        num_pulses: 256,
        num_bins: 257,
        ..SarGeometry::paper_size()
    };
    let scene = Scene::single_target(geom);
    let clean = simulate_compressed_data(&scene, 0.0, 0);
    let wobble = FlightTrack::sinusoidal(geom.num_pulses, 1.5, 96.0);
    let perturbed = simulate_with_track(&scene, &wobble, 0.0, 0);
    let ideal = ffbp(&clean, &geom, &FfbpConfig::default());
    let blurred = ffbp(&perturbed, &geom, &FfbpConfig::default());
    // The track error redistributes energy out of the mainlobe: the
    // peak drops even when the half-width stays quantised.
    let (p_ideal, _, _) = ideal.image.peak();
    let (p_blur, _, _) = blurred.image.peak();
    assert!(
        p_blur < 0.9 * p_ideal,
        "1.5 m wobble should cost >10% of the peak: {p_blur} vs {p_ideal}"
    );
    // Width metric stays finite and sane on both.
    for img in [&ideal.image, &blurred.image] {
        let w = response_width(img, Axis::Range, 0.5);
        assert!(w > 0.5 && w < 50.0, "width {w}");
    }
}

#[test]
fn process_network_agrees_with_hand_written_mapping_end_to_end() {
    let w = AutofocusWorkload::paper();
    let seq = autofocus_seq::run(&w, autofocus_seq::params());
    let net = autofocus_net::run(&w, autofocus_seq::params(), Placement::neighbor());
    // Numerics match the sequential reference...
    for ((s1, v1), (s2, v2)) in seq.sweep.iter().zip(&net.sweep) {
        assert_eq!(s1, s2);
        assert!((v1 - v2).abs() <= 1e-3 * v1.abs().max(1.0));
    }
    // ...and the pipeline is still a large speedup over one core, so
    // the abstraction did not cost the performance benefit the paper
    // worries about.
    let speedup = seq.record.elapsed.seconds() / net.record.elapsed.seconds();
    assert!(speedup > 4.0, "network pipeline speedup {speedup:.2}");
}
