//! Cross-crate checks for the tracing layer: a traced harness run must
//! produce a deterministic, schema-valid Chrome `trace_event` document
//! with one track per core plus mesh-link tracks, and the heatmap in
//! the record must account for every byte-hop the run priced.

use sar_repro::desim::trace::Tracer;
use sar_repro::desim::Json;
use sar_repro::sar_epiphany::harness_impls::mapping_named;
use sar_repro::sim_harness::{platform_named, run_traced, Workload};

/// Run `ffbp_spmd` on the Epiphany at small scale with a recording
/// tracer; return the record and the serialised Chrome trace.
fn traced_spmd_run() -> (sar_repro::desim::RunRecord, String) {
    let mapping = mapping_named("ffbp_spmd").unwrap();
    let platform = platform_named("epiphany").unwrap();
    let workload = Workload::named("ffbp", true).unwrap();
    let tracer = Tracer::enabled();
    let out = run_traced(mapping.as_ref(), &workload, platform.as_ref(), &tracer).unwrap();
    let json = tracer
        .to_chrome_json(out.record.elapsed.clock)
        .to_string_pretty();
    (out.record, json)
}

fn events(doc: &Json) -> Vec<Json> {
    doc.get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
        .to_vec()
}

#[test]
fn identical_runs_export_byte_identical_traces() {
    let (_, a) = traced_spmd_run();
    let (_, b) = traced_spmd_run();
    assert_eq!(a, b, "trace export must be deterministic");
}

#[test]
fn every_event_carries_the_chrome_schema_fields() {
    let (_, json) = traced_spmd_run();
    let doc = Json::parse(&json).expect("trace must parse");
    let evs = events(&doc);
    assert!(!evs.is_empty());
    for e in &evs {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph field");
        assert!(e.get("pid").and_then(Json::as_u64).is_some(), "pid field");
        assert!(e.get("tid").and_then(Json::as_u64).is_some(), "tid field");
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "ts field");
        match ph {
            "X" => assert!(e.get("dur").and_then(Json::as_f64).is_some()),
            "C" => assert!(e
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
                .is_some()),
            "i" | "M" => {}
            other => panic!("unexpected phase '{other}'"),
        }
    }
}

#[test]
fn spmd_trace_has_all_core_tracks_and_mesh_link_tracks() {
    let (_, json) = traced_spmd_run();
    let doc = Json::parse(&json).expect("trace must parse");
    let evs = events(&doc);
    // pid 2 = cores, pids 4/5/6 = the three mesh planes (see
    // desim::trace::Track).
    let mut core_tids = std::collections::BTreeSet::new();
    let mut link_tracks = std::collections::BTreeSet::new();
    for e in &evs {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let pid = e.get("pid").and_then(Json::as_u64).unwrap();
        let tid = e.get("tid").and_then(Json::as_u64).unwrap();
        match pid {
            2 => {
                core_tids.insert(tid);
            }
            4..=6 => {
                link_tracks.insert((pid, tid));
            }
            _ => {}
        }
    }
    assert!(core_tids.len() >= 16, "core tracks: {}", core_tids.len());
    assert!(!link_tracks.is_empty(), "expected mesh-link tracks");
}

#[test]
fn trace_exports_per_component_power_counter_tracks() {
    let (_, json) = traced_spmd_run();
    let doc = Json::parse(&json).expect("trace must parse");
    let mut counter_names = std::collections::BTreeSet::new();
    for e in events(&doc) {
        if e.get("ph").and_then(Json::as_str) == Some("C") {
            let name = e.get("name").and_then(Json::as_str).expect("counter name");
            counter_names.insert(name.to_string());
        }
    }
    // The cumulative-energy counter plus one average-power track per
    // energy component, sampled at every phase boundary.
    for name in [
        "energy_j",
        "power_compute_w",
        "power_sram_w",
        "power_mesh_w",
        "power_elink_w",
        "power_sdram_w",
        "power_static_w",
    ] {
        assert!(
            counter_names.contains(name),
            "missing counter track '{name}' (have {counter_names:?})"
        );
    }
}

#[test]
fn heatmap_accounts_for_every_byte_hop() {
    let (record, _) = traced_spmd_run();
    let heatmap = record.mesh_heatmap.as_ref().expect("epiphany heatmap");
    assert_eq!(
        heatmap.total_byte_hops(),
        record.counters.get("mesh_byte_hops"),
        "heatmap must sum to the run's total byte-hops"
    );
    // The per-phase mesh blocks partition the same total.
    let phase_total: u64 = record.phases.iter().map(|p| p.mesh.total_byte_hops()).sum();
    assert_eq!(phase_total, heatmap.total_byte_hops());
}
