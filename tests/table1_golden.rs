//! Golden-record regression for Table I: the checked-in baseline
//! (`results/table1_baseline.json`, written by
//! `cargo run -p bench --bin table1 -- --small --out results/table1_baseline.json`)
//! must match a fresh small-scale run row for row. The model is fully
//! deterministic, so times are compared at ±1e-9 relative — any drift
//! means a timing-model change that must be deliberate (regenerate the
//! baseline and say why in the commit).

use sar_repro::desim::Json;
use sar_repro::sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload};
use sar_repro::sar_epiphany::{table1, Table1Row};
use sar_repro::sim_harness::RUN_RECORD_VERSION;

const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= REL_TOL * b.abs().max(1e-300),
        "{what}: fresh {a} vs baseline {b}"
    );
}

fn check_row(fresh: &Table1Row, baseline: &Json, kernel: &str, i: usize) {
    let ctx = |field: &str| format!("{kernel} row {i} {field}");
    let num = |key: &str| baseline.get(key).and_then(Json::as_f64);
    assert_eq!(
        baseline.get("label").and_then(Json::as_str),
        Some(fresh.label.as_str()),
        "{}",
        ctx("label")
    );
    assert_eq!(
        baseline.get("cores").and_then(Json::as_u64),
        Some(fresh.cores as u64),
        "{}",
        ctx("cores")
    );
    close(fresh.time_ms, num("time_ms").unwrap(), &ctx("time_ms"));
    close(fresh.speedup, num("speedup").unwrap(), &ctx("speedup"));
    close(fresh.power_w, num("power_w").unwrap(), &ctx("power_w"));
    match (fresh.throughput_px_s, num("throughput_px_s")) {
        (Some(a), Some(b)) => close(a, b, &ctx("throughput_px_s")),
        (None, None) => {}
        (a, b) => panic!("{}: fresh {a:?} vs baseline {b:?}", ctx("throughput_px_s")),
    }
    match (fresh.modeled_power_w, num("modeled_power_w")) {
        (Some(a), Some(b)) => close(a, b, &ctx("modeled_power_w")),
        (None, None) => {}
        (a, b) => panic!("{}: fresh {a:?} vs baseline {b:?}", ctx("modeled_power_w")),
    }
}

#[test]
fn table1_small_matches_the_checked_in_baseline() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/table1_baseline.json"
    ))
    .expect("baseline file must be checked in");
    let doc = Json::parse(&text).expect("baseline parses");
    assert_eq!(
        doc.get("version").and_then(Json::as_u64),
        Some(u64::from(RUN_RECORD_VERSION)),
        "baseline was written by a different record version — regenerate it"
    );
    assert_eq!(
        doc.get("records")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(6),
        "one record per Table I configuration"
    );

    let fresh = table1(&FfbpWorkload::small(), &AutofocusWorkload::small());
    let table = doc.get("table").expect("baseline carries the table rows");
    for (kernel, fresh_rows) in [("ffbp", &fresh.ffbp), ("autofocus", &fresh.autofocus)] {
        let rows = table
            .get(kernel)
            .and_then(Json::as_array)
            .expect("kernel rows");
        assert_eq!(rows.len(), fresh_rows.len());
        for (i, (f, b)) in fresh_rows.iter().zip(rows).enumerate() {
            check_row(f, b, kernel, i);
        }
    }
    let ratio = |key: &str| table.get(key).and_then(Json::as_f64).unwrap();
    close(
        fresh.ffbp_energy_ratio,
        ratio("ffbp_energy_ratio"),
        "ffbp_energy_ratio",
    );
    close(
        fresh.autofocus_energy_ratio,
        ratio("autofocus_energy_ratio"),
        "autofocus_energy_ratio",
    );
    close(
        fresh.ffbp_parallel_vs_seq,
        ratio("ffbp_parallel_vs_seq"),
        "ffbp_parallel_vs_seq",
    );
    close(
        fresh.autofocus_parallel_vs_seq,
        ratio("autofocus_parallel_vs_seq"),
        "autofocus_parallel_vs_seq",
    );
}
