//! End-to-end integration: the full signal chain from chirp echoes to
//! a focused image, and the Table I harness shape on a small workload.

use sar_repro::sar_core::ffbp::{ffbp, FfbpConfig};
use sar_repro::sar_core::gbp::gbp;
use sar_repro::sar_core::geometry::SarGeometry;
use sar_repro::sar_core::quality::energy_concentration;
use sar_repro::sar_core::scene::{simulate_via_chirp, Scene};
use sar_repro::sar_core::signal::ChirpParams;
use sar_repro::sar_epiphany::table1;
use sar_repro::sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload};

/// Expected (beam, bin) of a target on the final polar grid.
fn expected_position(geom: &SarGeometry, x: f32, y: f32) -> (usize, usize) {
    let r = (x * x + y * y).sqrt();
    let theta = (y / r).acos();
    let beam = ((theta - geom.theta_min()) / (2.0 * geom.theta_half_span) * geom.num_pulses as f32)
        .round() as usize;
    let bin = ((r - geom.r0) / geom.dr).round() as usize;
    (beam.min(geom.num_pulses - 1), bin.min(geom.num_bins - 1))
}

#[test]
fn chirp_to_focused_image() {
    // The whole front half of the chain: raw chirp echoes, matched
    // filtering, then FFBP — no shortcut through the direct synthesis.
    let geom = SarGeometry {
        num_pulses: 32,
        num_bins: 200,
        ..SarGeometry::test_size()
    };
    let scene = Scene::single_target(geom);
    let data = simulate_via_chirp(
        &scene,
        ChirpParams {
            samples: 64,
            fractional_bandwidth: 0.9,
        },
    );
    let run = ffbp(&data, &geom, &FfbpConfig::default());
    let t = scene.targets[0];
    let (eb, ei) = expected_position(&geom, t.x, t.y);
    let (_, beam, bin) = run.image.peak();
    assert!(
        (beam as i64 - eb as i64).abs() <= 3,
        "azimuth focus: got beam {beam}, expected ~{eb}"
    );
    assert!(
        (bin as i64 - ei as i64).abs() <= 3,
        "range focus: got bin {bin}, expected ~{ei}"
    );
}

#[test]
fn six_targets_all_focus() {
    let geom = SarGeometry::test_size();
    let scene = Scene::six_targets(geom);
    let data = sar_repro::sar_core::scene::simulate_compressed_data(&scene, 0.0, 7);
    let run = ffbp(&data, &geom, &FfbpConfig::default());
    let expected: Vec<(usize, usize)> = scene
        .targets
        .iter()
        .map(|t| expected_position(&geom, t.x, t.y))
        .collect();
    // A large share of image energy must sit in small boxes around the
    // six true positions (guard sized for the NN-interpolation blur).
    let conc = energy_concentration(&run.image, &expected, 6);
    assert!(conc > 0.4, "energy concentration {conc:.2} too low");

    // And GBP concentrates at the same positions at least as well.
    let reference = gbp(&data, &geom, geom.num_pulses);
    let conc_gbp = energy_concentration(&reference.image, &expected, 6);
    assert!(conc_gbp > conc * 0.8, "GBP should be at least comparable");
}

#[test]
fn noisy_data_still_focuses() {
    let geom = SarGeometry::test_size();
    let scene = Scene::single_target(geom);
    let data = sar_repro::sar_core::scene::simulate_compressed_data(&scene, 0.05, 11);
    let run = ffbp(&data, &geom, &FfbpConfig::default());
    let t = scene.targets[0];
    let (eb, ei) = expected_position(&geom, t.x, t.y);
    let (_, beam, bin) = run.image.peak();
    assert!((beam as i64 - eb as i64).abs() <= 3);
    assert!((bin as i64 - ei as i64).abs() <= 3);
}

#[test]
fn table1_small_reproduces_the_paper_shape() {
    let t = table1(&FfbpWorkload::small(), &AutofocusWorkload::small());
    // Ordering claims of the paper, which must hold at any scale:
    // 1. Sequential Epiphany loses to the i7 on FFBP (memory-bound).
    assert!(t.ffbp[1].speedup < 1.0);
    // 2. 16-core Epiphany wins on FFBP.
    assert!(t.ffbp[2].speedup > 1.0);
    // 3. Sequential Epiphany is roughly competitive on autofocus.
    assert!(t.autofocus[1].speedup > 0.3 && t.autofocus[1].speedup < 1.5);
    // 4. The 13-core pipeline wins on autofocus.
    assert!(t.autofocus[2].speedup > 1.0);
    // 5. Energy-efficiency advantages exceed the raw power ratio.
    assert!(t.ffbp_energy_ratio > 8.75);
    assert!(t.autofocus_energy_ratio > 8.75);
}
