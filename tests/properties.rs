//! Property-based tests (proptest) on the core data structures and
//! numerical invariants.

use proptest::prelude::*;

use sar_repro::desim::{Cycle, FifoResource, OpCounts};
use sar_repro::emesh::{route_xy, Coord, Mesh2D};
use sar_repro::memsim::Cache;
use sar_repro::sar_core::complex::c32;
use sar_repro::sar_core::ffbp::interp::neville4;
use sar_repro::sar_core::geometry::merge_geometry;
use sar_repro::sar_core::signal::{fft_inplace, ifft_inplace};

proptest! {
    #[test]
    fn fft_ifft_roundtrip(values in prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 64)) {
        let original: Vec<c32> = values.iter().map(|&(re, im)| c32::new(re, im)).collect();
        let mut buf = original.clone();
        fft_inplace(&mut buf);
        ifft_inplace(&mut buf);
        let peak = original.iter().map(|z| z.abs()).fold(1.0f32, f32::max);
        for (a, b) in buf.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-3 * peak, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_preserves_energy(values in prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 128)) {
        let mut buf: Vec<c32> = values.iter().map(|&(re, im)| c32::new(re, im)).collect();
        let time: f64 = buf.iter().map(|z| z.norm_sqr() as f64).sum();
        fft_inplace(&mut buf);
        let freq: f64 = buf.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() <= 1e-3 * time.max(1.0));
    }

    #[test]
    fn neville_reproduces_cubics(
        c3 in -2.0f32..2.0, c2 in -2.0f32..2.0, c1 in -2.0f32..2.0, c0 in -2.0f32..2.0,
        t in -0.5f32..1.5,
    ) {
        let f = |x: f32| c3 * x * x * x + c2 * x * x + c1 * x + c0;
        let p = [-1.0f32, 0.0, 1.0, 2.0].map(|x| c32::new(f(x), 0.0));
        let mut counts = OpCounts::default();
        let v = neville4(p, t, &mut counts);
        prop_assert!((v.re - f(t)).abs() < 1e-3, "{} vs {}", v.re, f(t));
        prop_assert!(v.im.abs() < 1e-4);
    }

    #[test]
    fn merge_geometry_matches_cartesian_truth(
        r in 200.0f32..5000.0,
        dtheta in -0.3f32..0.3,
        l in 0.5f32..256.0,
    ) {
        let theta = std::f32::consts::FRAC_PI_2 + dtheta;
        let mut counts = OpCounts::default();
        let g = merge_geometry(r, theta, l, &mut counts);
        let (x, y) = (r * theta.sin(), r * theta.cos());
        let r1 = (x * x + (y + l / 2.0) * (y + l / 2.0)).sqrt();
        let r2 = (x * x + (y - l / 2.0) * (y - l / 2.0)).sqrt();
        prop_assert!((g.r1 - r1).abs() < 0.05 + 1e-4 * r, "r1 {} vs {}", g.r1, r1);
        prop_assert!((g.r2 - r2).abs() < 0.05 + 1e-4 * r, "r2 {} vs {}", g.r2, r2);
        // Triangle inequality: a child can never be farther than r + l/2.
        prop_assert!(g.r1 <= r + l / 2.0 + 0.05);
        prop_assert!(g.r2 <= r + l / 2.0 + 0.05);
    }

    #[test]
    fn fifo_resource_never_overlaps_capacity(
        requests in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        // Whatever the request pattern (including out-of-order
        // timestamps), total busy time must equal the sum of holds, and
        // every reservation must start at or after its request.
        let mut res = FifoResource::per_units(1, 8);
        let mut total_hold = Cycle::ZERO;
        for &(at, units) in &requests {
            let r = res.request(Cycle(at), units);
            prop_assert!(r.start >= Cycle(at));
            prop_assert!(r.end > r.start);
            total_hold += r.hold();
        }
        prop_assert_eq!(res.busy_cycles(), total_hold);
        prop_assert_eq!(res.served(), requests.len() as u64);
    }

    #[test]
    fn xy_routes_are_minimal_and_connected(
        sx in 0u16..4, sy in 0u16..4, dx in 0u16..4, dy in 0u16..4,
    ) {
        let mesh = Mesh2D::e16g3();
        let (src, dst) = (Coord { x: sx, y: sy }, Coord { x: dx, y: dy });
        let hops = route_xy(&mesh, src, dst);
        prop_assert_eq!(hops.len() as u32, src.manhattan(dst));
        // The route must stay inside the mesh.
        for h in &hops {
            prop_assert!(mesh.contains(h.from));
        }
    }

    #[test]
    fn cache_hit_rate_is_one_for_resident_sets(lines in 1usize..64) {
        // Any working set that fits the cache hits 100% after warmup.
        let mut cache = Cache::new(32 * 1024, 64, 8);
        for i in 0..lines as u64 {
            cache.access(i * 64, false);
        }
        let miss_before = cache.misses();
        for _ in 0..3 {
            for i in 0..lines as u64 {
                cache.access(i * 64, false);
            }
        }
        prop_assert_eq!(cache.misses(), miss_before, "resident set must not miss");
    }

    #[test]
    fn opcounts_algebra(
        a in 0u64..1000, b in 0u64..1000, k in 1u64..16,
    ) {
        let unit = OpCounts { flops: a, fmas: b, ..OpCounts::default() };
        let mut acc = OpCounts::default();
        for _ in 0..k {
            acc.add(&unit);
        }
        prop_assert_eq!(acc, unit.scaled(k));
        prop_assert_eq!(acc.since(&unit), unit.scaled(k - 1));
        prop_assert_eq!(acc.flop_work(), k * (a + 2 * b));
    }
}

proptest! {
    #[test]
    fn stream_pipelines_deliver_every_token_in_order(
        values in prop::collection::vec(0u64..1000, 1..40),
        depth in 1usize..5,
    ) {
        // A linear actor pipeline of arbitrary depth must deliver every
        // fed token, in order, each incremented `depth` times, on a
        // deterministic schedule.
        use sar_repro::streams::{Actor, FireCtx, Network};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Inc;
        impl Actor<u64> for Inc {
            fn fire(&mut self, inputs: Vec<u64>, ctx: &mut FireCtx<'_, u64>) {
                ctx.charge(&OpCounts { ialu: 1, ..OpCounts::default() });
                ctx.send(0, inputs[0] + 1, 8);
            }
        }
        struct Probe(Rc<RefCell<Vec<u64>>>);
        impl Actor<u64> for Probe {
            fn fire(&mut self, inputs: Vec<u64>, _ctx: &mut FireCtx<'_, u64>) {
                self.0.borrow_mut().push(inputs[0]);
            }
        }

        let run = || {
            let chip = sar_repro::epiphany::Chip::e16g3(
                sar_repro::epiphany::EpiphanyParams::default(),
            );
            let out = Rc::new(RefCell::new(Vec::new()));
            let mut net: Network<u64> = Network::new(chip);
            let first = net.add_actor("stage0", 0, Box::new(Inc));
            let mut prev = first;
            for d in 1..depth {
                let next = net.add_actor(&format!("stage{d}"), d % 16, Box::new(Inc));
                net.connect(prev, next);
                prev = next;
            }
            let sink = net.add_actor("sink", 15, Box::new(Probe(out.clone())));
            net.connect(prev, sink);
            for &v in &values {
                net.feed(first, v, 8);
            }
            net.run();
            let elapsed = net.chip().elapsed();
            let collected = out.borrow().clone();
            drop(net); // the network holds an Rc into `out`
            (collected, elapsed)
        };
        let (got, t1) = run();
        let want: Vec<u64> = values.iter().map(|v| v + depth as u64).collect();
        prop_assert_eq!(got, want);
        // Determinism: an identical network produces identical timing.
        let (_, t2) = run();
        prop_assert_eq!(t1, t2);
    }
}

#[test]
fn complex_field_axioms_proptest() {
    proptest!(|(ar in -1e3f32..1e3, ai in -1e3f32..1e3, br in -1e3f32..1e3, bi in -1e3f32..1e3)| {
        let (a, b) = (c32::new(ar, ai), c32::new(br, bi));
        let scale = a.abs().max(b.abs()).max(1.0);
        prop_assert!(((a + b) - (b + a)).abs() < 1e-3 * scale);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-2 * scale * scale);
        // |ab| = |a||b| within float tolerance.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-2 * scale * scale);
    });
}
