//! Randomised property tests on the core data structures and numerical
//! invariants. Inputs are drawn from the in-repo deterministic PRNG
//! (`desim::rng::SmallRng`) — fixed seeds, many cases per property —
//! so failures reproduce exactly.

use sar_repro::desim::rng::SmallRng;
use sar_repro::desim::{Cycle, FifoResource, OpCounts};
use sar_repro::emesh::{route_xy, Coord, Mesh2D};
use sar_repro::memsim::Cache;
use sar_repro::sar_core::complex::c32;
use sar_repro::sar_core::ffbp::interp::neville4;
use sar_repro::sar_core::geometry::merge_geometry;
use sar_repro::sar_core::signal::{fft_inplace, ifft_inplace};

const CASES: usize = 64;

#[test]
fn fft_ifft_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0f7f);
    for _ in 0..CASES {
        let original: Vec<c32> = (0..64)
            .map(|_| c32::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect();
        let mut buf = original.clone();
        fft_inplace(&mut buf);
        ifft_inplace(&mut buf);
        let peak = original.iter().map(|z| z.abs()).fold(1.0f32, f32::max);
        for (a, b) in buf.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-3 * peak, "{a} vs {b}");
        }
    }
}

#[test]
fn fft_preserves_energy() {
    let mut rng = SmallRng::seed_from_u64(0x0ffe);
    for _ in 0..CASES {
        let mut buf: Vec<c32> = (0..128)
            .map(|_| c32::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect();
        let time: f64 = buf.iter().map(|z| z.norm_sqr() as f64).sum();
        fft_inplace(&mut buf);
        let freq: f64 = buf.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / 128.0;
        assert!((time - freq).abs() <= 1e-3 * time.max(1.0));
    }
}

#[test]
fn neville_reproduces_cubics() {
    let mut rng = SmallRng::seed_from_u64(0x4e11);
    for _ in 0..CASES {
        let (c3, c2, c1, c0) = (
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
        );
        let t = rng.gen_range(-0.5..1.5);
        let f = |x: f32| c3 * x * x * x + c2 * x * x + c1 * x + c0;
        let p = [-1.0f32, 0.0, 1.0, 2.0].map(|x| c32::new(f(x), 0.0));
        let mut counts = OpCounts::default();
        let v = neville4(p, t, &mut counts);
        assert!((v.re - f(t)).abs() < 1e-3, "{} vs {}", v.re, f(t));
        assert!(v.im.abs() < 1e-4);
    }
}

#[test]
fn merge_geometry_matches_cartesian_truth() {
    let mut rng = SmallRng::seed_from_u64(0x9e03);
    for _ in 0..CASES {
        let r = rng.gen_range(200.0..5000.0);
        let dtheta = rng.gen_range(-0.3..0.3);
        let l = rng.gen_range(0.5..256.0);
        let theta = std::f32::consts::FRAC_PI_2 + dtheta;
        let mut counts = OpCounts::default();
        let g = merge_geometry(r, theta, l, &mut counts);
        let (x, y) = (r * theta.sin(), r * theta.cos());
        let r1 = (x * x + (y + l / 2.0) * (y + l / 2.0)).sqrt();
        let r2 = (x * x + (y - l / 2.0) * (y - l / 2.0)).sqrt();
        assert!((g.r1 - r1).abs() < 0.05 + 1e-4 * r, "r1 {} vs {}", g.r1, r1);
        assert!((g.r2 - r2).abs() < 0.05 + 1e-4 * r, "r2 {} vs {}", g.r2, r2);
        // Triangle inequality: a child can never be farther than r + l/2.
        assert!(g.r1 <= r + l / 2.0 + 0.05);
        assert!(g.r2 <= r + l / 2.0 + 0.05);
    }
}

#[test]
fn fifo_resource_never_overlaps_capacity() {
    // Whatever the request pattern (including out-of-order timestamps),
    // total busy time must equal the sum of holds, and every reservation
    // must start at or after its request.
    let mut rng = SmallRng::seed_from_u64(0xf1f0);
    for _ in 0..CASES {
        let n = rng.gen_index(1..100);
        let requests: Vec<(u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_index(0..10_000) as u64,
                    rng.gen_index(1..500) as u64,
                )
            })
            .collect();
        let mut res = FifoResource::per_units(1, 8);
        let mut total_hold = Cycle::ZERO;
        for &(at, units) in &requests {
            let r = res.request(Cycle(at), units);
            assert!(r.start >= Cycle(at));
            assert!(r.end > r.start);
            total_hold += r.hold();
        }
        assert_eq!(res.busy_cycles(), total_hold);
        assert_eq!(res.served(), requests.len() as u64);
    }
}

#[test]
fn xy_routes_are_minimal_and_connected() {
    let mesh = Mesh2D::e16g3();
    for sx in 0..4u16 {
        for sy in 0..4u16 {
            for dx in 0..4u16 {
                for dy in 0..4u16 {
                    let (src, dst) = (Coord { x: sx, y: sy }, Coord { x: dx, y: dy });
                    let hops = route_xy(&mesh, src, dst);
                    assert_eq!(hops.len() as u32, src.manhattan(dst));
                    // The route must stay inside the mesh.
                    for h in &hops {
                        assert!(mesh.contains(h.from));
                    }
                }
            }
        }
    }
}

#[test]
fn cache_hit_rate_is_one_for_resident_sets() {
    // Any working set that fits the cache hits 100% after warmup.
    for lines in 1..64usize {
        let mut cache = Cache::new(32 * 1024, 64, 8);
        for i in 0..lines as u64 {
            cache.access(i * 64, false);
        }
        let miss_before = cache.misses();
        for _ in 0..3 {
            for i in 0..lines as u64 {
                cache.access(i * 64, false);
            }
        }
        assert_eq!(cache.misses(), miss_before, "resident set must not miss");
    }
}

#[test]
fn opcounts_algebra() {
    let mut rng = SmallRng::seed_from_u64(0x0bc5);
    for _ in 0..CASES {
        let a = rng.gen_index(0..1000) as u64;
        let b = rng.gen_index(0..1000) as u64;
        let k = rng.gen_index(1..16) as u64;
        let unit = OpCounts {
            flops: a,
            fmas: b,
            ..OpCounts::default()
        };
        let mut acc = OpCounts::default();
        for _ in 0..k {
            acc.add(&unit);
        }
        assert_eq!(acc, unit.scaled(k));
        assert_eq!(acc.since(&unit), unit.scaled(k - 1));
        assert_eq!(acc.flop_work(), k * (a + 2 * b));
    }
}

#[test]
fn stream_pipelines_deliver_every_token_in_order() {
    // A linear actor pipeline of arbitrary depth must deliver every
    // fed token, in order, each incremented `depth` times, on a
    // deterministic schedule.
    use sar_repro::streams::{Actor, FireCtx, Network};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Inc;
    impl Actor<u64> for Inc {
        fn fire(&mut self, inputs: Vec<u64>, ctx: &mut FireCtx<'_, u64>) {
            ctx.charge(&OpCounts {
                ialu: 1,
                ..OpCounts::default()
            });
            ctx.send(0, inputs[0] + 1, 8);
        }
    }
    struct Probe(Rc<RefCell<Vec<u64>>>);
    impl Actor<u64> for Probe {
        fn fire(&mut self, inputs: Vec<u64>, _ctx: &mut FireCtx<'_, u64>) {
            self.0.borrow_mut().push(inputs[0]);
        }
    }

    let mut rng = SmallRng::seed_from_u64(0x57ae);
    for _ in 0..16 {
        let n = rng.gen_index(1..40);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_index(0..1000) as u64).collect();
        let depth = rng.gen_index(1..5);

        let run = || {
            let chip =
                sar_repro::epiphany::Chip::e16g3(sar_repro::epiphany::EpiphanyParams::default());
            let out = Rc::new(RefCell::new(Vec::new()));
            let mut net: Network<u64> = Network::new(chip);
            let first = net.add_actor("stage0", 0, Box::new(Inc));
            let mut prev = first;
            for d in 1..depth {
                let next = net.add_actor(&format!("stage{d}"), d % 16, Box::new(Inc));
                net.connect(prev, next);
                prev = next;
            }
            let sink = net.add_actor("sink", 15, Box::new(Probe(out.clone())));
            net.connect(prev, sink);
            for &v in &values {
                net.feed(first, v, 8);
            }
            net.run();
            let elapsed = net.chip().elapsed();
            let collected = out.borrow().clone();
            drop(net); // the network holds an Rc into `out`
            (collected, elapsed)
        };
        let (got, t1) = run();
        let want: Vec<u64> = values.iter().map(|v| v + depth as u64).collect();
        assert_eq!(got, want);
        // Determinism: an identical network produces identical timing.
        let (_, t2) = run();
        assert_eq!(t1, t2);
    }
}

#[test]
fn complex_field_axioms() {
    let mut rng = SmallRng::seed_from_u64(0xc32a);
    for _ in 0..256 {
        let a = c32::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3));
        let b = c32::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3));
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(((a + b) - (b + a)).abs() < 1e-3 * scale);
        assert!(((a * b) - (b * a)).abs() < 1e-2 * scale * scale);
        // |ab| = |a||b| within float tolerance.
        assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-2 * scale * scale);
    }
}
