//! E64 scale-out regression: pinning the 16-core FFBP slice
//! assignment onto the e64's 4x4 corner subgrid reproduces the golden
//! baseline configuration — the image bit for bit against both the
//! plain algorithm and the dedicated e16 run, and the e16 run itself
//! anchored to the checked-in `results/table1_baseline.json` timing.

use sar_repro::desim::Json;
use sar_repro::epiphany::EpiphanyParams;
use sar_repro::sar_core::ffbp::ffbp;
use sar_repro::sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_repro::sar_epiphany::workloads::FfbpWorkload;

#[test]
fn e64_sixteen_core_subgrid_reproduces_the_golden_image() {
    let w = FfbpWorkload::small();
    let plain = ffbp(&w.data, &w.geom, &w.config).image;
    let e16 = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    let sub = ffbp_spmd::run(
        &w,
        EpiphanyParams::e64(),
        SpmdOptions {
            cores: Some(16),
            ..SpmdOptions::default()
        },
    );
    // The subgrid run carries the e64 identity but the e16 slice
    // assignment...
    assert!(
        sub.record.label.contains("16 cores"),
        "{}",
        sub.record.label
    );
    // ...and forms the identical image: same slices, same merge tree,
    // same f32 arithmetic — core placement must not leak into pixels.
    assert_eq!(sub.image.as_slice(), e16.image.as_slice());
    assert_eq!(sub.image.as_slice(), plain.as_slice());

    // Anchor to the golden document: the baseline's 16-core FFBP row
    // is exactly the configuration the subgrid reproduces, so a fresh
    // e16 run must still match its recorded time (±1e-9 relative, as
    // in tests/table1_golden.rs).
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/table1_baseline.json"
    ))
    .expect("baseline file must be checked in");
    let doc = Json::parse(&text).expect("baseline parses");
    let golden_ms = doc
        .get("table")
        .and_then(|t| t.get("ffbp"))
        .and_then(Json::as_array)
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("cores").and_then(Json::as_u64) == Some(16))
        })
        .and_then(|r| r.get("time_ms"))
        .and_then(Json::as_f64)
        .expect("baseline carries the 16-core FFBP row");
    let fresh_ms = e16.record.millis();
    assert!(
        (fresh_ms - golden_ms).abs() <= 1e-9 * golden_ms.abs(),
        "16-core FFBP drifted from the golden baseline: {fresh_ms} vs {golden_ms}"
    );
}

#[test]
fn the_full_e64_beats_the_e16_on_the_same_image() {
    let w = FfbpWorkload::small();
    let e16 = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    let e64 = ffbp_spmd::run(&w, EpiphanyParams::e64(), SpmdOptions::default());
    assert_eq!(e64.image.as_slice(), e16.image.as_slice());
    assert!(
        e64.record.elapsed.cycles < e16.record.elapsed.cycles,
        "64 cores must outrun 16 on the same workload"
    );
}
