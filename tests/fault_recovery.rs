//! End-to-end fault-injection contract (DESIGN.md §3 S15): with a
//! fixed seed and spec the recovered run is bit-identical to the
//! fault-free one where it matters (the formed image / the sweep), the
//! record carries nonzero fault accounting, and re-running the same
//! seed reproduces the record exactly.

use sar_epiphany::harness_impls::FfbpSpmdMapping;
use sim_harness::{platform_named, run_ctx, FaultPlan, FaultState, RunContext, Workload};

const SPEC: &str = r#"{
    "version": 1,
    "faults": [
        {"kind": "sdram_bit_error", "at": 1000},
        {"kind": "elink_degrade", "at": 5000, "extra": 128},
        {"kind": "mesh_stall", "mesh": "cmesh", "at": 9000, "extra": 256},
        {"kind": "core_halt", "core": 11, "at": 30000},
        {"kind": "sdram_bit_error", "count": 3, "window": [0, 200000]}
    ]
}"#;

fn faulted_run(seed: u64) -> sim_harness::MappingRun {
    let plan = FaultPlan::parse(SPEC, seed).expect("spec parses");
    let ctx = RunContext::plain().with_faults(FaultState::from_plan(&plan));
    let platform = platform_named("epiphany").expect("platform resolves");
    let workload = Workload::named("ffbp", true).expect("workload resolves");
    run_ctx(
        &FfbpSpmdMapping::default(),
        &workload,
        platform.as_ref(),
        &ctx,
    )
    .expect("faulted run converges")
}

#[test]
fn recovered_image_is_bit_identical_to_fault_free() {
    let platform = platform_named("epiphany").unwrap();
    let workload = Workload::named("ffbp", true).unwrap();
    let clean = run_ctx(
        &FfbpSpmdMapping::default(),
        &workload,
        platform.as_ref(),
        &RunContext::plain(),
    )
    .unwrap();
    let faulted = faulted_run(42);

    let clean_img = clean.image.expect("ffbp forms an image");
    let faulted_img = faulted.image.expect("ffbp forms an image");
    assert_eq!(
        clean_img.as_slice(),
        faulted_img.as_slice(),
        "recovery must not change a single bit of the formed image"
    );

    // The fault-free record carries no fault accounting at all.
    assert!(!clean.record.faults.any());
    assert_eq!(clean.record.counters.get("fault_seed"), 0);

    // The faulted one accounts for what it survived.
    let f = &faulted.record.faults;
    assert!(f.faults_injected > 0, "the spec must actually fire");
    assert!(f.recovery_cycles > 0, "the redone iteration is paid for");
    assert_eq!(f.degraded_cores, 1, "core 11 halts and is written off");
    assert_eq!(faulted.record.counters.get("fault_seed"), 42);
}

#[test]
fn same_seed_reproduces_the_record_exactly() {
    let a = faulted_run(42);
    let b = faulted_run(42);
    assert_eq!(
        a.record.to_json().to_string_pretty(),
        b.record.to_json().to_string_pretty(),
        "same seed + same spec must reproduce the whole record, byte for byte"
    );
}

#[test]
fn different_seeds_draw_different_schedules() {
    // The pinned events are identical; the random group's arming
    // cycles must differ between seeds (equal schedules would mean
    // the seed is ignored), and the record is stamped with the seed
    // that produced it.
    let plan1 = FaultPlan::parse(SPEC, 1).unwrap();
    let plan2 = FaultPlan::parse(SPEC, 2).unwrap();
    assert_ne!(
        plan1.events, plan2.events,
        "different seeds must expand the random group differently"
    );
    let a = faulted_run(1);
    let b = faulted_run(2);
    assert_eq!(a.record.counters.get("fault_seed"), 1);
    assert_eq!(b.record.counters.get("fault_seed"), 2);
}
