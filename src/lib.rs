//! Umbrella crate: re-exports the workspace crates and hosts the
//! cross-crate integration tests and runnable examples.

#![forbid(unsafe_code)]
pub use desim;
pub use emesh;
pub use epiphany;
pub use memsim;
pub use refcpu;
pub use sar_core;
pub use sar_epiphany;
pub use sim_harness;
pub use streams;
