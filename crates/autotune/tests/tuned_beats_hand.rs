//! The autotune acceptance contract, end to end: the search finds a
//! placement that beats the hand `neighbor` mapping on the static
//! objective, the *simulated* run confirms the win, the functional
//! outputs stay bit-identical (placement changes routing, never
//! pixels), the static bounds bracket both simulated runs, and the
//! whole report is byte-deterministic per seed.

use autotune::{tune, Objective, TuneConfig};
use sar_epiphany::mapping_named;
use sim_harness::{platform_named, run_ctx, MappingRun, RunContext, Workload};

fn simulate(place: Option<sim_harness::Placement>) -> MappingRun {
    let m = mapping_named("autofocus_mpmd").expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let w = Workload::named("autofocus", true).expect("registered");
    let mut ctx = RunContext::plain();
    if let Some(place) = place {
        ctx = ctx.with_placement(place);
    }
    run_ctx(m.as_ref(), &w, p.as_ref(), &ctx).expect("pair simulates")
}

fn small_cfg() -> TuneConfig {
    let mut cfg = TuneConfig::new("autofocus_mpmd:epiphany");
    cfg.small = true;
    cfg.iters = 250;
    cfg
}

#[test]
fn tuned_placement_beats_the_hand_mapping_in_the_simulator() {
    let t = tune(&small_cfg()).expect("pair is tunable");
    assert!(
        t.best_score < t.initial_score,
        "static search found no improvement"
    );

    let base = simulate(None);
    let tuned = simulate(Some(t.best));

    // The win condition: the tuned placement's simulated run beats the
    // hand mapping on total energy (the pipeline is compute-bound, so
    // placement moves energy, not makespan).
    let (be, te) = (base.record.energy.total_j(), tuned.record.energy.total_j());
    assert!(
        te < be,
        "tuned placement did not beat neighbor: {te} J >= {be} J"
    );
    assert!(
        tuned.record.energy.mesh_j < base.record.energy.mesh_j,
        "the saving must come from mesh traffic"
    );

    // Functional identity, bit for bit: same criterion sweep, same
    // best hypothesis.
    let bits = |r: &MappingRun| {
        (
            r.sweep
                .as_ref()
                .expect("autofocus reports a sweep")
                .iter()
                .map(|&(a, b)| (a.to_bits(), b.to_bits()))
                .collect::<Vec<_>>(),
            r.best.map(|(a, b)| (a.to_bits(), b.to_bits())),
        )
    };
    assert_eq!(bits(&base), bits(&tuned), "placement changed the pixels");

    // The static bounds bracket both simulated runs.
    for (run, cost) in [(&base, &t.initial_cost), (&tuned, &t.best_cost)] {
        let cycles = run.record.elapsed.cycles.raw() as f64;
        let energy = run.record.energy.total_j();
        assert!(
            cost.cycles.contains(cycles),
            "cycles {cycles} outside [{}, {}]",
            cost.cycles.lo,
            cost.cycles.hi
        );
        assert!(
            cost.total_j.contains(energy),
            "energy {energy} outside [{}, {}]",
            cost.total_j.lo,
            cost.total_j.hi
        );
    }
}

#[test]
fn mesh_objective_also_improves_simulated_mesh_energy() {
    let mut cfg = small_cfg();
    cfg.objective = Objective::MeshEnergy;
    let t = tune(&cfg).expect("pair is tunable");
    assert!(t.best_score < t.initial_score);
    let base = simulate(None);
    let tuned = simulate(Some(t.best));
    assert!(tuned.record.energy.mesh_j < base.record.energy.mesh_j);
}

#[test]
fn reports_are_byte_identical_per_seed_across_processes() {
    // Same config twice: the full serialized report must match byte
    // for byte (BTreeMap iteration inside the cost model, seeded rng
    // streams, no wall-clock anywhere).
    let cfg = small_cfg();
    let a = tune(&cfg).unwrap().to_json().to_string_pretty();
    let b = tune(&cfg).unwrap().to_json().to_string_pretty();
    assert_eq!(a, b);
    // And a different seed is allowed to differ (the annealer's walk
    // depends on it) while the greedy half stays fixed.
    let mut other = small_cfg();
    other.seed = 99;
    let t = tune(&other).unwrap();
    let greedy = t
        .searches
        .iter()
        .find(|s| s.strategy == "greedy")
        .expect("both strategies ran");
    let base_greedy = tune(&cfg).unwrap();
    let base_greedy = base_greedy
        .searches
        .iter()
        .find(|s| s.strategy == "greedy")
        .unwrap();
    assert_eq!(greedy.best_score, base_greedy.best_score);
    assert_eq!(greedy.evals, base_greedy.evals);
}
