//! `autotune` — cost-model-guided placement search (DESIGN.md §3 S20).
//!
//! The hand mappings (`neighbor`, the `scattered` ablation) fix which
//! core runs which stage of the 13-core autofocus pipeline. This crate
//! searches that assignment space automatically: a [`PlacementSpace`]
//! enumerates legal moves, an [`Evaluator`] prices each candidate
//! through the same `sarlint` static cost model the analyzer uses
//! (no simulation in the inner loop), and two deterministic strategies
//! — [`search::greedy`] swap-descent and [`search::anneal`] seeded
//! simulated annealing — walk the space. [`tune`] runs the whole
//! search and returns a [`Tuning`] whose [`Tuning::to_json`] report is
//! byte-identical across runs for the same `(pair, objective, seed,
//! iters)` — no wall-clock, no process-dependent iteration order.
//!
//! The static model is a *guide*, not the verdict: the `autotune`
//! binary re-simulates the initial and tuned placements through the
//! ordinary harness and records both in the report, gated on the
//! functional outputs staying bit-identical (placement changes
//! routing, never pixels).

#![forbid(unsafe_code)]

pub mod eval;
pub mod search;
pub mod space;

use desim::Json;
use sarlint::cost::CostReport;
use sim_harness::{Placement, RUN_RECORD_VERSION};

pub use eval::{Evaluator, Objective};
pub use search::{SearchOutcome, TrajPoint};
pub use space::{Move, PlacementSpace, NUM_ROLES, ROLE_CORR};

/// Which strategies [`tune`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Greedy swap-descent only.
    Greedy,
    /// Simulated annealing only.
    Anneal,
    /// Both; the report keeps the better result.
    Both,
}

impl Strategy {
    /// Parse a `--strategy` operand.
    pub fn parse(name: &str) -> Option<Strategy> {
        match name {
            "greedy" => Some(Strategy::Greedy),
            "anneal" => Some(Strategy::Anneal),
            "both" => Some(Strategy::Both),
            _ => None,
        }
    }

    /// The operand spelling.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Greedy => "greedy",
            Strategy::Anneal => "anneal",
            Strategy::Both => "both",
        }
    }
}

/// Everything one [`tune`] run needs.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// `mapping:platform`, e.g. `autofocus_mpmd:epiphany`.
    pub pair: String,
    /// What to minimise.
    pub objective: Objective,
    /// Root seed for the annealer's move/accept streams.
    pub seed: u64,
    /// Evaluation budget per strategy.
    pub iters: usize,
    /// Which strategies to run.
    pub strategy: Strategy,
    /// Price the small workload instead of the paper one.
    pub small: bool,
    /// Roles the search must not move.
    pub pins: Vec<usize>,
}

impl TuneConfig {
    /// Defaults matching the `autotune` binary: the paper pair, total
    /// energy, seed 0, 800 evaluations, both strategies.
    pub fn new(pair: impl Into<String>) -> TuneConfig {
        TuneConfig {
            pair: pair.into(),
            objective: Objective::Energy,
            seed: 0,
            iters: 800,
            strategy: Strategy::Both,
            small: false,
            pins: Vec::new(),
        }
    }
}

/// The search result: initial vs best placement with their static
/// prices, plus the per-strategy outcomes.
#[derive(Debug, Clone)]
pub struct Tuning {
    /// The tuned mapping's registry name.
    pub mapping: String,
    /// The platform's registry label.
    pub platform: String,
    /// The configuration that produced this result.
    pub config: TuneConfig,
    /// Start placement (the mapping's hand `neighbor` default).
    pub initial: Placement,
    /// Its static price.
    pub initial_cost: CostReport,
    /// Its objective score.
    pub initial_score: f64,
    /// Best placement found (the initial one if nothing improved).
    pub best: Placement,
    /// Its static price.
    pub best_cost: CostReport,
    /// Its objective score.
    pub best_score: f64,
    /// Which strategy found it (`"initial"` if none improved).
    pub best_strategy: &'static str,
    /// Per-strategy search outcomes in execution order.
    pub searches: Vec<SearchOutcome>,
}

impl Tuning {
    /// Relative improvement of the objective, percent.
    pub fn improvement_pct(&self) -> f64 {
        if self.initial_score == 0.0 {
            return 0.0;
        }
        (self.initial_score - self.best_score) / self.initial_score * 100.0
    }

    /// The deterministic `TuneReport` document. The binary appends a
    /// `simulated` section before writing it out.
    pub fn to_json(&self) -> Json {
        let side = |place: &Placement, cost: &CostReport, score: f64| {
            Json::obj()
                .with("placement", place.to_json())
                .with("score", score)
                .with("cost", cost.to_json())
        };
        Json::obj()
            .with("bench", "autotune")
            .with("version", RUN_RECORD_VERSION)
            .with("pair", self.config.pair.as_str())
            .with("mapping", self.mapping.as_str())
            .with("platform", self.platform.as_str())
            .with(
                "workload",
                if self.config.small { "small" } else { "paper" },
            )
            .with("objective", self.config.objective.label())
            .with("seed", self.config.seed)
            .with("iters", self.config.iters)
            .with("strategy", self.config.strategy.label())
            .with(
                "initial",
                side(&self.initial, &self.initial_cost, self.initial_score),
            )
            .with(
                "best",
                side(&self.best, &self.best_cost, self.best_score)
                    .with("strategy", self.best_strategy),
            )
            .with("improvement_pct", self.improvement_pct())
            .with(
                "searches",
                Json::Arr(self.searches.iter().map(outcome_json).collect()),
            )
    }
}

fn outcome_json(o: &SearchOutcome) -> Json {
    let points = o
        .trajectory
        .iter()
        .map(|t| {
            Json::from(vec![
                Json::from(t.eval),
                Json::from(t.current),
                Json::from(t.best),
            ])
        })
        .collect();
    Json::obj()
        .with("strategy", o.strategy)
        .with("start_score", o.start_score)
        .with("best_score", o.best_score)
        .with("evals", o.evals)
        .with("accepted", o.accepted)
        .with("rejected", o.rejected)
        .with("trajectory", Json::Arr(points))
}

/// Run the configured search from the hand `neighbor` placement.
///
/// # Errors
/// A human-readable message when the pair is not tunable (unknown
/// names, no mesh, a start placement the lint rejects).
pub fn tune(cfg: &TuneConfig) -> Result<Tuning, String> {
    let evaluator = Evaluator::for_pair(&cfg.pair, cfg.small)?;
    let mut space = PlacementSpace::for_mesh(evaluator.mesh());
    for &role in &cfg.pins {
        if role >= NUM_ROLES {
            return Err(format!("pinned role {role} out of range (0..{NUM_ROLES})"));
        }
        space.pin(role);
    }

    let initial = Placement::neighbor();
    let initial_cost = evaluator
        .evaluate(&initial)
        .ok_or("the initial placement is illegal for this pair")?;
    let initial_score = cfg.objective.score(&initial_cost);
    let score = |p: &Placement| evaluator.evaluate(p).map(|c| cfg.objective.score(&c));

    let mut searches = Vec::new();
    if matches!(cfg.strategy, Strategy::Greedy | Strategy::Both) {
        searches.push(search::greedy(
            &space,
            &score,
            initial,
            initial_score,
            cfg.iters,
        ));
    }
    if matches!(cfg.strategy, Strategy::Anneal | Strategy::Both) {
        searches.push(search::anneal(
            &space,
            &score,
            initial,
            initial_score,
            cfg.seed,
            cfg.iters,
        ));
    }

    // Strict improvement keeps ties on the earlier strategy, so the
    // winner is deterministic regardless of float coincidences.
    let mut best = initial;
    let mut best_score = initial_score;
    let mut best_strategy = "initial";
    for s in &searches {
        if s.best_score < best_score {
            best = s.best;
            best_score = s.best_score;
            best_strategy = s.strategy;
        }
    }
    let best_cost = evaluator
        .evaluate(&best)
        .expect("the best placement came from legal evaluations");

    Ok(Tuning {
        mapping: evaluator.mapping().to_string(),
        platform: evaluator.platform_label(),
        config: cfg.clone(),
        initial,
        initial_cost,
        initial_score,
        best,
        best_cost,
        best_score,
        best_strategy,
        searches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TuneConfig {
        let mut cfg = TuneConfig::new("autofocus_mpmd:epiphany");
        cfg.small = true;
        cfg.iters = 150;
        cfg
    }

    #[test]
    fn tuned_placement_beats_the_hand_neighbor_on_static_energy() {
        let t = tune(&small_cfg()).unwrap();
        assert!(
            t.best_score < t.initial_score,
            "search found no improvement: {} >= {}",
            t.best_score,
            t.initial_score
        );
        assert_eq!(t.best.cores().len(), 13);
        assert!(t.best.fits(4, 4));
        assert!(t.improvement_pct() > 0.0);
    }

    #[test]
    fn same_config_produces_a_byte_identical_report() {
        let cfg = small_cfg();
        let a = tune(&cfg).unwrap().to_json().to_string_pretty();
        let b = tune(&cfg).unwrap().to_json().to_string_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_legal() {
        let mut cfg = small_cfg();
        cfg.strategy = Strategy::Anneal;
        cfg.iters = 120;
        for seed in [1, 2] {
            cfg.seed = seed;
            let t = tune(&cfg).unwrap();
            assert!(t.best.fits(4, 4));
            assert!(t.best_score <= t.initial_score);
        }
    }

    #[test]
    fn unknown_pairs_and_bad_pins_error_out() {
        assert!(tune(&TuneConfig::new("nope")).is_err());
        let mut cfg = small_cfg();
        cfg.pins = vec![99];
        assert!(tune(&cfg).is_err());
    }
}
