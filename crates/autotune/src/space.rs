//! The search space: which 13-role core assignments are reachable.
//!
//! A [`PlacementSpace`] knows the mesh, the legal canonical sites on
//! it, and which roles are pinned. Placement ids are canonical
//! (4-column row-major, see [`sim_harness::placement::CANONICAL_COLS`]),
//! so on meshes wider than four columns the space is restricted to the
//! western four columns — the canonical id scheme cannot express
//! `x >= 4`, and the hand mappings live there anyway.
//!
//! Moves are the classic pair for assignment problems: swap the cores
//! of two roles, or relocate one role onto an unused site. Both
//! preserve the 13-distinct-cores invariant by construction, so every
//! reachable placement stays structurally valid; *semantic* legality
//! (on-mesh, within the `SL005` hop budget) is the evaluator's job.

use desim::rng::SmallRng;
use sim_harness::placement::CANONICAL_COLS;
use sim_harness::Placement;

/// Roles in the 13-core autofocus pipeline: 0–5 range (`block * 3 +
/// window`), 6–11 beam (`block * 3 + instance`), 12 the correlator.
pub const NUM_ROLES: usize = 13;

/// Role index of the correlation/summation core.
pub const ROLE_CORR: usize = 12;

/// Human-readable role name (`range[1][2]`, `corr`, ...).
pub fn role_label(role: usize) -> String {
    match role {
        0..=5 => format!("range[{}][{}]", role / 3, role % 3),
        6..=11 => format!("beam[{}][{}]", (role - 6) / 3, (role - 6) % 3),
        ROLE_CORR => "corr".to_string(),
        _ => panic!("role {role} out of range"),
    }
}

/// One candidate step through the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Exchange the cores of two roles.
    Swap(usize, usize),
    /// Move one role onto a currently unused site.
    Relocate(usize, usize),
}

/// Legal core assignments for one Mapping × Platform pair.
#[derive(Debug, Clone)]
pub struct PlacementSpace {
    /// Canonical site ids on this mesh, ascending.
    sites: Vec<usize>,
    /// Roles the search must not move (eLink-adjacent readers, ...).
    pinned: [bool; NUM_ROLES],
}

impl PlacementSpace {
    /// The space over a `(cols, rows)` mesh. Sites are the canonical
    /// ids whose coordinates lie on the mesh; columns beyond the
    /// canonical four are unreachable by construction.
    pub fn for_mesh(mesh: (u16, u16)) -> PlacementSpace {
        let cols = usize::from(mesh.0).min(CANONICAL_COLS);
        let rows = usize::from(mesh.1);
        let sites = (0..rows)
            .flat_map(|y| (0..cols).map(move |x| y * CANONICAL_COLS + x))
            .collect();
        PlacementSpace {
            sites,
            pinned: [false; NUM_ROLES],
        }
    }

    /// Pin `role`: no generated move will touch its core.
    pub fn pin(&mut self, role: usize) {
        self.pinned[role] = true;
    }

    /// Whether `role` is pinned.
    pub fn is_pinned(&self, role: usize) -> bool {
        self.pinned[role]
    }

    /// The legal canonical sites, ascending.
    pub fn sites(&self) -> &[usize] {
        &self.sites
    }

    /// The core a role occupies in `place`.
    pub fn role_core(place: &Placement, role: usize) -> usize {
        match role {
            0..=5 => place.range[role / 3][role % 3],
            6..=11 => place.beam[(role - 6) / 3][(role - 6) % 3],
            ROLE_CORR => place.corr,
            _ => panic!("role {role} out of range"),
        }
    }

    /// `place` with `role` moved to `core`.
    #[must_use]
    pub fn with_role(place: &Placement, role: usize, core: usize) -> Placement {
        let mut p = *place;
        match role {
            0..=5 => p.range[role / 3][role % 3] = core,
            6..=11 => p.beam[(role - 6) / 3][(role - 6) % 3] = core,
            ROLE_CORR => p.corr = core,
            _ => panic!("role {role} out of range"),
        }
        p
    }

    /// Sites no role occupies in `place`, ascending.
    pub fn unused_sites(&self, place: &Placement) -> Vec<usize> {
        let used = place.cores();
        self.sites
            .iter()
            .copied()
            .filter(|s| !used.contains(s))
            .collect()
    }

    /// Every legal move from `place`, in a fixed deterministic order:
    /// all role swaps (ascending pairs), then all relocations
    /// (role-major, site-minor).
    pub fn moves(&self, place: &Placement) -> Vec<Move> {
        let mut out = Vec::new();
        for a in 0..NUM_ROLES {
            if self.pinned[a] {
                continue;
            }
            for b in (a + 1)..NUM_ROLES {
                if !self.pinned[b] {
                    out.push(Move::Swap(a, b));
                }
            }
        }
        let free = self.unused_sites(place);
        for role in 0..NUM_ROLES {
            if self.pinned[role] {
                continue;
            }
            for &site in &free {
                out.push(Move::Relocate(role, site));
            }
        }
        out
    }

    /// One move drawn uniformly from [`PlacementSpace::moves`] with
    /// `rng`; `None` when every role is pinned.
    pub fn random_move(&self, place: &Placement, rng: &mut SmallRng) -> Option<Move> {
        let ms = self.moves(place);
        if ms.is_empty() {
            return None;
        }
        Some(ms[rng.gen_index(0..ms.len())])
    }

    /// `place` after `mv`.
    #[must_use]
    pub fn apply(place: &Placement, mv: Move) -> Placement {
        match mv {
            Move::Swap(a, b) => {
                let (ca, cb) = (
                    PlacementSpace::role_core(place, a),
                    PlacementSpace::role_core(place, b),
                );
                let p = PlacementSpace::with_role(place, a, cb);
                PlacementSpace::with_role(&p, b, ca)
            }
            Move::Relocate(role, site) => PlacementSpace::with_role(place, role, site),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_space_has_sixteen_sites() {
        let s = PlacementSpace::for_mesh((4, 4));
        assert_eq!(
            s.sites(),
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
        );
        // Wider meshes only add rows' worth of canonical sites.
        let wide = PlacementSpace::for_mesh((8, 8));
        assert_eq!(wide.sites().len(), 32);
        assert!(wide.sites().iter().all(|s| s % CANONICAL_COLS < 4));
    }

    #[test]
    fn roles_round_trip_through_the_accessors() {
        let p = Placement::neighbor();
        for role in 0..NUM_ROLES {
            let core = PlacementSpace::role_core(&p, role);
            assert_eq!(PlacementSpace::with_role(&p, role, core), p);
            assert!(!role_label(role).is_empty());
        }
    }

    #[test]
    fn every_move_preserves_thirteen_distinct_cores() {
        let s = PlacementSpace::for_mesh((4, 4));
        let p = Placement::neighbor();
        let moves = s.moves(&p);
        // 13 choose 2 swaps + 13 roles x 3 free sites.
        assert_eq!(moves.len(), 78 + 13 * 3);
        for mv in moves {
            let q = PlacementSpace::apply(&p, mv);
            assert_eq!(q.cores().len(), 13, "{mv:?} lost a core");
            assert!(q.fits(4, 4), "{mv:?} left the mesh");
        }
    }

    #[test]
    fn pinned_roles_never_move() {
        let mut s = PlacementSpace::for_mesh((4, 4));
        s.pin(ROLE_CORR);
        assert!(s.is_pinned(ROLE_CORR));
        let p = Placement::neighbor();
        for mv in s.moves(&p) {
            let q = PlacementSpace::apply(&p, mv);
            assert_eq!(q.corr, p.corr, "{mv:?} moved the pinned correlator");
        }
    }

    #[test]
    fn random_moves_are_deterministic_per_seed() {
        let s = PlacementSpace::for_mesh((4, 4));
        let p = Placement::neighbor();
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..10)
                .map(|_| s.random_move(&p, &mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
