//! `autotune` — search for a placement that beats the hand mapping,
//! then prove it in the simulator.
//!
//! ```text
//! cargo run -p autotune --release -- [--pair M:P] \
//!     [--objective makespan|energy|mesh] [--seed N] [--iters N] \
//!     [--strategy greedy|anneal|both] [--small] [--json] \
//!     [--out report.json] [--placement-out placement.json] [--force]
//! ```
//!
//! Defaults: `--pair autofocus_mpmd:epiphany --objective energy
//! --seed 0 --iters 800 --strategy both`, report to
//! `results/autotune_report.json`. The search prices candidates
//! through the `sarlint` static cost model only; the binary then
//! simulates the initial and tuned placements for real and appends a
//! `simulated` section. Exit status: `0` when the functional outputs
//! are bit-identical and both simulated runs land inside their static
//! bounds, `1` when a gate fails, `2` on a bad command line. The
//! report is byte-identical across runs of the same configuration —
//! pipe it through `cmp` to audit determinism.
//!
//! `--placement-out P` additionally writes the winning placement as a
//! placement JSON file loadable by `run --placement @P`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use autotune::{tune, Objective, Strategy, TuneConfig, Tuning};
use desim::Json;
use sar_epiphany::mapping_named;
use sim_harness::{
    check_overwrite, platform_named, run_ctx, BenchHarness, Diagnostic, MappingRun, RunContext,
    Workload, RESULTS_DIR,
};

fn main() -> ExitCode {
    let h = BenchHarness::with_args("autotune", std::env::args().skip(1).collect());
    match drive(&h) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(d) => {
            eprintln!("{d}");
            ExitCode::from(2)
        }
    }
}

/// Parse an unsigned-integer operand, `CLI004` on anything else.
fn uint_operand(h: &BenchHarness, name: &str, default: u64) -> Result<u64, Diagnostic> {
    match h.operand(name)? {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| {
            Diagnostic::hard(
                "CLI004",
                format!("--{name} {s}"),
                format!("malformed --{name}; expected an unsigned integer"),
            )
        }),
    }
}

fn config(h: &BenchHarness) -> Result<TuneConfig, Diagnostic> {
    let mut cfg = TuneConfig::new(h.operand("pair")?.unwrap_or("autofocus_mpmd:epiphany"));
    if let Some(name) = h.operand("objective")? {
        cfg.objective = Objective::parse(name).ok_or_else(|| {
            Diagnostic::hard(
                "CLI001",
                format!("--objective {name}"),
                "unknown objective; expected 'makespan', 'energy' or 'mesh'",
            )
        })?;
    }
    if let Some(name) = h.operand("strategy")? {
        cfg.strategy = Strategy::parse(name).ok_or_else(|| {
            Diagnostic::hard(
                "CLI001",
                format!("--strategy {name}"),
                "unknown strategy; expected 'greedy', 'anneal' or 'both'",
            )
        })?;
    }
    cfg.seed = uint_operand(h, "seed", 0)?;
    cfg.iters = usize::try_from(uint_operand(h, "iters", 800)?).expect("iters fits usize");
    cfg.small = h.small();
    Ok(cfg)
}

/// Bit patterns of an `(f32, f32)` pair, for exact comparison.
type BitPair = (u32, u32);

/// The functional outputs, bit-exact: the criterion sweep and the best
/// `(shift, criterion)` the autofocus pipeline reports.
fn functional_bits(r: &MappingRun) -> (Vec<BitPair>, Option<BitPair>) {
    let sweep = r
        .sweep
        .iter()
        .flatten()
        .map(|&(a, b)| (a.to_bits(), b.to_bits()))
        .collect();
    (sweep, r.best.map(|(a, b)| (a.to_bits(), b.to_bits())))
}

/// Simulate one placement override through the ordinary harness.
fn simulate(t: &Tuning, place: Option<sim_harness::Placement>) -> Result<MappingRun, Diagnostic> {
    let m = mapping_named(&t.mapping).expect("tuned mapping is registered");
    let p = platform_named(&t.platform).expect("tuned platform is registered");
    let w = Workload::named("autofocus", t.config.small).expect("autofocus is registered");
    let mut ctx = RunContext::plain();
    if let Some(place) = place {
        ctx = ctx.with_placement(place);
    }
    run_ctx(m.as_ref(), &w, p.as_ref(), &ctx)
        .map_err(|e| Diagnostic::hard("CLI001", t.config.pair.clone(), e.to_string()))
}

/// One simulated run's corner of the report.
fn simulated_side(r: &MappingRun, cost: &sarlint::cost::CostReport) -> (Json, bool) {
    let cycles = r.record.elapsed.cycles.raw() as f64;
    let energy = r.record.energy.total_j();
    let within = cost.cycles.contains(cycles) && cost.total_j.contains(energy);
    let json = Json::obj()
        .with("cycles", cycles)
        .with("seconds", r.record.elapsed.seconds())
        .with("energy_j", energy)
        .with("mesh_j", r.record.energy.mesh_j)
        .with("within_bounds", within);
    (json, within)
}

fn drive(h: &BenchHarness) -> Result<bool, Diagnostic> {
    let cfg = config(h)?;
    let tuning =
        tune(&cfg).map_err(|e| Diagnostic::hard("CLI001", format!("--pair {}", cfg.pair), e))?;

    h.say(format_args!(
        "autotune — {} on {}, objective {} ({} workload)",
        tuning.mapping,
        tuning.platform,
        cfg.objective.label(),
        if cfg.small { "small" } else { "paper" }
    ));
    for s in &tuning.searches {
        h.say(format_args!(
            "  {:<7} {} evals, {} accepted, {} rejected, best {:.6e}",
            s.strategy, s.evals, s.accepted, s.rejected, s.best_score
        ));
    }
    h.say(format_args!(
        "  static {}: initial {:.6e} -> best {:.6e} ({:+.2}% via {})",
        cfg.objective.label(),
        tuning.initial_score,
        tuning.best_score,
        -tuning.improvement_pct(),
        tuning.best_strategy
    ));

    // The static model proposed; the simulator disposes. Both runs go
    // through the identical harness path, differing only in the
    // placement override.
    let base = simulate(&tuning, None)?;
    let tuned = simulate(&tuning, Some(tuning.best))?;
    let identical = functional_bits(&base) == functional_bits(&tuned);
    let (base_json, base_within) = simulated_side(&base, &tuning.initial_cost);
    let (tuned_json, tuned_within) = simulated_side(&tuned, &tuning.best_cost);
    let base_energy = base.record.energy.total_j();
    let tuned_energy = tuned.record.energy.total_j();
    let energy_delta_pct = if base_energy > 0.0 {
        (tuned_energy - base_energy) / base_energy * 100.0
    } else {
        0.0
    };
    let simulated = Json::obj()
        .with("initial", base_json)
        .with("tuned", tuned_json)
        .with("sweep_identical", identical)
        .with("energy_delta_pct", energy_delta_pct)
        .with(
            "improved",
            Json::obj()
                .with(
                    "makespan",
                    tuned.record.elapsed.cycles.raw() < base.record.elapsed.cycles.raw(),
                )
                .with("energy", tuned_energy < base_energy)
                .with(
                    "mesh",
                    tuned.record.energy.mesh_j < base.record.energy.mesh_j,
                ),
        );
    h.say(format_args!(
        "  simulated: {:.6} J -> {:.6} J ({energy_delta_pct:+.2}%), outputs {}",
        base_energy,
        tuned_energy,
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    ));

    let doc = tuning.to_json().with("simulated", simulated);
    if h.json() {
        print!("{}", doc.to_string_pretty());
    }

    if let Some(path) = h.operand("placement-out")? {
        write_json(h, &PathBuf::from(path), &tuning.best.to_json())?;
    }
    if !h.flag("no-write") {
        let path = h.value("out").map_or_else(
            || PathBuf::from(RESULTS_DIR).join("autotune_report.json"),
            PathBuf::from,
        );
        check_overwrite(&path, h.flag("force"))?;
        write_json(h, &path, &doc)?;
    }

    if !identical {
        eprintln!("gate failed: tuned placement changed the functional outputs");
    }
    if !(base_within && tuned_within) {
        eprintln!("gate failed: a simulated run landed outside its static cost bounds");
    }
    Ok(identical && base_within && tuned_within)
}

fn write_json(h: &BenchHarness, path: &PathBuf, doc: &Json) -> Result<(), Diagnostic> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| {
            Diagnostic::hard(
                "CLI006",
                path.display().to_string(),
                format!("cannot create output directory: {e}"),
            )
        })?;
    }
    std::fs::write(path, doc.to_string_pretty()).map_err(|e| {
        Diagnostic::hard(
            "CLI006",
            path.display().to_string(),
            format!("cannot write output: {e}"),
        )
    })?;
    h.say(format_args!("wrote {}", path.display()));
    Ok(())
}
