//! The objective: price a candidate placement through the static cost
//! model without executing the simulation.
//!
//! An [`Evaluator`] holds one Mapping × Platform pair's
//! placement-independent [`PipelineProbe`] (the expensive part — it
//! runs the per-stage instruction probes once) and re-wires it onto
//! each candidate via [`PipelineProbe::model`], then prices the model
//! with [`sarlint::cost::cost_model`]. Legality is delegated to the
//! same `SL005` placement lint the analyzer runs, so the autotuner and
//! `sarlint` can never disagree about which placements are admissible
//! — both sides share the `emesh` hop arithmetic.

use sar_epiphany::program_model::PipelineProbe;
use sarlint::cost::{cost_model, CostReport};
use sim_harness::{platform_named, Placement, Platform, Report, Workload};

/// What the search minimises, all scored on bound midpoints (the
/// interval's best single-number estimate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Makespan cycles.
    Makespan,
    /// Total energy, joules.
    Energy,
    /// Mesh wire energy only, joules — the component placement moves
    /// most directly (the pipeline is compute-bound, so makespan is
    /// nearly placement-flat while byte×hop energy is not).
    MeshEnergy,
}

impl Objective {
    /// Parse a `--objective` operand.
    pub fn parse(name: &str) -> Option<Objective> {
        match name {
            "makespan" => Some(Objective::Makespan),
            "energy" => Some(Objective::Energy),
            "mesh" => Some(Objective::MeshEnergy),
            _ => None,
        }
    }

    /// The operand spelling.
    pub fn label(self) -> &'static str {
        match self {
            Objective::Makespan => "makespan",
            Objective::Energy => "energy",
            Objective::MeshEnergy => "mesh",
        }
    }

    /// The scalar the search minimises.
    pub fn score(self, cost: &CostReport) -> f64 {
        match self {
            Objective::Makespan => cost.cycles.mid(),
            Objective::Energy => cost.total_j.mid(),
            Objective::MeshEnergy => cost.mesh_j.mid(),
        }
    }
}

/// Prices candidate placements for one registered pair.
pub struct Evaluator {
    mapping: &'static str,
    platform: Box<dyn Platform>,
    probe: PipelineProbe,
    mesh: (u16, u16),
}

impl Evaluator {
    /// Build the evaluator for a `mapping:platform` pair. Only the two
    /// placement-aware autofocus mappings on an Epiphany-kind platform
    /// are tunable; anything else is an error string for the CLI to
    /// wrap.
    pub fn for_pair(pair: &str, small: bool) -> Result<Evaluator, String> {
        let (mapping, platform_name) = pair
            .split_once(':')
            .ok_or("expected MAPPING:PLATFORM, e.g. autofocus_mpmd:epiphany")?;
        let w = Workload::named("autofocus", small).expect("autofocus workload is registered");
        let w = w.autofocus().expect("named autofocus resolves").clone();
        let (mapping, probe) = match mapping {
            "autofocus_mpmd" => ("autofocus_mpmd", PipelineProbe::mpmd(&w)),
            "autofocus_net" => ("autofocus_net", PipelineProbe::net(&w)),
            other => {
                return Err(format!(
                    "mapping '{other}' is not placement-aware; expected autofocus_mpmd or autofocus_net"
                ))
            }
        };
        let platform = platform_named(platform_name)
            .ok_or_else(|| format!("unknown platform '{platform_name}'"))?;
        let mesh = platform
            .epiphany_params()
            .map(|p| (p.mesh_cols, p.mesh_rows))
            .ok_or_else(|| {
                format!("platform '{platform_name}' has no mesh; placement search needs one")
            })?;
        Ok(Evaluator {
            mapping,
            platform,
            probe,
            mesh,
        })
    }

    /// The tunable mapping's registry name.
    pub fn mapping(&self) -> &'static str {
        self.mapping
    }

    /// The platform's registry label.
    pub fn platform_label(&self) -> String {
        self.platform.label().to_string()
    }

    /// The platform mesh the placements live on.
    pub fn mesh(&self) -> (u16, u16) {
        self.mesh
    }

    /// Price `place`, or `None` when it is illegal: off the mesh, or
    /// carrying a channel past the `SL005` hop budget. Using the lint
    /// as the legality oracle keeps search results simulatable — the
    /// `run --analyze` gate applies the identical check.
    pub fn evaluate(&self, place: &Placement) -> Option<CostReport> {
        if !place.fits(self.mesh.0, self.mesh.1) {
            return None;
        }
        let model = self.probe.model(place, self.mesh);
        let mut report = Report::new();
        sarlint::placement::check(&model, &mut report);
        if report.hard_count() > 0 {
            return None;
        }
        Some(cost_model(&model, self.platform.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_parsing_rejects_untunable_pairs() {
        assert!(Evaluator::for_pair("autofocus_mpmd:epiphany", true).is_ok());
        assert!(Evaluator::for_pair("autofocus_net:epiphany", true).is_ok());
        assert!(Evaluator::for_pair("autofocus_mpmd:e64", true).is_ok());
        assert!(Evaluator::for_pair("nonsense", true).is_err());
        assert!(Evaluator::for_pair("ffbp_spmd:epiphany", true).is_err());
        assert!(Evaluator::for_pair("autofocus_mpmd:refcpu", true).is_err());
        assert!(Evaluator::for_pair("autofocus_mpmd:bogus", true).is_err());
    }

    #[test]
    fn neighbor_prices_and_scattered_fails_the_hop_budget() {
        let e = Evaluator::for_pair("autofocus_mpmd:epiphany", true).unwrap();
        let neighbor = e
            .evaluate(&Placement::neighbor())
            .expect("neighbor is legal");
        assert!(neighbor.bounded);
        assert!(neighbor.mesh_j.mid() > 0.0);
        // The scattered ablation drags channels past the SL005 hop
        // budget, so the legality oracle excludes it — exactly like
        // the `run --analyze` gate would.
        assert!(e.evaluate(&Placement::scattered()).is_none());
    }

    #[test]
    fn off_mesh_and_over_budget_placements_are_illegal() {
        let e = Evaluator::for_pair("autofocus_mpmd:epiphany", true).unwrap();
        let mut off = Placement::neighbor();
        off.corr = 16; // y=4: off the 4x4 mesh
        assert!(e.evaluate(&off).is_none());
    }
}
