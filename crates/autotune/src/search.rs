//! The two search strategies: greedy swap-descent and seeded simulated
//! annealing.
//!
//! Both are fully deterministic. Greedy enumerates
//! [`PlacementSpace::moves`] in its fixed order and takes the best
//! strictly-improving move each round; annealing draws moves and
//! acceptance coin-flips from two [`SmallRng::split`] child streams of
//! one seeded root, so the same `(start, seed, iters)` triple replays
//! the same trajectory bit for bit on any host.

use desim::rng::SmallRng;
use sim_harness::Placement;

use crate::space::{Move, PlacementSpace};

/// Relative improvement below which a move does not count — guards the
/// greedy descent against chasing float noise forever.
const EPS: f64 = 1e-9;

/// One sampled point of a search trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajPoint {
    /// Evaluations consumed when the point was recorded.
    pub eval: usize,
    /// Score of the current (just accepted or retained) placement.
    pub current: f64,
    /// Best score seen so far.
    pub best: f64,
}

/// What one strategy run produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// `"greedy"` or `"anneal"`.
    pub strategy: &'static str,
    /// Score of the start placement.
    pub start_score: f64,
    /// Best placement found (the start if nothing improved).
    pub best: Placement,
    /// Its score.
    pub best_score: f64,
    /// Candidate placements priced.
    pub evals: usize,
    /// Moves taken.
    pub accepted: usize,
    /// Moves priced but not taken (illegal candidates included).
    pub rejected: usize,
    /// Sampled score trajectory, ascending by `eval`.
    pub trajectory: Vec<TrajPoint>,
}

impl SearchOutcome {
    fn fresh(strategy: &'static str, start: Placement, start_score: f64) -> SearchOutcome {
        SearchOutcome {
            strategy,
            start_score,
            best: start,
            best_score: start_score,
            evals: 0,
            accepted: 0,
            rejected: 0,
            trajectory: Vec::new(),
        }
    }
}

/// Greedy swap-descent: each round prices every move from the current
/// placement and takes the best strictly-improving one; stops at a
/// local optimum or after `max_evals` pricings. `score` returns `None`
/// for illegal candidates.
pub fn greedy(
    space: &PlacementSpace,
    score: &dyn Fn(&Placement) -> Option<f64>,
    start: Placement,
    start_score: f64,
    max_evals: usize,
) -> SearchOutcome {
    let mut out = SearchOutcome::fresh("greedy", start, start_score);
    let mut cur = start;
    let mut cur_score = start_score;
    'rounds: loop {
        let mut best_mv: Option<(Move, f64)> = None;
        for mv in space.moves(&cur) {
            if out.evals >= max_evals {
                break 'rounds;
            }
            out.evals += 1;
            let cand = PlacementSpace::apply(&cur, mv);
            if let Some(s) = score(&cand) {
                if s < cur_score * (1.0 - EPS) && best_mv.is_none_or(|(_, b)| s < b) {
                    best_mv = Some((mv, s));
                }
            }
        }
        let Some((mv, s)) = best_mv else { break };
        cur = PlacementSpace::apply(&cur, mv);
        cur_score = s;
        out.accepted += 1;
        out.best = cur;
        out.best_score = s;
        out.trajectory.push(TrajPoint {
            eval: out.evals,
            current: s,
            best: s,
        });
    }
    out.rejected = out.evals - out.accepted;
    out
}

/// Seeded simulated annealing: `iters` single-move steps under a
/// geometrically cooling temperature scaled to the start score
/// (relative `T` from 5e-2 down to 1e-4). Downhill moves always
/// accept; uphill moves accept with probability `exp(-delta / T)`.
pub fn anneal(
    space: &PlacementSpace,
    score: &dyn Fn(&Placement) -> Option<f64>,
    start: Placement,
    start_score: f64,
    seed: u64,
    iters: usize,
) -> SearchOutcome {
    let mut root = SmallRng::seed_from_u64(seed);
    let mut move_rng = root.split();
    let mut accept_rng = root.split();

    let mut out = SearchOutcome::fresh("anneal", start, start_score);
    let mut cur = start;
    let mut cur_score = start_score;
    let scale = start_score.abs().max(f64::MIN_POSITIVE);
    let (t_hot, t_cold) = (5e-2, 1e-4);
    // Sample the trajectory at ~64 points so long runs stay compact.
    let stride = (iters / 64).max(1);

    for i in 0..iters {
        let frac = i as f64 / iters.max(1) as f64;
        let t = scale * t_hot * (t_cold / t_hot).powf(frac);
        let Some(mv) = space.random_move(&cur, &mut move_rng) else {
            break;
        };
        let cand = PlacementSpace::apply(&cur, mv);
        out.evals += 1;
        let took = match score(&cand) {
            None => false,
            Some(s) => {
                let delta = s - cur_score;
                if delta <= 0.0 || accept_rng.next_f64() < (-delta / t).exp() {
                    cur = cand;
                    cur_score = s;
                    if s < out.best_score {
                        out.best = cand;
                        out.best_score = s;
                    }
                    true
                } else {
                    false
                }
            }
        };
        if took {
            out.accepted += 1;
        } else {
            out.rejected += 1;
        }
        if i % stride == 0 || (took && cur_score <= out.best_score) {
            out.trajectory.push(TrajPoint {
                eval: out.evals,
                current: cur_score,
                best: out.best_score,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy objective with a known optimum: total squared distance of
    /// every core from canonical site 0. Legal everywhere on the mesh.
    fn toy_score(space: &PlacementSpace) -> impl Fn(&Placement) -> Option<f64> + '_ {
        move |p: &Placement| {
            if !p.fits(4, 4) {
                return None;
            }
            let _ = space;
            Some(
                p.cores()
                    .iter()
                    .map(|&c| {
                        let (x, y) = ((c % 4) as f64, (c / 4) as f64);
                        x * x + y * y
                    })
                    .sum(),
            )
        }
    }

    #[test]
    fn greedy_monotonically_improves_and_terminates() {
        let space = PlacementSpace::for_mesh((4, 4));
        let score = toy_score(&space);
        let start = Placement::scattered();
        let s0 = score(&start).unwrap();
        let out = greedy(&space, &score, start, s0, 10_000);
        assert!(out.best_score <= s0);
        assert_eq!(out.evals, out.accepted + out.rejected);
        // The toy optimum packs all 13 cores into the 13 cheapest
        // sites; greedy relocation reaches it exactly.
        let mut site_costs: Vec<f64> = (0..16)
            .map(|c| {
                let (x, y) = ((c % 4) as f64, (c / 4) as f64);
                x * x + y * y
            })
            .collect();
        site_costs.sort_by(f64::total_cmp);
        let optimum: f64 = site_costs.iter().take(13).sum();
        assert!(
            (out.best_score - optimum).abs() < 1e-9,
            "{} != {optimum}",
            out.best_score
        );
        // Trajectory is one point per accepted move, strictly improving.
        assert_eq!(out.trajectory.len(), out.accepted);
        for w in out.trajectory.windows(2) {
            assert!(w[1].best < w[0].best);
        }
    }

    #[test]
    fn anneal_is_deterministic_per_seed_and_respects_budget() {
        let space = PlacementSpace::for_mesh((4, 4));
        let score = toy_score(&space);
        let start = Placement::neighbor();
        let s0 = score(&start).unwrap();
        let a = anneal(&space, &score, start, s0, 42, 300);
        let b = anneal(&space, &score, start, s0, 42, 300);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.evals, 300);
        assert!(a.best_score <= s0);
        let c = anneal(&space, &score, start, s0, 43, 300);
        // A different seed walks a different path (scores may tie, the
        // move sequence should not).
        assert!(c.accepted != a.accepted || c.best != a.best || c.trajectory != a.trajectory);
    }
}
