//! Negative-path fixtures: four ways of corrupting a real mapping's
//! program model, each rejected with its own diagnostic code — the
//! analyzer distinguishes *what* broke, not just *that* something did.
//!
//! Each fixture starts from the genuine `autofocus_mpmd` /
//! `ffbp_spmd` model (which passes all checks — see
//! `all_registered_pairs_are_clean`) and applies one minimal
//! corruption, so every test pins one check against one invariant.

use memsim::SramParams;
use sar_epiphany::autofocus_mpmd::Placement;
use sar_epiphany::{all_mappings, mapping_named, mapping_named_placed};
use sarlint::{analyze_model, analyze_pair};
use sim_harness::{all_platforms, ProgramModel, Workload};

/// The genuine pipeline model the corruptions start from.
fn pipeline_model() -> ProgramModel {
    let m = mapping_named("autofocus_mpmd").expect("registered");
    let w = Workload::named("autofocus", true).expect("registered");
    let p = sim_harness::platform_named("epiphany").expect("registered");
    m.program_model(&w, p.as_ref())
        .expect("pipeline has a model")
}

fn sram() -> SramParams {
    SramParams::default()
}

#[test]
fn all_registered_pairs_are_clean() {
    // Covers the e64 rows too: every Epiphany-kind mapping must place
    // and fit on the 8x8 mesh exactly as it does on the 4x4 (rebased
    // placements keep their hop counts, so SL005 stays quiet).
    let mut analyzed = 0;
    let mut on_e64 = 0;
    for m in all_mappings() {
        let w = Workload::named(m.kernel(), true).expect("registered kernel");
        for p in all_platforms() {
            if !m.supports(p.kind()) {
                continue;
            }
            let r = analyze_pair(m.as_ref(), &w, p.as_ref());
            assert!(
                r.is_clean(),
                "{} x {} must pass: {:?}",
                m.name(),
                p.label(),
                r.diagnostics
            );
            analyzed += 1;
            if p.label() == "e64" {
                on_e64 += 1;
            }
        }
    }
    let expected: usize = all_mappings()
        .iter()
        .map(|m| {
            all_platforms()
                .iter()
                .filter(|p| m.supports(p.kind()))
                .count()
        })
        .sum();
    assert_eq!(analyzed, expected, "every supported pair analyzed once");
    assert_eq!(on_e64, 7, "all seven Epiphany mappings analyze on the e64");
}

#[test]
fn corrupted_bank_overflow_is_sl001() {
    let mut model = pipeline_model();
    // Grow the first range-stage block past the end of its 8 KB bank.
    model.buffers[0].bytes = sram().bank_bytes + 1;
    let r = analyze_model(&model, &sram());
    assert!(!r.is_clean());
    assert!(r.has_code("SL001"), "{:?}", r.diagnostics);
    assert!(!r.has_code("SL003") && !r.has_code("SL006"));
}

#[test]
fn corrupted_cyclic_pipeline_is_sl003() {
    let mut model = pipeline_model();
    // Feed the correlator's output back into the first range stage:
    // the pipeline DAG becomes a loop.
    let (first_from, last_to) = (model.channels[0].from, model.channels.last().unwrap().to);
    model.channel("corr->range00.feedback", last_to, first_from);
    let r = analyze_model(&model, &sram());
    assert!(!r.is_clean());
    assert!(r.has_code("SL003"), "{:?}", r.diagnostics);
    assert!(!r.has_code("SL001") && !r.has_code("SL006"));
}

#[test]
fn corrupted_scattered_placement_is_sl005() {
    // The scattered placement is the genuine "corruption": same
    // stages, same channels, stages flung across the mesh.
    let m = mapping_named_placed("autofocus_mpmd", Placement::scattered()).expect("registered");
    let w = Workload::named("autofocus", true).expect("registered");
    let p = sim_harness::platform_named("epiphany").expect("registered");
    let r = analyze_pair(m.as_ref(), &w, p.as_ref());
    assert!(!r.is_clean());
    assert!(r.has_code("SL005"), "{:?}", r.diagnostics);
    // Hard findings name the offending hop in mesh coordinates.
    let hard = r.hard().next().expect("at least one hard finding");
    assert_eq!(hard.code, "SL005");
    assert!(hard.message.contains("hops"), "{}", hard.message);
    assert!(!r.has_code("SL001") && !r.has_code("SL003"));
}

#[test]
fn corrupted_unmatched_flag_wait_is_sl006() {
    let mut model = pipeline_model();
    // The consumer now waits twice per round on a flag set once.
    model.flags[0].waits += 1;
    let r = analyze_model(&model, &sram());
    assert!(!r.is_clean());
    assert!(r.has_code("SL006"), "{:?}", r.diagnostics);
    assert!(!r.has_code("SL001") && !r.has_code("SL003"));
}

#[test]
fn the_four_corruptions_have_distinct_codes() {
    // The acceptance criterion in one place: four corrupted mappings,
    // four different stable codes.
    let codes = ["SL001", "SL003", "SL005", "SL006"];
    let mut dedup = codes.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), 4);
}
