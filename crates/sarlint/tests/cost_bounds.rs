//! The cost model's acceptance criterion (DESIGN.md §3 S19): for every
//! registered Mapping × Platform pair, the static bounds must bracket
//! the simulated run — `cycles.lo <= elapsed <= cycles.hi` and
//! `total_j.lo <= energy <= total_j.hi`. Wall-clock pairs (the host
//! mapping) are exempt: they report unbounded.

use sar_epiphany::all_mappings;
use sarlint::cost::cost_pair;
use sim_harness::{all_platforms, run, Workload};

#[test]
fn static_bounds_bracket_every_simulated_pair() {
    let mut bounded_pairs = 0;
    let mut unbounded_pairs = 0;
    for m in all_mappings() {
        let w = Workload::named(m.kernel(), true).expect("registered kernel");
        for p in all_platforms() {
            if !m.supports(p.kind()) {
                continue;
            }
            let pair = format!("{} x {}", m.name(), p.label());
            let (cost, _lints) = cost_pair(m.as_ref(), &w, p.as_ref());
            if !cost.bounded {
                unbounded_pairs += 1;
                assert_eq!(
                    p.label(),
                    "host",
                    "{pair}: only wall-clock pairs may be unbounded"
                );
                continue;
            }
            bounded_pairs += 1;
            let run = run(m.as_ref(), &w, p.as_ref()).expect("pair simulates");
            let elapsed = run.record.elapsed.cycles.raw() as f64;
            let energy = run.record.energy_j();
            assert!(
                cost.cycles.contains(elapsed),
                "{pair}: elapsed {elapsed} outside cycle bound [{}, {}]",
                cost.cycles.lo,
                cost.cycles.hi
            );
            assert!(
                cost.total_j.contains(energy),
                "{pair}: energy {energy} J outside bound [{}, {}] J",
                cost.total_j.lo,
                cost.total_j.hi
            );
            assert!(
                cost.cycles.lo > 0.0,
                "{pair}: a simulated pair must have a non-trivial lower bound"
            );
        }
    }
    assert_eq!(
        (bounded_pairs, unbounded_pairs),
        (16, 1),
        "16 simulated pairs bracketed, the host pair unbounded"
    );
}
