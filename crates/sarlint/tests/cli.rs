//! The `sarlint` binary's observable contract: exit status 0 for a
//! clean analysis, 1 for hard findings, 2 for a bad command line;
//! `--json` emits one parseable document whose schema the CI gate
//! reads, `--cost` appends a bounds summary per pair.

use desim::Json;
use std::process::Command;

fn sarlint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sarlint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn all_registered_pairs_pass_the_gate() {
    let out = sarlint(&["--all", "--small"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("17 pair(s) analyzed, 0 hard finding(s)"),
        "{stdout}"
    );
}

#[test]
fn json_output_is_parseable_and_covers_every_pair() {
    let out = sarlint(&["--all", "--small", "--json", "--cost"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = Json::parse(&stdout).expect("stdout is one JSON document");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("sarlint"));
    assert_eq!(doc.get("workload").and_then(Json::as_str), Some("small"));
    assert_eq!(doc.get("pairs_analyzed").and_then(Json::as_u64), Some(17));
    assert_eq!(doc.get("hard_findings").and_then(Json::as_u64), Some(0));
    let pairs = doc
        .get("pairs")
        .and_then(Json::as_array)
        .expect("pairs array");
    assert_eq!(pairs.len(), 17);
    for pair in pairs {
        assert_eq!(pair.get("clean").and_then(Json::as_bool), Some(true));
        assert!(pair.get("mapping").and_then(Json::as_str).is_some());
        assert!(pair.get("platform").and_then(Json::as_str).is_some());
        assert!(pair.get("diagnostics").and_then(Json::as_array).is_some());
        // --cost attaches a cost object to every analyzable pair; the
        // host pair carries bounded=false with null bound edges.
        let cost = pair.get("cost").expect("costed pair");
        let bounded = cost.get("bounded").and_then(Json::as_bool).expect("flag");
        let cycles = cost.get("cycles").expect("cycles bound");
        if bounded {
            let lo = cycles.get("lo").and_then(Json::as_f64).expect("finite lo");
            let hi = cycles.get("hi").and_then(Json::as_f64).expect("finite hi");
            assert!(0.0 < lo && lo <= hi, "{pair:?}");
        } else {
            assert!(matches!(cycles.get("hi"), Some(Json::Null)), "{pair:?}");
        }
    }
}

#[test]
fn cost_summary_prints_per_pair_in_prose_mode() {
    let out = sarlint(&["--all", "--small", "--cost"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("cost:").count(),
        17,
        "one cost line per pair:\n{stdout}"
    );
    assert!(stdout.contains("cost: cycles ["), "{stdout}");
    assert!(
        stdout.contains("cost: unbounded"),
        "the host pair reports unbounded:\n{stdout}"
    );
}

#[test]
fn scattered_placement_fails_with_exit_1_and_sl005() {
    let out = sarlint(&[
        "--mapping",
        "autofocus_mpmd",
        "--placement",
        "scattered",
        "--small",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SL005"), "{stdout}");
}

#[test]
fn bad_names_exit_2_with_cli_codes() {
    let out = sarlint(&["--mapping", "nosuch"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI001"));

    let out = sarlint(&["--placement", "diagonal"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI003"));

    let out = sarlint(&["--mapping"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI002"));
}
