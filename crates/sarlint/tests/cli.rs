//! The `sarlint` binary's observable contract: exit status 0 for a
//! clean analysis, 1 for hard findings, 2 for a bad command line.

use std::process::Command;

fn sarlint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sarlint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn all_registered_pairs_pass_the_gate() {
    let out = sarlint(&["--all", "--small"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("13 pair(s) analyzed, 0 hard finding(s)"),
        "{stdout}"
    );
}

#[test]
fn scattered_placement_fails_with_exit_1_and_sl005() {
    let out = sarlint(&[
        "--mapping",
        "autofocus_mpmd",
        "--placement",
        "scattered",
        "--small",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SL005"), "{stdout}");
}

#[test]
fn bad_names_exit_2_with_cli_codes() {
    let out = sarlint(&["--mapping", "nosuch"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI001"));

    let out = sarlint(&["--placement", "diagonal"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI003"));

    let out = sarlint(&["--mapping"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI002"));
}
