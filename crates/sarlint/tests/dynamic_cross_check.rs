//! The dynamic cross-check end to end: a truthful mapping passes, a
//! mapping whose model under-declares its landing sites is caught
//! (`SL009`), one that over-declares a buffer is flagged (`SL010`
//! warning), one whose workload declarations disagree with the run's
//! counters drifts (`SL016`), and a landing-free run reports the
//! vacuous note.

use desim::trace::Tracer;
use sar_epiphany::mapping_named;
use sarlint::dynamic::cross_check;
use sim_harness::{
    platform_named, Bound, HarnessError, Mapping, MappingRun, Platform, PlatformKind, ProgramModel,
    Severity, Workload,
};

/// Delegates execution to a real mapping but exports a model with
/// every inbox shrunk to a single word — the run's observed landings
/// can no longer be covered by the declarations.
struct UnderDeclared(Box<dyn Mapping>);

impl Mapping for UnderDeclared {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn kernel(&self) -> &'static str {
        self.0.kernel()
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        self.0.supports(kind)
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        self.0.execute(workload, platform, tracer)
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        let mut m = self.0.program_model(workload, platform)?;
        for b in &mut m.buffers {
            b.bytes = 8;
        }
        Some(m)
    }
}

/// Delegates execution to a real mapping but declares one extra inbox
/// on a core the driver never writes to — over-declared communication.
struct OverDeclared(Box<dyn Mapping>);

impl Mapping for OverDeclared {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn kernel(&self) -> &'static str {
        self.0.kernel()
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        self.0.supports(kind)
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        self.0.execute(workload, platform, tracer)
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        let mut m = self.0.program_model(workload, platform)?;
        // Bank 3 of core 0 receives nothing in the pipeline drivers.
        m.buffer("phantom_inbox", 0, 3, 0, 64);
        Some(m)
    }
}

/// Delegates execution to a real mapping but inflates every declared
/// flag-wait count far beyond what the driver performs.
struct Drifted(Box<dyn Mapping>);

impl Mapping for Drifted {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn kernel(&self) -> &'static str {
        self.0.kernel()
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        self.0.supports(kind)
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        self.0.execute(workload, platform, tracer)
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        let mut m = self.0.program_model(workload, platform)?;
        for ph in &mut m.workload {
            for w in &mut ph.work {
                w.flag_waits = Bound::exact(1e6);
            }
        }
        Some(m)
    }
}

#[test]
fn truthful_pipeline_mapping_passes_the_cross_check() {
    let m = mapping_named("autofocus_mpmd").expect("registered");
    let w = Workload::named("autofocus", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(m.as_ref(), &w, p.as_ref());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    // The check must not be vacuous: the run emitted landings, so no
    // SL000 note either.
    assert!(!r.has_code("SL000"), "{:?}", r.diagnostics);
}

#[test]
fn truthful_spmd_mapping_passes_the_cross_check() {
    let m = mapping_named("ffbp_spmd").expect("registered");
    let w = Workload::named("ffbp", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(m.as_ref(), &w, p.as_ref());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert!(!r.has_code("SL000"), "{:?}", r.diagnostics);
}

#[test]
fn under_declared_model_is_caught_as_sl009() {
    let m = UnderDeclared(mapping_named("autofocus_mpmd").expect("registered"));
    let w = Workload::named("autofocus", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(&m, &w, p.as_ref());
    assert!(!r.is_clean());
    assert!(r.has_code("SL009"), "{:?}", r.diagnostics);
}

#[test]
fn over_declared_buffer_warns_as_sl010() {
    let m = OverDeclared(mapping_named("autofocus_mpmd").expect("registered"));
    let w = Workload::named("autofocus", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(&m, &w, p.as_ref());
    // Over-declaration is a smell, not a gate: the report stays clean.
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == "SL010")
        .expect("phantom inbox flagged");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.subject, "phantom_inbox");
    assert!(
        d.message.contains("never received a landing"),
        "{}",
        d.message
    );
}

#[test]
fn counter_drift_warns_as_sl016() {
    let m = Drifted(mapping_named("autofocus_mpmd").expect("registered"));
    let w = Workload::named("autofocus", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(&m, &w, p.as_ref());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == "SL016")
        .expect("inflated flag waits drift");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.subject, "flag_wait");
    assert!(d.message.contains("model drift"), "{}", d.message);
}

#[test]
fn landing_free_run_reports_the_vacuous_note() {
    // The reference-CPU mapping now carries a workload model, but its
    // run performs no remote landings — the landing check is vacuous
    // and says so, while the counter drift check still runs silently.
    let m = mapping_named("ffbp_ref").expect("registered");
    let w = Workload::named("ffbp", true).expect("registered");
    let p = platform_named("refcpu").expect("registered");
    let r = cross_check(m.as_ref(), &w, p.as_ref());
    assert!(r.is_clean());
    assert!(r.has_code("SL000"));
    assert!(!r.has_code("SL016"), "{:?}", r.diagnostics);
}
