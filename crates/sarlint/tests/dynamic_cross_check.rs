//! The dynamic cross-check end to end: a truthful mapping passes, a
//! mapping whose model under-declares its landing sites is caught
//! (`SL009`), and a model-less mapping reports the vacuous note.

use desim::trace::Tracer;
use sar_epiphany::mapping_named;
use sarlint::dynamic::cross_check;
use sim_harness::{
    platform_named, HarnessError, Mapping, MappingRun, Platform, PlatformKind, ProgramModel,
    Workload,
};

/// Delegates execution to a real mapping but exports a model with
/// every inbox shrunk to a single word — the run's observed landings
/// can no longer be covered by the declarations.
struct UnderDeclared(Box<dyn Mapping>);

impl Mapping for UnderDeclared {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn kernel(&self) -> &'static str {
        self.0.kernel()
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        self.0.supports(kind)
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        self.0.execute(workload, platform, tracer)
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        let mut m = self.0.program_model(workload, platform)?;
        for b in &mut m.buffers {
            b.bytes = 8;
        }
        Some(m)
    }
}

#[test]
fn truthful_pipeline_mapping_passes_the_cross_check() {
    let m = mapping_named("autofocus_mpmd").expect("registered");
    let w = Workload::named("autofocus", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(m.as_ref(), &w, p.as_ref());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    // The check must not be vacuous: the run emitted landings, so no
    // SL000 note either.
    assert!(!r.has_code("SL000"), "{:?}", r.diagnostics);
}

#[test]
fn truthful_spmd_mapping_passes_the_cross_check() {
    let m = mapping_named("ffbp_spmd").expect("registered");
    let w = Workload::named("ffbp", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(m.as_ref(), &w, p.as_ref());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert!(!r.has_code("SL000"), "{:?}", r.diagnostics);
}

#[test]
fn under_declared_model_is_caught_as_sl009() {
    let m = UnderDeclared(mapping_named("autofocus_mpmd").expect("registered"));
    let w = Workload::named("autofocus", true).expect("registered");
    let p = platform_named("epiphany").expect("registered");
    let r = cross_check(&m, &w, p.as_ref());
    assert!(!r.is_clean());
    assert!(r.has_code("SL009"), "{:?}", r.diagnostics);
}

#[test]
fn modelless_mapping_reports_the_vacuous_note() {
    let m = mapping_named("ffbp_ref").expect("registered");
    let w = Workload::named("ffbp", true).expect("registered");
    let p = platform_named("refcpu").expect("registered");
    let r = cross_check(m.as_ref(), &w, p.as_ref());
    assert!(r.is_clean());
    assert!(r.has_code("SL000"));
}
