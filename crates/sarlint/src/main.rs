//! `sarlint` — check registered Mapping × Platform pairs without
//! simulating them.
//!
//! ```text
//! sarlint --all [--small] [--dynamic]
//! sarlint --mapping NAME [--platform NAME] [--placement NAME] [--small] [--dynamic]
//! ```
//!
//! With `--all` (or no `--mapping`), every registered mapping is
//! analyzed on every platform it supports. `--dynamic` additionally
//! replays one traced run per pair and cross-checks observed remote
//! landings against the declared buffers.
//!
//! Exit status: `0` clean, `1` hard findings, `2` command-line error.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use sar_epiphany::autofocus_mpmd::Placement;
use sar_epiphany::{all_mappings, mapping_named_placed};
use sarlint::{analyze_pair, dynamic};
use sim_harness::{
    all_platforms, platform_named, BenchHarness, Diagnostic, Mapping, Platform, Workload,
};

fn main() -> ExitCode {
    let h = BenchHarness::with_args("sarlint", std::env::args().skip(1).collect());
    match check(&h) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(d) => {
            eprintln!("{d}");
            ExitCode::from(2)
        }
    }
}

/// Resolve the requested pairs and analyze each; returns the number of
/// hard findings, or the CLI diagnostic that stopped the run.
fn check(h: &BenchHarness) -> Result<usize, Diagnostic> {
    let place = match h.operand("placement")? {
        None => None,
        Some(name) => Some(Placement::named(name).ok_or_else(|| {
            Diagnostic::hard(
                "CLI003",
                format!("--placement {name}"),
                "unknown placement; expected 'neighbor' or 'scattered'",
            )
        })?),
    };

    let mappings: Vec<Box<dyn Mapping>> = match h.operand("mapping")? {
        Some(name) => {
            let m = mapping_named_placed(name, place.unwrap_or_else(Placement::neighbor))
                .ok_or_else(|| {
                    Diagnostic::hard(
                        "CLI001",
                        format!("--mapping {name}"),
                        "unknown mapping name",
                    )
                })?;
            vec![m]
        }
        None => match place {
            // A placement override without --mapping re-places every
            // placeable mapping and keeps the rest at their defaults.
            Some(p) => all_mappings()
                .iter()
                .map(|m| mapping_named_placed(m.name(), p).expect("registry name resolves"))
                .collect(),
            None => all_mappings(),
        },
    };

    let platform_override: Option<Box<dyn Platform>> = match h.operand("platform")? {
        None => None,
        Some(name) => Some(platform_named(name).ok_or_else(|| {
            Diagnostic::hard(
                "CLI001",
                format!("--platform {name}"),
                "unknown platform name",
            )
        })?),
    };

    let mut pairs = 0usize;
    let mut hard = 0usize;
    for m in &mappings {
        let platforms: Vec<Box<dyn Platform>> = match &platform_override {
            Some(p) => {
                let p = platform_named(p.label()).expect("registry label resolves");
                vec![p]
            }
            None => all_platforms()
                .into_iter()
                .filter(|p| m.supports(p.kind()))
                .collect(),
        };
        if platforms.is_empty() {
            return Err(Diagnostic::hard(
                "CLI001",
                m.name().to_string(),
                "mapping supports no registered platform",
            ));
        }
        for p in platforms {
            let w = Workload::named(m.kernel(), h.small()).ok_or_else(|| {
                Diagnostic::hard(
                    "CLI001",
                    m.kernel().to_string(),
                    "mapping names a kernel with no registered workload",
                )
            })?;
            let mut report = analyze_pair(m.as_ref(), &w, p.as_ref());
            if h.flag("dynamic") && m.supports(p.kind()) {
                report.merge(dynamic::cross_check(m.as_ref(), &w, p.as_ref()));
            }
            pairs += 1;
            hard += report.hard_count();
            println!(
                "== {} x {} ({} workload): {}",
                m.name(),
                p.label(),
                if h.small() { "small" } else { "paper" },
                if report.is_clean() { "ok" } else { "FAIL" }
            );
            print!("{report}");
        }
    }
    println!("{pairs} pair(s) analyzed, {hard} hard finding(s)");
    Ok(hard)
}
