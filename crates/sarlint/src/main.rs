//! `sarlint` — check registered Mapping × Platform pairs without
//! simulating them.
//!
//! ```text
//! sarlint --all [--small] [--dynamic] [--cost] [--json]
//! sarlint --mapping NAME [--platform NAME] [--placement NAME]
//!         [--small] [--dynamic] [--cost] [--json]
//! ```
//!
//! With `--all` (or no `--mapping`), every registered mapping is
//! analyzed on every platform it supports. `--dynamic` additionally
//! replays one traced run per pair and cross-checks observed remote
//! landings and activity counters against the declarations. `--cost`
//! prices each pair with the contention-aware static cost model
//! (lower/upper bounds on cycles and energy) and runs the cost lints
//! (`SL013`–`SL015`). `--json` replaces the prose report with one
//! machine-readable document on stdout.
//!
//! Exit status: `0` clean, `1` hard findings, `2` command-line error.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use desim::Json;
use sar_epiphany::autofocus_mpmd::Placement;
use sar_epiphany::{all_mappings, mapping_named_placed};
use sarlint::{analyze_pair, cost, dynamic};
use sim_harness::{
    all_platforms, platform_named, BenchHarness, Diagnostic, Mapping, Platform, Workload,
    RUN_RECORD_VERSION,
};

fn main() -> ExitCode {
    let h = BenchHarness::with_args("sarlint", std::env::args().skip(1).collect());
    match check(&h) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(d) => {
            eprintln!("{d}");
            ExitCode::from(2)
        }
    }
}

/// Resolve the requested pairs and analyze each; returns the number of
/// hard findings, or the CLI diagnostic that stopped the run.
fn check(h: &BenchHarness) -> Result<usize, Diagnostic> {
    let place = match h.operand("placement")? {
        None => None,
        // Literal names or @path/to/placement.json (CLI003 / CLI007).
        Some(spec) => Some(Placement::resolve(spec)?),
    };

    let mappings: Vec<Box<dyn Mapping>> = match h.operand("mapping")? {
        Some(name) => {
            let m = mapping_named_placed(name, place.unwrap_or_else(Placement::neighbor))
                .ok_or_else(|| {
                    Diagnostic::hard(
                        "CLI001",
                        format!("--mapping {name}"),
                        "unknown mapping name",
                    )
                })?;
            vec![m]
        }
        None => match place {
            // A placement override without --mapping re-places every
            // placeable mapping and keeps the rest at their defaults.
            Some(p) => all_mappings()
                .iter()
                .map(|m| mapping_named_placed(m.name(), p).expect("registry name resolves"))
                .collect(),
            None => all_mappings(),
        },
    };

    let platform_override: Option<Box<dyn Platform>> = match h.operand("platform")? {
        None => None,
        Some(name) => Some(platform_named(name).ok_or_else(|| {
            Diagnostic::hard(
                "CLI001",
                format!("--platform {name}"),
                "unknown platform name",
            )
        })?),
    };

    let mut pairs = 0usize;
    let mut hard = 0usize;
    let mut json_pairs: Vec<Json> = Vec::new();
    for m in &mappings {
        let platforms: Vec<Box<dyn Platform>> = match &platform_override {
            Some(p) => {
                let p = platform_named(p.label()).expect("registry label resolves");
                vec![p]
            }
            None => all_platforms()
                .into_iter()
                .filter(|p| m.supports(p.kind()))
                .collect(),
        };
        if platforms.is_empty() {
            return Err(Diagnostic::hard(
                "CLI001",
                m.name().to_string(),
                "mapping supports no registered platform",
            ));
        }
        for p in platforms {
            let w = Workload::named(m.kernel(), h.small()).ok_or_else(|| {
                Diagnostic::hard(
                    "CLI001",
                    m.kernel().to_string(),
                    "mapping names a kernel with no registered workload",
                )
            })?;
            let mut report = analyze_pair(m.as_ref(), &w, p.as_ref());
            if h.flag("dynamic") && m.supports(p.kind()) {
                report.merge(dynamic::cross_check(m.as_ref(), &w, p.as_ref()));
            }
            let costed = (h.flag("cost") && m.supports(p.kind())).then(|| {
                let (c, lints) = cost::cost_pair(m.as_ref(), &w, p.as_ref());
                report.merge(lints);
                c
            });
            report.normalize();
            pairs += 1;
            hard += report.hard_count();
            h.say(format!(
                "== {} x {} ({} workload): {}",
                m.name(),
                p.label(),
                if h.small() { "small" } else { "paper" },
                if report.is_clean() { "ok" } else { "FAIL" }
            ));
            if !h.json() {
                print!("{report}");
            }
            if let Some(c) = &costed {
                h.say(format!("   {}", c.summary()));
            }
            if h.json() {
                let diags = report
                    .diagnostics
                    .iter()
                    .map(|d| {
                        Json::obj()
                            .with("code", d.code)
                            .with("severity", d.severity.to_string().as_str())
                            .with("subject", d.subject.as_str())
                            .with("message", d.message.as_str())
                    })
                    .collect();
                let mut pair = Json::obj()
                    .with("mapping", m.name())
                    .with("platform", p.label())
                    .with("clean", report.is_clean())
                    .with("hard", report.hard_count())
                    .with("diagnostics", Json::Arr(diags));
                if let Some(c) = costed {
                    pair = pair.with("cost", c.to_json());
                }
                json_pairs.push(pair);
            }
        }
    }
    if h.json() {
        let doc = Json::obj()
            .with("bench", "sarlint")
            .with("version", RUN_RECORD_VERSION)
            .with("workload", if h.small() { "small" } else { "paper" })
            .with("pairs", Json::Arr(json_pairs))
            .with("pairs_analyzed", pairs)
            .with("hard_findings", hard);
        println!("{}", doc.to_string_pretty());
    } else {
        println!("{pairs} pair(s) analyzed, {hard} hard finding(s)");
    }
    Ok(hard)
}
