//! Check 1 — capacity and overlap (`SL001`, `SL002`): every declared
//! buffer fits its SRAM bank, and no two live buffers of the same
//! `(core, bank)` overlap. This is the §V-A invariant made checkable:
//! two 8,008 B child beams only work because each sits alone in its
//! own 8 KB upper bank.

use memsim::SramParams;
use sim_harness::{Diagnostic, ProgramModel, Report};

/// Run the capacity/overlap check against `sram` geometry.
pub fn check(model: &ProgramModel, sram: &SramParams, report: &mut Report) {
    for b in &model.buffers {
        if b.bank >= sram.banks {
            report.push(Diagnostic::hard(
                "SL001",
                b.label.clone(),
                format!(
                    "core {} declares bank {} but the local store has {} banks",
                    b.core, b.bank, sram.banks
                ),
            ));
            continue;
        }
        if !sram.fits_bank(b.offset, b.bytes) {
            report.push(Diagnostic::hard(
                "SL001",
                b.label.clone(),
                format!(
                    "core {} bank {}: [{}, {}) overflows the {} B bank",
                    b.core,
                    b.bank,
                    b.offset,
                    u64::from(b.offset) + u64::from(b.bytes),
                    sram.bank_bytes
                ),
            ));
        }
    }

    // Overlap: sort each (core, bank) group by offset and compare
    // neighbours. Out-of-bank buffers were already reported above and
    // still participate — overlap is a property of the declarations.
    let mut by_slot: Vec<&sim_harness::BufferDecl> = model.buffers.iter().collect();
    by_slot.sort_by_key(|b| (b.core, b.bank, b.offset));
    for pair in by_slot.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.core == b.core
            && a.bank == b.bank
            && u64::from(a.offset) + u64::from(a.bytes) > u64::from(b.offset)
        {
            report.push(Diagnostic::hard(
                "SL002",
                format!("{} / {}", a.label, b.label),
                format!(
                    "core {} bank {}: [{}, {}) overlaps [{}, {})",
                    a.core,
                    a.bank,
                    a.offset,
                    u64::from(a.offset) + u64::from(a.bytes),
                    b.offset,
                    u64::from(b.offset) + u64::from(b.bytes),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with(buffers: &[(usize, usize, u32, u32)]) -> ProgramModel {
        let mut m = ProgramModel::new(4, 4);
        for (i, &(core, bank, offset, bytes)) in buffers.iter().enumerate() {
            m.buffer(format!("b{i}"), core, bank, offset, bytes);
        }
        m
    }

    #[test]
    fn fitting_buffers_pass() {
        let m = model_with(&[(0, 2, 0, 8008), (0, 3, 0, 8008), (1, 2, 0, 8192)]);
        let mut r = Report::new();
        check(&m, &SramParams::default(), &mut r);
        assert!(r.is_clean() && r.diagnostics.is_empty());
    }

    #[test]
    fn overflow_and_bad_bank_are_sl001() {
        let m = model_with(&[(0, 2, 200, 8008), (1, 7, 0, 8)]);
        let mut r = Report::new();
        check(&m, &SramParams::default(), &mut r);
        assert_eq!(r.hard_count(), 2);
        assert!(r.diagnostics.iter().all(|d| d.code == "SL001"));
    }

    #[test]
    fn overlapping_buffers_are_sl002() {
        let m = model_with(&[(3, 0, 0, 1024), (3, 0, 1000, 512)]);
        let mut r = Report::new();
        check(&m, &SramParams::default(), &mut r);
        assert_eq!(r.hard_count(), 1);
        assert!(r.has_code("SL002"));
    }

    #[test]
    fn same_offsets_on_different_cores_or_banks_do_not_overlap() {
        let m = model_with(&[(0, 2, 0, 4096), (0, 3, 0, 4096), (1, 2, 0, 4096)]);
        let mut r = Report::new();
        check(&m, &SramParams::default(), &mut r);
        assert!(r.is_clean() && r.diagnostics.is_empty());
    }
}
