//! Check 4 — flag and barrier races (`SL006`–`SL008`): every wait must
//! be matched by a set (`SL006`), every set by a wait (`SL007` — an
//! unconsumed second set overwrites data the consumer never
//! acknowledged), and a barrier's arrival set must equal its declared
//! participants (`SL008` — a missing arrival hangs the release, an
//! extra one releases the barrier early).

use sim_harness::{Diagnostic, ProgramModel, Report};

/// Run the flag/barrier race check.
pub fn check(model: &ProgramModel, report: &mut Report) {
    for f in &model.flags {
        if f.waits > 0 && f.sets == 0 {
            report.push(Diagnostic::hard(
                "SL006",
                f.label.clone(),
                format!(
                    "core {} waits {} time(s) on a flag no core ever sets: \
                     the waiter spins forever",
                    f.waiter, f.waits
                ),
            ));
        } else if f.sets > 0 && f.waits > f.sets {
            report.push(Diagnostic::hard(
                "SL006",
                f.label.clone(),
                format!(
                    "core {} waits {} time(s) but core {} sets only {}: \
                     the last {} wait(s) never release",
                    f.waiter,
                    f.waits,
                    f.setter,
                    f.sets,
                    f.waits - f.sets
                ),
            ));
        } else if f.waits > 0 && f.sets > f.waits {
            report.push(Diagnostic::hard(
                "SL007",
                f.label.clone(),
                format!(
                    "core {} sets {} time(s) but core {} waits only {}: \
                     set-set without an intervening wait overwrites unacknowledged data",
                    f.setter, f.sets, f.waiter, f.waits
                ),
            ));
        } else if f.sets > 0 && f.waits == 0 {
            report.push(Diagnostic::warning(
                "SL007",
                f.label.clone(),
                format!(
                    "core {} sets a flag no core waits on: dead synchronisation",
                    f.setter
                ),
            ));
        }
    }

    for b in &model.barriers {
        let mut want = b.participants.clone();
        let mut got = b.arrivals.clone();
        want.sort_unstable();
        got.sort_unstable();
        if want != got {
            let missing: Vec<usize> = want.iter().filter(|c| !got.contains(c)).copied().collect();
            let extra: Vec<usize> = got.iter().filter(|c| !want.contains(c)).copied().collect();
            report.push(Diagnostic::hard(
                "SL008",
                b.label.clone(),
                format!(
                    "barrier counts {} participant(s) but {} core(s) arrive \
                     (missing {missing:?}, uncounted {extra:?})",
                    want.len(),
                    got.len()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_harness::{BarrierDecl, FlagDecl};

    fn flag(sets: u64, waits: u64) -> ProgramModel {
        let mut m = ProgramModel::new(4, 4);
        m.flags.push(FlagDecl {
            label: "f".into(),
            setter: 0,
            waiter: 1,
            sets,
            waits,
            recovery: None,
        });
        m
    }

    fn checked(m: &ProgramModel) -> Report {
        let mut r = Report::new();
        check(m, &mut r);
        r
    }

    #[test]
    fn matched_flags_pass() {
        assert!(checked(&flag(1, 1)).diagnostics.is_empty());
        assert!(checked(&flag(6, 6)).diagnostics.is_empty());
        assert!(checked(&flag(0, 0)).diagnostics.is_empty());
    }

    #[test]
    fn wait_without_set_is_sl006() {
        let r = checked(&flag(0, 1));
        assert_eq!(r.hard_count(), 1);
        assert_eq!(r.diagnostics[0].code, "SL006");
        let r = checked(&flag(2, 5));
        assert!(r.has_code("SL006"));
    }

    #[test]
    fn set_set_without_wait_is_sl007() {
        let r = checked(&flag(5, 2));
        assert_eq!(r.hard_count(), 1);
        assert_eq!(r.diagnostics[0].code, "SL007");
        // Set-no-wait is dead sync: a warning, not hard.
        let r = checked(&flag(3, 0));
        assert_eq!(r.hard_count(), 0);
        assert!(r.has_code("SL007"));
    }

    #[test]
    fn barrier_membership_mismatch_is_sl008() {
        let mut m = ProgramModel::new(4, 4);
        m.barriers.push(BarrierDecl {
            label: "merge_end".into(),
            participants: vec![0, 1, 2, 3],
            arrivals: vec![0, 1, 2],
        });
        let r = checked(&m);
        assert_eq!(r.hard_count(), 1);
        assert_eq!(r.diagnostics[0].code, "SL008");
        assert!(r.diagnostics[0].message.contains("[3]"));

        // Order does not matter.
        let mut m = ProgramModel::new(4, 4);
        m.barriers.push(BarrierDecl {
            label: "b".into(),
            participants: vec![2, 0, 1],
            arrivals: vec![0, 1, 2],
        });
        assert!(checked(&m).diagnostics.is_empty());
    }
}
