//! Dynamic cross-check (`SL009`, `SL010`): replay one traced run and
//! verify that every remote landing the machine model observed (posted
//! writes, inbound DMA bursts) targets a `(core, bank)` slot the
//! mapping *declared* a buffer in, with at least the observed burst
//! size. This catches the gap static checks cannot: a model that
//! passes all four lints but does not describe what the driver
//! actually does.
//!
//! The chip emits a gated `land:bank{bank}+{bytes}` instant on
//! [`Track::Dma`] at every remote landing; this module parses the
//! snapshot back.

use std::collections::BTreeSet;

use desim::trace::{Tracer, Track};
use sim_harness::{run_traced, Diagnostic, Mapping, Platform, ProgramModel, Report, Workload};

/// One observed remote landing, parsed from the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Landing {
    core: usize,
    bank: usize,
    bytes: u32,
}

/// Parse `land:bank{bank}+{bytes}` emitted on a DMA track.
fn parse_landing(track: Track, name: &str) -> Option<Landing> {
    let Track::Dma(core) = track else {
        return None;
    };
    let rest = name.strip_prefix("land:bank")?;
    let (bank, bytes) = rest.split_once('+')?;
    Some(Landing {
        core: core as usize,
        bank: bank.parse().ok()?,
        bytes: bytes.parse().ok()?,
    })
}

/// Whether `model` declares a buffer that can absorb `l`.
fn declared(model: &ProgramModel, l: Landing) -> bool {
    model
        .buffers
        .iter()
        .any(|b| b.core == l.core && b.bank == l.bank && b.bytes >= l.bytes)
}

/// Run the pair once with tracing on and cross-check every observed
/// landing against the model's declared buffers.
pub fn cross_check(mapping: &dyn Mapping, workload: &Workload, platform: &dyn Platform) -> Report {
    let mut report = Report::new();
    let Some(model) = mapping.program_model(workload, platform) else {
        report.push(Diagnostic::note(
            "SL000",
            mapping.name().to_string(),
            "mapping exports no program model; nothing to cross-check".to_string(),
        ));
        return report;
    };
    let tracer = Tracer::enabled();
    if let Err(e) = run_traced(mapping, workload, platform, &tracer) {
        report.push(Diagnostic::hard(
            "SL010",
            mapping.name().to_string(),
            format!("traced run failed during dynamic cross-check: {e}"),
        ));
        return report;
    }

    let mut seen = 0u64;
    let mut flagged: BTreeSet<Landing> = BTreeSet::new();
    for e in tracer.snapshot() {
        let Some(l) = parse_landing(e.track, e.name.as_ref()) else {
            continue;
        };
        seen += 1;
        if !declared(&model, l) && flagged.insert(l) {
            report.push(Diagnostic::hard(
                "SL009",
                mapping.name().to_string(),
                format!(
                    "observed a {} B landing in core {} bank {} with no declared \
                     buffer that large there: the model does not cover the run",
                    l.bytes, l.core, l.bank
                ),
            ));
        }
    }
    if seen == 0 {
        report.push(Diagnostic::note(
            "SL000",
            mapping.name().to_string(),
            "run emitted no remote landings; dynamic check is vacuous".to_string(),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Cycle;

    #[test]
    fn landing_lines_parse_and_others_do_not() {
        let l = parse_landing(Track::Dma(7), "land:bank2+8008").unwrap();
        assert_eq!((l.core, l.bank, l.bytes), (7, 2, 8008));
        assert!(parse_landing(Track::Core(7), "land:bank2+8008").is_none());
        assert!(parse_landing(Track::Dma(7), "dma_in").is_none());
        assert!(parse_landing(Track::Dma(7), "land:bank+8").is_none());
        assert!(parse_landing(Track::Dma(7), "land:bank2+x").is_none());
    }

    #[test]
    fn declared_requires_matching_slot_and_size() {
        let mut m = ProgramModel::new(4, 4);
        m.buffer("inbox", 3, 0, 0, 768);
        let hit = |core, bank, bytes| declared(&m, Landing { core, bank, bytes });
        assert!(hit(3, 0, 768));
        assert!(hit(3, 0, 128));
        assert!(!hit(3, 0, 769));
        assert!(!hit(3, 1, 8));
        assert!(!hit(2, 0, 8));
    }

    #[test]
    fn tracer_snapshot_round_trips_a_landing() {
        let t = Tracer::enabled();
        t.instant(Track::Dma(5), "land:bank0+384", Cycle(10));
        let hits: Vec<Landing> = t
            .snapshot()
            .iter()
            .filter_map(|e| parse_landing(e.track, e.name.as_ref()))
            .collect();
        assert_eq!(
            hits,
            vec![Landing {
                core: 5,
                bank: 0,
                bytes: 384
            }]
        );
    }
}
