//! Dynamic cross-check (`SL009`, `SL010`, `SL016`): replay one traced
//! run and verify the declarations against what the machine model
//! actually observed.
//!
//! * `SL009` (hard) — a remote landing (posted write, inbound DMA
//!   burst) targets a `(core, bank)` slot no declared buffer covers at
//!   the observed size: the model does not describe the run.
//! * `SL010` — the converse: hard when the traced run itself fails
//!   (nothing can corroborate the claims), warning when a declared
//!   buffer's `(core, bank)` slot never received any landing (the
//!   model over-declares what the driver does).
//! * `SL016` (warning) — model drift: the run's aggregated activity
//!   counters (off-chip reads/writes, DMA bytes, remote writes, flag
//!   waits) fall outside the totals the per-phase workload
//!   declarations imply. This is the closed loop behind the static
//!   cost model: the same declarations `sarlint::cost` prices are
//!   checked against the simulated `RunRecord`.
//!
//! The chip emits a gated `land:bank{bank}+{bytes}` instant on
//! [`Track::Dma`] at every remote landing; this module parses the
//! snapshot back.

use std::collections::BTreeSet;

use desim::trace::{Tracer, Track};
use desim::RunRecord;
use sim_harness::{
    run_traced, Bound, Diagnostic, Mapping, Platform, ProgramModel, Report, Workload,
};

/// One observed remote landing, parsed from the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Landing {
    core: usize,
    bank: usize,
    bytes: u32,
}

/// Parse `land:bank{bank}+{bytes}` emitted on a DMA track.
fn parse_landing(track: Track, name: &str) -> Option<Landing> {
    let Track::Dma(core) = track else {
        return None;
    };
    let rest = name.strip_prefix("land:bank")?;
    let (bank, bytes) = rest.split_once('+')?;
    Some(Landing {
        core: core as usize,
        bank: bank.parse().ok()?,
        bytes: bytes.parse().ok()?,
    })
}

/// Whether `model` declares a buffer that can absorb `l`.
fn declared(model: &ProgramModel, l: Landing) -> bool {
    model
        .buffers
        .iter()
        .any(|b| b.core == l.core && b.bank == l.bank && b.bytes >= l.bytes)
}

/// The run-total bounds the per-phase workload declarations imply for
/// the chip's aggregated activity counters, keyed by counter slot
/// name. Empty when the model declares no workload.
fn declared_totals(model: &ProgramModel) -> Vec<(&'static str, Bound)> {
    if !model.has_workload() {
        return Vec::new();
    }
    let mut ext_read = Bound::zero();
    let mut ext_read_bytes = Bound::zero();
    let mut ext_write = Bound::zero();
    let mut ext_write_bytes = Bound::zero();
    let mut dma_bytes = Bound::zero();
    let mut remote_write = Bound::zero();
    let mut remote_write_bytes = Bound::zero();
    let mut flag_wait = Bound::zero();
    for ph in &model.workload {
        let r = ph.rounds as f64;
        for w in &ph.work {
            ext_read += w.ext_read_msgs.scaled(r);
            ext_read_bytes += w.ext_read_bytes.scaled(r);
            ext_write += w.ext_write_msgs.scaled(r);
            ext_write_bytes += w.ext_write_bytes.scaled(r);
            dma_bytes += w.dma_bytes.scaled(r);
            flag_wait += w.flag_waits.scaled(r);
        }
        for t in &ph.traffic {
            remote_write += t.messages.scaled(r);
            remote_write_bytes += t.bytes.scaled(r);
        }
    }
    vec![
        ("ext_read", ext_read),
        ("ext_read_bytes", ext_read_bytes),
        ("ext_write", ext_write),
        ("ext_write_bytes", ext_write_bytes),
        ("dma_bytes", dma_bytes),
        ("remote_write", remote_write),
        ("remote_write_bytes", remote_write_bytes),
        ("flag_wait", flag_wait),
    ]
}

/// `SL016` model drift: every observed counter total must fall inside
/// the interval the declarations imply. Missing counters read as zero
/// (the reference CPU has no mesh counters; its models declare no
/// mesh traffic either).
fn check_drift(model: &ProgramModel, record: &RunRecord, report: &mut Report) {
    for (slot, bound) in declared_totals(model) {
        let observed = record.counters.get(slot) as f64;
        if !bound.contains(observed) {
            report.push(Diagnostic::warning(
                "SL016",
                slot.to_string(),
                format!(
                    "model drift: run observed {observed} but the workload \
                     declarations imply [{}, {}]",
                    bound.lo, bound.hi
                ),
            ));
        }
    }
}

/// Run the pair once with tracing on and cross-check every observed
/// landing against the model's declared buffers, plus the counter
/// totals against the declared workload.
pub fn cross_check(mapping: &dyn Mapping, workload: &Workload, platform: &dyn Platform) -> Report {
    let mut report = Report::new();
    let Some(model) = mapping.program_model(workload, platform) else {
        report.push(Diagnostic::note(
            "SL000",
            mapping.name().to_string(),
            "mapping exports no program model; nothing to cross-check".to_string(),
        ));
        return report;
    };
    let tracer = Tracer::enabled();
    let run = match run_traced(mapping, workload, platform, &tracer) {
        Ok(run) => run,
        Err(e) => {
            report.push(Diagnostic::hard(
                "SL010",
                mapping.name().to_string(),
                format!("traced run failed during dynamic cross-check: {e}"),
            ));
            return report;
        }
    };

    let mut seen = 0u64;
    let mut flagged: BTreeSet<Landing> = BTreeSet::new();
    let mut landed_slots: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in tracer.snapshot() {
        let Some(l) = parse_landing(e.track, e.name.as_ref()) else {
            continue;
        };
        seen += 1;
        landed_slots.insert((l.core, l.bank));
        if !declared(&model, l) && flagged.insert(l) {
            report.push(Diagnostic::hard(
                "SL009",
                mapping.name().to_string(),
                format!(
                    "observed a {} B landing in core {} bank {} with no declared \
                     buffer that large there: the model does not cover the run",
                    l.bytes, l.core, l.bank
                ),
            ));
        }
    }
    if seen == 0 {
        report.push(Diagnostic::note(
            "SL000",
            mapping.name().to_string(),
            "run emitted no remote landings; dynamic check is vacuous".to_string(),
        ));
    } else {
        // The over-declared direction: a buffer slot that never
        // received a landing claims communication the driver does not
        // perform. Per (core, bank) rather than per buffer — multiple
        // same-bank inboxes receive indistinguishable landings.
        let mut over: BTreeSet<(usize, usize)> = BTreeSet::new();
        for b in &model.buffers {
            if !landed_slots.contains(&(b.core, b.bank)) && over.insert((b.core, b.bank)) {
                report.push(Diagnostic::warning(
                    "SL010",
                    b.label.clone(),
                    format!(
                        "declared buffer in core {} bank {} never received a \
                         landing: the model over-declares the run",
                        b.core, b.bank
                    ),
                ));
            }
        }
    }
    check_drift(&model, &run.record, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Cycle;

    #[test]
    fn landing_lines_parse_and_others_do_not() {
        let l = parse_landing(Track::Dma(7), "land:bank2+8008").unwrap();
        assert_eq!((l.core, l.bank, l.bytes), (7, 2, 8008));
        assert!(parse_landing(Track::Core(7), "land:bank2+8008").is_none());
        assert!(parse_landing(Track::Dma(7), "dma_in").is_none());
        assert!(parse_landing(Track::Dma(7), "land:bank+8").is_none());
        assert!(parse_landing(Track::Dma(7), "land:bank2+x").is_none());
    }

    #[test]
    fn declared_requires_matching_slot_and_size() {
        let mut m = ProgramModel::new(4, 4);
        m.buffer("inbox", 3, 0, 0, 768);
        let hit = |core, bank, bytes| declared(&m, Landing { core, bank, bytes });
        assert!(hit(3, 0, 768));
        assert!(hit(3, 0, 128));
        assert!(!hit(3, 0, 769));
        assert!(!hit(3, 1, 8));
        assert!(!hit(2, 0, 8));
    }

    #[test]
    fn tracer_snapshot_round_trips_a_landing() {
        let t = Tracer::enabled();
        t.instant(Track::Dma(5), "land:bank0+384", Cycle(10));
        let hits: Vec<Landing> = t
            .snapshot()
            .iter()
            .filter_map(|e| parse_landing(e.track, e.name.as_ref()))
            .collect();
        assert_eq!(
            hits,
            vec![Landing {
                core: 5,
                bank: 0,
                bytes: 384
            }]
        );
    }
}
