//! `sarlint` — the static mapping analyzer (DESIGN.md §3 S14).
//!
//! A mapping exports a declarative [`ProgramModel`] (its buffers,
//! channels, flags and barriers); this crate checks the model against
//! the platform's memory geometry and the mesh *without executing the
//! simulation*:
//!
//! | check | codes | catches |
//! |---|---|---|
//! | [`capacity`] | `SL001`, `SL002` | bank overflow, buffer overlap |
//! | [`deadlock`] | `SL003`, `SL004` | channel-graph cycles, starved credits |
//! | [`placement`] | `SL005` | scattered stages (> [`HOP_BUDGET`] hops) |
//! | [`races`] | `SL006`–`SL008` | unmatched flags, barrier mismatch |
//! | [`recovery`] | `SL011`, `SL012` | channels/flags with no fault-recovery story |
//!
//! [`dynamic::cross_check`] closes the loop: one traced run, every
//! observed remote landing checked against the declared buffers
//! (`SL009`/`SL010`). Mappings without a model (host threads, the
//! reference CPU) report an `SL000` note — nothing claimed, nothing
//! checked.
//!
//! Findings are [`sim_harness::Diagnostic`]s in a [`Report`]; a *hard*
//! diagnostic means the pair must not be simulated (the `run` binary's
//! `--analyze` gate refuses), a *warning* is a cost smell, a *note* is
//! informational.

#![forbid(unsafe_code)]

pub mod capacity;
pub mod cost;
pub mod deadlock;
pub mod dynamic;
pub mod placement;
pub mod races;
pub mod recovery;

use memsim::SramParams;
use sim_harness::{Mapping, Platform, ProgramModel, Report, Workload};

pub use placement::HOP_BUDGET;
pub use sim_harness::{Diagnostic, Severity};

/// Run all five static checks on a model against `sram` geometry.
pub fn analyze_model(model: &ProgramModel, sram: &SramParams) -> Report {
    let mut report = Report::new();
    capacity::check(model, sram, &mut report);
    deadlock::check(model, &mut report);
    placement::check(model, &mut report);
    races::check(model, &mut report);
    recovery::check(model, &mut report);
    report
}

/// Analyze one registered Mapping × Platform pair: resolve the model,
/// pick the platform's SRAM geometry (default geometry for machines
/// without banked local stores) and run the static checks. Unsupported
/// pairs and model-less mappings report an `SL000` note.
pub fn analyze_pair(mapping: &dyn Mapping, workload: &Workload, platform: &dyn Platform) -> Report {
    let mut report = Report::new();
    if !mapping.supports(platform.kind()) {
        report.push(Diagnostic::note(
            "SL000",
            format!("{} x {}", mapping.name(), platform.label()),
            "pair is not supported; nothing to analyze".to_string(),
        ));
        return report;
    }
    let Some(model) = mapping.program_model(workload, platform) else {
        report.push(Diagnostic::note(
            "SL000",
            format!("{} x {}", mapping.name(), platform.label()),
            "mapping exports no program model; nothing claimed, nothing checked".to_string(),
        ));
        return report;
    };
    let sram = platform
        .epiphany_params()
        .map_or_else(SramParams::default, |p| p.sram);
    report.merge(analyze_model(&model, &sram));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sar_epiphany::autofocus_mpmd::Placement;
    use sar_epiphany::{mapping_named, mapping_named_placed};
    use sim_harness::{platform_named, Severity};

    fn pair(mapping: &str, platform: &str) -> Report {
        let m = mapping_named(mapping).expect("mapping resolves");
        let p = platform_named(platform).expect("platform resolves");
        let w = Workload::named(m.kernel(), true).expect("kernel resolves");
        analyze_pair(m.as_ref(), &w, p.as_ref())
    }

    #[test]
    fn registered_epiphany_mappings_are_clean() {
        for name in ["ffbp_seq", "ffbp_spmd", "autofocus_seq", "autofocus_mpmd"] {
            let r = pair(name, "epiphany");
            assert!(r.is_clean(), "{name}: {:?}", r.diagnostics);
        }
    }

    #[test]
    fn modelless_mappings_note_sl000() {
        let r = pair("ffbp_host", "host");
        assert!(r.is_clean());
        assert!(r.has_code("SL000"));
        assert_eq!(r.diagnostics[0].severity, Severity::Note);
    }

    #[test]
    fn reference_cpu_mappings_now_carry_models() {
        for name in ["ffbp_ref", "autofocus_ref"] {
            let r = pair(name, "refcpu");
            assert!(r.is_clean(), "{name}: {:?}", r.diagnostics);
            assert!(!r.has_code("SL000"), "{name} declares a workload model");
        }
    }

    #[test]
    fn unsupported_pairs_note_sl000() {
        let r = pair("ffbp_seq", "host");
        assert!(r.is_clean());
        assert!(r.has_code("SL000"));
    }

    #[test]
    fn undeclared_recovery_warns_on_the_streams_net_only() {
        // The hand-written MPMD driver declares its recovery story
        // (retry + drain-and-restart); the declarative streams network
        // runs the same channel graph with none.
        let covered = pair("autofocus_mpmd", "epiphany");
        assert!(!covered.has_code("SL011"), "{:?}", covered.diagnostics);
        assert!(!covered.has_code("SL012"), "{:?}", covered.diagnostics);
        let bare = pair("autofocus_net", "epiphany");
        assert!(bare.has_code("SL011"));
        assert!(bare.has_code("SL012"));
        assert!(bare.is_clean(), "recovery findings must stay warnings");
    }

    #[test]
    fn scattered_placement_fails_the_hop_budget() {
        let m = mapping_named_placed("autofocus_mpmd", Placement::scattered()).unwrap();
        let p = platform_named("epiphany").unwrap();
        let w = Workload::named("autofocus", true).unwrap();
        let r = analyze_pair(m.as_ref(), &w, p.as_ref());
        assert!(!r.is_clean() && r.has_code("SL005"), "{:?}", r.diagnostics);
    }
}
