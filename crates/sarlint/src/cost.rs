//! Check 6 — the contention-aware static cost model (`SL013`–`SL015`,
//! DESIGN.md §3 S19): turn a mapping's per-phase workload declarations
//! ([`sim_harness::PhaseDecl`]) into *guaranteed* lower/upper bounds on
//! makespan and per-component energy, priced with the exact datasheet
//! constants the simulator uses ([`EpiphanyParams`], [`RefCpuParams`])
//! and the same XY-routed mesh geometry ([`emesh`]).
//!
//! The bound arguments:
//!
//! * **lower** — per phase, the makespan is at least the largest of
//!   (a) any single core's serial work (compute issue slots under
//!   pairing, blocking-read round trips, write/DMA issue, minimum poll
//!   and barrier costs), (b) any single directed mesh link's total
//!   serialization under XY routing, and (c) the eLink's total
//!   occupancy. Each is a per-resource busy total, so the max is sound
//!   even when rounds overlap across cores.
//! * **upper** — every cycle of the phase is attributable to a counted
//!   term on some work-conserving resource: the sum over cores of
//!   worst-case serial work (row-miss round trips, full poll caps,
//!   write backpressure allowances) plus every declared transfer's
//!   flight latency and per-link serialization bounds the makespan.
//!
//! Energy bounds mirror [`epiphany::EnergyModel`] term by term:
//! lowered FPU/IALU-LS issue slots (plus 1–64 spin polls per flag
//! wait), local-store accesses, wire-byte×hop products on the three
//! meshes (8-byte headers included, as the fabric charges them), and
//! payload bytes through the eLink/SDRAM. Static power integrates the
//! makespan bound. The reference CPU prices compute at sustained IPC
//! with latency-priced special functions, brackets memory stalls
//! between all-L1 and all-DRAM at the declared cache-line touch
//! counts, and carries the paper's flat 17.5 W datasheet power.

use std::collections::BTreeMap;

use desim::{Json, OpCounts};
use emesh::{route_xy, Mesh2D};
use epiphany::EpiphanyParams;
use refcpu::RefCpuParams;
use sim_harness::{
    Bound, Diagnostic, Mapping, PhaseDecl, Platform, PlatformKind, ProgramModel, Report, Workload,
};

/// A per-round link occupancy above this multiple of the busiest
/// core's compute midpoint is flagged `SL013` (the mesh, not the
/// cores, paces the phase).
pub const LINK_OVERSUBSCRIPTION_RATIO: f64 = 1.0;

/// A per-round eLink/SDRAM occupancy above this multiple of the
/// busiest core's compute midpoint is flagged `SL014` (the off-chip
/// wall: the phase cannot go faster than the eLink drains).
pub const OFFCHIP_WALL_RATIO: f64 = 1.0;

/// Max/mean per-core serial-work midpoint ratio above which a phase is
/// flagged `SL015` (load imbalance leaves cores idle).
pub const IMBALANCE_RATIO: f64 = 2.0;

/// Cost bounds for one declared phase (totals across all its rounds
/// for `cycles`; the structural components are per round).
#[derive(Debug, Clone)]
pub struct PhaseCost {
    /// Phase name from the declaration.
    pub name: String,
    /// Rounds the phase executes.
    pub rounds: u64,
    /// Makespan bound for the whole phase (all rounds), cycles.
    pub cycles: Bound,
    /// Busiest single core's serial work per round, cycles.
    pub compute: Bound,
    /// Busiest directed mesh link's serialization per round, cycles.
    pub link: Bound,
    /// eLink occupancy per round, cycles (memory-stall bound on the
    /// reference CPU).
    pub offchip: Bound,
    /// Per-core serial-work midpoints per round `(core, cycles)`, for
    /// the imbalance lint.
    pub per_core_mid: Vec<(usize, f64)>,
}

/// Static lower/upper bounds on a whole run, in the same component
/// decomposition as [`desim::record::EnergyRecord`].
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Whether bounds exist at all. `false` for wall-clock platforms
    /// and model-less mappings: `cycles`/`total_j` are then `[0, inf)`.
    pub bounded: bool,
    /// Makespan, cycles.
    pub cycles: Bound,
    /// Makespan, seconds.
    pub seconds: Bound,
    /// FPU + IALU/LS issue energy, joules.
    pub compute_j: Bound,
    /// Local-store access energy, joules.
    pub sram_j: Bound,
    /// Mesh wire-byte×hop energy, joules.
    pub mesh_j: Bound,
    /// eLink payload energy, joules.
    pub elink_j: Bound,
    /// SDRAM payload energy, joules.
    pub sdram_j: Bound,
    /// Leakage + datasheet-priced energy over the makespan, joules.
    pub static_j: Bound,
    /// Sum of the components, joules.
    pub total_j: Bound,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseCost>,
}

impl CostReport {
    /// The vacuous report: nothing claimed, so the only sound bounds
    /// are `[0, inf)` for time and energy.
    pub fn unbounded() -> CostReport {
        let open = Bound::range(0.0, f64::INFINITY);
        CostReport {
            bounded: false,
            cycles: open,
            seconds: open,
            compute_j: Bound::zero(),
            sram_j: Bound::zero(),
            mesh_j: Bound::zero(),
            elink_j: Bound::zero(),
            sdram_j: Bound::zero(),
            static_j: Bound::zero(),
            total_j: open,
            phases: Vec::new(),
        }
    }

    /// Serialise for `--json` output. Infinite edges render as `null`
    /// (JSON has no `inf`).
    pub fn to_json(&self) -> Json {
        fn bound(b: Bound) -> Json {
            let edge = |v: f64| {
                if v.is_finite() {
                    Json::from(v)
                } else {
                    Json::Null
                }
            };
            Json::obj().with("lo", edge(b.lo)).with("hi", edge(b.hi))
        }
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj()
                    .with("name", p.name.as_str())
                    .with("rounds", p.rounds)
                    .with("cycles", bound(p.cycles))
                    .with("compute_per_round", bound(p.compute))
                    .with("link_per_round", bound(p.link))
                    .with("offchip_per_round", bound(p.offchip))
            })
            .collect();
        Json::obj()
            .with("bounded", self.bounded)
            .with("cycles", bound(self.cycles))
            .with("seconds", bound(self.seconds))
            .with(
                "energy_j",
                Json::obj()
                    .with("compute", bound(self.compute_j))
                    .with("sram", bound(self.sram_j))
                    .with("mesh", bound(self.mesh_j))
                    .with("elink", bound(self.elink_j))
                    .with("sdram", bound(self.sdram_j))
                    .with("static", bound(self.static_j))
                    .with("total", bound(self.total_j)),
            )
            .with("phases", Json::Arr(phases))
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if !self.bounded {
            return "cost: unbounded (no workload declarations for this platform)".to_string();
        }
        format!(
            "cost: cycles [{:.3e}, {:.3e}], energy [{:.3e}, {:.3e}] J over {} phase(s)",
            self.cycles.lo,
            self.cycles.hi,
            self.total_j.lo,
            self.total_j.hi,
            self.phases.len()
        )
    }
}

/// FPU-slot instructions after lowering special functions, matching
/// [`epiphany::CostBlock::lower`].
fn fpu_slots(ops: &OpCounts, p: &EpiphanyParams) -> f64 {
    (ops.flops
        + ops.fmas
        + ops.sqrts * p.sqrt_flops
        + ops.divs * p.div_flops
        + ops.trigs * p.trig_flops) as f64
}

/// IALU/load-store-slot instructions, matching the same lowering.
fn ls_slots(ops: &OpCounts, p: &EpiphanyParams) -> f64 {
    (ops.ialu + ops.loads * p.local_load_cycles + ops.stores * p.local_store_cycles) as f64
}

/// Interval accumulator for `lo`/`hi` running sums.
#[derive(Default, Clone, Copy)]
struct Acc {
    lo: f64,
    hi: f64,
}

impl Acc {
    fn add(&mut self, lo: f64, hi: f64) {
        self.lo += lo;
        self.hi += hi;
    }

    fn bound(self) -> Bound {
        Bound::range(self.lo, self.hi)
    }
}

/// Per-link load map: `(mesh id, node, direction index) -> cycles`.
/// Ordered so the float folds below visit links in a fixed order —
/// byte-identical cost reports across processes require it.
type LinkLoads = BTreeMap<(u8, usize, usize), f64>;

/// Accumulate `wire / rate` serialization cycles on every link of the
/// XY route `from -> to` of mesh `mesh_id`.
fn load_route(
    loads: &mut LinkLoads,
    mesh: &Mesh2D,
    mesh_id: u8,
    from: usize,
    to: usize,
    cycles: f64,
) {
    if cycles <= 0.0 {
        return;
    }
    let src = mesh.coord(emesh::NodeId(from as u16));
    let dst = mesh.coord(emesh::NodeId(to as u16));
    for hop in route_xy(mesh, src, dst) {
        let node = mesh.node(hop.from).raw();
        *loads.entry((mesh_id, node, hop.dir.index())).or_insert(0.0) += cycles;
    }
}

/// Whole-run energy accumulators an Epiphany phase merges into: the
/// exact counter mirrors the energy model prices per component.
#[derive(Default)]
struct EnergyAcc {
    fpu: Acc,
    ialu: Acc,
    local: Acc,
    byte_hops: Acc,
    offchip_bytes: Acc,
}

/// Evaluate one Epiphany phase; returns its cost row and merges its
/// energy terms into the accumulators.
#[allow(clippy::too_many_lines)]
fn epiphany_phase(
    ph: &PhaseDecl,
    p: &EpiphanyParams,
    mesh: &Mesh2D,
    pairing: f64,
    energy: &mut EnergyAcc,
) -> PhaseCost {
    let elink = mesh.elink_node();
    let elink_coord = mesh.coord(elink);
    let link_bpc = p.emesh.link_bytes_per_cycle.max(1) as f64;
    let elink_bpc = p.emesh.elink_bytes_per_cycle.max(1) as f64;
    let hop_lat = p.emesh.hop_latency as f64;
    let row_hit = p.sdram.row_hit_cycles as f64;
    let row_miss = p.sdram.row_miss_cycles as f64;
    let wic = p.write_issue_cycles_per_dword.max(1) as f64;
    let rounds = ph.rounds as f64;

    // Per-round, per-core serial work (ordered: the hi-sum below is a
    // float fold whose result must not depend on hash order).
    let mut serial: BTreeMap<usize, Acc> = BTreeMap::new();
    // Busiest core's pure compute (op-count) work — the reference the
    // SL013/SL014 lints compare resource occupancies against.
    let mut comp_max = Acc::default();
    let mut links_lo = LinkLoads::new();
    let mut links_hi = LinkLoads::new();
    let mut elink_occ = Acc::default();
    let mut flight_hi = 0.0f64;

    for w in &ph.work {
        let s = serial.entry(w.core).or_default();
        let coord = mesh.coord(emesh::NodeId(w.core as u16));
        let hops = f64::from(coord.manhattan(elink_coord));
        let hl = hops.max(1.0) * hop_lat;

        // Compute: lower is the dominant slot over the whole round
        // (per-call maxima only grow it); upper assumes no pairing
        // between the slots plus one ceil cycle per compute() call.
        let comp_lo = fpu_slots(&w.ops_lo, p).max(ls_slots(&w.ops_lo, p)) / pairing;
        let comp_hi =
            (fpu_slots(&w.ops_hi, p) + ls_slots(&w.ops_hi, p)) / pairing + w.compute_calls.hi;
        s.add(comp_lo, comp_hi);
        comp_max.lo = comp_max.lo.max(comp_lo);
        comp_max.hi = comp_max.hi.max(comp_hi);

        // Blocking off-chip reads: issue + rMesh request + eLink
        // request slot + SDRAM + reply hop latency per message, plus
        // the reply wire (payload + 8 B header) serialising once
        // through the eLink and once onto the cMesh.
        let r_wire_lo = w.ext_read_bytes.lo + 8.0 * w.ext_read_msgs.lo;
        let r_wire_hi = w.ext_read_bytes.hi + 8.0 * w.ext_read_msgs.hi;
        let read_fixed = p.read_issue_cycles as f64 + hl + 1.0 + 1.0 + hl;
        s.add(
            w.ext_read_msgs.lo * (read_fixed + row_hit)
                + r_wire_lo * (1.0 / elink_bpc + 1.0 / link_bpc),
            w.ext_read_msgs.hi * (read_fixed + row_miss)
                + r_wire_hi * (1.0 / elink_bpc + 1.0 / link_bpc),
        );

        // Posted off-chip writes: issue cycles always; the upper bound
        // additionally drains each write's xMesh flight and eLink hold
        // (the write-buffer backpressure allowance, ignoring the
        // buffer credit — sound, just looser).
        let w_wire_lo = w.ext_write_bytes.lo + 8.0 * w.ext_write_msgs.lo;
        let w_wire_hi = w.ext_write_bytes.hi + 8.0 * w.ext_write_msgs.hi;
        s.add(
            wic * (w.ext_write_msgs.lo.max(w.ext_write_bytes.lo / 8.0)),
            wic * (w.ext_write_msgs.hi + w.ext_write_bytes.hi / 8.0)
                + w.ext_write_msgs.hi * hl
                + w_wire_hi * (1.0 / link_bpc + 1.0 / elink_bpc),
        );

        // DMA: the core pays descriptor setup; the upper bound also
        // charges the engine's full transfer (request, SDRAM row miss,
        // reply wire through eLink + cMesh + landing bank port) since
        // a dma_wait may stall until exactly that completes.
        let d_wire_hi = w.dma_bytes.hi + 8.0 * w.dma_msgs.hi;
        let d_wire_lo = w.dma_bytes.lo + 8.0 * w.dma_msgs.lo;
        s.add(
            w.dma_msgs.lo * p.dma_setup_cycles as f64,
            w.dma_msgs.hi * (p.dma_setup_cycles as f64 + 2.0 * hl + 2.0 + row_miss)
                + d_wire_hi * (2.0 / link_bpc + 1.0 / elink_bpc),
        );

        // Flag waits: 1..=flag_poll_max_polls polls, flag_poll_cycles
        // each. The stall beyond the polls is another core's counted
        // work or a counted flight.
        s.add(
            w.flag_waits.lo * p.flag_poll_cycles as f64,
            w.flag_waits.hi * (p.flag_poll_max_polls * p.flag_poll_cycles) as f64,
        );

        // Barriers: base cost on every participant.
        let bar = (ph.barriers * p.barrier_base_cycles) as f64;
        s.add(bar, bar);

        // Link loads: read/DMA requests ride the rMesh (1 cycle per
        // transaction per link), replies ride the cMesh from the eLink
        // node, off-chip writes ride the xMesh toward it.
        let req_lo = w.ext_read_msgs.lo + w.dma_msgs.lo;
        let req_hi = w.ext_read_msgs.hi + w.dma_msgs.hi;
        load_route(&mut links_lo, mesh, 1, w.core, elink.raw(), req_lo);
        load_route(&mut links_hi, mesh, 1, w.core, elink.raw(), req_hi);
        load_route(
            &mut links_lo,
            mesh,
            0,
            elink.raw(),
            w.core,
            (r_wire_lo + d_wire_lo) / link_bpc,
        );
        load_route(
            &mut links_hi,
            mesh,
            0,
            elink.raw(),
            w.core,
            (r_wire_hi + d_wire_hi) / link_bpc,
        );
        load_route(
            &mut links_lo,
            mesh,
            2,
            w.core,
            elink.raw(),
            w_wire_lo / link_bpc,
        );
        load_route(
            &mut links_hi,
            mesh,
            2,
            w.core,
            elink.raw(),
            w_wire_hi / link_bpc,
        );

        // eLink occupancy: one request slot per read/DMA plus every
        // wire (reply payloads and write payloads) at eLink width.
        elink_occ.add(
            req_lo + (r_wire_lo + d_wire_lo + w_wire_lo) / elink_bpc,
            req_hi + (r_wire_hi + d_wire_hi + w_wire_hi) / elink_bpc,
        );

        // Energy terms (exact counter mirrors; scaled by rounds).
        energy.fpu.add(
            fpu_slots(&w.ops_lo, p) * rounds,
            fpu_slots(&w.ops_hi, p) * rounds,
        );
        energy.ialu.add(
            (ls_slots(&w.ops_lo, p) + w.flag_waits.lo) * rounds,
            (ls_slots(&w.ops_hi, p) + w.flag_waits.hi * p.flag_poll_max_polls as f64) * rounds,
        );
        energy.local.add(
            (w.ops_lo.loads + w.ops_lo.stores) as f64 * rounds,
            (w.ops_hi.loads + w.ops_hi.stores) as f64 * rounds,
        );
        energy.byte_hops.add(
            (8.0 * req_lo + r_wire_lo + d_wire_lo + w_wire_lo) * hops * rounds,
            (8.0 * req_hi + r_wire_hi + d_wire_hi + w_wire_hi) * hops * rounds,
        );
        energy.offchip_bytes.add(
            (w.ext_read_bytes.lo + w.ext_write_bytes.lo + w.dma_bytes.lo) * rounds,
            (w.ext_read_bytes.hi + w.ext_write_bytes.hi + w.dma_bytes.hi) * rounds,
        );
    }

    // On-chip traffic: sender issue cycles, cMesh link loads along the
    // XY route, and a flight-latency allowance in the upper bound.
    for t in &ph.traffic {
        let src = mesh.coord(emesh::NodeId(t.from as u16));
        let dst = mesh.coord(emesh::NodeId(t.to as u16));
        let hops = f64::from(src.manhattan(dst));
        let wire_lo = t.bytes.lo + 8.0 * t.messages.lo;
        let wire_hi = t.bytes.hi + 8.0 * t.messages.hi;
        let s = serial.entry(t.from).or_default();
        s.add(
            wic * t.messages.lo.max(t.bytes.lo / 8.0),
            wic * (t.messages.hi + t.bytes.hi / 8.0),
        );
        load_route(&mut links_lo, mesh, 0, t.from, t.to, wire_lo / link_bpc);
        load_route(&mut links_hi, mesh, 0, t.from, t.to, wire_hi / link_bpc);
        // Hop latency of each message plus one landing-bank port hold.
        flight_hi += t.messages.hi * (hops.max(1.0) * hop_lat + 1.0) + wire_hi / link_bpc;
        energy
            .byte_hops
            .add(wire_lo * hops * rounds, wire_hi * hops * rounds);
    }

    let core_lo_max = serial.values().map(|a| a.lo).fold(0.0, f64::max);
    let core_hi_sum: f64 = serial.values().map(|a| a.hi).sum();
    let link_lo_max = links_lo.values().copied().fold(0.0, f64::max);
    let link_hi_max = links_hi.values().copied().fold(0.0, f64::max);
    let link_hi_sum: f64 = links_hi.values().sum();

    let round_lo = core_lo_max.max(link_lo_max).max(elink_occ.lo);
    let round_hi = core_hi_sum + link_hi_sum + elink_occ.hi + flight_hi;

    let mut per_core_mid: Vec<(usize, f64)> = serial
        .iter()
        .map(|(&core, a)| (core, a.bound().mid()))
        .collect();
    per_core_mid.sort_unstable_by_key(|&(core, _)| core);

    PhaseCost {
        name: ph.name.clone(),
        rounds: ph.rounds,
        cycles: Bound::range(round_lo * rounds, round_hi * rounds),
        compute: comp_max.bound(),
        link: Bound::range(link_lo_max, link_hi_max),
        offchip: elink_occ.bound(),
        per_core_mid,
    }
}

/// Bounds for a declared workload on the Epiphany chip model.
pub fn epiphany_cost(model: &ProgramModel, p: &EpiphanyParams) -> CostReport {
    let mesh = Mesh2D::new(model.mesh.0.max(1), model.mesh.1.max(1));
    let pairing = model
        .pairing_efficiency
        .unwrap_or(p.pairing_efficiency)
        .max(1e-6);

    let mut energy = EnergyAcc::default();
    let mut cycles = Acc::default();
    let mut phases = Vec::new();

    for ph in &model.workload {
        let pc = epiphany_phase(ph, p, &mesh, pairing, &mut energy);
        cycles.add(pc.cycles.lo, pc.cycles.hi);
        phases.push(pc);
    }
    let EnergyAcc {
        fpu: fpu_e,
        ialu: ialu_e,
        local: local_e,
        byte_hops,
        offchip_bytes,
    } = energy;

    let pj = 1e-12;
    let hz = p.clock.hz().max(1.0);
    let seconds = Bound::range(cycles.lo / hz, cycles.hi / hz);
    let compute_j = Bound::range(
        (fpu_e.lo * p.pj_per_flop + ialu_e.lo * p.pj_per_ialu) * pj,
        (fpu_e.hi * p.pj_per_flop + ialu_e.hi * p.pj_per_ialu) * pj,
    );
    let sram_j = local_e.bound().scaled(p.pj_per_local_access * pj);
    let mesh_j = byte_hops.bound().scaled(p.pj_per_mesh_byte_hop * pj);
    let elink_j = offchip_bytes.bound().scaled(p.pj_per_elink_byte * pj);
    let sdram_j = offchip_bytes.bound().scaled(p.pj_per_sdram_byte * pj);
    let static_w = p.static_w_per_core * p.cores() as f64 + p.static_w_chip;
    let static_j = seconds.scaled(static_w);
    let total_j = compute_j + sram_j + mesh_j + elink_j + sdram_j + static_j;

    CostReport {
        bounded: true,
        cycles: cycles.bound(),
        seconds,
        compute_j,
        sram_j,
        mesh_j,
        elink_j,
        sdram_j,
        static_j,
        total_j,
        phases,
    }
}

/// Bounds for a declared workload on the reference-CPU model: compute
/// at sustained IPC plus latency-priced special functions; memory
/// stalls bracketed between all-L1 (zero beyond-L1 stall) and every
/// declared cache-line touch missing to DRAM, divided by the MLP the
/// out-of-order window extracts. Energy is the paper's flat datasheet
/// power over the makespan, carried on the `static` channel.
pub fn refcpu_cost(model: &ProgramModel, p: &RefCpuParams) -> CostReport {
    let ipc = model.sustained_ipc.unwrap_or(p.sustained_ipc).max(1e-6);
    let special = |ops: &OpCounts| {
        (ops.sqrts * p.sqrt_cycles + ops.divs * p.div_cycles + ops.trigs * p.trig_cycles) as f64
    };
    let comp = |ops: &OpCounts| ops.instrs_no_fma() as f64 / ipc + special(ops);
    let stall_per_line = p.hierarchy.dram_cycles as f64 / p.mlp.max(1e-6);

    let mut cycles = Acc::default();
    let mut phases = Vec::new();
    for ph in &model.workload {
        let rounds = ph.rounds as f64;
        let mut round = Acc::default();
        let mut pure = Acc::default();
        let mut stall_hi = 0.0f64;
        let mut per_core_mid = Vec::new();
        for w in &ph.work {
            let lo = comp(&w.ops_lo);
            let hi = comp(&w.ops_hi) + w.mem_accesses.hi * stall_per_line;
            stall_hi += w.mem_accesses.hi * stall_per_line;
            round.add(lo, hi);
            pure.add(lo, comp(&w.ops_hi));
            per_core_mid.push((w.core, 0.5 * (lo + hi)));
        }
        cycles.add(round.lo * rounds, round.hi * rounds);
        phases.push(PhaseCost {
            name: ph.name.clone(),
            rounds: ph.rounds,
            cycles: Bound::range(round.lo * rounds, round.hi * rounds),
            compute: pure.bound(),
            link: Bound::zero(),
            offchip: Bound::range(0.0, stall_hi),
            per_core_mid,
        });
    }
    // The run's elapsed cycle count is the ceiling of the float cursor.
    cycles.hi += 1.0;

    let hz = p.clock.hz().max(1.0);
    let seconds = Bound::range(cycles.lo / hz, cycles.hi / hz);
    let static_j = seconds.scaled(p.power_w);
    CostReport {
        bounded: true,
        cycles: cycles.bound(),
        seconds,
        compute_j: Bound::zero(),
        sram_j: Bound::zero(),
        mesh_j: Bound::zero(),
        elink_j: Bound::zero(),
        sdram_j: Bound::zero(),
        static_j,
        total_j: static_j,
        phases,
    }
}

/// Run the cost lints over a bounded report: `SL013` link
/// oversubscription, `SL014` off-chip wall, `SL015` load imbalance.
/// All are warnings — a slow mapping is a smell, not an invariant
/// violation.
pub fn lint(cost: &CostReport, report: &mut Report) {
    for ph in &cost.phases {
        let compute = ph.compute.mid().max(1e-9);
        let link = ph.link.mid();
        if link > LINK_OVERSUBSCRIPTION_RATIO * compute && link > 0.0 {
            report.push(Diagnostic::warning(
                "SL013",
                ph.name.clone(),
                format!(
                    "busiest mesh link serialises ~{link:.0} cycles/round against \
                     ~{compute:.0} cycles/round of core work: the phase is \
                     network-bound, not compute-bound"
                ),
            ));
        }
        let offchip = ph.offchip.mid();
        if offchip > OFFCHIP_WALL_RATIO * compute && offchip > 0.0 {
            report.push(Diagnostic::warning(
                "SL014",
                ph.name.clone(),
                format!(
                    "off-chip path occupied ~{offchip:.0} cycles/round against \
                     ~{compute:.0} cycles/round of core work: the eLink/SDRAM \
                     wall paces this phase"
                ),
            ));
        }
        let busy: Vec<f64> = ph
            .per_core_mid
            .iter()
            .map(|&(_, c)| c)
            .filter(|&c| c > 0.0)
            .collect();
        if busy.len() >= 2 {
            let max = busy.iter().copied().fold(0.0, f64::max);
            let mean = busy.iter().sum::<f64>() / busy.len() as f64;
            if mean > 0.0 && max / mean > IMBALANCE_RATIO {
                report.push(Diagnostic::warning(
                    "SL015",
                    ph.name.clone(),
                    format!(
                        "per-core work is imbalanced: busiest core ~{max:.0} \
                         cycles/round vs mean ~{mean:.0} (ratio {:.1} > {IMBALANCE_RATIO}); \
                         idle cores still burn static power",
                        max / mean
                    ),
                ));
            }
        }
    }
}

/// Price an already-built [`ProgramModel`] on `platform` — the
/// placement-search entry point: the autotuner builds one model per
/// candidate placement and re-prices it here without resolving a
/// mapping each time. Models without workload declarations (and
/// wall-clock platforms) get the vacuous unbounded report.
pub fn cost_model(model: &ProgramModel, platform: &dyn Platform) -> CostReport {
    if !model.has_workload() {
        return CostReport::unbounded();
    }
    match platform.kind() {
        PlatformKind::Epiphany => {
            epiphany_cost(model, &platform.epiphany_params().unwrap_or_default())
        }
        PlatformKind::RefCpu => refcpu_cost(model, &platform.refcpu_params().unwrap_or_default()),
        PlatformKind::Host => CostReport::unbounded(),
    }
}

/// Cost one registered Mapping × Platform pair: resolve the model,
/// evaluate the platform's analytical bounds, and run the cost lints.
/// Pairs without workload declarations (host threads, model-less
/// mappings) get the vacuous unbounded report plus an `SL000` note.
pub fn cost_pair(
    mapping: &dyn Mapping,
    workload: &Workload,
    platform: &dyn Platform,
) -> (CostReport, Report) {
    let mut report = Report::new();
    let subject = format!("{} x {}", mapping.name(), platform.label());
    let model = mapping
        .program_model(workload, platform)
        .filter(ProgramModel::has_workload);
    let Some(model) = model else {
        report.push(Diagnostic::note(
            "SL000",
            subject,
            "no per-phase workload declarations; cost bounds are vacuous".to_string(),
        ));
        return (CostReport::unbounded(), report);
    };
    let cost = cost_model(&model, platform);
    if cost.bounded {
        lint(&cost, &mut report);
    } else {
        report.push(Diagnostic::note(
            "SL000",
            subject,
            "wall-clock platform; no analytical cost model".to_string(),
        ));
    }
    (cost, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_harness::WorkDecl;

    fn exact_work(core: usize, flops: u64) -> WorkDecl {
        let mut w = WorkDecl::new(core);
        w.exact_ops(OpCounts {
            flops,
            ..OpCounts::default()
        });
        w.compute_calls = Bound::exact(1.0);
        w
    }

    #[test]
    fn compute_only_phase_brackets_the_pairing_window() {
        let mut m = ProgramModel::new(4, 4);
        let ph = m.phase("p", 2);
        ph.work.push(exact_work(0, 800));
        let p = EpiphanyParams::default();
        let cost = epiphany_cost(&m, &p);
        assert!(cost.bounded);
        // 800 FPU slots at 0.8 pairing = 1000 cycles/round, 2 rounds.
        assert!(cost.cycles.contains(2000.0), "{:?}", cost.cycles);
        assert!(cost.cycles.lo <= 2000.0 && cost.cycles.hi >= 2000.0);
        // Energy: exactly 1600 flops * 50 pJ plus statics.
        let flop_j = 1600.0 * 50.0e-12;
        assert!(cost.compute_j.contains(flop_j), "{:?}", cost.compute_j);
    }

    #[test]
    fn oversubscribed_link_is_sl013() {
        let mut m = ProgramModel::new(4, 4);
        let ph = m.phase("p", 1);
        ph.work.push(exact_work(0, 10));
        ph.work.push(exact_work(1, 10));
        // A torrent of traffic through one link against trivial compute.
        ph.traffic.push(sim_harness::TrafficDecl {
            from: 0,
            to: 1,
            messages: Bound::exact(1000.0),
            bytes: Bound::exact(8000.0),
        });
        let cost = epiphany_cost(&m, &EpiphanyParams::default());
        let mut r = Report::new();
        lint(&cost, &mut r);
        assert!(r.has_code("SL013"), "{:?}", r.diagnostics);
        assert!(r.is_clean(), "cost lints stay warnings");
    }

    #[test]
    fn offchip_wall_is_sl014() {
        let mut m = ProgramModel::new(4, 4);
        let ph = m.phase("p", 1);
        let mut w = exact_work(0, 10);
        w.ext_write_msgs = Bound::exact(1000.0);
        w.ext_write_bytes = Bound::exact(64000.0);
        ph.work.push(w);
        let cost = epiphany_cost(&m, &EpiphanyParams::default());
        let mut r = Report::new();
        lint(&cost, &mut r);
        assert!(r.has_code("SL014"), "{:?}", r.diagnostics);
    }

    #[test]
    fn load_imbalance_is_sl015() {
        let mut m = ProgramModel::new(4, 4);
        let ph = m.phase("p", 1);
        ph.work.push(exact_work(0, 100_000));
        ph.work.push(exact_work(1, 10));
        ph.work.push(exact_work(2, 10));
        let cost = epiphany_cost(&m, &EpiphanyParams::default());
        let mut r = Report::new();
        lint(&cost, &mut r);
        assert!(r.has_code("SL015"), "{:?}", r.diagnostics);
    }

    #[test]
    fn balanced_compute_phase_has_no_findings() {
        let mut m = ProgramModel::new(4, 4);
        let ph = m.phase("p", 1);
        ph.work.push(exact_work(0, 1000));
        ph.work.push(exact_work(1, 1000));
        let cost = epiphany_cost(&m, &EpiphanyParams::default());
        let mut r = Report::new();
        lint(&cost, &mut r);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn refcpu_stall_bracket_is_zero_to_all_dram() {
        let mut m = ProgramModel::new(1, 1);
        let ph = m.phase("p", 1);
        let mut w = exact_work(0, 1000);
        w.mem_accesses = Bound::range(10.0, 30.0);
        ph.work.push(w);
        let p = RefCpuParams::default();
        let cost = refcpu_cost(&m, &p);
        let base = 1000.0 / p.sustained_ipc;
        assert!(cost.cycles.lo <= base + 1.0);
        let all_dram = base + 30.0 * p.hierarchy.dram_cycles as f64 / p.mlp;
        assert!(cost.cycles.hi >= all_dram, "{:?}", cost.cycles);
        // Energy is the flat datasheet power over the time bracket.
        assert!(cost.total_j.lo > 0.0);
        assert!((cost.total_j.hi - cost.seconds.hi * p.power_w).abs() < 1e-12);
    }

    #[test]
    fn unbounded_report_contains_everything() {
        let c = CostReport::unbounded();
        assert!(!c.bounded);
        assert!(c.cycles.contains(0.0) && c.cycles.contains(1e18));
        assert!(c.total_j.contains(123.0));
        // JSON renders infinities as null, keeping the document valid.
        let j = c.to_json();
        let hi = j.get("cycles").and_then(|b| b.get("hi")).unwrap();
        assert!(matches!(hi, Json::Null));
    }
}
