//! Check 3 — placement lint (`SL005`): pipeline channels must stay
//! within the neighbourhood the paper's §V-B mapping was designed
//! around. Every hop adds mesh latency and byte-hop energy, so the
//! analyzer flags any channel longer than [`HOP_BUDGET`] as a hard
//! diagnostic naming the offending hop, and any non-adjacent channel
//! (distance > 1) as a warning.

use sim_harness::{Diagnostic, ProgramModel, Report};

/// Longest acceptable producer→consumer Manhattan distance. The
/// paper's neighbour placement keeps every stage-to-stage link within
/// a column move plus the final fold into the correlator — at most 4
/// hops on the 4×4 mesh; anything longer means stages were scattered.
pub const HOP_BUDGET: u16 = 4;

/// Run the placement lint.
pub fn check(model: &ProgramModel, report: &mut Report) {
    let (cols, rows) = model.mesh;
    let nodes = usize::from(cols) * usize::from(rows);
    for ch in &model.channels {
        if ch.from >= nodes || ch.to >= nodes {
            report.push(Diagnostic::hard(
                "SL005",
                ch.label.clone(),
                format!(
                    "endpoint off the {cols}x{rows} mesh: {} -> {}",
                    ch.from, ch.to
                ),
            ));
            continue;
        }
        let d = model.manhattan(ch.from, ch.to);
        let (fx, fy) = model.node_xy(ch.from);
        let (tx, ty) = model.node_xy(ch.to);
        // Spell the dimension-ordered route the eMesh will take: the
        // full x leg first, then the y leg (shared arithmetic with the
        // cost model via `emesh`).
        let (dx, dy) = model.xy_legs(ch.from, ch.to);
        let hop = format!(
            "core {} ({fx},{fy}) -> core {} ({tx},{ty}) is {d} hops \
             (XY route: {dx} along x, then {dy} along y)",
            ch.from, ch.to
        );
        if d > HOP_BUDGET {
            report.push(Diagnostic::hard(
                "SL005",
                ch.label.clone(),
                format!("{hop} (> {HOP_BUDGET} hop budget): stages are scattered"),
            ));
        } else if d > 1 {
            report.push(Diagnostic::warning(
                "SL005",
                ch.label.clone(),
                format!("{hop}: not a direct neighbour"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(m: &mut ProgramModel, from: usize, to: usize) {
        m.channel(format!("c{from}->{to}"), from, to);
    }

    #[test]
    fn neighbours_are_silent_and_short_hops_warn() {
        let mut m = ProgramModel::new(4, 4);
        chan(&mut m, 0, 1); // 1 hop
        chan(&mut m, 1, 2); // 1 hop
        chan(&mut m, 2, 13); // (2,0)->(1,3): 4 hops — budget edge
        let mut r = Report::new();
        check(&m, &mut r);
        assert!(r.is_clean());
        // Exactly one warning: the 4-hop fold into the correlator.
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].severity, sim_harness::Severity::Warning);
    }

    #[test]
    fn scattered_hops_are_hard_sl005_naming_the_hop() {
        let mut m = ProgramModel::new(4, 4);
        chan(&mut m, 0, 14); // (0,0)->(2,3): 5 hops
        let mut r = Report::new();
        check(&m, &mut r);
        assert_eq!(r.hard_count(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "SL005");
        assert!(d.message.contains("(0,0)") && d.message.contains("(2,3)"));
        assert!(d.message.contains("5 hops"));
        // The dimension-ordered legs the eMesh would route.
        assert!(
            d.message.contains("2 along x") && d.message.contains("3 along y"),
            "{}",
            d.message
        );
    }

    #[test]
    fn off_mesh_endpoints_are_hard() {
        let mut m = ProgramModel::new(2, 2);
        chan(&mut m, 0, 9);
        let mut r = Report::new();
        check(&m, &mut r);
        assert_eq!(r.hard_count(), 1);
        assert!(r.has_code("SL005"));
    }
}
