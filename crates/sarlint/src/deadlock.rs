//! Check 2 — deadlock (`SL003`, `SL004`): the streaming channel graph
//! must be acyclic (a cycle of blocking producers/consumers never
//! fires), and every channel must hold enough credits for one producer
//! firing (a producer posting more tokens than the consumer side
//! buffers wedges on the first round).

use std::collections::BTreeMap;

use sim_harness::{Diagnostic, ProgramModel, Report};

/// Run the deadlock check.
pub fn check(model: &ProgramModel, report: &mut Report) {
    // Credit sufficiency per channel.
    for ch in &model.channels {
        if ch.capacity_tokens < ch.tokens_per_firing {
            report.push(Diagnostic::hard(
                "SL004",
                ch.label.clone(),
                format!(
                    "channel holds {} credit(s) but one firing posts {} token(s): \
                     the producer blocks before the consumer can drain",
                    ch.capacity_tokens, ch.tokens_per_firing
                ),
            ));
        }
    }

    // Cycle detection: Kahn's algorithm over the cores that carry
    // channels; whatever survives elimination sits on a cycle.
    let mut indegree: BTreeMap<usize, usize> = BTreeMap::new();
    for ch in &model.channels {
        indegree.entry(ch.from).or_insert(0);
        *indegree.entry(ch.to).or_insert(0) += 1;
    }
    let mut queue: Vec<usize> = indegree
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    while let Some(n) = queue.pop() {
        indegree.remove(&n);
        for ch in model.channels.iter().filter(|c| c.from == n) {
            if let Some(d) = indegree.get_mut(&ch.to) {
                *d -= 1;
                if *d == 0 {
                    queue.push(ch.to);
                }
            }
        }
    }
    if !indegree.is_empty() {
        let stuck: Vec<usize> = indegree.keys().copied().collect();
        let witness = model
            .channels
            .iter()
            .find(|c| indegree.contains_key(&c.from) && indegree.contains_key(&c.to))
            .map_or_else(|| "<channel>".to_string(), |c| c.label.clone());
        report.push(Diagnostic::hard(
            "SL003",
            witness,
            format!(
                "channel graph has a cycle through cores {stuck:?}: \
                 every stage waits on its own downstream output"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(edges: &[(usize, usize)]) -> ProgramModel {
        let mut m = ProgramModel::new(4, 4);
        for &(a, b) in edges {
            m.channel(format!("c{a}->{b}"), a, b);
        }
        m
    }

    #[test]
    fn a_dag_passes() {
        let m = pipeline(&[(0, 1), (1, 2), (0, 2), (3, 2)]);
        let mut r = Report::new();
        check(&m, &mut r);
        assert!(r.is_clean() && r.diagnostics.is_empty());
    }

    #[test]
    fn a_cycle_is_sl003() {
        let m = pipeline(&[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let mut r = Report::new();
        check(&m, &mut r);
        assert_eq!(r.hard_count(), 1);
        assert!(r.has_code("SL003"));
        assert!(r.diagnostics[0].message.contains('0'));
    }

    #[test]
    fn a_self_loop_is_a_cycle() {
        let m = pipeline(&[(5, 5)]);
        let mut r = Report::new();
        check(&m, &mut r);
        assert!(r.has_code("SL003"));
    }

    #[test]
    fn starved_credits_are_sl004() {
        let mut m = pipeline(&[(0, 1)]);
        m.channels[0].capacity_tokens = 0;
        let mut r = Report::new();
        check(&m, &mut r);
        assert_eq!(r.hard_count(), 1);
        assert!(r.has_code("SL004"));
    }
}
