//! Check 5 — undeclared fault recovery (`SL011`/`SL012`): any
//! producer→consumer channel (`SL011`) or consumer-side flag wait
//! (`SL012`) with no declared recovery policy is one lost message away
//! from hanging the pipeline. The fault injector (`faultsim`) can drop
//! or delay exactly these flag writes, so a mapping that intends to
//! survive `run --faults` must say how — `"retry_backoff"`,
//! `"checkpoint_restart"`, `"drain_restart"`, or a combination — via
//! [`ProgramModel::declare_recovery`]. Both findings are warnings:
//! a recovery-free mapping is still valid on a fault-free machine.

use sim_harness::{Diagnostic, ProgramModel, Report};

/// Run the recovery-coverage check.
pub fn check(model: &ProgramModel, report: &mut Report) {
    for c in &model.channels {
        if c.recovery.is_none() {
            report.push(Diagnostic::warning(
                "SL011",
                c.label.clone(),
                format!(
                    "channel {} -> {} declares no recovery policy: one dropped \
                     flag write stalls the consumer forever under fault injection",
                    c.from, c.to
                ),
            ));
        }
    }
    for f in &model.flags {
        if f.waits > 0 && f.recovery.is_none() {
            report.push(Diagnostic::warning(
                "SL012",
                f.label.clone(),
                format!(
                    "core {} waits on a flag with no recovery policy: a lost \
                     set from core {} is unrecoverable",
                    f.waiter, f.setter
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_harness::{FlagDecl, Severity};

    fn checked(m: &ProgramModel) -> Report {
        let mut r = Report::new();
        check(m, &mut r);
        r
    }

    #[test]
    fn covered_channels_and_flags_pass() {
        let mut m = ProgramModel::new(4, 4);
        m.channel("a->b", 0, 1);
        m.declare_recovery("a->b", "retry_backoff");
        let r = checked(&m);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn an_uncovered_channel_warns_sl011_and_sl012() {
        let mut m = ProgramModel::new(4, 4);
        m.channel("a->b", 0, 1);
        let r = checked(&m);
        // The channel itself and its protocol flag.
        assert!(r.has_code("SL011"));
        assert!(r.has_code("SL012"));
        assert!(
            r.diagnostics
                .iter()
                .all(|d| d.severity == Severity::Warning),
            "recovery findings are warnings, never hard: {:?}",
            r.diagnostics
        );
        assert!(r.is_clean());
    }

    #[test]
    fn a_set_only_flag_does_not_warn() {
        // No wait, no hang: nothing to recover.
        let mut m = ProgramModel::new(4, 4);
        m.flags.push(FlagDecl {
            label: "post".into(),
            setter: 0,
            waiter: 0,
            sets: 1,
            waits: 0,
            recovery: None,
        });
        assert!(checked(&m).diagnostics.is_empty());
    }
}
