//! A sequential stream prefetcher.
//!
//! Modern Intel cores detect ascending/descending line-granular streams
//! and pull lines ahead of the demand stream; the paper names this
//! ("prefetching mechanisms combined with three levels of caches") as
//! the reason the i7 beats a single Epiphany core on FFBP. The model
//! keeps a small table of recent streams; once a stream is confirmed by
//! `confirm_after` consecutive line accesses it prefetches `depth`
//! lines ahead.

/// A detected access stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Next expected line index.
    next_line: u64,
    /// +1 or -1 line per access.
    dir: i64,
    /// Consecutive confirmations so far.
    hits: u32,
    /// Replacement age.
    last_used: u64,
}

/// Stream prefetcher over line indices (`addr / line_bytes` is done by
/// the caller's hierarchy so the prefetcher is line-size agnostic).
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Option<Stream>>,
    confirm_after: u32,
    depth: u32,
    tick: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// `table_size` concurrent streams, confirmed after `confirm_after`
    /// sequential accesses, prefetching `depth` lines ahead.
    pub fn new(table_size: usize, confirm_after: u32, depth: u32) -> StreamPrefetcher {
        assert!(table_size > 0, "need at least one stream slot");
        StreamPrefetcher {
            streams: vec![None; table_size],
            confirm_after,
            depth,
            tick: 0,
            issued: 0,
        }
    }

    /// Intel-like defaults: 16 streams, confirm on the 2nd access,
    /// run 4 lines ahead.
    pub fn intel_like() -> StreamPrefetcher {
        StreamPrefetcher::new(16, 2, 4)
    }

    /// Observe a demand access to `line`; returns the lines to prefetch
    /// (possibly empty).
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        self.tick += 1;
        // Match an existing stream expecting this line.
        for slot in self.streams.iter_mut().flatten() {
            if slot.next_line == line {
                slot.hits += 1;
                slot.last_used = self.tick;
                slot.next_line = line.wrapping_add_signed(slot.dir);
                if slot.hits >= self.confirm_after {
                    let out: Vec<u64> = (1..=self.depth as u64)
                        .map(|k| line.wrapping_add_signed(slot.dir * k as i64))
                        .collect();
                    self.issued += out.len() as u64;
                    return out;
                }
                return Vec::new();
            }
        }
        // New stream hypotheses in both directions: allocate ascending
        // (the common case); a descending access pattern will allocate
        // on its second miss via the `line-1` expectation below.
        self.allocate(line.wrapping_add(1), 1);
        if line > 0 {
            self.allocate(line - 1, -1);
        }
        Vec::new()
    }

    fn allocate(&mut self, next_line: u64, dir: i64) {
        let slot = self
            .streams
            .iter_mut()
            .min_by_key(|s| s.map_or(0, |s| s.last_used))
            .expect("table_size > 0");
        *slot = Some(Stream {
            next_line,
            dir,
            hits: 1,
            last_used: self.tick,
        });
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Forget all streams.
    pub fn reset(&mut self) {
        self.streams.iter_mut().for_each(|s| *s = None);
        self.tick = 0;
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_stream_confirms_and_prefetches() {
        let mut p = StreamPrefetcher::new(4, 2, 4);
        assert!(p.observe(100).is_empty()); // allocate (counts as 1st access)
                                            // 2nd sequential access confirms the stream and prefetches.
        assert_eq!(p.observe(101), vec![102, 103, 104, 105]);
        assert_eq!(p.observe(102), vec![103, 104, 105, 106]);
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = StreamPrefetcher::new(4, 2, 2);
        p.observe(200);
        p.observe(199);
        let pf = p.observe(198);
        assert_eq!(pf, vec![197, 196]);
    }

    #[test]
    fn random_accesses_never_confirm() {
        let mut p = StreamPrefetcher::new(8, 2, 4);
        for line in [5u64, 900, 13, 77, 4096, 2, 555, 31] {
            assert!(p.observe(line).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn confirmed_stream_keeps_prefetching() {
        let mut p = StreamPrefetcher::new(4, 2, 1);
        p.observe(0);
        p.observe(1);
        let mut total = 0;
        for line in 2..50u64 {
            total += p.observe(line).len();
        }
        assert_eq!(total, 48);
    }

    #[test]
    fn table_replacement_is_lru() {
        let mut p = StreamPrefetcher::new(2, 2, 1);
        // Each observe of a fresh line allocates up to 2 hypotheses into
        // a 2-slot table, evicting older streams; just ensure no panic
        // and no spurious prefetch.
        for line in (0..20u64).map(|i| i * 1000) {
            assert!(p.observe(line).is_empty());
        }
    }

    #[test]
    fn reset_forgets_streams() {
        let mut p = StreamPrefetcher::new(4, 2, 2);
        p.observe(10);
        p.observe(11);
        p.reset();
        assert!(p.observe(12).is_empty());
        assert_eq!(p.issued(), 0);
    }
}
