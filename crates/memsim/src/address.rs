//! The Epiphany 32-bit global address map.
//!
//! Every core's 32 KB local store, its registers and the external DRAM
//! window live in a single flat 32-bit space. A global address encodes
//! the owning mesh node in its top twelve bits: six bits of row and six
//! bits of column (`addr[31:26] = row`, `addr[25:20] = col`), leaving a
//! 1 MB window per node of which the low 32 KB is the local store.
//! Row/col `(0,0)` (top bits zero) aliases the issuing core's own local
//! space. External SDRAAM on the evaluation board is mapped through a
//! dedicated window (we follow the common `0x8E00_0000` convention).

/// A 32-bit Epiphany global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalAddr(pub u32);

/// Base of the external-memory window on the evaluation board.
pub const EXTERNAL_BASE: u32 = 0x8E00_0000;
/// Size of the external-memory window (32 MB on the EMEK3 board).
pub const EXTERNAL_SIZE: u32 = 0x0200_0000;
/// Bytes of local store per core.
pub const LOCAL_STORE_BYTES: u32 = 32 * 1024;

impl GlobalAddr {
    /// Compose a global address for node `(row, col)` and byte `offset`
    /// within its 1 MB window.
    ///
    /// # Panics
    /// If `row`/`col` exceed six bits or `offset` exceeds 20 bits.
    pub fn from_parts(row: u8, col: u8, offset: u32) -> GlobalAddr {
        assert!(row < 64 && col < 64, "row/col must fit in 6 bits");
        assert!(offset < (1 << 20), "offset must fit in 20 bits");
        GlobalAddr(((row as u32) << 26) | ((col as u32) << 20) | offset)
    }

    /// An address inside the external (off-chip) window.
    ///
    /// # Panics
    /// If `offset` exceeds the window.
    pub fn external(offset: u32) -> GlobalAddr {
        assert!(offset < EXTERNAL_SIZE, "offset outside external window");
        GlobalAddr(EXTERNAL_BASE + offset)
    }

    /// Mesh row encoded in the address.
    pub fn row(self) -> u8 {
        (self.0 >> 26) as u8
    }

    /// Mesh column encoded in the address.
    pub fn col(self) -> u8 {
        ((self.0 >> 20) & 0x3F) as u8
    }

    /// Byte offset within the owning node's window.
    pub fn offset(self) -> u32 {
        self.0 & 0x000F_FFFF
    }

    /// Whether the top bits are zero: the address aliases the issuing
    /// core's own local space.
    pub fn is_core_local_alias(self) -> bool {
        (self.0 >> 20) == 0
    }

    /// Whether the address falls in the external-memory window.
    pub fn is_external(self) -> bool {
        (EXTERNAL_BASE..EXTERNAL_BASE + EXTERNAL_SIZE).contains(&self.0)
    }

    /// Whether the offset lies within the 32 KB local store (as opposed
    /// to the memory-mapped register space higher in the window).
    pub fn in_local_store(self) -> bool {
        self.offset() < LOCAL_STORE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_and_decompose() {
        let a = GlobalAddr::from_parts(2, 3, 0x1234);
        assert_eq!(a.row(), 2);
        assert_eq!(a.col(), 3);
        assert_eq!(a.offset(), 0x1234);
        assert!(!a.is_core_local_alias());
        assert!(!a.is_external());
        assert!(a.in_local_store());
    }

    #[test]
    fn zero_top_bits_alias_local() {
        let a = GlobalAddr(0x0000_4000);
        assert!(a.is_core_local_alias());
        assert!(a.in_local_store());
        let b = GlobalAddr(0x0000_8000); // 32 KB: past local store
        assert!(!b.in_local_store());
    }

    #[test]
    fn external_window() {
        let a = GlobalAddr::external(0);
        assert!(a.is_external());
        let b = GlobalAddr::external(EXTERNAL_SIZE - 1);
        assert!(b.is_external());
        let c = GlobalAddr(EXTERNAL_BASE - 1);
        assert!(!c.is_external());
    }

    #[test]
    #[should_panic(expected = "6 bits")]
    fn oversize_row_rejected() {
        let _ = GlobalAddr::from_parts(64, 0, 0);
    }

    #[test]
    #[should_panic(expected = "outside external window")]
    fn external_bounds_checked() {
        let _ = GlobalAddr::external(EXTERNAL_SIZE);
    }
}
