//! A functional set-associative write-back, write-allocate LRU cache.
//!
//! Timing lives in [`crate::hierarchy`]; this module only answers
//! "hit or miss, and did we evict a dirty line".

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Line was present.
    Hit,
    /// Line was absent; `dirty_writeback` reports whether the evicted
    /// victim must be written back.
    Miss {
        /// A dirty victim line was evicted.
        dirty_writeback: bool,
    },
}

impl CacheAccess {
    /// True for [`CacheAccess::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheAccess::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (monotone per cache).
    used: u64,
}

/// A set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: u32,
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Build a cache of `size_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    /// If the geometry is inconsistent (size not divisible into sets,
    /// or non-power-of-two line size).
    pub fn new(size_bytes: u32, line_bytes: u32, ways: usize) -> Cache {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways > 0, "need at least one way");
        let total_lines = (size_bytes / line_bytes) as usize;
        assert!(
            total_lines > 0 && total_lines.is_multiple_of(ways),
            "size {size_bytes} / line {line_bytes} not divisible into {ways} ways"
        );
        let sets = total_lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_bytes,
            sets,
            ways,
            lines: vec![Line::default(); total_lines],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes as u64;
        ((line as usize) & (self.sets - 1), line / self.sets as u64)
    }

    /// Access the line containing `addr`; `write` marks it dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.tick += 1;
        let (set, tag) = self.index_and_tag(addr);
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.used = self.tick;
            line.dirty |= write;
            self.hits += 1;
            return CacheAccess::Hit;
        }

        // Miss: fill, evicting the LRU way.
        self.misses += 1;
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.used } else { 0 })
            .expect("ways > 0");
        let dirty_writeback = victim.valid && victim.dirty;
        if dirty_writeback {
            self.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            used: self.tick,
        };
        CacheAccess::Miss { dirty_writeback }
    }

    /// Probe without modifying state (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index_and_tag(addr);
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Insert the line containing `addr` without counting a demand
    /// access (prefetch fill). Returns whether a dirty victim was
    /// evicted.
    pub fn fill(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let (set, tag) = self.index_and_tag(addr);
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.used = self.tick;
            return false;
        }
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.used } else { 0 })
            .expect("ways > 0");
        let dirty = victim.valid && victim.dirty;
        if dirty {
            self.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: false,
            used: self.tick,
        };
        dirty
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Demand hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidate everything and zero statistics.
    pub fn reset(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = Line::default());
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_access_hits() {
        let mut c = Cache::new(32 * 1024, 64, 8);
        assert!(!c.access(0x1000, false).is_hit());
        assert!(c.access(0x1000, false).is_hit());
        assert!(c.access(0x1030, false).is_hit()); // same 64 B line
        assert!(!c.access(0x1040, false).is_hit()); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped-ish tiny cache: 2 sets x 2 ways x 64 B.
        let mut c = Cache::new(256, 64, 2);
        assert_eq!(c.sets(), 2);
        // Three distinct lines mapping to set 0: 0, 128, 256 (line/sets).
        let s0 = |i: u64| i * 2 * 64; // stride of sets*line keeps set 0
        c.access(s0(0), false);
        c.access(s0(1), false);
        c.access(s0(0), false); // refresh line 0; line 1 is now LRU
        c.access(s0(2), false); // evicts line 1
        assert!(c.contains(s0(0)));
        assert!(!c.contains(s0(1)));
        assert!(c.contains(s0(2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(128, 64, 1); // 2 sets, direct mapped
        c.access(0, true); // dirty line in set 0
        let a = c.access(128, false); // same set, evicts dirty line
        assert_eq!(
            a,
            CacheAccess::Miss {
                dirty_writeback: true
            }
        );
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = Cache::new(128, 64, 1);
        c.access(0, false);
        let a = c.access(128, false);
        assert_eq!(
            a,
            CacheAccess::Miss {
                dirty_writeback: false
            }
        );
    }

    #[test]
    fn fill_inserts_without_demand_stats() {
        let mut c = Cache::new(32 * 1024, 64, 8);
        c.fill(0x2000);
        assert!(c.contains(0x2000));
        assert_eq!(c.misses(), 0);
        assert!(c.access(0x2000, false).is_hit());
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(1024, 64, 2);
        // 64 lines >> 16-line capacity, round robin: ~0% hit rate on
        // second pass too (LRU worst case).
        for pass in 0..2 {
            for i in 0..64u64 {
                let r = c.access(i * 64, false);
                let _ = (pass, r);
            }
        }
        assert!(c.hit_rate() < 0.01, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = Cache::new(32 * 1024, 64, 8);
        for _ in 0..10 {
            for i in 0..100u64 {
                c.access(i * 64, false);
            }
        }
        assert!(c.hit_rate() > 0.85, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn reset_invalidates() {
        let mut c = Cache::new(1024, 64, 2);
        c.access(0, true);
        c.reset();
        assert!(!c.contains(0));
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_rejected() {
        let _ = Cache::new(1024, 48, 2);
    }
}
