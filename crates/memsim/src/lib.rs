//! Memory subsystem models shared by the machine models.
//!
//! * [`address`] — the Epiphany 32-bit global address map (core mesh
//!   coordinates live in the top address bits; everything is memory
//!   mapped).
//! * [`sram`] — a core's 32 KB local store: four 8 KB single-ported
//!   banks; concurrent core/DMA/mesh accesses to the same bank conflict.
//! * [`sdram`] — board SDRAM behind the eLink: shared bandwidth, access
//!   latency, and a simple per-bank open-row model.
//! * [`cache`] — a set-associative write-back LRU cache (functional).
//! * [`prefetch`] — a sequential stream prefetcher (the mechanism the
//!   paper credits for the i7's FFBP advantage).
//! * [`hierarchy`] — L1/L2/L3 + DRAM hierarchy with per-level hit
//!   costs; used by the `refcpu` baseline model.

#![forbid(unsafe_code)]

pub mod address;
pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod sdram;
pub mod sram;

pub use address::GlobalAddr;
pub use cache::{Cache, CacheAccess};
pub use hierarchy::{HierarchyParams, LevelStats, MemoryHierarchy};
pub use prefetch::StreamPrefetcher;
pub use sdram::{Sdram, SdramParams};
pub use sram::{LocalStore, SramParams};
