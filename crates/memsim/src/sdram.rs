//! Board SDRAM behind the eLink.
//!
//! A deliberately simple DRAM model: a shared-bandwidth data bus, a
//! fixed access latency, and a per-bank open-row policy (row hits skip
//! the activate/precharge cost). It is the *latency and shared
//! bandwidth* that shape the paper's FFBP results; detailed DDR timing
//! does not change who wins.

use desim::trace::{Tracer, Track};
use desim::{Cycle, FifoResource};
use faultsim::FaultState;

/// SDRAM timing/geometry parameters (cycles are in the *core* clock
/// domain of the attached chip model).
#[derive(Debug, Clone, Copy)]
pub struct SdramParams {
    /// Data bus bandwidth in bytes per core cycle.
    pub bytes_per_cycle: u64,
    /// Access latency on a row hit.
    pub row_hit_cycles: u64,
    /// Access latency on a row miss (activate + precharge).
    pub row_miss_cycles: u64,
    /// Number of DRAM banks.
    pub banks: usize,
    /// Bytes per row.
    pub row_bytes: u32,
}

impl Default for SdramParams {
    fn default() -> Self {
        SdramParams {
            // The eLink caps off-chip traffic at 8 GB/s (= 8 B/cycle at
            // 1 GHz); the DRAM itself is provisioned slightly wider so
            // the eLink, not the DRAM, is the steady-state bottleneck,
            // as on the real board.
            bytes_per_cycle: 16,
            row_hit_cycles: 20,
            row_miss_cycles: 60,
            banks: 8,
            row_bytes: 2048,
        }
    }
}

/// Result of one SDRAM access.
#[derive(Debug, Clone, Copy)]
pub struct SdramAccess {
    /// Cycle the data transfer completes.
    pub done: Cycle,
    /// Whether the access hit an open row.
    pub row_hit: bool,
    /// Latency component (before data transfer).
    pub latency: Cycle,
}

/// The SDRAM device model.
pub struct Sdram {
    params: SdramParams,
    bus: FifoResource,
    open_rows: Vec<Option<u32>>,
    accesses: u64,
    row_hits: u64,
    bytes: u64,
    tracer: Tracer,
    faults: FaultState,
}

impl Sdram {
    /// Build the device.
    ///
    /// # Panics
    /// If the geometry is degenerate.
    pub fn new(params: SdramParams) -> Sdram {
        assert!(
            params.banks > 0 && params.row_bytes > 0,
            "invalid SDRAM geometry"
        );
        Sdram {
            params,
            bus: FifoResource::per_units(1, params.bytes_per_cycle),
            open_rows: vec![None; params.banks],
            accesses: 0,
            row_hits: 0,
            bytes: 0,
            tracer: Tracer::disabled(),
            faults: FaultState::disabled(),
        }
    }

    /// Attach a tracer; timed accesses emit bus-occupancy spans and
    /// row-miss instants on [`Track::Sdram`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attach fault state; armed transient bit errors perturb
    /// subsequent accesses (one access per event).
    pub fn set_faults(&mut self, faults: FaultState) {
        self.faults = faults;
    }

    /// Extra latency when a transient bit error has armed at `at`: the
    /// device re-reads the row (precharge + activate + read again) and
    /// ECC corrects the data — the access is slower, never wrong.
    fn bit_error_penalty(&mut self, at: Cycle) -> Cycle {
        if self.faults.sdram_bit_error(at) {
            self.tracer
                .instant(Track::Sdram, "fault:sdram_bit_error", at);
            Cycle(self.params.row_miss_cycles)
        } else {
            Cycle::ZERO
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> SdramParams {
        self.params
    }

    fn bank_and_row(&self, addr: u32) -> (usize, u32) {
        let row = addr / self.params.row_bytes;
        let bank = (row as usize) % self.params.banks;
        (bank, row)
    }

    /// Perform an access of `bytes` at `addr` starting at `at`.
    pub fn access(&mut self, at: Cycle, addr: u32, bytes: u64) -> SdramAccess {
        let (bank, row) = self.bank_and_row(addr);
        let row_hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        let latency = Cycle(if row_hit {
            self.params.row_hit_cycles
        } else {
            self.params.row_miss_cycles
        }) + self.bit_error_penalty(at);
        let r = self.bus.request(at + latency, bytes);
        if self.tracer.is_enabled() {
            self.tracer.span(Track::Sdram, "access", r.start, r.end);
            if !row_hit {
                self.tracer.instant(Track::Sdram, "row_miss", at);
            }
        }
        self.accesses += 1;
        self.row_hits += row_hit as u64;
        self.bytes += bytes;
        SdramAccess {
            done: r.end,
            row_hit,
            latency,
        }
    }

    /// Latency-only lookup for models that account bus time elsewhere
    /// (the eLink already serialises the data): returns the access
    /// latency for `addr` at time `at` and updates the open-row state.
    pub fn latency_of(&mut self, at: Cycle, addr: u32) -> Cycle {
        let (bank, row) = self.bank_and_row(addr);
        let row_hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        self.accesses += 1;
        self.row_hits += row_hit as u64;
        Cycle(if row_hit {
            self.params.row_hit_cycles
        } else {
            self.params.row_miss_cycles
        }) + self.bit_error_penalty(at)
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Total bytes moved over the data bus.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cycles the data bus has been reserved — the SDRAM's busy time,
    /// snapshotted by the power sampler at phase boundaries.
    pub fn busy_cycles(&self) -> Cycle {
        self.bus.busy_cycles()
    }

    /// Clear device state.
    pub fn reset(&mut self) {
        self.bus.reset();
        self.open_rows.iter_mut().for_each(|r| *r = None);
        self.accesses = 0;
        self.row_hits = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_accesses_hit_open_row() {
        let mut d = Sdram::new(SdramParams::default());
        let first = d.access(Cycle(0), 0, 64);
        assert!(!first.row_hit);
        let second = d.access(first.done, 64, 64);
        assert!(second.row_hit);
        assert!(second.latency < first.latency);
        assert!(d.row_hit_rate() > 0.0);
    }

    #[test]
    fn strided_accesses_miss_rows() {
        let mut d = Sdram::new(SdramParams::default());
        let row = d.params().row_bytes;
        let banks = d.params().banks as u32;
        let mut t = Cycle(0);
        // Stride of banks*row_bytes keeps hitting the same bank with a
        // different row every time: all misses.
        for i in 0..10u32 {
            let a = d.access(t, i * row * banks, 8);
            assert!(!a.row_hit);
            t = a.done;
        }
        assert_eq!(d.row_hit_rate(), 0.0);
    }

    #[test]
    fn bus_bandwidth_serialises_large_transfers() {
        let p = SdramParams::default();
        let mut d = Sdram::new(p);
        let a = d.access(Cycle(0), 0, 1 << 20); // 1 MB
        let min_cycles = (1u64 << 20) / p.bytes_per_cycle;
        assert!(a.done.raw() >= min_cycles);
    }

    #[test]
    fn concurrent_requests_share_bus() {
        let mut d = Sdram::new(SdramParams::default());
        let a = d.access(Cycle(0), 0, 4096);
        let b = d.access(Cycle(0), 1 << 16, 4096);
        assert!(b.done > a.done);
    }

    #[test]
    fn latency_only_mode_tracks_rows() {
        let mut d = Sdram::new(SdramParams::default());
        let l1 = d.latency_of(Cycle(0), 0);
        let l2 = d.latency_of(Cycle(0), 8);
        assert!(l2 < l1);
        assert_eq!(d.accesses(), 2);
    }

    #[test]
    fn bit_error_fault_slows_exactly_one_access() {
        use faultsim::{FaultEvent, FaultPlan};
        let p = SdramParams::default();
        let mut d = Sdram::new(p);
        let faults = FaultState::from_plan(&FaultPlan::from_events(
            0,
            vec![FaultEvent::SdramBitError { at: Cycle(100) }],
        ));
        d.set_faults(faults.clone());
        // Before the arming cycle: untouched.
        let early = d.latency_of(Cycle(50), 0);
        assert_eq!(early, Cycle(p.row_miss_cycles));
        // First access at/after the arming cycle pays one device
        // re-read on top of its ordinary latency.
        let hit = d.latency_of(Cycle(200), 8);
        assert_eq!(hit, Cycle(p.row_hit_cycles + p.row_miss_cycles));
        // Exactly once.
        let after = d.latency_of(Cycle(300), 16);
        assert_eq!(after, Cycle(p.row_hit_cycles));
        assert_eq!(faults.totals().faults_injected, 1);
    }

    #[test]
    fn reset_closes_rows() {
        let mut d = Sdram::new(SdramParams::default());
        d.access(Cycle(0), 0, 8);
        d.reset();
        let a = d.access(Cycle(0), 8, 8);
        assert!(!a.row_hit);
    }
}
