//! A core's local store: four single-ported 8 KB SRAM banks.
//!
//! The Epiphany local store sustains one access per bank per cycle; the
//! core, the DMA engine and inbound mesh writes contend for bank ports.
//! The FFBP mapping in the paper places prefetched subaperture data in
//! the two *upper* banks precisely so DMA refill and compute touch
//! different banks.

use desim::trace::{Tracer, Track};
use desim::{Cycle, FifoResource, Reservation};

/// Local-store geometry.
#[derive(Debug, Clone, Copy)]
pub struct SramParams {
    /// Number of banks (E16G3: 4).
    pub banks: usize,
    /// Bytes per bank (E16G3: 8 KB).
    pub bank_bytes: u32,
    /// Port width in bytes per cycle per bank (E16G3: 8 — a double word).
    pub port_bytes_per_cycle: u64,
}

impl Default for SramParams {
    fn default() -> Self {
        SramParams {
            banks: 4,
            bank_bytes: 8 * 1024,
            port_bytes_per_cycle: 8,
        }
    }
}

impl SramParams {
    /// Whether a buffer occupying `[offset, offset + bytes)` of one
    /// bank fits inside that bank (the static capacity invariant the
    /// mapping analyzer checks declarations against).
    pub fn fits_bank(&self, offset: u32, bytes: u32) -> bool {
        offset
            .checked_add(bytes)
            .is_some_and(|end| end <= self.bank_bytes)
    }
}

/// One core's banked local store.
pub struct LocalStore {
    params: SramParams,
    ports: Vec<FifoResource>,
    conflicts: u64,
    tracer: Tracer,
    track: Track,
}

impl LocalStore {
    /// Build a local store.
    ///
    /// # Panics
    /// If the parameters describe zero banks or zero-size banks.
    pub fn new(params: SramParams) -> LocalStore {
        assert!(
            params.banks > 0 && params.bank_bytes > 0,
            "invalid SRAM geometry"
        );
        let ports = (0..params.banks)
            .map(|_| FifoResource::per_units(1, params.port_bytes_per_cycle))
            .collect();
        LocalStore {
            params,
            ports,
            conflicts: 0,
            tracer: Tracer::disabled(),
            track: Track::Core(0),
        }
    }

    /// Attach a tracer; bank conflicts emit an instant on `track`
    /// (the owning core's track).
    pub fn set_tracer(&mut self, tracer: Tracer, track: Track) {
        self.tracer = tracer;
        self.track = track;
    }

    /// Geometry in use.
    pub fn params(&self) -> SramParams {
        self.params
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.params.banks as u32 * self.params.bank_bytes
    }

    /// Bank index holding local-store `offset`.
    ///
    /// # Panics
    /// If `offset` is outside the store.
    pub fn bank_of(&self, offset: u32) -> usize {
        assert!(
            offset < self.capacity(),
            "offset {offset:#x} outside local store"
        );
        (offset / self.params.bank_bytes) as usize
    }

    /// Reserve `bytes` of port time on the bank holding `offset`,
    /// starting at `at`. Returns the busy interval; a queued start means
    /// a bank conflict occurred.
    pub fn access(&mut self, at: Cycle, offset: u32, bytes: u64) -> Reservation {
        let bank = self.bank_of(offset);
        self.access_bank(at, bank, bytes)
    }

    /// Reserve port time on an explicit bank (used by DMA descriptors
    /// that stream through a whole bank).
    pub fn access_bank(&mut self, at: Cycle, bank: usize, bytes: u64) -> Reservation {
        let r = self.ports[bank].request(at, bytes);
        if r.start > at {
            self.conflicts += 1;
            self.tracer.instant(self.track, "bank_conflict", at);
        }
        r
    }

    /// Bank conflicts observed so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Busy cycles of bank `bank`.
    pub fn bank_busy(&self, bank: usize) -> Cycle {
        self.ports[bank].busy_cycles()
    }

    /// Clear all port state.
    pub fn reset(&mut self) {
        for p in &mut self.ports {
            p.reset();
        }
        self.conflicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_e16g3() {
        let s = LocalStore::new(SramParams::default());
        assert_eq!(s.capacity(), 32 * 1024);
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(8 * 1024), 1);
        assert_eq!(s.bank_of(16 * 1024), 2);
        assert_eq!(s.bank_of(32 * 1024 - 1), 3);
    }

    #[test]
    fn fits_bank_checks_the_interval_end() {
        let p = SramParams::default();
        assert!(p.fits_bank(0, 8 * 1024));
        assert!(p.fits_bank(184, 8008)); // a paper beam after a header
        assert!(!p.fits_bank(185, 8008));
        assert!(!p.fits_bank(0, 8 * 1024 + 1));
        assert!(!p.fits_bank(u32::MAX, 8)); // offset overflow is a miss
    }

    #[test]
    fn same_bank_conflicts_different_banks_dont() {
        let mut s = LocalStore::new(SramParams::default());
        let a = s.access(Cycle(0), 0, 64);
        let b = s.access(Cycle(0), 4, 64); // same bank 0
        assert!(b.start >= a.end);
        assert_eq!(s.conflicts(), 1);

        let mut s2 = LocalStore::new(SramParams::default());
        let a = s2.access(Cycle(0), 0, 64);
        let c = s2.access(Cycle(0), 8 * 1024, 64); // bank 1
        assert_eq!(a.start, c.start);
        assert_eq!(s2.conflicts(), 0);
    }

    #[test]
    fn port_width_sets_service_time() {
        let mut s = LocalStore::new(SramParams::default());
        let r = s.access(Cycle(0), 0, 80);
        assert_eq!(r.hold(), Cycle(10)); // 80 B at 8 B/cycle
    }

    #[test]
    fn access_bank_targets_explicit_bank() {
        let mut s = LocalStore::new(SramParams::default());
        s.access_bank(Cycle(0), 2, 800);
        assert_eq!(s.bank_busy(2), Cycle(100));
        assert_eq!(s.bank_busy(0), Cycle::ZERO);
    }

    #[test]
    fn reset_clears_conflicts() {
        let mut s = LocalStore::new(SramParams::default());
        s.access(Cycle(0), 0, 64);
        s.access(Cycle(0), 0, 64);
        assert_eq!(s.conflicts(), 1);
        s.reset();
        assert_eq!(s.conflicts(), 0);
        assert_eq!(s.bank_busy(0), Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside local store")]
    fn out_of_range_offset_panics() {
        let mut s = LocalStore::new(SramParams::default());
        let _ = s.access(Cycle(0), 32 * 1024, 4);
    }
}
