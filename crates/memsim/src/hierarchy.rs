//! A three-level cache hierarchy with a stream prefetcher and DRAM,
//! returning per-access latency in CPU cycles.
//!
//! Used by the `refcpu` baseline model of the Intel Core i7-M620
//! (Westmere): 32 KB L1D, 256 KB L2, 4 MB shared L3, three-channel
//! DDR3. Latency constants carry their datasheet/literature source in
//! the parameter doc comments.

use crate::cache::Cache;
use crate::prefetch::StreamPrefetcher;

/// Hierarchy geometry and timing (cycles at the CPU clock).
#[derive(Debug, Clone, Copy)]
pub struct HierarchyParams {
    /// L1 data cache size (i7-M620: 32 KB per core).
    pub l1_bytes: u32,
    /// L1 associativity (8-way).
    pub l1_ways: usize,
    /// L1 load-to-use latency (4 cycles on Nehalem/Westmere).
    pub l1_cycles: u64,
    /// L2 size (256 KB per core).
    pub l2_bytes: u32,
    /// L2 associativity (8-way).
    pub l2_ways: usize,
    /// L2 latency (~10 cycles).
    pub l2_cycles: u64,
    /// L3 size (4 MB shared on the M620).
    pub l3_bytes: u32,
    /// L3 associativity (16-way).
    pub l3_ways: usize,
    /// L3 latency (~38 cycles).
    pub l3_cycles: u64,
    /// DRAM latency (~60 ns = 160 cycles at 2.67 GHz).
    pub dram_cycles: u64,
    /// Line size throughout (64 B).
    pub line_bytes: u32,
    /// Enable the hardware stream prefetcher.
    pub prefetch: bool,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_cycles: 4,
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            l2_cycles: 10,
            l3_bytes: 4 * 1024 * 1024,
            l3_ways: 16,
            l3_cycles: 38,
            dram_cycles: 160,
            line_bytes: 64,
            prefetch: true,
        }
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default)]
pub struct LevelStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
}

impl LevelStats {
    /// Demand hit rate.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// The hierarchy.
pub struct MemoryHierarchy {
    params: HierarchyParams,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    prefetcher: StreamPrefetcher,
    dram_accesses: u64,
    total_cycles: u64,
    accesses: u64,
}

impl MemoryHierarchy {
    /// Build from parameters.
    pub fn new(params: HierarchyParams) -> MemoryHierarchy {
        MemoryHierarchy {
            params,
            l1: Cache::new(params.l1_bytes, params.line_bytes, params.l1_ways),
            l2: Cache::new(params.l2_bytes, params.line_bytes, params.l2_ways),
            l3: Cache::new(params.l3_bytes, params.line_bytes, params.l3_ways),
            prefetcher: StreamPrefetcher::intel_like(),
            dram_accesses: 0,
            total_cycles: 0,
            accesses: 0,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> HierarchyParams {
        self.params
    }

    /// One demand access to `addr`; returns its latency in cycles.
    pub fn access(&mut self, addr: u64, write: bool) -> u64 {
        self.accesses += 1;
        let p = self.params;
        let line = addr / p.line_bytes as u64;

        let cycles = if self.l1.access(addr, write).is_hit() {
            p.l1_cycles
        } else if self.l2.access(addr, write).is_hit() {
            p.l2_cycles
        } else if self.l3.access(addr, write).is_hit() {
            p.l3_cycles
        } else {
            self.dram_accesses += 1;
            p.dram_cycles
        };

        if p.prefetch {
            // Prefetches fill L2 and L3 so the next demand access pays
            // only the L2 latency instead of DRAM.
            for pf_line in self.prefetcher.observe(line) {
                let pf_addr = pf_line * p.line_bytes as u64;
                self.l2.fill(pf_addr);
                self.l3.fill(pf_addr);
            }
        }

        self.total_cycles += cycles;
        cycles
    }

    /// Access a `bytes`-long object starting at `addr`; each distinct
    /// line is one access, and the latencies sum (worst case — the
    /// refcpu model divides by its memory-level parallelism factor).
    pub fn access_range(&mut self, addr: u64, bytes: u64, write: bool) -> u64 {
        let line = self.params.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) - 1) / line;
        (first..=last).map(|l| self.access(l * line, write)).sum()
    }

    /// Demand statistics per level `(l1, l2, l3)`.
    pub fn stats(&self) -> (LevelStats, LevelStats, LevelStats) {
        (
            LevelStats {
                hits: self.l1.hits(),
                misses: self.l1.misses(),
            },
            LevelStats {
                hits: self.l2.hits(),
                misses: self.l2.misses(),
            },
            LevelStats {
                hits: self.l3.hits(),
                misses: self.l3.misses(),
            },
        )
    }

    /// DRAM demand accesses.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Sum of all access latencies so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Average latency per access.
    pub fn mean_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.accesses as f64
        }
    }

    /// Invalidate caches and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.prefetcher.reset();
        self.dram_accesses = 0;
        self.total_cycles = 0;
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_costs_dram_second_hits_l1() {
        let mut h = MemoryHierarchy::new(HierarchyParams::default());
        let first = h.access(0x10000, false);
        assert_eq!(first, h.params().dram_cycles);
        let second = h.access(0x10000, false);
        assert_eq!(second, h.params().l1_cycles);
    }

    #[test]
    fn sequential_scan_benefits_from_prefetch() {
        let p = HierarchyParams::default();
        let mut with = MemoryHierarchy::new(p);
        let mut without = MemoryHierarchy::new(HierarchyParams {
            prefetch: false,
            ..p
        });
        let n = 4096u64;
        let (mut c_with, mut c_without) = (0u64, 0u64);
        for i in 0..n {
            c_with += with.access(i * 64, false);
            c_without += without.access(i * 64, false);
        }
        assert!(
            c_with < c_without / 2,
            "prefetch should at least halve sequential-scan cost: {c_with} vs {c_without}"
        );
    }

    #[test]
    fn random_scan_gets_no_prefetch_help() {
        let p = HierarchyParams::default();
        let mut h = MemoryHierarchy::new(p);
        // Linear-congruential scatter over 64 MB: virtually all DRAM.
        let mut x = 12345u64;
        let mut total = 0;
        let n = 2000;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            total += h.access((x >> 8) % (64 << 20), false);
        }
        assert!(total as f64 / n as f64 > p.dram_cycles as f64 * 0.8);
    }

    #[test]
    fn l2_captures_medium_working_set() {
        let p = HierarchyParams {
            prefetch: false,
            ..HierarchyParams::default()
        };
        let mut h = MemoryHierarchy::new(p);
        // 128 KB working set: fits L2, not L1.
        let lines = (128 * 1024) / 64;
        for _ in 0..4 {
            for i in 0..lines as u64 {
                h.access(i * 64, false);
            }
        }
        let (_l1, l2, _l3) = h.stats();
        assert!(l2.hit_rate() > 0.5, "L2 hit rate {}", l2.hit_rate());
    }

    #[test]
    fn access_range_touches_each_line_once() {
        let mut h = MemoryHierarchy::new(HierarchyParams::default());
        // 256 bytes starting mid-line spans 5 lines.
        let c = h.access_range(32, 256, false);
        assert_eq!(h.accesses(), 5);
        assert!(c >= 5 * h.params().l1_cycles);
    }

    #[test]
    fn stats_and_reset() {
        let mut h = MemoryHierarchy::new(HierarchyParams::default());
        h.access(0, true);
        h.access(0, true);
        let (l1, _, _) = h.stats();
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
        assert!(h.mean_latency() > 0.0);
        h.reset();
        assert_eq!(h.accesses(), 0);
        assert_eq!(h.dram_accesses(), 0);
    }
}
