//! Stripmap geometry and the subaperture merge equations.
//!
//! Coordinates: the platform flies the `y` axis (azimuth) at constant
//! speed; `x` is ground range. Polar subaperture grids measure range
//! `r` from the subaperture centre and angle `theta` from the flight
//! axis (`theta = pi/2` is broadside).
//!
//! [`merge_geometry`] implements equations (1)–(4) of the paper: given
//! an output sample `(r, theta)` of a merged subaperture whose children
//! sit at `±l/2` along the flight axis, it returns the `(r1, theta1)`
//! and `(r2, theta2)` at which the two children observe the same ground
//! point. These are the "complicated index calculations" the paper maps
//! to the Epiphany's FMA unit.

use desim::OpCounts;

/// Radar and collection-geometry constants shared across the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct SarGeometry {
    /// Number of transmitted pulses (the full aperture). Must be a
    /// power of two for merge base 2.
    pub num_pulses: usize,
    /// Along-track spacing between pulses, metres.
    pub pulse_spacing: f32,
    /// Range of the first bin, metres.
    pub r0: f32,
    /// Range-bin spacing, metres.
    pub dr: f32,
    /// Number of range bins per pulse.
    pub num_bins: usize,
    /// Radar wavelength, metres (low-frequency UWB VHF SAR, as in the
    /// CARABAS-class Swedish systems the paper's references describe;
    /// the wavelength must be several range bins long for complex
    /// interpolation between bins to be meaningful).
    pub wavelength: f32,
    /// Half-width of the imaged angular sector around broadside,
    /// radians.
    pub theta_half_span: f32,
}

impl SarGeometry {
    /// The paper's evaluation size: 1024 pulses x 1001 range bins.
    pub fn paper_size() -> SarGeometry {
        SarGeometry {
            num_pulses: 1024,
            pulse_spacing: 1.0,
            r0: 4000.0,
            dr: 1.0,
            num_bins: 1001,
            wavelength: 8.0,
            theta_half_span: 0.114,
        }
    }

    /// A small configuration for unit tests (64 pulses x 129 bins).
    pub fn test_size() -> SarGeometry {
        SarGeometry {
            num_pulses: 64,
            pulse_spacing: 1.0,
            r0: 950.0,
            dr: 1.0,
            num_bins: 129,
            wavelength: 8.0,
            theta_half_span: 0.12,
        }
    }

    /// Along-track position of pulse `k`, centred so the aperture
    /// midpoint is `y = 0`.
    pub fn platform_y(&self, k: usize) -> f32 {
        (k as f32 - (self.num_pulses as f32 - 1.0) / 2.0) * self.pulse_spacing
    }

    /// Slant range from a platform position to a ground point.
    pub fn slant_range(&self, platform_y: f32, x: f32, y: f32) -> f32 {
        let dy = y - platform_y;
        (x * x + dy * dy).sqrt()
    }

    /// Range of the centre of bin `i`.
    pub fn bin_range(&self, i: usize) -> f32 {
        self.r0 + i as f32 * self.dr
    }

    /// Maximum range covered by the swath.
    pub fn r_max(&self) -> f32 {
        self.bin_range(self.num_bins - 1)
    }

    /// Lower edge of the angular sector.
    pub fn theta_min(&self) -> f32 {
        std::f32::consts::FRAC_PI_2 - self.theta_half_span
    }

    /// Upper edge of the angular sector.
    pub fn theta_max(&self) -> f32 {
        std::f32::consts::FRAC_PI_2 + self.theta_half_span
    }

    /// Number of pairwise merge iterations to the full aperture
    /// (10 for 1024 pulses).
    pub fn merge_iterations(&self) -> u32 {
        assert!(
            self.num_pulses.is_power_of_two(),
            "merge base 2 needs a power-of-two pulse count"
        );
        self.num_pulses.trailing_zeros()
    }

    /// Two-way phase of a scatterer at range `r`: `-4 pi r / lambda`.
    pub fn range_phase(&self, r: f32) -> f32 {
        -4.0 * std::f32::consts::PI * r / self.wavelength
    }
}

/// Where the two children of a merge observe the output sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeLookup {
    /// Range from the trailing child (centre at `-l/2`).
    pub r1: f32,
    /// Angle from the trailing child.
    pub theta1: f32,
    /// Range from the leading child (centre at `+l/2`).
    pub r2: f32,
    /// Angle from the leading child.
    pub theta2: f32,
}

/// Equations (1)-(4): map an output sample `(r, theta)` of the merged
/// subaperture to the observation coordinates of its two children
/// separated by `l` along the flight axis.
///
/// `counts` accrues the arithmetic performed (the FMA-heavy index
/// calculation the paper highlights).
#[inline]
pub fn merge_geometry(r: f32, theta: f32, l: f32, counts: &mut OpCounts) -> MergeLookup {
    let h = 0.5 * l;
    let c = theta.cos();
    let rl = r * l;
    let base = r * r + h * h;
    // Eq. (1): r1^2 = r^2 + (l/2)^2 - 2 r (l/2) cos(pi - theta)
    //               = r^2 + (l/2)^2 + r l cos(theta)
    let r1 = (base + rl * c).sqrt();
    // Eq. (2): r2^2 = r^2 + (l/2)^2 - r l cos(theta)
    let r2 = (base - rl * c).sqrt();
    // Eq. (3): theta1 = acos((r1^2 + (l/2)^2 - r^2) / (r1 l))
    //        = acos((l/2 + r cos theta) / r1)
    let theta1 = ((h + r * c) / r1).clamp(-1.0, 1.0).acos();
    // Eq. (4): theta2 = pi - acos((r2^2 + (l/2)^2 - r^2) / (r2 l))
    //        = acos((r cos theta - l/2) / r2)
    let theta2 = ((r * c - h) / r2).clamp(-1.0, 1.0).acos();

    counts.trigs += 3; // cos + 2 acos
    counts.sqrts += 2;
    counts.divs += 2;
    counts.fmas += 5; // h*h+r*r, base±rl*c, h+r*c, r*c-h
    counts.flops += 4; // products and clamps
    counts.ialu += 2;

    MergeLookup {
        r1,
        theta1,
        r2,
        theta2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    fn lookup(r: f32, theta: f32, l: f32) -> MergeLookup {
        merge_geometry(r, theta, l, &mut OpCounts::default())
    }

    #[test]
    fn broadside_is_symmetric() {
        let g = lookup(1000.0, FRAC_PI_2, 16.0);
        assert!((g.r1 - g.r2).abs() < 1e-3, "{g:?}");
        // theta1 leans forward of broadside, theta2 leans back,
        // symmetrically.
        assert!((g.theta1 + g.theta2 - std::f32::consts::PI).abs() < 1e-4);
        assert!(g.theta1 < FRAC_PI_2);
        assert!(g.theta2 > FRAC_PI_2);
        // Both children are slightly farther than the merged centre.
        assert!(g.r1 > 1000.0 && g.r1 < 1000.2);
    }

    #[test]
    fn matches_direct_trigonometry() {
        // Place the ground point explicitly and verify against plain
        // Cartesian geometry.
        let (r, theta, l) = (750.0, FRAC_PI_2 + 0.05, 32.0);
        let (x, y) = (r * theta.sin(), r * theta.cos());
        let g = lookup(r, theta, l);
        // Child A at y = -l/2, child B at y = +l/2.
        let r1_direct = (x * x + (y + l / 2.0) * (y + l / 2.0)).sqrt();
        let r2_direct = (x * x + (y - l / 2.0) * (y - l / 2.0)).sqrt();
        assert!((g.r1 - r1_direct).abs() < 1e-2, "{} vs {}", g.r1, r1_direct);
        assert!((g.r2 - r2_direct).abs() < 1e-2);
        let t1_direct = ((y + l / 2.0) / r1_direct).acos();
        let t2_direct = ((y - l / 2.0) / r2_direct).acos();
        assert!((g.theta1 - t1_direct).abs() < 1e-4);
        assert!((g.theta2 - t2_direct).abs() < 1e-4);
    }

    #[test]
    fn zero_separation_is_identity() {
        let g = lookup(500.0, 1.5, 0.0);
        assert!((g.r1 - 500.0).abs() < 1e-3);
        assert!((g.r2 - 500.0).abs() < 1e-3);
        assert!((g.theta1 - 1.5).abs() < 1e-4);
        assert!((g.theta2 - 1.5).abs() < 1e-4);
    }

    #[test]
    fn op_counts_accumulate() {
        let mut counts = OpCounts::default();
        for _ in 0..10 {
            merge_geometry(800.0, 1.6, 8.0, &mut counts);
        }
        assert_eq!(counts.sqrts, 20);
        assert_eq!(counts.trigs, 30);
        assert_eq!(counts.divs, 20);
        assert!(counts.fmas >= 50);
    }

    #[test]
    fn geometry_helpers() {
        let g = SarGeometry::paper_size();
        assert_eq!(g.merge_iterations(), 10);
        assert!((g.platform_y(0) + 511.5).abs() < 1e-3);
        assert!((g.platform_y(1023) - 511.5).abs() < 1e-3);
        assert_eq!(g.bin_range(0), 4000.0);
        assert_eq!(g.r_max(), 5000.0);
        assert!((g.slant_range(0.0, 3.0, 4.0) - 5.0).abs() < 1e-6);
        assert!(g.theta_min() < g.theta_max());
        // Two-way phase advances by 4 pi per wavelength of range.
        let dp = g.range_phase(100.0 + g.wavelength) - g.range_phase(100.0);
        assert!((dp + 4.0 * std::f32::consts::PI).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_pulses_rejected_for_merging() {
        let g = SarGeometry {
            num_pulses: 1000,
            ..SarGeometry::paper_size()
        };
        let _ = g.merge_iterations();
    }
}
