//! Global back-projection (GBP): the exact, O(N^3) time-domain image
//! formation that FFBP approximates. The paper uses it as the quality
//! reference (Figure 7b).

use desim::OpCounts;

use crate::complex::c32;
use crate::geometry::SarGeometry;
use crate::image::ComplexImage;

/// Result of a GBP run.
pub struct GbpRun {
    /// Formed image on the final polar grid (rows = beams,
    /// cols = range bins).
    pub image: ComplexImage,
    /// Arithmetic performed.
    pub counts: OpCounts,
}

/// Back-project `data` (rows = pulses, cols = range bins) onto the
/// final polar grid: `n_beams` beams spanning the geometry's angular
/// sector, measured from the aperture centre.
///
/// Per pixel and pulse: compute the slant range, linearly interpolate
/// the compressed data at that range, rotate by the matched phase
/// `exp(+j 4 pi R / lambda)` and accumulate.
pub fn gbp(data: &ComplexImage, geom: &SarGeometry, n_beams: usize) -> GbpRun {
    assert_eq!(
        data.rows(),
        geom.num_pulses,
        "data rows must equal pulse count"
    );
    assert_eq!(data.cols(), geom.num_bins, "data cols must equal bin count");
    let mut counts = OpCounts::default();
    let mut image = ComplexImage::zeros(n_beams, geom.num_bins);
    let d_theta = (geom.theta_max() - geom.theta_min()) / n_beams as f32;
    let four_pi_over_lambda = 4.0 * std::f32::consts::PI / geom.wavelength;

    // Precompute platform positions.
    let platform: Vec<f32> = (0..geom.num_pulses).map(|k| geom.platform_y(k)).collect();

    for j in 0..n_beams {
        let theta = geom.theta_min() + (j as f32 + 0.5) * d_theta;
        let (sin_t, cos_t) = theta.sin_cos();
        counts.trigs += 1;
        for i in 0..geom.num_bins {
            let r = geom.bin_range(i);
            let (x, y) = (r * sin_t, r * cos_t);
            let mut acc = c32::ZERO;
            for (k, &py) in platform.iter().enumerate() {
                let dy = y - py;
                let range = (x * x + dy * dy).sqrt();
                let fbin = (range - geom.r0) / geom.dr;
                let i0 = fbin.floor();
                let idx = i0 as isize;
                let frac = fbin - i0;
                let a = data.at_or_zero(k as isize, idx);
                let b = data.at_or_zero(k as isize, idx + 1);
                let sample = a + (b - a).scale(frac);
                acc += sample * c32::cis(four_pi_over_lambda * range);
            }
            counts.sqrts += platform.len() as u64;
            counts.trigs += platform.len() as u64; // cis per pulse
            counts.divs += platform.len() as u64;
            counts.fmas += 8 * platform.len() as u64;
            counts.loads += 4 * platform.len() as u64;
            counts.stores += 2;
            *image.at_mut(j, i) = acc;
        }
    }
    GbpRun { image, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{simulate_compressed_data, Scene};

    #[test]
    fn single_target_focuses_at_its_polar_position() {
        let geom = SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let run = gbp(&data, &geom, geom.num_pulses);
        let (peak, row, col) = run.image.peak();
        assert!(peak > 0.0);
        // The target sits at broadside (theta = pi/2, centre beam) and
        // mid swath.
        let t = scene.targets[0];
        let r_t = (t.x * t.x + t.y * t.y).sqrt();
        let expect_col = ((r_t - geom.r0) / geom.dr).round() as usize;
        let expect_row = geom.num_pulses / 2;
        assert!(
            (row as i64 - expect_row as i64).abs() <= 2,
            "beam {row} vs {expect_row}"
        );
        assert!(
            (col as i64 - expect_col as i64).abs() <= 2,
            "bin {col} vs {expect_col}"
        );
    }

    #[test]
    fn focusing_gain_approaches_pulse_count() {
        let geom = SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        // Brightest single data sample ~ amplitude 1; the coherent sum
        // over K pulses should approach K.
        let run = gbp(&data, &geom, geom.num_pulses);
        let (peak, _, _) = run.image.peak();
        assert!(
            peak > 0.5 * geom.num_pulses as f32,
            "coherent gain too low: {peak} vs K={}",
            geom.num_pulses
        );
    }

    #[test]
    fn counts_scale_with_image_size() {
        let geom = SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let small = gbp(&data, &geom, 8);
        let large = gbp(&data, &geom, 16);
        assert!(large.counts.sqrts == 2 * small.counts.sqrts);
    }

    #[test]
    #[should_panic(expected = "data rows")]
    fn shape_mismatch_rejected() {
        let geom = SarGeometry::test_size();
        let data = ComplexImage::zeros(3, geom.num_bins);
        let _ = gbp(&data, &geom, 4);
    }
}
