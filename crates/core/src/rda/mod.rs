//! Range–Doppler Algorithm (RDA) image formation.
//!
//! The classic transpose-heavy SAR formation pipeline, as a second
//! kernel family next to FFBP:
//!
//! 1. **Range compression** — each raw echo row is matched-filtered
//!    against the transmitted chirp (frequency domain, via the in-tree
//!    radix-2 FFT).
//! 2. **Corner turn + azimuth FFT** — the matrix is transposed from
//!    pulse-major to bin-major and every range bin's pulse history is
//!    transformed to the Doppler domain. On the manycore mappings this
//!    is the phase whose dominant cost is eMesh/SDRAM transpose
//!    traffic, not arithmetic.
//! 3. **Range-cell migration correction (RCMC)** — in the
//!    range–Doppler domain a target's curved range history collapses
//!    to a Doppler-dependent shift `delta(bin, m)`; each sample is
//!    gathered from `bin + delta` (nearest-neighbour).
//! 4. **Azimuth compression** — per range bin, the Doppler spectrum is
//!    multiplied by the conjugate FFT of the azimuth reference
//!    (hyperbolic phase history at that range) and inverse-transformed
//!    back to a focused azimuth line.
//!
//! Every stage kernel takes a `&mut OpCounts` and accrues a
//! *data-independent* operation ledger: the counts depend only on the
//! geometry and configuration, never on sample values. The mapping
//! drivers and the `sarlint` program-model probes call the same
//! functions, so declared work is exact by construction.

mod pipeline;
mod stages;

pub use pipeline::{rda, RdaConfig, RdaRun};
pub use stages::{
    azimuth_compress, azimuth_reference, doppler_spectrum, fft_ops, ifft_ops, range_compress_row,
    rcmc_correct, rcmc_shift, RCMC_MAX_SIN,
};
