//! The full RDA driver: range compression, corner turn + azimuth FFT,
//! RCMC, azimuth compression.

use desim::OpCounts;

use crate::complex::c32;
use crate::geometry::SarGeometry;
use crate::image::ComplexImage;
use crate::rda::stages::{
    azimuth_compress, azimuth_reference, doppler_spectrum, range_compress_row, rcmc_correct,
};
use crate::signal::{lfm_chirp, ChirpParams, MatchedFilter};

/// RDA configuration.
#[derive(Debug, Clone, Copy)]
pub struct RdaConfig {
    /// Transmitted chirp (the raw matrix carries `num_bins +
    /// chirp.samples` samples per pulse).
    pub chirp: ChirpParams,
    /// Apply range-cell migration correction (off = the ablation
    /// pipeline, for measuring what RCMC buys).
    pub rcmc: bool,
}

impl Default for RdaConfig {
    fn default() -> Self {
        RdaConfig {
            chirp: ChirpParams::default(),
            rcmc: true,
        }
    }
}

/// Result of an RDA run.
pub struct RdaRun {
    /// Focused image (rows = azimuth positions, cols = range bins) --
    /// the same shape FFBP produces, with broadside at the middle row.
    pub image: ComplexImage,
    /// Total arithmetic performed, by the canonical stage ledgers.
    pub counts: OpCounts,
}

/// Run RDA over `raw` uncompressed echoes (rows = pulses, cols =
/// `num_bins + chirp.samples` fast-time samples).
///
/// The azimuth FFT length is the pulse count, so `geom.num_pulses`
/// must be a power of two (both stock geometries are).
pub fn rda(raw: &ComplexImage, geom: &SarGeometry, cfg: &RdaConfig) -> RdaRun {
    let n = geom.num_pulses;
    assert!(
        n.is_power_of_two(),
        "RDA needs a power-of-two pulse count, got {n}"
    );
    assert_eq!(raw.rows(), n, "raw rows must equal pulse count");
    assert_eq!(
        raw.cols(),
        geom.num_bins + cfg.chirp.samples,
        "raw cols must be num_bins + chirp samples"
    );
    let waveform = lfm_chirp(cfg.chirp);
    let mf = MatchedFilter::new(&waveform, raw.cols());
    let mut counts = OpCounts::default();

    // 1. Range compression, per pulse.
    let mut rc = ComplexImage::zeros(n, geom.num_bins);
    for k in 0..n {
        let row = range_compress_row(&mf, raw.row(k), geom.num_bins, &mut counts);
        rc.row_mut(k).copy_from_slice(&row);
    }

    // 2. Corner turn + azimuth FFT: the range–Doppler matrix,
    // bin-major (rows = range bins, cols = Doppler bins).
    let mut rd = ComplexImage::zeros(geom.num_bins, n);
    let mut col = vec![c32::ZERO; n];
    for i in 0..geom.num_bins {
        for (k, c) in col.iter_mut().enumerate() {
            *c = rc.at(k, i);
        }
        let spectrum = doppler_spectrum(&col, &mut counts);
        rd.row_mut(i).copy_from_slice(&spectrum);
    }

    // 3 + 4. RCMC and azimuth compression, per range bin. The inverse
    // FFT returns circular lags; broadside (lag 0) is rotated to the
    // middle row so the image frame matches FFBP's.
    let mut image = ComplexImage::zeros(n, geom.num_bins);
    for i in 0..geom.num_bins {
        let corrected = rcmc_correct(&rd, geom, i, cfg.rcmc, &mut counts);
        let href = azimuth_reference(geom, i, &mut counts);
        let line = azimuth_compress(&corrected, &href, &mut counts);
        for k in 0..n {
            *image.at_mut(k, i) = line[(k + n / 2) % n];
        }
    }
    RdaRun { image, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{simulate_raw_echoes, Scene};

    fn small_chirp() -> ChirpParams {
        ChirpParams {
            samples: 64,
            fractional_bandwidth: 0.9,
        }
    }

    fn run(scene: &Scene, rcmc: bool) -> RdaRun {
        let cfg = RdaConfig {
            chirp: small_chirp(),
            rcmc,
        };
        let raw = simulate_raw_echoes(scene, cfg.chirp);
        rda(&raw, &scene.geometry, &cfg)
    }

    #[test]
    fn output_has_the_image_frame_shape() {
        let scene = Scene::single_target(SarGeometry::test_size());
        let run = run(&scene, true);
        assert_eq!(run.image.rows(), scene.geometry.num_pulses);
        assert_eq!(run.image.cols(), scene.geometry.num_bins);
        assert!(run.counts.flop_work() > 0);
    }

    #[test]
    fn single_target_focuses_at_broadside_mid_swath() {
        let scene = Scene::single_target(SarGeometry::test_size());
        let g = scene.geometry;
        let run = run(&scene, true);
        let (peak, row, col) = run.image.peak();
        let expected_col = ((scene.targets[0].x - g.r0) / g.dr).round() as i64;
        assert!(
            (row as i64 - g.num_pulses as i64 / 2).abs() <= 2,
            "azimuth peak at row {row}, expected ~{}",
            g.num_pulses / 2
        );
        assert!(
            (col as i64 - expected_col).abs() <= 2,
            "range peak at col {col}, expected ~{expected_col}"
        );
        // Coherent azimuth gain: the peak must stand far above the mean.
        let mean: f32 = run.image.as_slice().iter().map(|z| z.abs()).sum::<f32>()
            / run.image.as_slice().len() as f32;
        assert!(peak > 8.0 * mean, "peak {peak} vs mean {mean}");
    }

    #[test]
    fn rcmc_recovers_migrated_energy_at_close_range() {
        // At r0 = 100 m the migration is ~3 bins deep over the
        // aperture; correcting it must raise the focused peak.
        let g = SarGeometry {
            r0: 100.0,
            ..SarGeometry::test_size()
        };
        let scene = Scene::single_target(g);
        let with = run(&scene, true).image.peak().0;
        let without = run(&scene, false).image.peak().0;
        assert!(
            with > 1.05 * without,
            "RCMC peak {with} should beat uncorrected {without}"
        );
    }

    #[test]
    fn ledger_is_data_independent() {
        let g = SarGeometry::test_size();
        let a = run(&Scene::single_target(g), true);
        let b = run(&Scene::six_targets(g), true);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_pulse_count_rejected() {
        let g = SarGeometry {
            num_pulses: 48,
            ..SarGeometry::test_size()
        };
        let raw = ComplexImage::zeros(48, g.num_bins + 64);
        rda(
            &raw,
            &g,
            &RdaConfig {
                chirp: small_chirp(),
                rcmc: true,
            },
        );
    }
}
