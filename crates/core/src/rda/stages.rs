//! Counted RDA stage kernels.
//!
//! Each function both performs its stage on host data and accrues the
//! canonical operation ledger into an [`OpCounts`]. The ledger is
//! data-independent: for a fixed geometry and configuration every call
//! charges exactly the same counts regardless of sample values (RCMC
//! charges its shift arithmetic whether or not the gather lands inside
//! the swath). The mapping drivers and the static program-model probes
//! rely on this to stay bit-exact with each other.

use desim::OpCounts;

use crate::complex::c32;
use crate::geometry::SarGeometry;
use crate::image::ComplexImage;
use crate::signal::{fft_inplace, ifft_inplace, MatchedFilter};

/// Operation ledger for one in-place radix-2 FFT of length `n`
/// (power of two): `(n/2)·log2(n)` butterflies, each a complex
/// multiply (2 FMA + 2 flops), an add/sub pair (4 flops), the twiddle
/// recurrence (2 FMA + 2 flops -- folded into the per-butterfly FMA
/// and flop charges below), two complex loads and stores, plus the
/// bit-reversal pass.
pub fn fft_ops(n: usize, counts: &mut OpCounts) {
    debug_assert!(n.is_power_of_two());
    let stages = n.trailing_zeros() as u64;
    let b = (n as u64 / 2) * stages;
    counts.fmas += 4 * b;
    counts.flops += 6 * b;
    counts.loads += 4 * b;
    counts.stores += 4 * b;
    counts.ialu += 2 * b + n as u64;
}

/// [`fft_ops`] plus the `1/N` normalisation pass of the inverse FFT.
pub fn ifft_ops(n: usize, counts: &mut OpCounts) {
    fft_ops(n, counts);
    counts.divs += 2 * n as u64;
    counts.loads += 2 * n as u64;
    counts.stores += 2 * n as u64;
}

/// Range-compress one raw echo row: zero-pad to the filter's FFT
/// length, forward FFT, conjugate-reference multiply, inverse FFT,
/// truncate to `num_bins`.
pub fn range_compress_row(
    mf: &MatchedFilter,
    echo: &[c32],
    num_bins: usize,
    counts: &mut OpCounts,
) -> Vec<c32> {
    let l = mf.fft_len() as u64;
    // Stage in/out copies.
    counts.loads += 2 * echo.len() as u64 + 2 * num_bins as u64;
    counts.stores += 2 * l + 2 * num_bins as u64;
    // FFT, pointwise reference multiply, inverse FFT.
    fft_ops(mf.fft_len(), counts);
    counts.fmas += 2 * l;
    counts.flops += 2 * l;
    counts.loads += 4 * l;
    counts.stores += 2 * l;
    counts.ialu += l;
    ifft_ops(mf.fft_len(), counts);
    let mut compressed = mf.compress(echo);
    compressed.truncate(num_bins);
    compressed
}

/// Azimuth FFT of one range bin's pulse history (the Doppler
/// spectrum). `column` length must be a power of two.
pub fn doppler_spectrum(column: &[c32], counts: &mut OpCounts) -> Vec<c32> {
    counts.loads += 2 * column.len() as u64;
    counts.stores += 2 * column.len() as u64;
    let mut g = column.to_vec();
    fft_inplace(&mut g);
    fft_ops(g.len(), counts);
    g
}

/// Doppler bins whose implied squint exceeds this `|sin theta|` are
/// clamped; the resulting huge migration pushes the gather off the end
/// of the swath, which zeroes the (unphysical) bin.
pub const RCMC_MAX_SIN: f32 = 0.95;

/// Range-cell migration for Doppler bin `doppler` at range bin `bin`,
/// in whole range bins (nearest-neighbour, always >= 0).
///
/// Doppler index `m` maps to squint `sin theta = lambda m~ / (2 N d)`
/// (`m~` the signed alias of `m`, `d` the pulse spacing); a scatterer
/// seen at squint `theta` sits `R (1/cos theta - 1)` beyond its
/// closest-approach range.
pub fn rcmc_shift(geom: &SarGeometry, bin: usize, doppler: usize) -> usize {
    let n = geom.num_pulses;
    let m_signed = if doppler * 2 < n {
        doppler as f32
    } else {
        doppler as f32 - n as f32
    };
    let sin_t = (geom.wavelength * m_signed / (2.0 * n as f32 * geom.pulse_spacing))
        .clamp(-RCMC_MAX_SIN, RCMC_MAX_SIN);
    let cos_t = (1.0 - sin_t * sin_t).sqrt();
    let migration = geom.bin_range(bin) * (1.0 / cos_t - 1.0);
    (migration / geom.dr).round() as usize
}

/// Apply RCMC to range bin `bin` of the bin-major range–Doppler matrix
/// `rd` (rows = range bins, cols = Doppler bins): gather each Doppler
/// sample from `bin + delta`, zero when the source falls off the far
/// end of the swath. With `enabled == false` the row is copied
/// unshifted (the ablation path); the per-sample ledger is uniform in
/// either mode.
pub fn rcmc_correct(
    rd: &ComplexImage,
    geom: &SarGeometry,
    bin: usize,
    enabled: bool,
    counts: &mut OpCounts,
) -> Vec<c32> {
    let n = geom.num_pulses;
    let mut out = Vec::with_capacity(n);
    for m in 0..n {
        let shift = if enabled { rcmc_shift(geom, bin, m) } else { 0 };
        if enabled {
            counts.flops += 6;
            counts.fmas += 2;
            counts.divs += 2;
            counts.sqrts += 1;
            counts.ialu += 2;
        }
        counts.loads += 2;
        counts.stores += 2;
        counts.ialu += 1;
        let src = bin + shift;
        out.push(if src < geom.num_bins {
            rd.at(src, m)
        } else {
            c32::ZERO
        });
    }
    out
}

/// Frequency-domain azimuth reference for range bin `bin`: the FFT of
/// the hyperbolic phase history a unit scatterer at that range traces
/// over the aperture.
pub fn azimuth_reference(geom: &SarGeometry, bin: usize, counts: &mut OpCounts) -> Vec<c32> {
    let n = geom.num_pulses;
    let r = geom.bin_range(bin);
    let mut h: Vec<c32> = (0..n)
        .map(|k| {
            let y = geom.platform_y(k);
            c32::cis(geom.range_phase((r * r + y * y).sqrt()))
        })
        .collect();
    counts.fmas += 2 * n as u64;
    counts.flops += 2 * n as u64;
    counts.sqrts += n as u64;
    counts.trigs += n as u64;
    counts.stores += 2 * n as u64;
    fft_inplace(&mut h);
    fft_ops(n, counts);
    h
}

/// Azimuth-compress one range bin: conjugate-multiply the corrected
/// Doppler spectrum by the reference spectrum and inverse-transform.
/// The output is the focused azimuth line in circular-lag order (lag 0
/// at index 0); the pipeline rotates it so broadside lands mid-image.
pub fn azimuth_compress(corrected: &[c32], reference: &[c32], counts: &mut OpCounts) -> Vec<c32> {
    assert_eq!(corrected.len(), reference.len());
    let n = corrected.len() as u64;
    let mut s: Vec<c32> = corrected
        .iter()
        .zip(reference)
        .map(|(z, h)| *z * h.conj())
        .collect();
    counts.fmas += 2 * n;
    counts.flops += 3 * n;
    counts.loads += 4 * n;
    counts.stores += 2 * n;
    counts.ialu += n;
    ifft_inplace(&mut s);
    ifft_ops(s.len(), counts);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcmc_shift_is_zero_at_zero_doppler_and_grows_off_broadside() {
        let g = SarGeometry::test_size();
        assert_eq!(rcmc_shift(&g, 0, 0), 0);
        assert_eq!(rcmc_shift(&g, g.num_bins - 1, 0), 0);
        // The aliased band edge (m = N/2) implies the largest squint.
        let edge = rcmc_shift(&g, g.num_bins / 2, g.num_pulses / 2);
        let near = rcmc_shift(&g, g.num_bins / 2, 1);
        assert!(edge >= near);
    }

    #[test]
    fn rcmc_shift_matches_geometric_migration_at_close_range() {
        // r0 = 100 m makes migration several bins deep; the Doppler bin
        // whose squint equals the aperture-edge squint must predict the
        // same extra delay as the geometry does.
        let g = SarGeometry {
            r0: 100.0,
            ..SarGeometry::test_size()
        };
        let r = g.bin_range(0);
        let y_edge = g.platform_y(g.num_pulses - 1);
        let geometric = ((r * r + y_edge * y_edge).sqrt() - r) / g.dr;
        let sin_edge = y_edge / (r * r + y_edge * y_edge).sqrt();
        let m_edge = (2.0 * g.num_pulses as f32 * g.pulse_spacing * sin_edge / g.wavelength).round()
            as usize;
        let predicted = rcmc_shift(&g, 0, m_edge) as f32;
        assert!(
            (predicted - geometric).abs() <= 1.0,
            "predicted {predicted} vs geometric {geometric}"
        );
    }

    #[test]
    fn stage_ledgers_are_data_independent() {
        let g = SarGeometry::test_size();
        let n = g.num_pulses;
        let zeros = vec![c32::ZERO; n];
        let tones: Vec<c32> = (0..n).map(|t| c32::cis(0.3 * t as f32)).collect();
        let mut a = OpCounts::default();
        let mut b = OpCounts::default();
        doppler_spectrum(&zeros, &mut a);
        doppler_spectrum(&tones, &mut b);
        let rd0 = ComplexImage::zeros(g.num_bins, n);
        let mut rd1 = ComplexImage::zeros(g.num_bins, n);
        for z in rd1.as_mut_slice() {
            *z = c32::new(1.0, -2.0);
        }
        rcmc_correct(&rd0, &g, 3, true, &mut a);
        rcmc_correct(&rd1, &g, 3, true, &mut b);
        azimuth_compress(&zeros, &zeros, &mut a);
        azimuth_compress(&tones, &tones, &mut b);
        assert_eq!(a, b);
        assert!(a.flop_work() > 0);
    }

    #[test]
    fn fft_ledger_scales_n_log_n() {
        let mut small = OpCounts::default();
        let mut big = OpCounts::default();
        fft_ops(64, &mut small);
        fft_ops(1024, &mut big);
        // 1024·10 / (64·6) = 26.67x the butterflies.
        assert!(big.fmas > 25 * small.fmas);
        assert!(big.fmas < 28 * small.fmas);
    }
}
