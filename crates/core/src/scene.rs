//! Synthetic scenes and raw-data simulation.
//!
//! Substitute for recorded radar data (which the paper's authors had
//! from Saab's systems): point targets are placed on the ground, their
//! per-pulse range histories computed from the collection geometry, and
//! the *pulse-compressed* data matrix synthesised as a windowed-sinc
//! range response carrying the two-way carrier phase. The result has
//! exactly the structure Figure 7(a) shows — one curved range path per
//! target. A full chirp + matched-filter path is also provided so the
//! signal chain can be exercised end to end.

use desim::rng::SmallRng;

use crate::complex::c32;
use crate::geometry::SarGeometry;
use crate::image::ComplexImage;
use crate::signal::{lfm_chirp, ChirpParams, MatchedFilter};

/// An ideal point scatterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointTarget {
    /// Ground-range coordinate, metres.
    pub x: f32,
    /// Azimuth coordinate, metres.
    pub y: f32,
    /// Reflectivity amplitude.
    pub amplitude: f32,
}

/// A scene: targets plus the geometry they are observed under.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Collection geometry.
    pub geometry: SarGeometry,
    /// Scatterers.
    pub targets: Vec<PointTarget>,
}

impl Scene {
    /// The paper's validation scenario: six point targets spread over
    /// the swath.
    pub fn six_targets(geometry: SarGeometry) -> Scene {
        let g = &geometry;
        let r_lo = g.r0 + 0.15 * (g.r_max() - g.r0);
        let r_mid = g.r0 + 0.5 * (g.r_max() - g.r0);
        let r_hi = g.r0 + 0.85 * (g.r_max() - g.r0);
        let w = 0.6 * g.theta_half_span; // stay inside the sector
        let targets = vec![
            PointTarget {
                x: r_lo,
                y: -w * r_lo,
                amplitude: 1.0,
            },
            PointTarget {
                x: r_lo,
                y: w * r_lo,
                amplitude: 1.0,
            },
            PointTarget {
                x: r_mid,
                y: -0.5 * w * r_mid,
                amplitude: 1.0,
            },
            PointTarget {
                x: r_mid,
                y: 0.5 * w * r_mid,
                amplitude: 1.0,
            },
            PointTarget {
                x: r_hi,
                y: 0.0,
                amplitude: 1.0,
            },
            PointTarget {
                x: r_hi,
                y: w * r_hi,
                amplitude: 1.0,
            },
        ];
        Scene { geometry, targets }
    }

    /// A single broadside target at mid-swath (focusing sanity checks).
    pub fn single_target(geometry: SarGeometry) -> Scene {
        let r_mid = geometry.r0 + 0.5 * (geometry.r_max() - geometry.r0);
        Scene {
            geometry,
            targets: vec![PointTarget {
                x: r_mid,
                y: 0.0,
                amplitude: 1.0,
            }],
        }
    }

    /// `n` targets scattered uniformly over the swath and sector
    /// (deterministic for a given `seed`).
    pub fn random_targets(geometry: SarGeometry, n: usize, seed: u64) -> Scene {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = &geometry;
        let targets = (0..n)
            .map(|_| {
                let r = rng.gen_range(g.r0 + 20.0..g.r_max() - 20.0);
                let th = rng.gen_range(-0.8 * g.theta_half_span..0.8 * g.theta_half_span);
                PointTarget {
                    x: r,
                    y: th * r,
                    amplitude: rng.gen_range(0.5..1.5),
                }
            })
            .collect();
        Scene { geometry, targets }
    }
}

/// Width (in bins) of the synthesised compressed range response.
const KERNEL_HALF_WIDTH: i64 = 6;

/// Windowed-sinc range response of a compressed pulse.
fn range_kernel(frac_bins: f32) -> f32 {
    let x = frac_bins;
    if x.abs() >= KERNEL_HALF_WIDTH as f32 {
        return 0.0;
    }
    let sinc = if x.abs() < 1e-6 {
        1.0
    } else {
        let px = std::f32::consts::PI * x;
        px.sin() / px
    };
    // Hann taper over the kernel support.
    let w = 0.5 * (1.0 + (std::f32::consts::PI * x / KERNEL_HALF_WIDTH as f32).cos());
    sinc * w
}

/// Synthesise the pulse-compressed data matrix for `scene`
/// (rows = pulses, cols = range bins): each target contributes a
/// windowed-sinc range response at its per-pulse slant range, with the
/// two-way carrier phase `exp(-j 4 pi R / lambda)`.
///
/// Optional additive complex white noise with standard deviation
/// `noise_sigma` per component (seeded; pass 0.0 for a clean matrix).
pub fn simulate_compressed_data(scene: &Scene, noise_sigma: f32, seed: u64) -> ComplexImage {
    simulate_with_track(
        scene,
        &crate::track::FlightTrack::straight(scene.geometry.num_pulses),
        noise_sigma,
        seed,
    )
}

/// [`simulate_compressed_data`] against a *non-linear* flight track:
/// pulse `k` is transmitted from `track.offset(k)` metres closer to
/// the scene than the nominal line (positive offsets shorten every
/// range observed on that pulse). With a straight track this is
/// exactly the nominal simulation.
pub fn simulate_with_track(
    scene: &Scene,
    track: &crate::track::FlightTrack,
    noise_sigma: f32,
    seed: u64,
) -> ComplexImage {
    let g = &scene.geometry;
    assert_eq!(track.len(), g.num_pulses, "track must cover every pulse");
    let mut data = ComplexImage::zeros(g.num_pulses, g.num_bins);
    for k in 0..g.num_pulses {
        let py = g.platform_y(k);
        let row = data.row_mut(k);
        for t in &scene.targets {
            let range = g.slant_range(py, t.x, t.y) - track.offset(k);
            let centre_bin = (range - g.r0) / g.dr;
            let phase = c32::cis(g.range_phase(range)).scale(t.amplitude);
            let lo = (centre_bin.floor() as i64 - KERNEL_HALF_WIDTH).max(0);
            let hi = (centre_bin.ceil() as i64 + KERNEL_HALF_WIDTH).min(g.num_bins as i64 - 1);
            for i in lo..=hi {
                let k_amp = range_kernel(i as f32 - centre_bin);
                if k_amp != 0.0 {
                    row[i as usize] += phase.scale(k_amp);
                }
            }
        }
    }
    if noise_sigma > 0.0 {
        let mut rng = SmallRng::seed_from_u64(seed);
        for z in data.as_mut_slice() {
            // Box-Muller pairs for Gaussian noise.
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.next_f32();
            let mag = noise_sigma * (-2.0 * u1.ln()).sqrt();
            let ang = 2.0 * std::f32::consts::PI * u2;
            *z += c32::new(mag * ang.cos(), mag * ang.sin());
        }
    }
    data
}

/// Synthesise the *raw* (uncompressed) echo matrix for `scene` using
/// an LFM chirp: rows = pulses, cols = `num_bins + chirp.samples`
/// fast-time samples. Each target deposits a delayed, phase-rotated
/// copy of the chirp per pulse. This is the input the RDA pipeline
/// consumes (its first stage is the matched filter).
pub fn simulate_raw_echoes(scene: &Scene, chirp: ChirpParams) -> ComplexImage {
    let g = &scene.geometry;
    let waveform = lfm_chirp(chirp);
    let echo_len = g.num_bins + waveform.len();
    let mut raw = ComplexImage::zeros(g.num_pulses, echo_len);
    for k in 0..g.num_pulses {
        let py = g.platform_y(k);
        let row = raw.row_mut(k);
        for t in &scene.targets {
            let range = g.slant_range(py, t.x, t.y);
            let delay_bins = (range - g.r0) / g.dr;
            let phase = c32::cis(g.range_phase(range)).scale(t.amplitude);
            // Deposit the chirp starting at the (integer) delay; the
            // sub-bin fraction becomes a phase-preserved sinc shift
            // after compression, which the direct synthesis also models.
            let d0 = delay_bins.round() as i64;
            for (i, w) in waveform.iter().enumerate() {
                let idx = d0 + i as i64;
                if idx >= 0 && (idx as usize) < echo_len {
                    row[idx as usize] += *w * phase;
                }
            }
        }
    }
    raw
}

/// Synthesise raw echoes for `scene`, then pulse-compress them with
/// the matched filter — the full front half of the signal chain.
/// Slower than [`simulate_compressed_data`]; used to validate that the
/// direct synthesis is equivalent to chirp + compression.
pub fn simulate_via_chirp(scene: &Scene, chirp: ChirpParams) -> ComplexImage {
    let g = &scene.geometry;
    let waveform = lfm_chirp(chirp);
    let mf = MatchedFilter::new(&waveform, g.num_bins + waveform.len());
    let raw = simulate_raw_echoes(scene, chirp);
    let mut out = ComplexImage::zeros(g.num_pulses, g.num_bins);
    for k in 0..g.num_pulses {
        let compressed = mf.compress(raw.row(k));
        out.row_mut(k).copy_from_slice(&compressed[..g.num_bins]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> SarGeometry {
        SarGeometry::test_size()
    }

    #[test]
    fn target_traces_a_curved_path() {
        // Short range makes the range migration several bins deep so
        // the curvature is visible at integer-bin resolution.
        let close = SarGeometry {
            r0: 100.0,
            ..SarGeometry::test_size()
        };
        let scene = Scene::single_target(close);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        // Per pulse, the energy peak should sit at the slant range of
        // the target, which is minimal at the closest approach and
        // larger at the aperture ends (the curved path of Fig 7a).
        let peak_bin = |row: &[c32]| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
                .unwrap()
                .0
        };
        let g = scene.geometry;
        let t = scene.targets[0];
        let first = peak_bin(data.row(0));
        let mid = peak_bin(data.row(g.num_pulses / 2));
        let expected_mid = ((g.slant_range(g.platform_y(g.num_pulses / 2), t.x, t.y) - g.r0) / g.dr)
            .round() as usize;
        assert!((mid as i64 - expected_mid as i64).abs() <= 1);
        assert!(first > mid, "path should curve: first={first}, mid={mid}");
    }

    #[test]
    fn phase_matches_two_way_range() {
        let scene = Scene::single_target(geom());
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let g = scene.geometry;
        let t = scene.targets[0];
        let k = g.num_pulses / 2;
        let range = g.slant_range(g.platform_y(k), t.x, t.y);
        let bin = ((range - g.r0) / g.dr).round() as usize;
        let measured = data.at(k, bin).arg();
        let expected = c32::cis(g.range_phase(range)).arg();
        let dphi = (measured - expected).rem_euclid(2.0 * std::f32::consts::PI);
        let dphi = dphi.min(2.0 * std::f32::consts::PI - dphi);
        assert!(dphi < 0.15, "phase error {dphi}");
    }

    #[test]
    fn six_target_scene_has_six_paths() {
        let scene = Scene::six_targets(geom());
        assert_eq!(scene.targets.len(), 6);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        assert!(data.energy() > 0.0);
        // Targets stay inside the swath for every pulse.
        let g = scene.geometry;
        for t in &scene.targets {
            for k in [0, g.num_pulses - 1] {
                let r = g.slant_range(g.platform_y(k), t.x, t.y);
                assert!(r > g.r0 && r < g.r_max(), "target {t:?} leaves swath");
            }
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let scene = Scene::single_target(geom());
        let a = simulate_compressed_data(&scene, 0.1, 42);
        let b = simulate_compressed_data(&scene, 0.1, 42);
        let c = simulate_compressed_data(&scene, 0.1, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_scene_is_reproducible() {
        let a = Scene::random_targets(geom(), 5, 7);
        let b = Scene::random_targets(geom(), 5, 7);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.targets.len(), 5);
    }

    #[test]
    fn chirp_path_agrees_with_direct_synthesis() {
        // Use a coarse geometry to keep the FFTs small.
        let g = SarGeometry {
            num_pulses: 8,
            num_bins: 200,
            ..SarGeometry::test_size()
        };
        let scene = Scene::single_target(g);
        let direct = simulate_compressed_data(&scene, 0.0, 0);
        let via_chirp = simulate_via_chirp(
            &scene,
            ChirpParams {
                samples: 64,
                fractional_bandwidth: 0.9,
            },
        );
        // Peak bins should coincide per pulse (within a bin).
        for k in 0..g.num_pulses {
            let peak = |img: &ComplexImage| {
                img.row(k)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
                    .unwrap()
                    .0 as i64
            };
            assert!(
                (peak(&direct) - peak(&via_chirp)).abs() <= 2,
                "pulse {k}: direct {} vs chirp {}",
                peak(&direct),
                peak(&via_chirp)
            );
        }
    }

    #[test]
    fn kernel_is_normalised_and_compact() {
        assert!((range_kernel(0.0) - 1.0).abs() < 1e-6);
        assert_eq!(range_kernel(6.0), 0.0);
        assert_eq!(range_kernel(-7.5), 0.0);
        assert!(range_kernel(0.5).abs() < 1.0);
    }
}
