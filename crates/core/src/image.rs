//! Complex images (pulse/beam-major storage) and export helpers.

use std::io::{self, Write};
use std::path::Path;

use crate::complex::c32;

/// A dense complex image stored row-major. In raw radar data a row is a
/// pulse (slow time) and a column is a range bin (fast time); in a
/// formed image a row is a beam/azimuth line.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexImage {
    rows: usize,
    cols: usize,
    data: Vec<c32>,
}

impl ComplexImage {
    /// Zero-filled image.
    pub fn zeros(rows: usize, cols: usize) -> ComplexImage {
        assert!(rows > 0 && cols > 0, "image dimensions must be positive");
        ComplexImage {
            rows,
            cols,
            data: vec![c32::ZERO; rows * cols],
        }
    }

    /// Wrap existing data (length must be `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<c32>) -> ComplexImage {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        ComplexImage { rows, cols, data }
    }

    /// Number of rows (pulses / beams).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (range bins).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image has zero pixels (never — kept for clippy).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pixel accessor.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> c32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Mutable pixel accessor.
    #[inline]
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut c32 {
        debug_assert!(row < self.rows && col < self.cols);
        &mut self.data[row * self.cols + col]
    }

    /// Bounds-checked read returning zero outside the image (the
    /// paper's "skip the additions with zero when the indices are out
    /// of range" behaviour).
    #[inline]
    pub fn at_or_zero(&self, row: isize, col: isize) -> c32 {
        if row < 0 || col < 0 || row as usize >= self.rows || col as usize >= self.cols {
            c32::ZERO
        } else {
            self.data[row as usize * self.cols + col as usize]
        }
    }

    /// A full row as a slice.
    pub fn row(&self, row: usize) -> &[c32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A full row as a mutable slice.
    pub fn row_mut(&mut self, row: usize) -> &mut [c32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Flat view of all pixels.
    pub fn as_slice(&self) -> &[c32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [c32] {
        &mut self.data
    }

    /// Peak magnitude and its `(row, col)`.
    pub fn peak(&self) -> (f32, usize, usize) {
        let mut best = (0.0f32, 0usize, 0usize);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let m = self.at(r, c).norm_sqr();
                if m > best.0 {
                    best = (m, r, c);
                }
            }
        }
        (best.0.sqrt(), best.1, best.2)
    }

    /// Sum of squared magnitudes (total image energy).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr() as f64).sum()
    }

    /// Magnitude image in decibels relative to the peak, clamped to
    /// `floor_db` (e.g. -60.0).
    pub fn to_db(&self, floor_db: f32) -> Vec<f32> {
        let (peak, _, _) = self.peak();
        let p = peak.max(f32::MIN_POSITIVE);
        self.data
            .iter()
            .map(|z| (20.0 * (z.abs() / p).log10()).max(floor_db))
            .collect()
    }

    /// Write an 8-bit PGM of the dB-scaled magnitude (white = peak).
    pub fn write_pgm(&self, path: &Path, floor_db: f32) -> io::Result<()> {
        let db = self.to_db(floor_db);
        let mut out = Vec::with_capacity(self.len() + 64);
        write!(out, "P5\n{} {}\n255\n", self.cols, self.rows)?;
        for v in db {
            let t = (v - floor_db) / (-floor_db); // 0..1
            out.push((t * 255.0).round().clamp(0.0, 255.0) as u8);
        }
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut img = ComplexImage::zeros(4, 3);
        assert_eq!(img.rows(), 4);
        assert_eq!(img.cols(), 3);
        assert_eq!(img.len(), 12);
        *img.at_mut(2, 1) = c32::new(5.0, 0.0);
        assert_eq!(img.at(2, 1), c32::new(5.0, 0.0));
        assert_eq!(img.row(2)[1], c32::new(5.0, 0.0));
    }

    #[test]
    fn out_of_range_reads_are_zero() {
        let img = ComplexImage::zeros(2, 2);
        assert_eq!(img.at_or_zero(-1, 0), c32::ZERO);
        assert_eq!(img.at_or_zero(0, 5), c32::ZERO);
        assert_eq!(img.at_or_zero(2, 0), c32::ZERO);
    }

    #[test]
    fn peak_and_energy() {
        let mut img = ComplexImage::zeros(3, 3);
        *img.at_mut(1, 2) = c32::new(3.0, 4.0);
        *img.at_mut(0, 0) = c32::new(1.0, 0.0);
        let (p, r, c) = img.peak();
        assert_eq!((r, c), (1, 2));
        assert!((p - 5.0).abs() < 1e-6);
        assert!((img.energy() - 26.0).abs() < 1e-6);
    }

    #[test]
    fn db_scaling_peaks_at_zero() {
        let mut img = ComplexImage::zeros(1, 2);
        *img.at_mut(0, 0) = c32::new(10.0, 0.0);
        *img.at_mut(0, 1) = c32::new(1.0, 0.0);
        let db = img.to_db(-60.0);
        assert!((db[0] - 0.0).abs() < 1e-5);
        assert!((db[1] + 20.0).abs() < 1e-4);
    }

    #[test]
    fn pgm_roundtrip_header() {
        let mut img = ComplexImage::zeros(2, 3);
        *img.at_mut(0, 0) = c32::ONE;
        let dir = std::env::temp_dir().join("sar_core_test_pgm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        img.write_pgm(&path, -40.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(bytes.len(), "P5\n3 2\n255\n".len() + 6);
        // Peak pixel renders white.
        assert_eq!(bytes["P5\n3 2\n255\n".len()], 255);
    }

    #[test]
    fn from_vec_checks_length() {
        let v = vec![c32::ZERO; 6];
        let img = ComplexImage::from_vec(2, 3, v);
        assert_eq!(img.as_slice().len(), 6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_rejects_bad_length() {
        let _ = ComplexImage::from_vec(2, 3, vec![c32::ZERO; 5]);
    }
}
