//! Autofocus integrated into the FFBP merge loop — the paper's
//! Figure 4: "the autofocus calculations use the image data itself and
//! are done before each subaperture merge".
//!
//! Before merging a subaperture pair, both children are *projected*
//! onto a small window of the parent grid (the same eqs. (1)-(4)
//! interpolation the merge itself uses, applied per child — this is
//! why the criterion calculation shares its interpolation structure
//! with the merge). Geometry is thereby compensated, so any residual
//! displacement between the two projected subimages is flight-path
//! error; the criterion sweep estimates it as a linear shift, and the
//! losing child is motion-compensated before the actual merge.

use desim::OpCounts;

use crate::autofocus::block::Block6;
use crate::autofocus::criterion::AutofocusConfig;
use crate::autofocus::search::{refine_peak, sweep_criterion};
use crate::complex::c32;
use crate::ffbp::grid::{PolarGrid, Subaperture};
use crate::ffbp::interp::{sample, InterpKind};
use crate::ffbp::merge::merge_pair;
use crate::ffbp::pipeline::{stage0, FfbpConfig};
use crate::geometry::{merge_geometry, SarGeometry};
use crate::image::ComplexImage;
use crate::track::compensate_range_shift;

/// Configuration of the autofocused pipeline.
#[derive(Debug, Clone, Copy)]
pub struct IntegratedConfig {
    /// The underlying FFBP settings (merge base must be 2).
    pub ffbp: FfbpConfig,
    /// Criterion workload parameters.
    pub criterion: AutofocusConfig,
    /// Candidate compensations tested per merge.
    pub hypotheses: usize,
    /// Largest tested shift, in range bins.
    pub max_shift: f32,
    /// Autofocus runs once the parent grid has at least this many
    /// beams (a 6x6 block needs six beam rows; earlier merges span
    /// apertures short enough that a slowly varying track error is
    /// constant across them).
    pub min_parent_beams: usize,
    /// Estimates below this many bins are treated as estimator noise
    /// and not applied (spurious sub-bin corrections cascade into real
    /// relative errors at later merges).
    pub deadband_bins: f32,
    /// Only the final `last_merges` iterations run autofocus. Track
    /// errors vary slowly, so short subapertures see an essentially
    /// constant offset that the *relative* estimator cannot observe;
    /// estimating there only injects noise. Correcting the last few
    /// (longest-baseline) merges captures the bulk of the defocus —
    /// the usual coarse-to-fine autofocus practice.
    pub last_merges: u32,
    /// Minimum sweep contrast (peak criterion over edge criterion) for
    /// a correction to be trusted; flat sweeps carry no alignment
    /// information.
    pub min_contrast: f32,
}

impl Default for IntegratedConfig {
    fn default() -> Self {
        IntegratedConfig {
            ffbp: FfbpConfig::default(),
            // The estimator wants a *pure* range shift: no tilted-path
            // sweep and no beam-direction coupling (those belong to
            // the stand-alone criterion study).
            criterion: AutofocusConfig {
                tilt: 0.0,
                beam_coupling: 0.0,
                ..AutofocusConfig::default()
            },
            hypotheses: 17,
            max_shift: 2.0,
            min_parent_beams: 8,
            deadband_bins: 0.35,
            last_merges: 2,
            min_contrast: 1.05,
        }
    }
}

/// One correction the pipeline applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// Merge iteration (1-based, as in the paper's "ten iterations").
    pub iteration: u32,
    /// Index of the merged pair within the iteration.
    pub pair: usize,
    /// Range-shift applied to the leading child, metres.
    pub dx_meters: f32,
}

/// Result of an autofocused FFBP run.
pub struct IntegratedRun {
    /// The formed image.
    pub image: ComplexImage,
    /// Arithmetic performed (merges + criterion sweeps).
    pub counts: OpCounts,
    /// Merge iterations executed.
    pub iterations: u32,
    /// Every correction applied.
    pub corrections: Vec<Correction>,
}

/// Project `child` onto a 6x6 window of the parent grid starting at
/// parent beam `j0` / bin `i0`. `leading` selects which child of the
/// merge this is (trailing children use the `(r1, theta1)` branch of
/// eqs. (1)-(4), leading ones `(r2, theta2)`).
#[allow(clippy::too_many_arguments)]
fn project_block(
    child: &Subaperture,
    geom: &SarGeometry,
    out_grid: &PolarGrid,
    l: f32,
    leading: bool,
    j0: usize,
    i0: usize,
    counts: &mut OpCounts,
) -> Block6 {
    let k = 4.0 * std::f32::consts::PI / geom.wavelength;
    let mut b = [[c32::ZERO; 6]; 6];
    for (dj, row) in b.iter_mut().enumerate() {
        let theta = out_grid.beam_theta(j0 + dj);
        for (di, v) in row.iter_mut().enumerate() {
            let r = geom.bin_range(i0 + di);
            let look = merge_geometry(r, theta, l, counts);
            let (rc, thc) = if leading {
                (look.r2, look.theta2)
            } else {
                (look.r1, look.theta1)
            };
            let s = sample(child, geom, rc, thc, InterpKind::Cubic, counts);
            *v = s * c32::cis(k * (rc - r));
            counts.trigs += 1;
            counts.fmas += 4;
        }
    }
    Block6(b)
}

/// Estimate the residual path error between two children of a merge,
/// in *parent range bins* (positive = the leading child's responses
/// sit at larger ranges than the trailing child's).
pub fn estimate_pair_shift(
    a: &Subaperture,
    b: &Subaperture,
    geom: &SarGeometry,
    out_grid: &PolarGrid,
    cfg: &IntegratedConfig,
    counts: &mut OpCounts,
) -> f32 {
    let l = b.center_y - a.center_y;
    // Anchor the window on the brightest region of the trailing child,
    // mapped into *parent* coordinates. The child sees its peak at
    // (r_a, theta_a) from its own centre at -l/2; the same ground
    // point sits at (r_p, theta_p) from the merged centre — using the
    // child indices directly would park the window off the target by
    // the parallax (l/2) cos(theta), where the two children's
    // projections legitimately disagree.
    let (_, pa_beam, pa_bin) = a.data.peak();
    let r_a = geom.bin_range(pa_bin);
    let th_a = a.grid.beam_theta(pa_beam);
    let (x_g, y_g) = (r_a * th_a.sin(), -0.5 * l + r_a * th_a.cos());
    let r_p = (x_g * x_g + y_g * y_g).sqrt();
    let th_p = (y_g / r_p).clamp(-1.0, 1.0).acos();
    counts.trigs += 3;
    counts.sqrts += 1;
    counts.fmas += 6;
    let j0 = (out_grid.beam_index(th_p).round().max(0.0) as usize)
        .saturating_sub(2)
        .min(out_grid.n_beams.saturating_sub(6));
    let i0 = (((r_p - geom.r0) / geom.dr).round().max(0.0) as usize)
        .saturating_sub(2)
        .min(geom.num_bins.saturating_sub(6));
    let f_minus = project_block(a, geom, out_grid, l, false, j0, i0, counts);
    let f_plus = project_block(b, geom, out_grid, l, true, j0, i0, counts);
    let sweep = sweep_criterion(
        &f_minus,
        &f_plus,
        cfg.max_shift,
        cfg.hypotheses,
        &cfg.criterion,
        counts,
    );
    let peak_v = sweep.iter().map(|&(_, v)| v).fold(f32::MIN, f32::max);
    let edge_v = sweep[0]
        .1
        .max(sweep[sweep.len() - 1].1)
        .max(f32::MIN_POSITIVE);
    if peak_v < cfg.min_contrast * edge_v {
        return 0.0; // flat sweep: no alignment information
    }
    // Antisymmetrise: the 6x6 window is not centred on the response
    // (integer anchor), which biases the correlation product toward
    // the window's heavy side. Sweeping the blocks in both orders
    // flips the sign of the true shift but not of the window bias, so
    // the half-difference cancels the bias.
    let reversed = sweep_criterion(
        &f_plus,
        &f_minus,
        cfg.max_shift,
        cfg.hypotheses,
        &cfg.criterion,
        counts,
    );
    let refined = 0.5 * (refine_peak(&sweep) - refine_peak(&reversed));
    if refined.abs() < cfg.deadband_bins {
        0.0
    } else {
        refined
    }
}

/// Run FFBP with per-merge autofocus.
pub fn ffbp_with_autofocus(
    data: &ComplexImage,
    geom: &SarGeometry,
    cfg: &IntegratedConfig,
) -> IntegratedRun {
    assert_eq!(
        cfg.ffbp.merge_base, 2,
        "autofocus assumes a merge base of two"
    );
    let mut counts = OpCounts::default();
    let mut stage = stage0(data, geom);
    let mut iterations = 0u32;
    let mut corrections = Vec::new();
    let total_merges = geom.merge_iterations();

    while stage.len() > 1 {
        let out_grid = stage[0].grid.refined();
        let run_autofocus = out_grid.n_beams >= cfg.min_parent_beams.max(6)
            && iterations + cfg.last_merges >= total_merges;
        let mut next = Vec::with_capacity(stage.len() / 2);
        for (pair_idx, pair) in stage.chunks_exact(2).enumerate() {
            let a = &pair[0];
            let mut b = pair[1].clone();
            if run_autofocus {
                let delta_bins = estimate_pair_shift(a, &b, geom, &out_grid, cfg, &mut counts);
                // The leading child's responses sit `delta` bins late:
                // it flew `delta * dr` farther out, i.e. `-delta * dr`
                // closer; compensate accordingly.
                let dx = -delta_bins * geom.dr;
                if dx != 0.0 {
                    compensate_range_shift(&mut b, dx, geom, &mut counts);
                    corrections.push(Correction {
                        iteration: iterations + 1,
                        pair: pair_idx,
                        dx_meters: dx,
                    });
                }
            }
            next.push(merge_pair(
                a,
                &b,
                geom,
                cfg.ffbp.interp,
                cfg.ffbp.phase_correct,
                &mut counts,
            ));
        }
        stage = next;
        iterations += 1;
    }

    let full = stage.into_iter().next().expect("non-empty stage");
    IntegratedRun {
        image: full.data,
        counts,
        iterations,
        corrections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffbp::ffbp;
    use crate::scene::{simulate_compressed_data, simulate_with_track, Scene};
    use crate::track::FlightTrack;

    fn geom() -> SarGeometry {
        SarGeometry::test_size()
    }

    #[test]
    fn clean_data_gets_no_large_corrections() {
        let scene = Scene::single_target(geom());
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let run = ffbp_with_autofocus(&data, &geom(), &IntegratedConfig::default());
        // A straight track needs no compensation: whatever the sweep
        // picks must be sub-bin.
        for c in &run.corrections {
            assert!(
                c.dx_meters.abs() <= 1.0,
                "spurious correction {c:?} on clean data"
            );
        }
        // And focus quality must not degrade materially vs plain FFBP.
        let plain = ffbp(&data, &geom(), &FfbpConfig::default());
        let (p_auto, _, _) = run.image.peak();
        let (p_plain, _, _) = plain.image.peak();
        assert!(
            p_auto > 0.8 * p_plain,
            "autofocus hurt clean data: {p_auto} vs {p_plain}"
        );
    }

    #[test]
    fn step_track_error_is_detected_and_corrected() {
        // The second half of the aperture flies 1.5 m closer: the final
        // merge sees a hard path discontinuity.
        let g = geom();
        let scene = Scene::single_target(g);
        let track = FlightTrack::step(g.num_pulses, 1.5);
        let perturbed = simulate_with_track(&scene, &track, 0.0, 0);
        let clean = simulate_compressed_data(&scene, 0.0, 0);

        let plain = ffbp(&perturbed, &g, &FfbpConfig::default());
        let auto = ffbp_with_autofocus(&perturbed, &g, &IntegratedConfig::default());
        let ideal = ffbp(&clean, &g, &FfbpConfig::default());

        let (p_plain, _, _) = plain.image.peak();
        let (p_auto, _, _) = auto.image.peak();
        let (p_ideal, _, _) = ideal.image.peak();

        assert!(
            p_auto > p_plain,
            "autofocus must improve the defocused image: {p_auto} vs {p_plain}"
        );
        assert!(
            p_auto > 0.6 * p_ideal,
            "autofocus should recover most of the ideal peak: {p_auto} vs {p_ideal}"
        );
        // The final-merge correction must be roughly the injected step.
        let last = auto
            .corrections
            .iter()
            .rfind(|c| c.iteration == auto.iterations)
            .expect("final merge must be corrected");
        assert!(
            (last.dx_meters - 1.5).abs() <= 0.75,
            "final correction {last:?} should approximate the +1.5 m step"
        );
    }

    #[test]
    fn estimator_sees_no_shift_between_identical_children() {
        let g = geom();
        let scene = Scene::single_target(g);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let subs = stage0(&data, &g);
        // Build two mid-aperture 8-beam subapertures by plain merging.
        let mut counts = OpCounts::default();
        let mut stage = subs;
        while stage[0].grid.n_beams < 8 {
            stage = stage
                .chunks_exact(2)
                .map(|p| merge_pair(&p[0], &p[1], &g, InterpKind::Nearest, true, &mut counts))
                .collect();
        }
        let mid = stage.len() / 2;
        let (a, b) = (&stage[mid - 1], &stage[mid]);
        let out_grid = a.grid.refined();
        let cfg = IntegratedConfig::default();
        let shift = estimate_pair_shift(a, b, &g, &out_grid, &cfg, &mut counts);
        assert!(
            shift.abs() <= 0.5,
            "clean children should need < half-bin correction, got {shift}"
        );
    }

    #[test]
    fn corrections_record_iteration_and_pair() {
        let g = geom();
        let scene = Scene::single_target(g);
        let track = FlightTrack::sinusoidal(g.num_pulses, 1.0, 40.0);
        let data = simulate_with_track(&scene, &track, 0.0, 0);
        let run = ffbp_with_autofocus(&data, &g, &IntegratedConfig::default());
        assert!(!run.corrections.is_empty());
        for c in &run.corrections {
            assert!(c.iteration >= 1 && c.iteration <= run.iterations);
            assert!(c.dx_meters.abs() <= 2.0 * g.dr + 1e-5);
        }
    }
}
