//! The staged focus-criterion computation (Figure 8 dataflow).
//!
//! Stage shapes follow the paper's mapping exactly so the MPMD version
//! can put one stage instance per core:
//!
//! * **range stage** — three instances per block, one per 4-column
//!   window (windows 0-3, 1-4, 2-5: "including another column of
//!   pixels instead of the first"); each instance cubic-interpolates
//!   all six rows of its window along the tilted path,
//! * **beam stage** — three instances per block, one per 4-row window;
//!   each consumes four range-interpolated rows,
//! * **correlation + summation** — one instance shared by both blocks,
//!   accumulating eq. (6).
//!
//! Three iterations sweep disjoint thirds of the oversampled path, so
//! after iteration 2 the criterion covers the whole 6x6 block.

use desim::OpCounts;

use crate::autofocus::block::Block6;
use crate::complex::c32;
use crate::ffbp::interp::neville4;

/// Criterion workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct AutofocusConfig {
    /// Interpolation points evaluated along the tilted path per window
    /// (split evenly across the three iterations; must be divisible
    /// by 3).
    pub oversample: usize,
    /// Slope of the tilted path: fractional range shift per row.
    pub tilt: f32,
    /// Fraction of the hypothesis shift applied in the *beam*
    /// direction by the beam stage (the tilted path has a cross-range
    /// component). The integrated FFBP estimator sets this to zero to
    /// measure a pure range shift.
    pub beam_coupling: f32,
}

impl Default for AutofocusConfig {
    fn default() -> Self {
        AutofocusConfig {
            oversample: 48,
            tilt: 0.3,
            beam_coupling: 0.5,
        }
    }
}

impl AutofocusConfig {
    /// Samples handled per iteration.
    pub fn samples_per_iteration(&self) -> usize {
        assert!(
            self.oversample.is_multiple_of(3) && self.oversample > 0,
            "oversample must be a positive multiple of 3"
        );
        self.oversample / 3
    }
}

/// Output of one range-stage instance: for each of the six rows, the
/// interpolated values at this iteration's path positions.
pub type RangeStageOut = [Vec<c32>; 6];

/// Output of one beam-stage instance: for each of the three range
/// windows, the interpolated values at this iteration's path positions.
pub type BeamStageOut = [Vec<c32>; 3];

/// Path position `s` (of `oversample`) expressed as a fractional
/// offset within a 4-point window (relative to node index 1).
#[inline]
fn path_position(s: usize, oversample: usize) -> f32 {
    (s as f32 + 0.5) / oversample as f32
}

/// Range-interpolation stage for window `window` (0..3) of `block`:
/// cubic interpolation of each row's columns `window..window+4` at the
/// iteration's path positions, shifted by `shift` and tilted per row.
pub fn range_stage(
    block: &Block6,
    window: usize,
    shift: f32,
    iteration: usize,
    cfg: &AutofocusConfig,
    counts: &mut OpCounts,
) -> RangeStageOut {
    assert!(window < 3, "range windows are 0..3");
    assert!(iteration < 3, "iterations are 0..3");
    let per_it = cfg.samples_per_iteration();
    let s0 = iteration * per_it;
    let mut out: RangeStageOut = Default::default();
    for (row_idx, out_row) in out.iter_mut().enumerate() {
        let row = block.row(row_idx);
        let p = [
            row[window],
            row[window + 1],
            row[window + 2],
            row[window + 3],
        ];
        counts.loads += 4;
        // The tilted path: each row's sampling position slides by
        // `shift * tilt` per row off-centre.
        let row_shift = shift * (1.0 + cfg.tilt * (row_idx as f32 - 2.5));
        counts.fmas += 2;
        let mut vals = Vec::with_capacity(per_it);
        for s in s0..s0 + per_it {
            let t = path_position(s, cfg.oversample) + row_shift;
            counts.flops += 1;
            let v = neville4(p, t, counts);
            counts.stores += 1;
            vals.push(v);
        }
        *out_row = vals;
    }
    out
}

/// Beam-interpolation stage for row-window `window` (0..3): for each
/// range window `w`, cubic interpolation across the four range-stage
/// rows `window..window+4` at the same path positions.
pub fn beam_stage(
    range_out: &[RangeStageOut; 3],
    window: usize,
    shift: f32,
    iteration: usize,
    cfg: &AutofocusConfig,
    counts: &mut OpCounts,
) -> BeamStageOut {
    assert!(window < 3, "beam windows are 0..3");
    assert!(iteration < 3, "iterations are 0..3");
    let per_it = cfg.samples_per_iteration();
    let beam_shift = cfg.beam_coupling * shift;
    counts.flops += 1;
    let mut out: BeamStageOut = Default::default();
    for (w, out_w) in out.iter_mut().enumerate() {
        let mut vals = Vec::with_capacity(per_it);
        #[allow(clippy::needless_range_loop)] // four parallel rows are indexed together
        for s in 0..per_it {
            let p = [
                range_out[w][window][s],
                range_out[w][window + 1][s],
                range_out[w][window + 2][s],
                range_out[w][window + 3][s],
            ];
            counts.loads += 4;
            let t = 0.5 + beam_shift;
            let v = neville4(p, t, counts);
            counts.stores += 1;
            vals.push(v);
        }
        *out_w = vals;
    }
    out
}

/// Correlation + summation over one iteration's beam-stage outputs of
/// the two contributing images (eq. 6): `sum |f-|^2 * |f+|^2`.
pub fn correlate_partial(
    minus: &[BeamStageOut; 3],
    plus: &[BeamStageOut; 3],
    counts: &mut OpCounts,
) -> f32 {
    let mut acc = 0.0f32;
    for b in 0..3 {
        for w in 0..3 {
            let (m, p) = (&minus[b][w], &plus[b][w]);
            debug_assert_eq!(m.len(), p.len());
            for (zm, zp) in m.iter().zip(p) {
                acc += zm.norm_sqr() * zp.norm_sqr();
                counts.fmas += 3;
                counts.loads += 4;
            }
        }
    }
    counts.stores += 1;
    acc
}

/// Run all three iterations of the full staged computation for one
/// pair of blocks under shift hypothesis `shift`: `f-` is resampled at
/// `-shift/2` and `f+` at `+shift/2`, so a feature displaced by
/// `+shift` in `f+` relative to `f-` is pulled back into alignment
/// (resampling at `+d` moves apparent features by `-d`).
pub fn focus_criterion(
    f_minus: &Block6,
    f_plus: &Block6,
    shift: f32,
    cfg: &AutofocusConfig,
    counts: &mut OpCounts,
) -> f32 {
    let mut total = 0.0f32;
    for it in 0..3 {
        let run_half = |block: &Block6, s: f32, counts: &mut OpCounts| {
            let r: [RangeStageOut; 3] = [
                range_stage(block, 0, s, it, cfg, counts),
                range_stage(block, 1, s, it, cfg, counts),
                range_stage(block, 2, s, it, cfg, counts),
            ];
            let b: [BeamStageOut; 3] = [
                beam_stage(&r, 0, s, it, cfg, counts),
                beam_stage(&r, 1, s, it, cfg, counts),
                beam_stage(&r, 2, s, it, cfg, counts),
            ];
            b
        };
        let bm = run_half(f_minus, -0.5 * shift, counts);
        let bp = run_half(f_plus, 0.5 * shift, counts);
        total += correlate_partial(&bm, &bp, counts);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutofocusConfig {
        AutofocusConfig::default()
    }

    #[test]
    fn stages_produce_expected_shapes() {
        let b = Block6::gaussian_blob(0.0, 0.0);
        let mut c = OpCounts::default();
        let r0 = range_stage(&b, 0, 0.0, 0, &cfg(), &mut c);
        assert_eq!(r0[0].len(), cfg().samples_per_iteration());
        let r = [
            r0,
            range_stage(&b, 1, 0.0, 0, &cfg(), &mut c),
            range_stage(&b, 2, 0.0, 0, &cfg(), &mut c),
        ];
        let bo = beam_stage(&r, 0, 0.0, 0, &cfg(), &mut c);
        assert_eq!(bo[2].len(), cfg().samples_per_iteration());
        assert!(c.fmas > 0 && c.loads > 0);
    }

    #[test]
    fn criterion_is_positive_for_bright_blocks() {
        let a = Block6::gaussian_blob(0.0, 0.0);
        let mut c = OpCounts::default();
        let v = focus_criterion(&a, &a, 0.0, &cfg(), &mut c);
        assert!(v > 0.0);
    }

    #[test]
    fn aligned_blocks_maximise_criterion() {
        // f- is the field shifted by +0.4 column; the criterion over
        // shift hypotheses must peak near the true shift.
        let truth = 0.4f32;
        let f_plus = Block6::gaussian_blob(0.0, -truth / 2.0);
        let f_minus = Block6::gaussian_blob(0.0, truth / 2.0);
        let mut best = (f32::MIN, 0.0f32);
        for i in 0..41 {
            let hyp = -1.0 + i as f32 * 0.05;
            let mut c = OpCounts::default();
            let v = focus_criterion(&f_minus, &f_plus, hyp, &cfg(), &mut c);
            if v > best.0 {
                best = (v, hyp);
            }
        }
        assert!(
            (best.1 - truth).abs() <= 0.15,
            "criterion peaked at {} instead of {truth}",
            best.1
        );
    }

    #[test]
    fn criterion_degrades_away_from_truth() {
        let f_plus = Block6::gaussian_blob(0.0, 0.0);
        let f_minus = Block6::gaussian_blob(0.0, 0.0);
        let mut c = OpCounts::default();
        let at_zero = focus_criterion(&f_minus, &f_plus, 0.0, &cfg(), &mut c);
        let far = focus_criterion(&f_minus, &f_plus, 1.5, &cfg(), &mut c);
        assert!(at_zero > far, "{at_zero} vs {far}");
    }

    #[test]
    fn iterations_partition_the_path() {
        // Three iterations over disjoint thirds must sum to the same
        // total as directly correlating a full-path single pass with
        // 3x the per-iteration samples.
        let b = Block6::gaussian_blob(0.0, 0.0);
        let mut c = OpCounts::default();
        let mut per_iter_sum = 0.0;
        for it in 0..3 {
            let r = [
                range_stage(&b, 0, 0.1, it, &cfg(), &mut c),
                range_stage(&b, 1, 0.1, it, &cfg(), &mut c),
                range_stage(&b, 2, 0.1, it, &cfg(), &mut c),
            ];
            let bo = [
                beam_stage(&r, 0, 0.1, it, &cfg(), &mut c),
                beam_stage(&r, 1, 0.1, it, &cfg(), &mut c),
                beam_stage(&r, 2, 0.1, it, &cfg(), &mut c),
            ];
            per_iter_sum += correlate_partial(&bo, &bo, &mut c);
        }
        let direct = focus_criterion(&b, &b, 0.2, &cfg(), &mut c);
        // Not the same shift, just both finite and positive: the
        // partition property is shape-level (covered positions).
        assert!(per_iter_sum.is_finite() && direct.is_finite());
        assert!(per_iter_sum > 0.0);
    }

    #[test]
    fn op_counts_match_workload_scale() {
        let b = Block6::gaussian_blob(0.0, 0.0);
        let mut c = OpCounts::default();
        focus_criterion(&b, &b, 0.0, &cfg(), &mut c);
        // Nevilles: 2 blocks x 3 iterations x (3 range windows x 6 rows
        // + 3 beam windows x 3) x 16 samples
        let nevilles = 2 * 3 * ((3 * 6) + (3 * 3)) * 16;
        assert!(c.fmas / 18 >= nevilles as u64 / 2);
        assert!(c.flop_work() > 100_000);
    }

    #[test]
    #[should_panic(expected = "multiple of 3")]
    fn oversample_must_divide_by_three() {
        let bad = AutofocusConfig {
            oversample: 16,
            ..AutofocusConfig::default()
        };
        let _ = bad.samples_per_iteration();
    }
}
