//! The 6x6 pixel blocks the criterion works on.

use crate::complex::c32;
use crate::image::ComplexImage;

/// A 6x6 complex pixel block from the area of interest of a
/// contributing image.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Block6(pub [[c32; 6]; 6]);

impl Block6 {
    /// Extract the block whose top-left corner is `(row, col)` from an
    /// image.
    ///
    /// # Panics
    /// If the block does not fit inside the image.
    pub fn from_image(img: &ComplexImage, row: usize, col: usize) -> Block6 {
        assert!(
            row + 6 <= img.rows() && col + 6 <= img.cols(),
            "6x6 block at ({row},{col}) outside {}x{} image",
            img.rows(),
            img.cols()
        );
        let mut b = [[c32::ZERO; 6]; 6];
        for (r, brow) in b.iter_mut().enumerate() {
            for (c, v) in brow.iter_mut().enumerate() {
                *v = img.at(row + r, col + c);
            }
        }
        Block6(b)
    }

    /// Sample a continuous complex field `f(row, col)` on the 6x6 grid,
    /// offset by `(d_row, d_col)` — used to synthesise a pair of blocks
    /// that differ by a known sub-pixel shift (a simulated path error).
    pub fn from_field(f: impl Fn(f32, f32) -> c32, d_row: f32, d_col: f32) -> Block6 {
        let mut b = [[c32::ZERO; 6]; 6];
        for (r, brow) in b.iter_mut().enumerate() {
            for (c, v) in brow.iter_mut().enumerate() {
                *v = f(r as f32 + d_row, c as f32 + d_col);
            }
        }
        Block6(b)
    }

    /// A smooth test target: a complex Gaussian blob centred mid-block
    /// with a mild phase ramp (differentiable, so cubic interpolation
    /// tracks sub-pixel shifts well).
    pub fn gaussian_blob(d_row: f32, d_col: f32) -> Block6 {
        Block6::from_field(
            |r, c| {
                let (dr, dc) = (r - 2.5, c - 2.5);
                let mag = (-(dr * dr + dc * dc) / 4.0).exp();
                c32::cis(0.4 * dr + 0.2 * dc).scale(mag)
            },
            d_row,
            d_col,
        )
    }

    /// Row accessor.
    pub fn row(&self, r: usize) -> &[c32; 6] {
        &self.0[r]
    }

    /// Total energy of the block.
    pub fn energy(&self) -> f32 {
        self.0
            .iter()
            .flat_map(|row| row.iter())
            .map(|z| z.norm_sqr())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_copies_pixels() {
        let mut img = ComplexImage::zeros(10, 10);
        *img.at_mut(3, 4) = c32::new(7.0, 0.0);
        let b = Block6::from_image(&img, 2, 2);
        assert_eq!(b.0[1][2], c32::new(7.0, 0.0));
    }

    #[test]
    fn blob_is_centred_and_shifts() {
        let b = Block6::gaussian_blob(0.0, 0.0);
        // Peak straddles the centre four pixels.
        let peak = b.0[2][2].abs();
        assert!(peak > b.0[0][0].abs() * 5.0);
        // A +1-pixel shift moves the field by one row.
        let shifted = Block6::gaussian_blob(1.0, 0.0);
        assert!((shifted.0[1][2].abs() - b.0[2][2].abs()).abs() < 1e-6);
    }

    #[test]
    fn energy_is_positive_for_blob() {
        assert!(Block6::gaussian_blob(0.0, 0.0).energy() > 1.0);
        assert_eq!(Block6::default().energy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_extraction_rejected() {
        let img = ComplexImage::zeros(8, 8);
        let _ = Block6::from_image(&img, 4, 4);
    }
}
