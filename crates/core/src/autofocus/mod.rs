//! The autofocus criterion calculation (Section II-A of the paper).
//!
//! When GPS data is insufficient, the flight-path compensation is found
//! by testing several candidate compensations before each subaperture
//! merge: each candidate shifts one subimage relative to the other
//! (a path error over a small subimage is well approximated by a
//! linear shift in the data), the shifted images are resampled with
//! cubic (Neville) interpolation along tilted paths — in the range
//! direction and then the beam direction — and the candidate whose
//! resampled images correlate best wins:
//!
//! `criterion = sum |f-(r, fi)|^2 * |f+(r, fi)|^2`       (eq. 6)
//!
//! The computation is organised exactly as the paper's Figure 8
//! dataflow: a *range interpolation* stage (three 4-column windows), a
//! *beam interpolation* stage (three 4-row windows), and a
//! *correlation + summation* stage, iterated three times to cover the
//! whole 6x6 pixel block. The staged functions are public so the MPMD
//! mapping can place each stage on its own core.

pub mod block;
pub mod criterion;
pub mod integrated;
pub mod search;

pub use block::Block6;
pub use criterion::{beam_stage, correlate_partial, focus_criterion, range_stage, AutofocusConfig};
pub use integrated::{ffbp_with_autofocus, IntegratedConfig, IntegratedRun};
pub use search::{best_shift, sweep_criterion};
