//! Flight-path compensation search: evaluate the criterion for a grid
//! of candidate shifts and pick the maximum.

use desim::OpCounts;

use crate::autofocus::block::Block6;
use crate::autofocus::criterion::{focus_criterion, AutofocusConfig};

/// Evaluate the criterion for `hypotheses` equally spaced shifts in
/// `[-max_shift, max_shift]`; returns `(shift, criterion)` pairs.
pub fn sweep_criterion(
    f_minus: &Block6,
    f_plus: &Block6,
    max_shift: f32,
    hypotheses: usize,
    cfg: &AutofocusConfig,
    counts: &mut OpCounts,
) -> Vec<(f32, f32)> {
    assert!(hypotheses >= 2, "need at least two hypotheses");
    assert!(max_shift > 0.0, "max_shift must be positive");
    (0..hypotheses)
        .map(|i| {
            let shift = -max_shift + 2.0 * max_shift * i as f32 / (hypotheses - 1) as f32;
            let v = focus_criterion(f_minus, f_plus, shift, cfg, counts);
            (shift, v)
        })
        .collect()
}

/// The shift whose criterion is maximal.
pub fn best_shift(sweep: &[(f32, f32)]) -> (f32, f32) {
    sweep
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep must be non-empty")
}

/// Sub-step refinement of the sweep maximum: fit a parabola through
/// the best sample and its neighbours and return the vertex. Falls
/// back to the discrete maximum at the sweep edges or on degenerate
/// (flat) neighbourhoods.
pub fn refine_peak(sweep: &[(f32, f32)]) -> f32 {
    let (idx, _) = sweep
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .expect("sweep must be non-empty");
    if idx == 0 || idx + 1 == sweep.len() {
        return sweep[idx].0;
    }
    let (xl, vl) = sweep[idx - 1];
    let (x0, v0) = sweep[idx];
    let (_, vr) = sweep[idx + 1];
    let denom = vl - 2.0 * v0 + vr;
    if denom >= 0.0 || !denom.is_finite() {
        return x0;
    }
    let step = x0 - xl;
    let offset = 0.5 * (vl - vr) / denom;
    x0 + offset.clamp(-1.0, 1.0) * step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_recovers_injected_path_error() {
        let cfg = AutofocusConfig::default();
        for truth in [-0.5f32, -0.2, 0.0, 0.3, 0.6] {
            let f_plus = Block6::gaussian_blob(0.0, -truth / 2.0);
            let f_minus = Block6::gaussian_blob(0.0, truth / 2.0);
            let mut c = OpCounts::default();
            let sweep = sweep_criterion(&f_minus, &f_plus, 1.0, 41, &cfg, &mut c);
            let (found, _) = best_shift(&sweep);
            assert!(
                (found - truth).abs() <= 0.15,
                "truth {truth}: found {found}"
            );
        }
    }

    #[test]
    fn sweep_shape_and_bounds() {
        let cfg = AutofocusConfig::default();
        let b = Block6::gaussian_blob(0.0, 0.0);
        let mut c = OpCounts::default();
        let sweep = sweep_criterion(&b, &b, 0.8, 17, &cfg, &mut c);
        assert_eq!(sweep.len(), 17);
        assert!((sweep[0].0 + 0.8).abs() < 1e-6);
        assert!((sweep[16].0 - 0.8).abs() < 1e-6);
        // Counts scale linearly with hypotheses.
        let per_hyp = c.flop_work() / 17;
        assert!(per_hyp > 10_000);
    }

    #[test]
    fn criterion_curve_is_unimodal_near_truth() {
        let cfg = AutofocusConfig::default();
        let truth = 0.3f32;
        let f_plus = Block6::gaussian_blob(0.0, -truth / 2.0);
        let f_minus = Block6::gaussian_blob(0.0, truth / 2.0);
        let mut c = OpCounts::default();
        let sweep = sweep_criterion(&f_minus, &f_plus, 1.0, 21, &cfg, &mut c);
        let (_, peak_v) = best_shift(&sweep);
        // Endpoints are clearly worse than the peak.
        assert!(sweep[0].1 < 0.9 * peak_v);
        assert!(sweep[20].1 < 0.9 * peak_v);
    }

    #[test]
    fn refine_peak_finds_parabola_vertex() {
        // Samples of -(x - 0.37)^2: vertex at 0.37.
        let sweep: Vec<(f32, f32)> = (0..11)
            .map(|i| {
                let x = -1.0 + 0.2 * i as f32;
                (x, -(x - 0.37) * (x - 0.37))
            })
            .collect();
        let refined = refine_peak(&sweep);
        assert!((refined - 0.37).abs() < 1e-3, "vertex {refined}");
        // Discrete best is only within half a step.
        assert!((best_shift(&sweep).0 - 0.4).abs() < 1e-6);
    }

    #[test]
    fn refine_peak_handles_edges_and_flats() {
        // Peak at the first sample: no refinement possible.
        let edge = vec![(0.0f32, 5.0f32), (1.0, 1.0), (2.0, 0.0)];
        assert_eq!(refine_peak(&edge), 0.0);
        // Flat neighbourhood: returns a finite in-sweep value (the
        // discrete maximum), never NaN or an extrapolation.
        let flat = vec![(0.0f32, 1.0f32), (1.0, 1.0), (2.0, 1.0)];
        let r = refine_peak(&flat);
        assert!(r.is_finite() && (0.0..=2.0).contains(&r), "got {r}");
        // Convex (minimum-shaped) neighbourhood falls back too.
        let vee = vec![(0.0f32, 1.0f32), (1.0, 2.0), (2.0, 5.0)];
        assert_eq!(refine_peak(&vee), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_sweep_rejected() {
        let cfg = AutofocusConfig::default();
        let b = Block6::gaussian_blob(0.0, 0.0);
        let mut c = OpCounts::default();
        let _ = sweep_criterion(&b, &b, 1.0, 1, &cfg, &mut c);
    }
}
