//! Non-linear flight tracks and motion compensation.
//!
//! The whole reason the paper processes in the time domain is that
//! back-projection "can compensate for non-linear flight tracks"
//! (§I). This module provides the perturbed tracks, the raw-data
//! simulation against them lives in [`crate::scene`], and
//! [`compensate_range_shift`] applies the per-pulse (or per-
//! subaperture) correction — from GPS when available, from the
//! autofocus estimate when not (Figure 4).

use desim::rng::SmallRng;
use desim::OpCounts;

use crate::complex::c32;
use crate::ffbp::grid::Subaperture;
use crate::ffbp::interp::neville4;
use crate::geometry::SarGeometry;

/// Cross-track deviation of the platform per pulse, metres. Positive
/// values move the platform *toward* the scene (shortening ranges).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightTrack {
    offsets: Vec<f32>,
}

impl FlightTrack {
    /// A perfectly linear track.
    pub fn straight(num_pulses: usize) -> FlightTrack {
        FlightTrack {
            offsets: vec![0.0; num_pulses],
        }
    }

    /// A slow sinusoidal weave: `amplitude * sin(2 pi k / period)`.
    pub fn sinusoidal(num_pulses: usize, amplitude: f32, period: f32) -> FlightTrack {
        assert!(period > 1.0, "period must exceed one pulse");
        FlightTrack {
            offsets: (0..num_pulses)
                .map(|k| amplitude * (2.0 * std::f32::consts::PI * k as f32 / period).sin())
                .collect(),
        }
    }

    /// A smoothed random walk (deterministic per seed): integrates
    /// white noise of standard deviation `sigma` per pulse, then
    /// removes the mean so the average track is the nominal one.
    pub fn random_walk(num_pulses: usize, sigma: f32, seed: u64) -> FlightTrack {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(num_pulses);
        let mut x = 0.0f32;
        for _ in 0..num_pulses {
            x += rng.gen_range(-sigma..sigma);
            offsets.push(x);
        }
        let mean = offsets.iter().sum::<f32>() / num_pulses as f32;
        offsets.iter_mut().for_each(|v| *v -= mean);
        FlightTrack { offsets }
    }

    /// A step error: the second half of the aperture flies `step`
    /// metres closer (worst case for a single merge; used in tests).
    pub fn step(num_pulses: usize, step: f32) -> FlightTrack {
        let mut offsets = vec![0.0; num_pulses];
        for v in offsets.iter_mut().skip(num_pulses / 2) {
            *v = step;
        }
        FlightTrack { offsets }
    }

    /// Number of pulses covered.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the track is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Cross-track offset of pulse `k`.
    pub fn offset(&self, k: usize) -> f32 {
        self.offsets[k]
    }

    /// Mean offset over a pulse interval (the per-subaperture
    /// correction a merge stage would apply).
    pub fn mean_offset(&self, range: std::ops::Range<usize>) -> f32 {
        let n = range.len().max(1) as f32;
        self.offsets[range].iter().sum::<f32>() / n
    }

    /// Largest absolute deviation.
    pub fn max_abs(&self) -> f32 {
        self.offsets.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// Apply a range-shift motion compensation of `dx` metres to one
/// subaperture image: every beam row is resampled `dx` closer (cubic
/// Neville in range) and the two-way phase is rotated by
/// `+4 pi dx / lambda`, so data collected `dx` nearer the scene lines
/// up with data from the nominal track.
pub fn compensate_range_shift(
    sub: &mut Subaperture,
    dx: f32,
    geom: &SarGeometry,
    counts: &mut OpCounts,
) {
    if dx == 0.0 {
        return;
    }
    let shift_bins = dx / geom.dr;
    // Data recorded dx closer carries phase exp(-j 4 pi (R - dx) / l);
    // rotating by exp(-j 4 pi dx / l) restores the nominal exp(-j 4 pi R / l).
    let phase = c32::cis(-4.0 * std::f32::consts::PI * dx / geom.wavelength);
    counts.trigs += 1;
    let n = geom.num_bins as isize;
    let mut scratch = vec![c32::ZERO; geom.num_bins];
    for beam in 0..sub.grid.n_beams {
        let row = sub.data.row(beam);
        for (i, out) in scratch.iter_mut().enumerate() {
            // The target that belongs at bin i was recorded at i - shift.
            let pos = i as f32 - shift_bins;
            let i1 = pos.floor() as isize;
            let t = pos - pos.floor();
            let at = |j: isize| {
                if j < 0 || j >= n {
                    c32::ZERO
                } else {
                    row[j as usize]
                }
            };
            let p = [at(i1 - 1), at(i1), at(i1 + 1), at(i1 + 2)];
            counts.loads += 4;
            *out = neville4(p, t, counts) * phase;
            counts.fmas += 4;
            counts.stores += 2;
        }
        sub.data.row_mut(beam).copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffbp::grid::PolarGrid;
    use crate::scene::{simulate_compressed_data, Scene};

    #[test]
    fn track_generators_have_expected_shape() {
        let s = FlightTrack::straight(16);
        assert_eq!(s.len(), 16);
        assert_eq!(s.max_abs(), 0.0);

        let w = FlightTrack::sinusoidal(100, 2.0, 50.0);
        assert!(w.max_abs() <= 2.0 + 1e-5);
        assert!(w.max_abs() > 1.5);

        let r1 = FlightTrack::random_walk(64, 0.1, 9);
        let r2 = FlightTrack::random_walk(64, 0.1, 9);
        assert_eq!(r1, r2, "random walk must be deterministic per seed");
        // Mean-free by construction.
        let mean: f32 = (0..64).map(|k| r1.offset(k)).sum::<f32>() / 64.0;
        assert!(mean.abs() < 1e-4);

        let st = FlightTrack::step(8, 0.5);
        assert_eq!(st.offset(0), 0.0);
        assert_eq!(st.offset(7), 0.5);
        assert_eq!(st.mean_offset(0..4), 0.0);
        assert_eq!(st.mean_offset(4..8), 0.5);
    }

    #[test]
    fn compensation_recovers_the_straight_track_data() {
        // Simulate one pulse from a platform flying dx closer, apply
        // the compensation, and compare against the straight-track
        // simulation of the same pulse: envelope and (critically) the
        // two-way phase must line up.
        let geom = crate::geometry::SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let dx = 1.3f32;
        let straight = simulate_compressed_data(&scene, 0.0, 0);
        let perturbed = crate::scene::simulate_with_track(
            &scene,
            &FlightTrack {
                offsets: vec![dx; geom.num_pulses],
            },
            0.0,
            0,
        );

        let grid = PolarGrid::spanning(&geom, 1);
        let mut sub = Subaperture::zeros(0.0, 1.0, grid, geom.num_bins);
        sub.data.row_mut(0).copy_from_slice(perturbed.row(32));
        let mut counts = OpCounts::default();
        compensate_range_shift(&mut sub, dx, &geom, &mut counts);

        // Peak lands on the straight-track bin...
        let want_bin = straight
            .row(32)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .unwrap()
            .0;
        let (_, _, got_bin) = sub.data.peak();
        assert!((got_bin as i64 - want_bin as i64).abs() <= 1);

        // ...with the straight-track phase (this is what makes the
        // coherent merge work; an inverted sign here would defocus).
        let got = sub.data.at(0, got_bin);
        let want = straight.at(32, want_bin);
        let dphi = (got.arg() - want.arg()).rem_euclid(2.0 * std::f32::consts::PI);
        let dphi = dphi.min(2.0 * std::f32::consts::PI - dphi);
        assert!(dphi < 0.3, "phase error {dphi} rad after compensation");
        // Envelope within single-resampling tolerance of a critically
        // sampled kernel (cubic on a full-bandwidth sinc loses ~20% at
        // worst-case fractional offsets).
        assert!((got.abs() - want.abs()).abs() < 0.25 * want.abs());
        assert!(counts.fmas > 0);
    }

    #[test]
    fn compensation_restores_peak_position() {
        let geom = crate::geometry::SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let grid = PolarGrid::spanning(&geom, 1);
        let mut sub = Subaperture::zeros(0.0, 1.0, grid, geom.num_bins);
        sub.data.row_mut(0).copy_from_slice(data.row(32));
        let (_, _, bin0) = sub.data.peak();

        let mut counts = OpCounts::default();
        compensate_range_shift(&mut sub, 3.0, &geom, &mut counts);
        let (_, _, bin_shifted) = sub.data.peak();
        assert_eq!(
            bin_shifted as i64,
            bin0 as i64 + 3,
            "a +3 m compensation moves the response 3 bins out"
        );
    }

    #[test]
    fn zero_shift_is_identity() {
        let geom = crate::geometry::SarGeometry::test_size();
        let grid = PolarGrid::spanning(&geom, 2);
        let mut sub = Subaperture::zeros(0.0, 2.0, grid, geom.num_bins);
        *sub.data.at_mut(1, 40) = c32::new(2.0, -1.0);
        let before = sub.data.clone();
        let mut counts = OpCounts::default();
        compensate_range_shift(&mut sub, 0.0, &geom, &mut counts);
        assert_eq!(sub.data, before);
        assert_eq!(counts, OpCounts::default());
    }
}
