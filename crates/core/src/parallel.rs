//! Host-thread parallel FFBP — the "general purpose multi-core"
//! comparison point (Lidberg et al., the paper's Section IV): coarse
//! data-level parallelism over the output image, the same partitioning
//! idea the Epiphany SPMD mapping uses, but with threads on the host.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use desim::OpCounts;

use crate::ffbp::grid::Subaperture;
use crate::ffbp::merge::merge_pair_row;
use crate::ffbp::pipeline::{stage0, FfbpConfig, FfbpRun};
use crate::geometry::SarGeometry;
use crate::image::ComplexImage;

/// Run FFBP with `threads` worker threads. Functionally identical to
/// [`crate::ffbp::ffbp`] with merge base 2; work is split by output
/// beam within each merge, with an atomic work queue balancing the load.
pub fn ffbp_parallel(
    data: &ComplexImage,
    geom: &SarGeometry,
    cfg: &FfbpConfig,
    threads: usize,
) -> FfbpRun {
    assert!(threads >= 1, "need at least one thread");
    assert_eq!(cfg.merge_base, 2, "parallel driver implements merge base 2");
    let mut stage = stage0(data, geom);
    let mut iterations = 0u32;
    let total_counts = Mutex::new(OpCounts::default());

    while stage.len() > 1 {
        let pairs: Vec<(&Subaperture, &Subaperture)> =
            stage.chunks(2).map(|pair| (&pair[0], &pair[1])).collect();
        let out_grid = stage[0].grid.refined();
        let n_beams = out_grid.n_beams;

        // Pre-allocate every output subaperture, then hand out (pair,
        // beam) units from a shared queue.
        let mut outputs: Vec<Subaperture> = pairs
            .iter()
            .map(|(a, b)| {
                Subaperture::zeros(
                    (a.center_y + b.center_y) / 2.0,
                    a.length + b.length,
                    out_grid,
                    geom.num_bins,
                )
            })
            .collect();

        // Split each output into per-beam row slices we can distribute.
        let mut row_slots: Vec<(usize, usize, &mut [crate::complex::c32])> = Vec::new();
        for (p, out) in outputs.iter_mut().enumerate() {
            let mut rest = out.data.as_mut_slice();
            for j in 0..n_beams {
                let (row, tail) = rest.split_at_mut(geom.num_bins);
                row_slots.push((p, j, row));
                rest = tail;
            }
        }

        let next_unit = AtomicUsize::new(0);
        let slots = Mutex::new(row_slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local = OpCounts::default();
                    loop {
                        let idx = next_unit.fetch_add(1, Ordering::Relaxed);
                        // Take ownership of slot `idx` (each index is
                        // claimed exactly once).
                        let unit = {
                            let mut guard = slots.lock().unwrap();
                            if idx >= guard.len() {
                                None
                            } else {
                                let (p, j, row) = &mut guard[idx];
                                // Steal the slice out of the slot.
                                let row = std::mem::take(row);
                                Some((*p, *j, row))
                            }
                        };
                        let Some((p, j, row)) = unit else { break };
                        let (a, b) = pairs[p];
                        let l = b.center_y - a.center_y;
                        merge_pair_row(
                            a,
                            b,
                            geom,
                            &out_grid,
                            l,
                            j,
                            cfg.interp,
                            cfg.phase_correct,
                            row,
                            &mut local,
                        );
                    }
                    total_counts.lock().unwrap().add(&local);
                });
            }
        });

        stage = outputs;
        iterations += 1;
    }

    let full = stage.into_iter().next().expect("non-empty stage");
    FfbpRun {
        image: full.data,
        counts: total_counts.into_inner().unwrap(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffbp::ffbp;
    use crate::scene::{simulate_compressed_data, Scene};

    fn setup() -> (ComplexImage, SarGeometry) {
        let geom = SarGeometry::test_size();
        let scene = Scene::six_targets(geom);
        (simulate_compressed_data(&scene, 0.0, 0), geom)
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (data, geom) = setup();
        let cfg = FfbpConfig::default();
        let seq = ffbp(&data, &geom, &cfg);
        for threads in [1, 2, 4] {
            let par = ffbp_parallel(&data, &geom, &cfg, threads);
            assert_eq!(par.iterations, seq.iterations);
            assert_eq!(
                par.image.as_slice(),
                seq.image.as_slice(),
                "thread count {threads} changed the result"
            );
        }
    }

    #[test]
    fn op_counts_are_thread_count_invariant() {
        let (data, geom) = setup();
        let cfg = FfbpConfig::default();
        let a = ffbp_parallel(&data, &geom, &cfg, 2);
        let b = ffbp_parallel(&data, &geom, &cfg, 4);
        assert_eq!(a.counts, b.counts);
    }
}
