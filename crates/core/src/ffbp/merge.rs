//! Subaperture element combining — eq. (5) of the paper, with the
//! child observation coordinates from eqs. (1)–(4).

use desim::OpCounts;

use crate::complex::c32;
use crate::ffbp::grid::Subaperture;
use crate::ffbp::interp::{sample, InterpKind};
use crate::geometry::{merge_geometry, SarGeometry};

/// Combine one output sample from the two child contributions:
/// `a(r1, theta1) + b(r2, theta2)` (eq. 5), with per-child phase
/// alignment `exp(j 4 pi (r_child - r) / lambda)` referencing the
/// child's range history to the merged centre. The paper's simplified
/// implementation folds this factor into the element combining.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn combine_sample(
    a: &Subaperture,
    b: &Subaperture,
    geom: &SarGeometry,
    r: f32,
    theta: f32,
    l: f32,
    kind: InterpKind,
    phase_correct: bool,
    counts: &mut OpCounts,
) -> c32 {
    combine_sample_with_lookup(a, b, geom, r, theta, l, kind, phase_correct, counts).0
}

/// [`combine_sample`] plus the geometry lookup it used — machine-model
/// drivers need the child coordinates to decide which accesses were
/// local (prefetched) and which went to external memory.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn combine_sample_with_lookup(
    a: &Subaperture,
    b: &Subaperture,
    geom: &SarGeometry,
    r: f32,
    theta: f32,
    l: f32,
    kind: InterpKind,
    phase_correct: bool,
    counts: &mut OpCounts,
) -> (c32, crate::geometry::MergeLookup) {
    let look = merge_geometry(r, theta, l, counts);
    let va = sample(a, geom, look.r1, look.theta1, kind, counts);
    let vb = sample(b, geom, look.r2, look.theta2, kind, counts);
    let v = if phase_correct {
        let k = 4.0 * std::f32::consts::PI / geom.wavelength;
        let pa = c32::cis(k * (look.r1 - r));
        let pb = c32::cis(k * (look.r2 - r));
        counts.trigs += 2;
        counts.fmas += 8;
        counts.flops += 2;
        va * pa + vb * pb
    } else {
        counts.flops += 2;
        va + vb
    };
    (v, look)
}

/// Compute one output beam (row `j` of the merged grid) into
/// `row_out`. Shared by the sequential and host-parallel drivers.
#[allow(clippy::too_many_arguments)]
pub fn merge_pair_row(
    a: &Subaperture,
    b: &Subaperture,
    geom: &SarGeometry,
    out_grid: &crate::ffbp::grid::PolarGrid,
    l: f32,
    j: usize,
    kind: InterpKind,
    phase_correct: bool,
    row_out: &mut [c32],
    counts: &mut OpCounts,
) {
    debug_assert_eq!(row_out.len(), geom.num_bins);
    let theta = out_grid.beam_theta(j);
    for (i, out) in row_out.iter_mut().enumerate() {
        let r = geom.bin_range(i);
        *out = combine_sample(a, b, geom, r, theta, l, kind, phase_correct, counts);
        counts.stores += 2;
    }
}

/// Merge two adjacent subapertures into one with doubled angular
/// resolution. `a` must be the trailing child (smaller `center_y`).
pub fn merge_pair(
    a: &Subaperture,
    b: &Subaperture,
    geom: &SarGeometry,
    kind: InterpKind,
    phase_correct: bool,
    counts: &mut OpCounts,
) -> Subaperture {
    assert!(
        a.center_y < b.center_y,
        "children must be ordered along track"
    );
    assert_eq!(a.grid, b.grid, "children must share a grid");
    assert!(
        (a.length - b.length).abs() < 1e-3,
        "children must have equal length"
    );
    let l = b.center_y - a.center_y;
    let out_grid = a.grid.refined();
    let mut out = Subaperture::zeros(
        (a.center_y + b.center_y) / 2.0,
        a.length + b.length,
        out_grid,
        geom.num_bins,
    );
    for j in 0..out_grid.n_beams {
        merge_pair_row(
            a,
            b,
            geom,
            &out_grid,
            l,
            j,
            kind,
            phase_correct,
            out.data.row_mut(j),
            counts,
        );
    }
    out
}

/// Merge `m >= 2` adjacent subapertures at once (merge base `m`),
/// generalising eqs. (1)–(4) to children at offsets
/// `(c - (m-1)/2) * l_child` from the merged centre.
pub fn merge_group(
    children: &[Subaperture],
    geom: &SarGeometry,
    kind: InterpKind,
    phase_correct: bool,
    counts: &mut OpCounts,
) -> Subaperture {
    let m = children.len();
    assert!(m >= 2, "merge base must be at least 2");
    for w in children.windows(2) {
        assert!(w[0].center_y < w[1].center_y, "children must be ordered");
        assert_eq!(w[0].grid, w[1].grid, "children must share a grid");
    }
    let center = children.iter().map(|c| c.center_y).sum::<f32>() / m as f32;
    let total_len: f32 = children.iter().map(|c| c.length).sum();
    let out_grid = children[0].grid.refined_by(m);
    let mut out = Subaperture::zeros(center, total_len, out_grid, geom.num_bins);
    let k = 4.0 * std::f32::consts::PI / geom.wavelength;

    for j in 0..out_grid.n_beams {
        let theta = out_grid.beam_theta(j);
        let (sin_t, cos_t) = theta.sin_cos();
        counts.trigs += 1;
        for i in 0..geom.num_bins {
            let r = geom.bin_range(i);
            let (x, y) = (r * sin_t, r * cos_t);
            let mut acc = c32::ZERO;
            for child in children {
                let d = child.center_y - center;
                let dy = y - d;
                let rc = (x * x + dy * dy).sqrt();
                let thc = (dy / rc).clamp(-1.0, 1.0).acos();
                counts.sqrts += 1;
                counts.trigs += 1;
                counts.divs += 1;
                counts.fmas += 4;
                let v = sample(child, geom, rc, thc, kind, counts);
                if phase_correct {
                    acc += v * c32::cis(k * (rc - r));
                    counts.trigs += 1;
                    counts.fmas += 4;
                } else {
                    acc += v;
                    counts.flops += 2;
                }
            }
            *out.data.at_mut(j, i) = acc;
            counts.stores += 2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffbp::grid::PolarGrid;
    use crate::ffbp::pipeline::stage0;
    use crate::scene::{simulate_compressed_data, Scene};

    fn two_pulse_children() -> (Vec<Subaperture>, SarGeometry) {
        let geom = SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        (stage0(&data, &geom), geom)
    }

    #[test]
    fn merge_doubles_beams_and_centers() {
        let (subs, geom) = two_pulse_children();
        let mut c = OpCounts::default();
        let merged = merge_pair(&subs[0], &subs[1], &geom, InterpKind::Nearest, true, &mut c);
        assert_eq!(merged.grid.n_beams, 2);
        assert!((merged.center_y - (subs[0].center_y + subs[1].center_y) / 2.0).abs() < 1e-4);
        assert!((merged.length - 2.0 * subs[0].length).abs() < 1e-4);
        assert!(c.sqrts > 0 && c.stores > 0);
    }

    #[test]
    fn merged_energy_shows_coherent_gain() {
        // Merging two pulses that both contain the target response
        // should grow the peak beyond either child's (coherent sum).
        let (subs, geom) = two_pulse_children();
        let mut c = OpCounts::default();
        let merged = merge_pair(
            &subs[30],
            &subs[31],
            &geom,
            InterpKind::Nearest,
            true,
            &mut c,
        );
        let (pm, _, _) = merged.data.peak();
        let (p0, _, _) = subs[30].data.peak();
        assert!(pm > 1.5 * p0, "merged peak {pm} vs child {p0}");
    }

    #[test]
    fn phase_correction_matters() {
        // Without phase alignment the two-pulse sum is incoherent and
        // the peak is lower.
        let (subs, geom) = two_pulse_children();
        let mut c = OpCounts::default();
        let with = merge_pair(
            &subs[30],
            &subs[31],
            &geom,
            InterpKind::Nearest,
            true,
            &mut c,
        );
        let without = merge_pair(
            &subs[30],
            &subs[31],
            &geom,
            InterpKind::Nearest,
            false,
            &mut c,
        );
        // At a 1 m wavelength with metre-scale bins, dropping the
        // correction cannot beat the aligned sum.
        assert!(with.data.peak().0 >= 0.9 * without.data.peak().0);
    }

    #[test]
    fn merge_group_base2_close_to_merge_pair() {
        let (subs, geom) = two_pulse_children();
        let mut c1 = OpCounts::default();
        let mut c2 = OpCounts::default();
        let a = merge_pair(
            &subs[10],
            &subs[11],
            &geom,
            InterpKind::Linear,
            true,
            &mut c1,
        );
        let b = merge_group(
            &[subs[10].clone(), subs[11].clone()],
            &geom,
            InterpKind::Linear,
            true,
            &mut c2,
        );
        assert_eq!(a.grid.n_beams, b.grid.n_beams);
        // Same geometry expressed two ways: images should agree closely.
        let mut max_err = 0.0f32;
        let mut max_mag = 0.0f32;
        for (x, y) in a.data.as_slice().iter().zip(b.data.as_slice()) {
            max_err = max_err.max((*x - *y).abs());
            max_mag = max_mag.max(x.abs());
        }
        assert!(
            max_err < 0.05 * max_mag.max(1e-6),
            "pair vs group mismatch: {max_err} vs peak {max_mag}"
        );
    }

    #[test]
    fn group_of_four_quadruples_beams() {
        let (subs, geom) = two_pulse_children();
        let mut c = OpCounts::default();
        let four: Vec<_> = subs[0..4].to_vec();
        let merged = merge_group(&four, &geom, InterpKind::Nearest, true, &mut c);
        assert_eq!(merged.grid.n_beams, 4);
        assert!((merged.length - 4.0 * subs[0].length).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "ordered along track")]
    fn wrong_order_rejected() {
        let (subs, geom) = two_pulse_children();
        let mut c = OpCounts::default();
        let _ = merge_pair(&subs[1], &subs[0], &geom, InterpKind::Nearest, true, &mut c);
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn mismatched_grids_rejected() {
        let (subs, geom) = two_pulse_children();
        let mut c = OpCounts::default();
        let mut b = subs[1].clone();
        b.grid = PolarGrid {
            n_beams: 2,
            ..b.grid
        };
        b.data = crate::image::ComplexImage::zeros(2, geom.num_bins);
        let _ = merge_pair(&subs[0], &b, &geom, InterpKind::Nearest, true, &mut c);
    }
}
