//! Fast factorized back-projection (FFBP).
//!
//! The whole aperture starts as many short subapertures with low
//! angular resolution; pairs (merge base 2) are iteratively combined —
//! doubling angular resolution each iteration — until one subaperture
//! spans the full aperture at full resolution (Figure 3 of the paper).
//! Element combining follows eq. (5) with the child observation
//! coordinates from eqs. (1)–(4).

pub mod grid;
pub mod interp;
pub mod merge;
pub mod pipeline;

pub use grid::{PolarGrid, Subaperture};
pub use interp::InterpKind;
pub use merge::{merge_group, merge_pair};
pub use pipeline::{ffbp, stage0, FfbpConfig, FfbpRun};
