//! Interpolation kernels for sampling a child subaperture at the
//! `(r, theta)` returned by the merge geometry.
//!
//! The paper's implementations use simplified (nearest-neighbour)
//! interpolation in both range and angle and note that the resulting
//! image quality "could be considerably improved by using more complex
//! interpolation kernels such as cubic interpolation" — so all three
//! are provided and compared by the interpolation ablation bench.

use desim::OpCounts;

use crate::complex::c32;
use crate::ffbp::grid::Subaperture;
use crate::geometry::SarGeometry;

/// Interpolation kernel choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpKind {
    /// Round both indices (the paper's choice).
    Nearest,
    /// Bilinear over range and angle.
    Linear,
    /// 4-point cubic (Neville) in range, linear in angle.
    Cubic,
}

/// Fractional sample coordinates in a subaperture.
#[inline]
fn fractional_indices(sub: &Subaperture, geom: &SarGeometry, r: f32, theta: f32) -> (f32, f32) {
    let fr = (r - geom.r0) / geom.dr;
    let fb = sub.grid.beam_index(theta);
    (fr, fb)
}

/// Nearest-neighbour integer indices (range bin, beam) for `(r,
/// theta)`, or `None` when outside the grid — callers use this both for
/// sampling and for deciding which beams to prefetch.
#[inline]
pub fn nearest_indices(
    sub: &Subaperture,
    geom: &SarGeometry,
    r: f32,
    theta: f32,
) -> Option<(usize, usize)> {
    let (fr, fb) = fractional_indices(sub, geom, r, theta);
    let i = fr.round();
    let j = fb.round();
    if i < 0.0 || j < 0.0 || i as usize >= geom.num_bins || j as usize >= sub.grid.n_beams {
        None
    } else {
        Some((i as usize, j as usize))
    }
}

/// 4-point Neville interpolation at fractional position `t` relative to
/// sample `p[1]` (i.e. samples at positions -1, 0, 1, 2).
#[inline]
pub fn neville4(p: [c32; 4], t: f32, counts: &mut OpCounts) -> c32 {
    // Neville's scheme on unit-spaced abscissae x = {-1, 0, 1, 2}.
    let x = [-1.0f32, 0.0, 1.0, 2.0];
    let mut q = p;
    for level in 1..4 {
        for i in 0..(4 - level) {
            let denom = x[i] - x[i + level];
            let a = q[i].scale(t - x[i + level]);
            let b = q[i + 1].scale(t - x[i]);
            q[i] = (a - b).scale(1.0 / denom);
        }
    }
    // 6 combination steps, each ~2 complex scales + 1 subtract:
    // 12 real mul + 8 add per step -> count as 6 fma-pairs each.
    counts.fmas += 18;
    counts.flops += 12;
    counts.ialu += 6;
    q[0]
}

/// Sample `sub` at `(r, theta)` with kernel `kind`. Out-of-grid samples
/// return zero (the paper skips additions with out-of-range indices).
pub fn sample(
    sub: &Subaperture,
    geom: &SarGeometry,
    r: f32,
    theta: f32,
    kind: InterpKind,
    counts: &mut OpCounts,
) -> c32 {
    let (fr, fb) = fractional_indices(sub, geom, r, theta);
    // Beam direction: clamp to the sector edge (a subaperture's beams
    // tile its whole angular sector, so the nearest edge beam is the
    // right value just outside it — without this, linear/cubic kernels
    // would blend the edge beam with zeros and lose energy at every
    // early stage, where children have very few beams). The range
    // direction stays strict: outside the swath there is no data.
    let fb = fb.clamp(0.0, (sub.grid.n_beams - 1) as f32);
    counts.divs += 2;
    counts.flops += 2;
    match kind {
        InterpKind::Nearest => {
            counts.ialu += 4;
            counts.loads += 2;
            let i = fr.round() as isize;
            let j = fb.round() as isize;
            sub.data.at_or_zero(j, i)
        }
        InterpKind::Linear => {
            counts.ialu += 4;
            counts.loads += 8;
            counts.fmas += 6;
            let i0 = fr.floor();
            let j0 = fb.floor();
            let (ti, tj) = (fr - i0, fb - j0);
            let (i, j) = (i0 as isize, j0 as isize);
            let v00 = sub.data.at_or_zero(j, i);
            let v01 = sub.data.at_or_zero(j, i + 1);
            let v10 = sub.data.at_or_zero(j + 1, i);
            let v11 = sub.data.at_or_zero(j + 1, i + 1);
            let a = v00 + (v01 - v00).scale(ti);
            let b = v10 + (v11 - v10).scale(ti);
            a + (b - a).scale(tj)
        }
        InterpKind::Cubic => {
            counts.ialu += 6;
            counts.loads += 16;
            counts.fmas += 6;
            let i1 = fr.floor() as isize; // sample at position 0
            let j0 = fb.floor() as isize;
            let tj = fb - fb.floor();
            let t = fr - fr.floor();
            let mut rows = [c32::ZERO; 2];
            for (rowslot, j) in [(0usize, j0), (1, j0 + 1)] {
                let p = [
                    sub.data.at_or_zero(j, i1 - 1),
                    sub.data.at_or_zero(j, i1),
                    sub.data.at_or_zero(j, i1 + 1),
                    sub.data.at_or_zero(j, i1 + 2),
                ];
                rows[rowslot] = neville4(p, t, counts);
            }
            rows[0] + (rows[1] - rows[0]).scale(tj)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffbp::grid::PolarGrid;

    fn test_sub() -> (Subaperture, SarGeometry) {
        let geom = SarGeometry::test_size();
        let grid = PolarGrid::spanning(&geom, 8);
        let mut sub = Subaperture::zeros(0.0, 8.0, grid, geom.num_bins);
        // Fill with a smooth, separable ramp so interpolation is exact
        // for linear kernels: v(j, i) = j * 10 + i (real).
        for j in 0..8 {
            for i in 0..geom.num_bins {
                *sub.data.at_mut(j, i) = c32::new(j as f32 * 10.0 + i as f32, 0.0);
            }
        }
        (sub, geom)
    }

    #[test]
    fn nearest_hits_exact_grid_points() {
        let (sub, geom) = test_sub();
        let mut c = OpCounts::default();
        let r = geom.bin_range(40);
        let th = sub.grid.beam_theta(3);
        let v = sample(&sub, &geom, r, th, InterpKind::Nearest, &mut c);
        assert_eq!(v, c32::new(70.0, 0.0));
        assert_eq!(nearest_indices(&sub, &geom, r, th), Some((40, 3)));
    }

    #[test]
    fn out_of_grid_is_zero_and_none() {
        let (sub, geom) = test_sub();
        let mut c = OpCounts::default();
        let v = sample(
            &sub,
            &geom,
            geom.r0 - 100.0,
            1.0,
            InterpKind::Nearest,
            &mut c,
        );
        assert_eq!(v, c32::ZERO);
        assert_eq!(nearest_indices(&sub, &geom, geom.r0 - 100.0, 1.0), None);
        assert_eq!(
            nearest_indices(&sub, &geom, geom.r_max() + 50.0, sub.grid.beam_theta(0)),
            None
        );
    }

    #[test]
    fn linear_reproduces_linear_fields_exactly() {
        let (sub, geom) = test_sub();
        let mut c = OpCounts::default();
        // Halfway between bins 40/41 and beams 3/4.
        let r = geom.bin_range(40) + 0.5 * geom.dr;
        let th = (sub.grid.beam_theta(3) + sub.grid.beam_theta(4)) / 2.0;
        let v = sample(&sub, &geom, r, th, InterpKind::Linear, &mut c);
        assert!((v.re - 75.5).abs() < 1e-3, "{v}");
    }

    #[test]
    fn cubic_reproduces_linear_fields_exactly() {
        let (sub, geom) = test_sub();
        let mut c = OpCounts::default();
        let r = geom.bin_range(40) + 0.3 * geom.dr;
        let th = sub.grid.beam_theta(3);
        let v = sample(&sub, &geom, r, th, InterpKind::Cubic, &mut c);
        assert!((v.re - (30.0 + 40.3)).abs() < 1e-2, "{v}");
    }

    #[test]
    fn neville_interpolates_cubic_polynomials_exactly() {
        // f(x) = x^3 - 2x + 1 sampled at -1, 0, 1, 2.
        let f = |x: f32| x * x * x - 2.0 * x + 1.0;
        let p = [
            c32::new(f(-1.0), 0.0),
            c32::new(f(0.0), 0.0),
            c32::new(f(1.0), 0.0),
            c32::new(f(2.0), 0.0),
        ];
        let mut c = OpCounts::default();
        for t in [0.1f32, 0.5, 0.9, 1.3, -0.4] {
            let v = neville4(p, t, &mut c);
            assert!((v.re - f(t)).abs() < 1e-4, "t={t}: {} vs {}", v.re, f(t));
            assert!(v.im.abs() < 1e-5);
        }
        assert!(c.fmas > 0);
    }

    #[test]
    fn neville_at_nodes_returns_samples() {
        let p = [
            c32::new(4.0, 1.0),
            c32::new(-2.0, 0.5),
            c32::new(7.0, -3.0),
            c32::new(0.0, 2.0),
        ];
        let mut c = OpCounts::default();
        for (t, expect) in [(-1.0f32, p[0]), (0.0, p[1]), (1.0, p[2]), (2.0, p[3])] {
            let v = neville4(p, t, &mut c);
            assert!((v - expect).abs() < 1e-4, "t={t}");
        }
    }

    #[test]
    fn kernels_agree_on_grid_points() {
        let (sub, geom) = test_sub();
        let r = geom.bin_range(50);
        let th = sub.grid.beam_theta(5);
        let mut c = OpCounts::default();
        let n = sample(&sub, &geom, r, th, InterpKind::Nearest, &mut c);
        let l = sample(&sub, &geom, r, th, InterpKind::Linear, &mut c);
        let q = sample(&sub, &geom, r, th, InterpKind::Cubic, &mut c);
        assert!((n - l).abs() < 1e-3);
        assert!((n - q).abs() < 1e-2);
    }

    #[test]
    fn cost_ordering_nearest_cheapest() {
        let (sub, geom) = test_sub();
        let r = geom.bin_range(50) + 0.4;
        let th = sub.grid.beam_theta(5) + 0.3 * sub.grid.d_theta;
        let cost = |kind| {
            let mut c = OpCounts::default();
            sample(&sub, &geom, r, th, kind, &mut c);
            c.flop_work() + c.loads
        };
        let n = cost(InterpKind::Nearest);
        let l = cost(InterpKind::Linear);
        let q = cost(InterpKind::Cubic);
        assert!(n < l && l < q, "costs: nearest={n}, linear={l}, cubic={q}");
    }
}
