//! Polar subaperture grids.

use crate::complex::c32;
use crate::geometry::SarGeometry;
use crate::image::ComplexImage;

/// The angular sampling of one subaperture image. Range sampling is
/// shared with the raw data (`r0 + i * dr`, `num_bins` bins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolarGrid {
    /// Number of beams.
    pub n_beams: usize,
    /// Lower edge of the angular sector, radians.
    pub theta_min: f32,
    /// Beam width, radians.
    pub d_theta: f32,
}

impl PolarGrid {
    /// Grid with `n_beams` covering the geometry's full sector.
    pub fn spanning(geom: &SarGeometry, n_beams: usize) -> PolarGrid {
        assert!(n_beams > 0, "need at least one beam");
        PolarGrid {
            n_beams,
            theta_min: geom.theta_min(),
            d_theta: (geom.theta_max() - geom.theta_min()) / n_beams as f32,
        }
    }

    /// Centre angle of beam `j`.
    pub fn beam_theta(&self, j: usize) -> f32 {
        self.theta_min + (j as f32 + 0.5) * self.d_theta
    }

    /// Fractional beam index of angle `theta` (0.0 at the centre of
    /// beam 0; may be outside `[0, n_beams)`).
    #[inline]
    pub fn beam_index(&self, theta: f32) -> f32 {
        (theta - self.theta_min) / self.d_theta - 0.5
    }

    /// Grid with twice the beams (the output grid of one merge).
    pub fn refined(&self) -> PolarGrid {
        PolarGrid {
            n_beams: self.n_beams * 2,
            theta_min: self.theta_min,
            d_theta: self.d_theta / 2.0,
        }
    }

    /// Grid with `m` times the beams (merge base `m`).
    pub fn refined_by(&self, m: usize) -> PolarGrid {
        assert!(m >= 2, "merge base must be at least 2");
        PolarGrid {
            n_beams: self.n_beams * m,
            theta_min: self.theta_min,
            d_theta: self.d_theta / m as f32,
        }
    }
}

/// One subaperture image: its centre position on the flight axis, its
/// along-track length, its angular grid, and the complex samples
/// (rows = beams, cols = range bins).
#[derive(Debug, Clone)]
pub struct Subaperture {
    /// Along-track coordinate of the subaperture centre, metres.
    pub center_y: f32,
    /// Along-track length covered, metres.
    pub length: f32,
    /// Angular sampling.
    pub grid: PolarGrid,
    /// Samples.
    pub data: ComplexImage,
}

impl Subaperture {
    /// Allocate a zeroed subaperture.
    pub fn zeros(center_y: f32, length: f32, grid: PolarGrid, num_bins: usize) -> Subaperture {
        Subaperture {
            center_y,
            length,
            grid,
            data: ComplexImage::zeros(grid.n_beams, num_bins),
        }
    }

    /// Bytes occupied by the sample matrix (complex64 pixels).
    pub fn data_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<c32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanning_grid_covers_sector() {
        let geom = SarGeometry::test_size();
        let g = PolarGrid::spanning(&geom, 8);
        assert_eq!(g.n_beams, 8);
        assert!((g.theta_min - geom.theta_min()).abs() < 1e-6);
        let top = g.theta_min + g.n_beams as f32 * g.d_theta;
        assert!((top - geom.theta_max()).abs() < 1e-5);
    }

    #[test]
    fn beam_index_inverts_beam_theta() {
        let geom = SarGeometry::test_size();
        let g = PolarGrid::spanning(&geom, 16);
        for j in 0..16 {
            let f = g.beam_index(g.beam_theta(j));
            assert!((f - j as f32).abs() < 1e-3, "beam {j} -> {f}");
        }
    }

    #[test]
    fn refinement_halves_beams() {
        let geom = SarGeometry::test_size();
        let g = PolarGrid::spanning(&geom, 4);
        let r = g.refined();
        assert_eq!(r.n_beams, 8);
        assert!((r.d_theta - g.d_theta / 2.0).abs() < 1e-9);
        assert_eq!(r.theta_min, g.theta_min);
        let r4 = g.refined_by(4);
        assert_eq!(r4.n_beams, 16);
    }

    #[test]
    fn subaperture_size_matches_paper_two_pulse_figure() {
        // Two pulses of subaperture data = 2 x 1001 complex = 16,016
        // bytes — the number the paper prefetches into two local banks.
        let geom = SarGeometry::paper_size();
        let g = PolarGrid::spanning(&geom, 2);
        let s = Subaperture::zeros(0.0, 2.0, g, geom.num_bins);
        assert_eq!(s.data_bytes(), 16_016);
    }
}
