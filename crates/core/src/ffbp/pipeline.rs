//! The full FFBP driver: stage-0 construction from pulse-compressed
//! data, then iterative merging to the full aperture.

use desim::OpCounts;

use crate::ffbp::grid::{PolarGrid, Subaperture};
use crate::ffbp::interp::InterpKind;
use crate::ffbp::merge::{merge_group, merge_pair};
use crate::geometry::SarGeometry;
use crate::image::ComplexImage;

/// FFBP configuration.
#[derive(Debug, Clone, Copy)]
pub struct FfbpConfig {
    /// Interpolation kernel (the paper uses nearest-neighbour).
    pub interp: InterpKind,
    /// Children combined per merge (the paper uses 2).
    pub merge_base: usize,
    /// Apply per-child phase alignment in the combining step.
    pub phase_correct: bool,
}

impl Default for FfbpConfig {
    fn default() -> Self {
        FfbpConfig {
            interp: InterpKind::Nearest,
            merge_base: 2,
            phase_correct: true,
        }
    }
}

/// Result of an FFBP run.
pub struct FfbpRun {
    /// Final full-aperture image (rows = beams, cols = range bins).
    pub image: ComplexImage,
    /// Total arithmetic performed across all merges.
    pub counts: OpCounts,
    /// Merge iterations executed (10 for 1024 pulses at base 2).
    pub iterations: u32,
}

/// Build the stage-0 subapertures: one per pulse, a single beam
/// covering the whole sector, data equal to that pulse's compressed
/// range line.
pub fn stage0(data: &ComplexImage, geom: &SarGeometry) -> Vec<Subaperture> {
    assert_eq!(
        data.rows(),
        geom.num_pulses,
        "data rows must equal pulse count"
    );
    assert_eq!(data.cols(), geom.num_bins, "data cols must equal bin count");
    let grid = PolarGrid::spanning(geom, 1);
    (0..geom.num_pulses)
        .map(|k| {
            let mut sub =
                Subaperture::zeros(geom.platform_y(k), geom.pulse_spacing, grid, geom.num_bins);
            sub.data.row_mut(0).copy_from_slice(data.row(k));
            sub
        })
        .collect()
}

/// Run FFBP over pulse-compressed `data`.
pub fn ffbp(data: &ComplexImage, geom: &SarGeometry, cfg: &FfbpConfig) -> FfbpRun {
    assert!(cfg.merge_base >= 2, "merge base must be at least 2");
    assert!(
        geom.num_pulses.is_multiple_of(cfg.merge_base),
        "pulse count must divide by the merge base"
    );
    let mut counts = OpCounts::default();
    let mut stage = stage0(data, geom);
    let mut iterations = 0u32;

    while stage.len() > 1 {
        assert!(
            stage.len().is_multiple_of(cfg.merge_base),
            "stage of {} subapertures not divisible by base {}",
            stage.len(),
            cfg.merge_base
        );
        let mut next = Vec::with_capacity(stage.len() / cfg.merge_base);
        for group in stage.chunks(cfg.merge_base) {
            let merged = if cfg.merge_base == 2 {
                merge_pair(
                    &group[0],
                    &group[1],
                    geom,
                    cfg.interp,
                    cfg.phase_correct,
                    &mut counts,
                )
            } else {
                merge_group(group, geom, cfg.interp, cfg.phase_correct, &mut counts)
            };
            next.push(merged);
        }
        stage = next;
        iterations += 1;
    }

    let full = stage.into_iter().next().expect("at least one subaperture");
    FfbpRun {
        image: full.data,
        counts,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbp::gbp;
    use crate::quality::peak_position_error;
    use crate::scene::{simulate_compressed_data, Scene};

    fn run_small(cfg: FfbpConfig) -> (FfbpRun, SarGeometry, Scene) {
        let geom = SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        (ffbp(&data, &geom, &cfg), geom, scene)
    }

    #[test]
    fn runs_log2_iterations_and_full_resolution() {
        let (run, geom, _) = run_small(FfbpConfig::default());
        assert_eq!(run.iterations, geom.merge_iterations());
        assert_eq!(run.image.rows(), geom.num_pulses);
        assert_eq!(run.image.cols(), geom.num_bins);
    }

    #[test]
    fn single_target_focuses_near_gbp_position() {
        let (run, geom, scene) = run_small(FfbpConfig::default());
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let reference = gbp(&data, &geom, geom.num_pulses);
        let (dr_bins, db_beams) = peak_position_error(&run.image, &reference.image);
        assert!(dr_bins <= 2, "range peak offset {dr_bins} bins");
        assert!(db_beams <= 3, "beam peak offset {db_beams} beams");
    }

    #[test]
    fn focusing_gain_is_substantial() {
        let (run, geom, _) = run_small(FfbpConfig::default());
        let (peak, _, _) = run.image.peak();
        // NN interpolation loses some gain vs the ideal K; half is
        // already decisive focusing for K = 64.
        assert!(
            peak > 0.25 * geom.num_pulses as f32,
            "peak {peak} too low for K={}",
            geom.num_pulses
        );
    }

    #[test]
    fn cubic_beats_nearest_on_image_quality() {
        // The paper: FFBP with simplified (NN) interpolation is noisy
        // relative to GBP, and "could be considerably improved by using
        // more complex interpolation kernels such as cubic". Measure
        // fidelity to the GBP reference.
        let (nn, geom, scene) = run_small(FfbpConfig::default());
        let (cubic, _, _) = run_small(FfbpConfig {
            interp: InterpKind::Cubic,
            ..FfbpConfig::default()
        });
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let reference = gbp(&data, &geom, geom.num_pulses);
        let err_nn = crate::quality::normalized_rmse(&nn.image, &reference.image);
        let err_cu = crate::quality::normalized_rmse(&cubic.image, &reference.image);
        assert!(
            err_cu < err_nn,
            "cubic RMSE {err_cu:.4} should beat nearest {err_nn:.4}"
        );
    }

    #[test]
    fn merge_base_4_produces_same_shape() {
        let (run4, geom, _) = run_small(FfbpConfig {
            merge_base: 4,
            ..FfbpConfig::default()
        });
        assert_eq!(run4.iterations, geom.merge_iterations() / 2);
        assert_eq!(run4.image.rows(), geom.num_pulses);
        let (peak, _, _) = run4.image.peak();
        assert!(peak > 0.2 * geom.num_pulses as f32);
    }

    #[test]
    fn counts_grow_with_iterations() {
        let (run, geom, _) = run_small(FfbpConfig::default());
        // Each iteration touches every output sample once: counts must
        // be at least iterations * pulses * bins fmas-ish.
        let samples = geom.num_pulses as u64 * geom.num_bins as u64 * run.iterations as u64;
        assert!(run.counts.flop_work() > samples);
        assert!(run.counts.sqrts >= 2 * samples);
    }

    #[test]
    fn stage0_copies_rows() {
        let geom = SarGeometry::test_size();
        let scene = Scene::single_target(geom);
        let data = simulate_compressed_data(&scene, 0.0, 0);
        let subs = stage0(&data, &geom);
        assert_eq!(subs.len(), geom.num_pulses);
        assert_eq!(subs[5].data.row(0), data.row(5));
        assert!(subs[1].center_y > subs[0].center_y);
    }
}
