//! SAR algorithm library: the signal chain and image-formation
//! algorithms evaluated by the paper.
//!
//! Everything here is *functional* Rust — it computes real images from
//! synthetic radar scenes — and the hot kernels are instrumented: they
//! accumulate [`desim::OpCounts`] describing the arithmetic they
//! performed, which the machine models (`epiphany`, `refcpu`) price to
//! obtain cycle/energy figures. Counting costs a few integer adds per
//! kernel region and is always on.
//!
//! Contents:
//!
//! * [`complex`] / [`image`] — `c32` arithmetic and complex images,
//! * [`signal`] — chirp generation, an in-house radix-2 FFT, and
//!   matched-filter pulse compression,
//! * [`geometry`] — the stripmap geometry and the subaperture merge
//!   equations (1)–(4) of the paper,
//! * [`scene`] — synthetic point-target scenes and raw-data simulation
//!   (the paper's validation scenario is six point targets),
//! * [`track`] — non-linear flight tracks and range-shift motion
//!   compensation (the reason for time-domain processing, §I),
//! * [`gbp`] — global back-projection, the quality reference,
//! * [`ffbp`] — fast factorized back-projection with merge base 2 (or
//!   4), nearest-neighbour/linear/cubic interpolation, and the polar
//!   subaperture grids,
//! * [`rda`] — the Range–Doppler Algorithm: matched-filter range
//!   compression, corner turn + azimuth FFT, range-cell migration
//!   correction, azimuth compression (the transpose-heavy family),
//! * [`autofocus`] — the autofocus criterion calculation: Neville
//!   cubic interpolation in range and beam, correlation criterion
//!   (eq. 6), and the flight-path shift search,
//! * [`quality`] — image quality metrics used to compare GBP vs FFBP,
//! * [`parallel`] — host-thread parallel FFBP (the Lidberg-style
//!   multicore comparison point).

#![forbid(unsafe_code)]

pub mod autofocus;
pub mod complex;
pub mod ffbp;
pub mod gbp;
pub mod geometry;
pub mod image;
pub mod parallel;
pub mod quality;
pub mod rda;
pub mod scene;
pub mod signal;
pub mod track;

pub use complex::c32;
pub use desim::OpCounts;
pub use image::ComplexImage;
