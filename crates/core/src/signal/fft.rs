//! In-place radix-2 decimation-in-time FFT.
//!
//! Written in-house (the workspace has no FFT dependency): iterative
//! Cooley–Tukey with a bit-reversal permutation and per-stage twiddle
//! recurrence. The recurrence is carried in f64: an f32 recurrence
//! drifts by ~len·ε over a stage, which at the n ≥ 4096 lengths the
//! RDA azimuth pass uses is no longer a harmless ~1e-5.

use std::f64::consts::PI as PI64;

use crate::complex::c32;

/// Smallest power of two >= `n` (and >= 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

fn bit_reverse_permute(data: &mut [c32]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
}

fn fft_core(data: &mut [c32], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign: f64 = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI64 / len as f64;
        let (wlen_im, wlen_re) = ang.sin_cos();
        for start in (0..n).step_by(len) {
            // The recurrence lives in f64; each butterfly sees the
            // current twiddle rounded to f32 once.
            let (mut wr, mut wi) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let w = c32::new(wr as f32, wi as f32);
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                (wr, wi) = (wr * wlen_re - wi * wlen_im, wr * wlen_im + wi * wlen_re);
            }
        }
        len <<= 1;
    }
}

/// Forward FFT in place. Length must be a power of two.
pub fn fft_inplace(data: &mut [c32]) {
    fft_core(data, false);
}

/// Inverse FFT in place (including the `1/N` normalisation).
pub fn ifft_inplace(data: &mut [c32]) {
    fft_core(data, true);
    let n = data.len() as f32;
    for z in data.iter_mut() {
        *z = *z / n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    fn assert_close(a: &[c32], b: &[c32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} vs {y}");
        }
    }

    /// O(n^2) reference DFT.
    fn dft(input: &[c32]) -> Vec<c32> {
        let n = input.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| input[t] * c32::cis(-2.0 * PI * (k * t) as f32 / n as f32))
                    .sum()
            })
            .collect()
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![c32::ZERO; 8];
        x[0] = c32::ONE;
        fft_inplace(&mut x);
        for z in &x {
            assert!((*z - c32::ONE).abs() < 1e-6);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<c32> = (0..n)
            .map(|t| c32::cis(2.0 * PI * (k0 * t) as f32 / n as f32))
            .collect();
        fft_inplace(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == k0 {
                assert!((z.abs() - n as f32).abs() < 1e-3);
            } else {
                assert!(z.abs() < 1e-3, "leak at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn matches_reference_dft() {
        let n = 32;
        let x: Vec<c32> = (0..n)
            .map(|i| c32::new((i as f32 * 0.7).sin(), (i as f32 * 1.3).cos()))
            .collect();
        let expect = dft(&x);
        let mut got = x.clone();
        fft_inplace(&mut got);
        assert_close(&got, &expect, 1e-3);
    }

    /// O(n^2) reference DFT in f64 with modular phase reduction, so
    /// the reference itself stays accurate at n = 4096 (the f32
    /// helper above loses phase precision once k·t grows large).
    fn dft64(input: &[c32]) -> Vec<(f64, f64)> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0f64, 0.0f64);
                for (t, z) in input.iter().enumerate() {
                    let ang = -2.0 * PI64 * ((k * t) % n) as f64 / n as f64;
                    let (s, c) = ang.sin_cos();
                    let (re, im) = (f64::from(z.re), f64::from(z.im));
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    /// The twiddle-drift regression (RDA azimuth FFTs run at n >= 4096):
    /// the longest recurrence chain must stay near f32 round-off. The
    /// pre-fix f32 recurrence misses this bound by over an order of
    /// magnitude.
    #[test]
    fn long_fft_matches_reference_dft_at_n4096() {
        let n = 4096;
        let x: Vec<c32> = (0..n)
            .map(|i| {
                let t = i as f32;
                c32::new(
                    (t * 0.137).sin() + 0.25 * (t * 0.011).cos(),
                    (t * 0.093).cos(),
                )
            })
            .collect();
        let expect = dft64(&x);
        let mut got = x;
        fft_inplace(&mut got);
        let scale: f64 = expect
            .iter()
            .map(|&(re, im)| re.hypot(im))
            .fold(0.0, f64::max);
        let worst: f64 = got
            .iter()
            .zip(&expect)
            .map(|(g, &(re, im))| (f64::from(g.re) - re).hypot(f64::from(g.im) - im))
            .fold(0.0, f64::max);
        let rel = worst / scale;
        assert!(
            rel < 2e-6,
            "n=4096 FFT drifted to {rel:.3e} relative error vs the reference DFT"
        );
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 256;
        let x: Vec<c32> = (0..n)
            .map(|i| c32::new((i as f32).sin(), (i as f32 * 0.1).cos()))
            .collect();
        let mut y = x.clone();
        fft_inplace(&mut y);
        ifft_inplace(&mut y);
        assert_close(&y, &x, 1e-4);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let x: Vec<c32> = (0..n)
            .map(|i| c32::new(i as f32 % 7.0 - 3.0, 0.5))
            .collect();
        let time_energy: f32 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        fft_inplace(&mut y);
        let freq_energy: f32 = y.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-5);
    }

    #[test]
    fn linearity() {
        let n = 16;
        let a: Vec<c32> = (0..n).map(|i| c32::new(i as f32, 0.0)).collect();
        let b: Vec<c32> = (0..n)
            .map(|i| c32::new(0.0, (i * i) as f32 % 5.0))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft_inplace(&mut fa);
        fft_inplace(&mut fb);
        let mut fab: Vec<c32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_inplace(&mut fab);
        let sum: Vec<c32> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fab, &sum, 1e-3);
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_length_rejected() {
        let mut x = vec![c32::ZERO; 12];
        fft_inplace(&mut x);
    }
}
