//! Linear-FM chirp generation and windowing.

use std::f32::consts::PI;

use crate::complex::c32;

/// Parameters of a linear-FM (chirp) pulse, in normalised units: time
/// is measured in samples and bandwidth as a fraction of the sample
/// rate.
#[derive(Debug, Clone, Copy)]
pub struct ChirpParams {
    /// Pulse length in samples.
    pub samples: usize,
    /// Swept bandwidth as a fraction of the sampling rate (0, 1].
    pub fractional_bandwidth: f32,
}

impl Default for ChirpParams {
    fn default() -> Self {
        ChirpParams {
            samples: 128,
            fractional_bandwidth: 0.8,
        }
    }
}

/// Complex baseband LFM chirp: phase `pi * k * (t - T/2)^2` with the
/// sweep rate `k` chosen so the instantaneous frequency covers
/// `±B/2` over the pulse.
pub fn lfm_chirp(p: ChirpParams) -> Vec<c32> {
    assert!(p.samples > 1, "chirp needs at least two samples");
    assert!(
        p.fractional_bandwidth > 0.0 && p.fractional_bandwidth <= 1.0,
        "fractional bandwidth must be in (0, 1]"
    );
    let t0 = p.samples as f32 / 2.0;
    let k = p.fractional_bandwidth / p.samples as f32;
    (0..p.samples)
        .map(|i| {
            let t = i as f32 - t0;
            c32::cis(PI * k * t * t)
        })
        .collect()
}

/// Hamming window of length `n` (sidelobe control for the matched
/// filter).
pub fn hamming_window(n: usize) -> Vec<f32> {
    assert!(n > 1, "window needs at least two points");
    (0..n)
        .map(|i| 0.54 - 0.46 * (2.0 * PI * i as f32 / (n - 1) as f32).cos())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chirp_is_unit_magnitude() {
        let c = lfm_chirp(ChirpParams::default());
        assert_eq!(c.len(), 128);
        for z in &c {
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn chirp_sweeps_frequency() {
        // Instantaneous frequency (phase difference) should increase
        // monotonically for an up-chirp.
        let c = lfm_chirp(ChirpParams {
            samples: 256,
            fractional_bandwidth: 0.5,
        });
        let freq: Vec<f32> = c.windows(2).map(|w| (w[1] * w[0].conj()).arg()).collect();
        let early: f32 = freq[..64].iter().sum();
        let late: f32 = freq[192..].iter().sum();
        assert!(
            late > early,
            "chirp frequency should rise: {early} vs {late}"
        );
    }

    #[test]
    fn window_is_symmetric_and_peaked() {
        let w = hamming_window(65);
        assert!((w[32] - 1.0).abs() < 1e-4);
        for i in 0..32 {
            assert!((w[i] - w[64 - i]).abs() < 1e-5);
        }
        assert!((w[0] - 0.08).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "fractional bandwidth")]
    fn bad_bandwidth_rejected() {
        let _ = lfm_chirp(ChirpParams {
            samples: 16,
            fractional_bandwidth: 0.0,
        });
    }
}
