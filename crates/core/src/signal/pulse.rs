//! Matched-filter pulse compression.
//!
//! Raw echoes are correlated with the transmitted chirp (in the
//! frequency domain via our FFT) to collapse each target's extended
//! return into a sharp range response — the "pulse compressed radar
//! data" the back-projection stage consumes.

use crate::complex::c32;
use crate::signal::chirp::hamming_window;
use crate::signal::fft::{fft_inplace, ifft_inplace, next_pow2};

/// A precomputed frequency-domain matched filter for one waveform.
pub struct MatchedFilter {
    /// Frequency-domain conjugate of the windowed reference, length
    /// `fft_len` — multiplying by it performs *correlation* with the
    /// waveform, so a target at delay `d` peaks at output sample `d`.
    reference: Vec<c32>,
    /// FFT length (power of two >= signal + reference - 1).
    fft_len: usize,
    /// Length of the time-domain reference.
    ref_len: usize,
}

impl MatchedFilter {
    /// Build a matched filter for `waveform`, sized to compress signals
    /// of up to `max_signal_len` samples, with a Hamming window for
    /// sidelobe suppression.
    pub fn new(waveform: &[c32], max_signal_len: usize) -> MatchedFilter {
        assert!(!waveform.is_empty(), "waveform must be non-empty");
        let ref_len = waveform.len();
        let fft_len = next_pow2(max_signal_len + ref_len - 1);
        let win = if ref_len > 1 {
            hamming_window(ref_len)
        } else {
            vec![1.0]
        };
        let mut reference = vec![c32::ZERO; fft_len];
        for (i, (w, z)) in win.iter().zip(waveform).enumerate() {
            reference[i] = z.scale(*w);
        }
        fft_inplace(&mut reference);
        // Conjugate in frequency: Y = S * conj(W) is the cross-
        // correlation of the signal with the waveform.
        for z in &mut reference {
            *z = z.conj();
        }
        MatchedFilter {
            reference,
            fft_len,
            ref_len,
        }
    }

    /// FFT length in use.
    pub fn fft_len(&self) -> usize {
        self.fft_len
    }

    /// Compress one echo line. Output has the same length as `signal`;
    /// the filter group delay is removed so a point target at sample
    /// `i` in the (ideal) echo appears compressed at sample `i`.
    pub fn compress(&self, signal: &[c32]) -> Vec<c32> {
        assert!(
            signal.len() + self.ref_len - 1 <= self.fft_len,
            "signal longer than the filter was sized for"
        );
        let mut buf = vec![c32::ZERO; self.fft_len];
        buf[..signal.len()].copy_from_slice(signal);
        fft_inplace(&mut buf);
        for (b, r) in buf.iter_mut().zip(&self.reference) {
            *b *= *r;
        }
        ifft_inplace(&mut buf);
        buf.truncate(signal.len());
        buf
    }
}

/// One-shot helper: compress `signal` against `waveform`.
pub fn compress_pulse(waveform: &[c32], signal: &[c32]) -> Vec<c32> {
    MatchedFilter::new(waveform, signal.len()).compress(signal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::chirp::{lfm_chirp, ChirpParams};

    fn chirp() -> Vec<c32> {
        lfm_chirp(ChirpParams {
            samples: 64,
            fractional_bandwidth: 0.8,
        })
    }

    /// An echo with a scaled copy of the waveform at `delay`.
    fn echo(waveform: &[c32], len: usize, delay: usize, amp: f32) -> Vec<c32> {
        let mut out = vec![c32::ZERO; len];
        for (i, w) in waveform.iter().enumerate() {
            if delay + i < len {
                out[delay + i] += w.scale(amp);
            }
        }
        out
    }

    #[test]
    fn point_target_compresses_to_its_delay() {
        let w = chirp();
        let sig = echo(&w, 512, 200, 1.0);
        let out = compress_pulse(&w, &sig);
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        assert!(
            (peak as i64 - 200).unsigned_abs() <= 2,
            "peak at {peak}, expected ~200"
        );
    }

    #[test]
    fn compression_gain_concentrates_energy() {
        let w = chirp();
        let sig = echo(&w, 512, 100, 1.0);
        let out = compress_pulse(&w, &sig);
        let peak = out.iter().map(|z| z.abs()).fold(0.0f32, f32::max);
        // Mainlobe must stand far above the average response.
        let mean: f32 = out.iter().map(|z| z.abs()).sum::<f32>() / out.len() as f32;
        assert!(peak > 8.0 * mean, "peak {peak} vs mean {mean}");
    }

    #[test]
    fn two_targets_resolve() {
        let w = chirp();
        let mut sig = echo(&w, 1024, 300, 1.0);
        let sig2 = echo(&w, 1024, 500, 0.8);
        for (a, b) in sig.iter_mut().zip(&sig2) {
            *a += *b;
        }
        let out = compress_pulse(&w, &sig);
        let near = |i: usize, c: usize| (i as i64 - c as i64).unsigned_abs() <= 3;
        let p300 = out
            .iter()
            .enumerate()
            .filter(|(i, _)| near(*i, 300))
            .map(|(_, z)| z.abs())
            .fold(0.0f32, f32::max);
        let p500 = out
            .iter()
            .enumerate()
            .filter(|(i, _)| near(*i, 500))
            .map(|(_, z)| z.abs())
            .fold(0.0f32, f32::max);
        let floor = out
            .iter()
            .enumerate()
            .filter(|(i, _)| !near(*i, 300) && !near(*i, 500))
            .map(|(_, z)| z.abs())
            .fold(0.0f32, f32::max);
        assert!(p300 > 2.0 * floor);
        assert!(p500 > 1.5 * floor);
    }

    #[test]
    fn amplitude_scales_linearly() {
        let w = chirp();
        let a = compress_pulse(&w, &echo(&w, 256, 80, 1.0));
        let b = compress_pulse(&w, &echo(&w, 256, 80, 2.0));
        let pa = a.iter().map(|z| z.abs()).fold(0.0f32, f32::max);
        let pb = b.iter().map(|z| z.abs()).fold(0.0f32, f32::max);
        assert!((pb / pa - 2.0).abs() < 0.05);
    }

    #[test]
    fn reusable_filter_matches_oneshot() {
        let w = chirp();
        let sig = echo(&w, 300, 50, 1.0);
        let mf = MatchedFilter::new(&w, 300);
        assert!(mf.fft_len() >= 300 + 64 - 1);
        let a = mf.compress(&sig);
        let b = compress_pulse(&w, &sig);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-5);
        }
    }
}
