//! The front of the SAR signal chain (Figure 1 of the paper): waveform
//! generation, the FFT it rides on, and matched-filter pulse
//! compression producing the range-compressed data that back-projection
//! consumes.

pub mod chirp;
pub mod fft;
pub mod pulse;

pub use chirp::{hamming_window, lfm_chirp, ChirpParams};
pub use fft::{fft_inplace, ifft_inplace, next_pow2};
pub use pulse::{compress_pulse, MatchedFilter};
