//! Image quality metrics for comparing GBP and FFBP outputs
//! (the paper's Figure 7 discussion: FFBP with simplified interpolation
//! is noisier than GBP).

use crate::image::ComplexImage;

/// Offset between the peak positions of two images, in (columns, rows).
pub fn peak_position_error(a: &ComplexImage, b: &ComplexImage) -> (usize, usize) {
    let (_, ra, ca) = a.peak();
    let (_, rb, cb) = b.peak();
    (ca.abs_diff(cb), ra.abs_diff(rb))
}

/// Peak-to-sidelobe ratio in dB: the peak magnitude against the
/// strongest magnitude outside a `guard`-pixel box around the peak.
/// Higher is better.
pub fn peak_sidelobe_ratio_db(img: &ComplexImage, guard: usize) -> f32 {
    let (peak, pr, pc) = img.peak();
    let mut worst = 0.0f32;
    for r in 0..img.rows() {
        for c in 0..img.cols() {
            if r.abs_diff(pr) <= guard && c.abs_diff(pc) <= guard {
                continue;
            }
            worst = worst.max(img.at(r, c).abs());
        }
    }
    if worst <= 0.0 {
        f32::INFINITY
    } else {
        20.0 * (peak / worst).log10()
    }
}

/// Shannon entropy of the normalised intensity image — lower entropy
/// means better-focused imagery (energy concentrated in few pixels).
pub fn image_entropy(img: &ComplexImage) -> f64 {
    let total = img.energy();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0f64;
    for z in img.as_slice() {
        let p = z.norm_sqr() as f64 / total;
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

/// Root-mean-square magnitude difference between two equally sized
/// images, normalised by the reference peak.
pub fn normalized_rmse(img: &ComplexImage, reference: &ComplexImage) -> f64 {
    assert_eq!(img.rows(), reference.rows(), "image shapes must match");
    assert_eq!(img.cols(), reference.cols(), "image shapes must match");
    let (peak, _, _) = reference.peak();
    if peak <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for (a, b) in img.as_slice().iter().zip(reference.as_slice()) {
        let d = (a.abs() - b.abs()) as f64;
        sum += d * d;
    }
    (sum / img.len() as f64).sqrt() / peak as f64
}

/// Fraction of total image energy inside `guard`-pixel boxes around
/// the `expected` (row, col) positions — a multi-target focus measure.
pub fn energy_concentration(img: &ComplexImage, expected: &[(usize, usize)], guard: usize) -> f64 {
    let total = img.energy();
    if total <= 0.0 {
        return 0.0;
    }
    let mut inside = 0.0f64;
    for r in 0..img.rows() {
        for c in 0..img.cols() {
            if expected
                .iter()
                .any(|&(er, ec)| r.abs_diff(er) <= guard && c.abs_diff(ec) <= guard)
            {
                inside += img.at(r, c).norm_sqr() as f64;
            }
        }
    }
    inside / total
}

/// Impulse-response width at `level` (e.g. 0.5 for -6 dB amplitude,
/// `1/sqrt(2)` for -3 dB) through the image peak, measured along a row
/// (`axis = Axis::Range`) or column (`Axis::CrossRange`), in pixels
/// (linear interpolation between samples).
pub fn response_width(img: &ComplexImage, axis: Axis, level: f32) -> f32 {
    assert!((0.0..1.0).contains(&level), "level must be in (0, 1)");
    let (peak, pr, pc) = img.peak();
    if peak <= 0.0 {
        return 0.0;
    }
    let threshold = peak * level;
    let value = |offset: i64| -> f32 {
        match axis {
            Axis::Range => img
                .at_or_zero(pr as isize, pc as isize + offset as isize)
                .abs(),
            Axis::CrossRange => img
                .at_or_zero(pr as isize + offset as isize, pc as isize)
                .abs(),
        }
    };
    // Walk outward from the peak to the first crossing on each side.
    let crossing = |dir: i64| -> f32 {
        let mut prev = peak;
        for step in 1..4096i64 {
            let v = value(dir * step);
            if v <= threshold {
                // Linear interpolation between prev (above) and v.
                let frac = if prev > v {
                    (prev - threshold) / (prev - v)
                } else {
                    1.0
                };
                return (step - 1) as f32 + frac;
            }
            prev = v;
        }
        4096.0
    };
    crossing(-1) + crossing(1)
}

/// Axis selector for [`response_width`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Along a row (range bins).
    Range,
    /// Along a column (beams / azimuth).
    CrossRange,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c32;

    fn delta_image(rows: usize, cols: usize, r: usize, c: usize, amp: f32) -> ComplexImage {
        let mut img = ComplexImage::zeros(rows, cols);
        *img.at_mut(r, c) = c32::new(amp, 0.0);
        img
    }

    #[test]
    fn peak_error_between_shifted_deltas() {
        let a = delta_image(10, 10, 3, 4, 1.0);
        let b = delta_image(10, 10, 5, 1, 1.0);
        assert_eq!(peak_position_error(&a, &b), (3, 2));
    }

    #[test]
    fn pslr_of_clean_delta_is_infinite() {
        let a = delta_image(8, 8, 4, 4, 1.0);
        assert!(peak_sidelobe_ratio_db(&a, 1).is_infinite());
    }

    #[test]
    fn pslr_measures_sidelobe() {
        let mut a = delta_image(16, 16, 8, 8, 10.0);
        *a.at_mut(2, 2) = c32::new(1.0, 0.0); // -20 dB sidelobe
        let pslr = peak_sidelobe_ratio_db(&a, 1);
        assert!((pslr - 20.0).abs() < 0.1, "pslr {pslr}");
    }

    #[test]
    fn entropy_prefers_concentrated_energy() {
        let focused = delta_image(16, 16, 8, 8, 4.0);
        let mut smeared = ComplexImage::zeros(16, 16);
        for i in 0..16 {
            *smeared.at_mut(i, i) = c32::new(1.0, 0.0);
        }
        assert!(image_entropy(&focused) < image_entropy(&smeared));
        assert_eq!(image_entropy(&ComplexImage::zeros(4, 4)), 0.0);
    }

    #[test]
    fn rmse_zero_for_identical_images() {
        let a = delta_image(8, 8, 1, 1, 2.0);
        assert!(normalized_rmse(&a, &a) < 1e-12);
        let b = delta_image(8, 8, 1, 1, 1.0);
        assert!(normalized_rmse(&b, &a) > 0.0);
    }

    #[test]
    fn response_width_measures_a_triangle() {
        // Triangle response |x| <= 4 around the peak: amplitude
        // 1 - |x|/4; half-amplitude crossings at +/-2 -> width 4.
        let mut img = ComplexImage::zeros(9, 9);
        for d in -4i64..=4 {
            let amp = 1.0 - d.abs() as f32 / 4.0;
            *img.at_mut(4, (4 + d) as usize) = c32::new(amp, 0.0);
            *img.at_mut((4 + d) as usize, 4) = c32::new(amp, 0.0);
        }
        let w_range = response_width(&img, Axis::Range, 0.5);
        let w_cross = response_width(&img, Axis::CrossRange, 0.5);
        assert!((w_range - 4.0).abs() < 0.2, "range width {w_range}");
        assert!((w_cross - 4.0).abs() < 0.2, "cross width {w_cross}");
    }

    #[test]
    fn narrower_response_means_smaller_width() {
        let mut sharp = ComplexImage::zeros(9, 9);
        *sharp.at_mut(4, 4) = c32::new(1.0, 0.0);
        let mut broad = ComplexImage::zeros(9, 9);
        for d in -3i64..=3 {
            *broad.at_mut(4, (4 + d) as usize) = c32::new(1.0 - 0.1 * d.abs() as f32, 0.0);
        }
        assert!(
            response_width(&sharp, Axis::Range, 0.5) < response_width(&broad, Axis::Range, 0.5)
        );
    }

    #[test]
    fn concentration_finds_target_boxes() {
        let mut img = delta_image(16, 16, 4, 4, 3.0);
        *img.at_mut(12, 12) = c32::new(3.0, 0.0);
        let full = energy_concentration(&img, &[(4, 4), (12, 12)], 1);
        assert!((full - 1.0).abs() < 1e-9);
        let half = energy_concentration(&img, &[(4, 4)], 1);
        assert!((half - 0.5).abs() < 1e-9);
    }
}
