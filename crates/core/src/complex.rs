//! Single-precision complex arithmetic.
//!
//! The paper stores each pixel as two 32-bit floats (real, imaginary)
//! and notes that representing the pair as one struct lets the compiler
//! move it with a single 64-bit instruction; `#[repr(C)]` on a pair of
//! `f32` gives the same layout here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` components.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct c32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl c32 {
    /// Additive identity.
    pub const ZERO: c32 = c32 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: c32 = c32 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: c32 = c32 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> c32 {
        c32 { re, im }
    }

    /// `e^{i phase}` — unit phasor.
    #[inline]
    pub fn cis(phase: f32) -> c32 {
        let (s, c) = phase.sin_cos();
        c32 { re: c, im: s }
    }

    /// Squared magnitude `|z|^2` (no square root).
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Phase angle in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> c32 {
        c32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f32) -> c32 {
        c32 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Fused-style multiply-accumulate: `self + a * b`.
    #[inline]
    pub fn mul_add(self, a: c32, b: c32) -> c32 {
        self + a * b
    }

    /// True if either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for c32 {
    type Output = c32;
    #[inline]
    fn add(self, rhs: c32) -> c32 {
        c32 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for c32 {
    #[inline]
    fn add_assign(&mut self, rhs: c32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for c32 {
    type Output = c32;
    #[inline]
    fn sub(self, rhs: c32) -> c32 {
        c32 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for c32 {
    #[inline]
    fn sub_assign(&mut self, rhs: c32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for c32 {
    type Output = c32;
    #[inline]
    fn mul(self, rhs: c32) -> c32 {
        c32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for c32 {
    #[inline]
    fn mul_assign(&mut self, rhs: c32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for c32 {
    type Output = c32;
    #[inline]
    fn mul(self, rhs: f32) -> c32 {
        self.scale(rhs)
    }
}

impl Div for c32 {
    type Output = c32;
    #[inline]
    fn div(self, rhs: c32) -> c32 {
        let d = rhs.norm_sqr();
        c32 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Div<f32> for c32 {
    type Output = c32;
    #[inline]
    fn div(self, rhs: f32) -> c32 {
        c32 {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for c32 {
    type Output = c32;
    #[inline]
    fn neg(self) -> c32 {
        c32 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for c32 {
    fn sum<I: Iterator<Item = c32>>(iter: I) -> c32 {
        iter.fold(c32::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for c32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: c32, b: c32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = c32::new(1.0, 2.0);
        let b = c32::new(-3.0, 0.5);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + c32::ONE), a * b + a));
        assert!(close(a + (-a), c32::ZERO));
        assert!(close(a / a, c32::ONE));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(c32::I * c32::I, -c32::ONE));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..8 {
            let p = k as f32 * std::f32::consts::FRAC_PI_4;
            let z = c32::cis(p);
            assert!((z.abs() - 1.0).abs() < 1e-6);
            assert!((z.re - p.cos()).abs() < 1e-6);
            assert!((z.im - p.sin()).abs() < 1e-6);
        }
    }

    #[test]
    fn conj_negates_phase() {
        let z = c32::cis(0.7);
        assert!((z.conj().arg() + 0.7).abs() < 1e-6);
        assert!(close(z * z.conj(), c32::new(z.norm_sqr(), 0.0)));
    }

    #[test]
    fn norms_and_scaling() {
        let z = c32::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z.scale(2.0), c32::new(6.0, 8.0)));
        assert!(close(z * 2.0, z.scale(2.0)));
        assert!(close(z / 2.0, c32::new(1.5, 2.0)));
    }

    #[test]
    fn mul_add_and_sum() {
        let acc = c32::ONE.mul_add(c32::new(2.0, 0.0), c32::new(0.0, 3.0));
        assert!(close(acc, c32::new(1.0, 6.0)));
        let s: c32 = [c32::ONE, c32::I, c32::new(1.0, 1.0)].into_iter().sum();
        assert!(close(s, c32::new(2.0, 2.0)));
    }

    #[test]
    fn layout_is_two_packed_floats() {
        assert_eq!(std::mem::size_of::<c32>(), 8);
        assert_eq!(std::mem::align_of::<c32>(), 4);
    }

    #[test]
    fn display_and_nan() {
        assert_eq!(format!("{}", c32::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", c32::new(1.0, 2.0)), "1+2i");
        assert!(c32::new(f32::NAN, 0.0).is_nan());
        assert!(!c32::ONE.is_nan());
    }
}
