//! Reference uniprocessor timing model: one core of an Intel Core
//! i7-M620 (Westmere, 2.67 GHz), the paper's baseline machine.
//!
//! The baseline's character in the paper comes from three things the
//! Epiphany lacks: a deep cache hierarchy with hardware prefetching, an
//! out-of-order superscalar pipeline, and a 2.67x faster clock — paid
//! for with 17.5 W (half the chip's dissipation, as the paper counts
//! it). The model prices instrumented [`desim::OpCounts`] with
//! Westmere-like constants and plays every memory touch against the
//! [`memsim::MemoryHierarchy`] (32 KB L1 / 256 KB L2 / 4 MB L3 /
//! DDR3 + stream prefetcher).
//!
//! Energy follows the paper's own methodology: datasheet power times
//! measured time (no activity model — the paper uses the spec figure).

#![forbid(unsafe_code)]

pub mod cpu;
pub mod params;

pub use cpu::RefCpu;
pub use desim::record::RunRecord;
pub use params::RefCpuParams;
