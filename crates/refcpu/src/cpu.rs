//! The single-core execution model.

use std::fmt;

use desim::{Cycle, OpCounts, TimeSpan};
use memsim::MemoryHierarchy;

use crate::params::RefCpuParams;

/// One core of the reference CPU.
pub struct RefCpu {
    params: RefCpuParams,
    hierarchy: MemoryHierarchy,
    cycles: f64,
    ops: OpCounts,
    mem_stall_cycles: f64,
}

impl RefCpu {
    /// Fresh core with cold caches.
    pub fn new(params: RefCpuParams) -> RefCpu {
        RefCpu {
            hierarchy: MemoryHierarchy::new(params.hierarchy),
            params,
            cycles: 0.0,
            ops: OpCounts::default(),
            mem_stall_cycles: 0.0,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &RefCpuParams {
        &self.params
    }

    /// Execute a compute region. Loads/stores here are priced as issue
    /// slots (they hit the L1 as far as the pipeline is concerned);
    /// *miss* penalties are charged by [`RefCpu::mem_read`] /
    /// [`RefCpu::mem_write`] on the addresses the kernel actually
    /// touches.
    pub fn compute(&mut self, ops: &OpCounts) {
        self.ops.add(ops);
        // No FMA on Westmere: an FMA lowers to multiply + add.
        let instrs = ops.instrs_no_fma();
        let special = ops.sqrts * self.params.sqrt_cycles
            + ops.divs * self.params.div_cycles
            + ops.trigs * self.params.trig_cycles;
        self.cycles += instrs as f64 / self.params.sustained_ipc + special as f64;
    }

    fn mem(&mut self, addr: u64, bytes: u64, write: bool) {
        let latency = self.hierarchy.access_range(addr, bytes, write);
        let l1 = self.params.hierarchy.l1_cycles;
        let lines = latency.div_ceil(self.params.hierarchy.l1_cycles).max(1);
        let _ = lines;
        // L1-hit time is already covered by the issue-slot pricing in
        // `compute`; only the portion beyond L1, divided by the MLP the
        // out-of-order window extracts, stalls the core.
        let beyond_l1 = latency.saturating_sub(l1) as f64;
        let stall = beyond_l1 / self.params.mlp;
        self.mem_stall_cycles += stall;
        self.cycles += stall;
    }

    /// Demand read of `bytes` at `addr`.
    pub fn mem_read(&mut self, addr: u64, bytes: u64) {
        self.mem(addr, bytes, false);
    }

    /// Demand write of `bytes` at `addr` (write-allocate).
    pub fn mem_write(&mut self, addr: u64, bytes: u64) {
        self.mem(addr, bytes, true);
    }

    /// Cycles consumed so far.
    pub fn elapsed(&self) -> Cycle {
        Cycle(self.cycles.ceil() as u64)
    }

    /// Elapsed wall time.
    pub fn elapsed_span(&self) -> TimeSpan {
        TimeSpan::new(self.elapsed(), self.params.clock)
    }

    /// Cycles lost to memory stalls (beyond-L1, MLP-adjusted).
    pub fn mem_stall_fraction(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.mem_stall_cycles / self.cycles
        }
    }

    /// The cache hierarchy (statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Finish the run into a report.
    pub fn report(&self, label: &str) -> RefReport {
        RefReport {
            label: label.to_string(),
            elapsed: self.elapsed_span(),
            power_w: self.params.power_w,
            ops: self.ops,
            mem_stall_fraction: self.mem_stall_fraction(),
            dram_accesses: self.hierarchy.dram_accesses(),
        }
    }

    /// Restart with cold caches.
    pub fn reset(&mut self) {
        self.hierarchy.reset();
        self.cycles = 0.0;
        self.ops = OpCounts::default();
        self.mem_stall_cycles = 0.0;
    }
}

/// Run summary for the reference machine.
#[derive(Debug, Clone)]
pub struct RefReport {
    /// Configuration label.
    pub label: String,
    /// Wall time.
    pub elapsed: TimeSpan,
    /// Datasheet power attributed to the core.
    pub power_w: f64,
    /// Operation totals.
    pub ops: OpCounts,
    /// Fraction of cycles stalled on memory.
    pub mem_stall_fraction: f64,
    /// DRAM demand accesses.
    pub dram_accesses: u64,
}

impl RefReport {
    /// Execution time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.millis()
    }

    /// Energy as the paper computes it: datasheet power x time.
    pub fn energy_j(&self) -> f64 {
        self.power_w * self.elapsed.seconds()
    }
}

impl fmt::Display for RefReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.label)?;
        writeln!(f, "  execution time : {:.3} ms", self.millis())?;
        writeln!(f, "  datasheet power: {:.1} W", self.power_w)?;
        writeln!(f, "  energy         : {:.4} J", self.energy_j())?;
        writeln!(f, "  mem stalls     : {:.1}%", self.mem_stall_fraction * 100.0)?;
        write!(f, "  DRAM accesses  : {}", self.dram_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> RefCpu {
        RefCpu::new(RefCpuParams::default())
    }

    #[test]
    fn compute_prices_ipc_and_specials() {
        let mut c = cpu();
        c.compute(&OpCounts { flops: 180, ..OpCounts::default() });
        assert_eq!(c.elapsed(), Cycle(100)); // 180 / 1.8
        let mut c2 = cpu();
        c2.compute(&OpCounts { sqrts: 10, ..OpCounts::default() });
        assert_eq!(c2.elapsed(), Cycle(10 * c2.params().sqrt_cycles));
    }

    #[test]
    fn fma_costs_two_instructions() {
        let mut a = cpu();
        a.compute(&OpCounts { fmas: 90, ..OpCounts::default() });
        let mut b = cpu();
        b.compute(&OpCounts { flops: 90, ..OpCounts::default() });
        assert_eq!(a.elapsed().raw(), 2 * b.elapsed().raw());
    }

    #[test]
    fn cached_reads_are_nearly_free_cold_reads_stall() {
        let mut c = cpu();
        c.mem_read(0x1000, 8);
        let cold = c.elapsed();
        c.mem_read(0x1000, 8);
        let warm = c.elapsed() - cold;
        assert!(warm.raw() * 10 < cold.raw(), "warm {warm} vs cold {cold}");
    }

    #[test]
    fn sequential_streams_beat_random_access() {
        let mut seq = cpu();
        for i in 0..10_000u64 {
            seq.mem_read(i * 8, 8);
        }
        let mut rnd = cpu();
        let mut x = 99u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rnd.mem_read((x >> 16) % (64 << 20), 8);
        }
        assert!(
            seq.elapsed().raw() * 3 < rnd.elapsed().raw(),
            "prefetcher should make streaming much cheaper: seq={}, rnd={}",
            seq.elapsed(),
            rnd.elapsed()
        );
    }

    #[test]
    fn mem_stall_fraction_reflects_traffic() {
        let mut c = cpu();
        c.compute(&OpCounts { flops: 1000, ..OpCounts::default() });
        assert_eq!(c.mem_stall_fraction(), 0.0);
        let mut x = 7u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            c.mem_read((x >> 12) % (128 << 20), 8);
        }
        assert!(c.mem_stall_fraction() > 0.5);
    }

    #[test]
    fn report_energy_uses_datasheet_power() {
        let mut c = cpu();
        c.compute(&OpCounts { flops: 2_670_000, ..OpCounts::default() });
        let r = c.report("ref");
        // 2.67e6/1.8 cycles at 2.67 GHz = 0.5556 ms; energy = 17.5 W x t.
        assert!((r.millis() - 0.5556).abs() < 0.01);
        assert!((r.energy_j() - 17.5 * r.elapsed.seconds()).abs() < 1e-12);
        assert!(format!("{r}").contains("datasheet power"));
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = cpu();
        c.mem_read(0, 64);
        c.reset();
        assert_eq!(c.elapsed(), Cycle::ZERO);
        assert_eq!(c.hierarchy().accesses(), 0);
    }
}
