//! The single-core execution model.

use desim::record::RunRecord;
use desim::stats::{Counters, PhaseTimeline};
use desim::{Cycle, OpCounts, TimeSpan};
use memsim::MemoryHierarchy;

use crate::params::RefCpuParams;

/// One core of the reference CPU.
pub struct RefCpu {
    params: RefCpuParams,
    hierarchy: MemoryHierarchy,
    cycles: f64,
    ops: OpCounts,
    mem_stall_cycles: f64,
    phases: PhaseTimeline,
    phase_stall0: f64,
}

impl RefCpu {
    /// Fresh core with cold caches.
    pub fn new(params: RefCpuParams) -> RefCpu {
        RefCpu {
            hierarchy: MemoryHierarchy::new(params.hierarchy),
            params,
            cycles: 0.0,
            ops: OpCounts::default(),
            mem_stall_cycles: 0.0,
            phases: PhaseTimeline::new(),
            phase_stall0: 0.0,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &RefCpuParams {
        &self.params
    }

    /// Execute a compute region. Loads/stores here are priced as issue
    /// slots (they hit the L1 as far as the pipeline is concerned);
    /// *miss* penalties are charged by [`RefCpu::mem_read`] /
    /// [`RefCpu::mem_write`] on the addresses the kernel actually
    /// touches.
    pub fn compute(&mut self, ops: &OpCounts) {
        self.ops.add(ops);
        // No FMA on Westmere: an FMA lowers to multiply + add.
        let instrs = ops.instrs_no_fma();
        let special = ops.sqrts * self.params.sqrt_cycles
            + ops.divs * self.params.div_cycles
            + ops.trigs * self.params.trig_cycles;
        self.cycles += instrs as f64 / self.params.sustained_ipc + special as f64;
    }

    fn mem(&mut self, addr: u64, bytes: u64, write: bool) {
        let latency = self.hierarchy.access_range(addr, bytes, write);
        let l1 = self.params.hierarchy.l1_cycles;
        let lines = latency.div_ceil(self.params.hierarchy.l1_cycles).max(1);
        let _ = lines;
        // L1-hit time is already covered by the issue-slot pricing in
        // `compute`; only the portion beyond L1, divided by the MLP the
        // out-of-order window extracts, stalls the core.
        let beyond_l1 = latency.saturating_sub(l1) as f64;
        let stall = beyond_l1 / self.params.mlp;
        self.mem_stall_cycles += stall;
        self.cycles += stall;
    }

    /// Demand read of `bytes` at `addr`.
    pub fn mem_read(&mut self, addr: u64, bytes: u64) {
        self.mem(addr, bytes, false);
    }

    /// Demand write of `bytes` at `addr` (write-allocate).
    pub fn mem_write(&mut self, addr: u64, bytes: u64) {
        self.mem(addr, bytes, true);
    }

    /// Cycles consumed so far.
    pub fn elapsed(&self) -> Cycle {
        Cycle(self.cycles.ceil() as u64)
    }

    /// Elapsed wall time.
    pub fn elapsed_span(&self) -> TimeSpan {
        TimeSpan::new(self.elapsed(), self.params.clock)
    }

    /// Cycles lost to memory stalls (beyond-L1, MLP-adjusted).
    pub fn mem_stall_fraction(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.mem_stall_cycles / self.cycles
        }
    }

    /// The cache hierarchy (statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Executed operation totals as named counters (the record shape).
    fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.add("fpu_instr", self.ops.flops + 2 * self.ops.fmas);
        c.add("ialu_instr", self.ops.ialu);
        c.add("loads", self.ops.loads);
        c.add("stores", self.ops.stores);
        c.add("sqrts", self.ops.sqrts);
        c.add("divs", self.ops.divs);
        c.add("trigs", self.ops.trigs);
        c.add("dram_access", self.hierarchy.dram_accesses());
        c
    }

    /// Open a named observation phase at the current cycle cursor.
    pub fn phase_begin(&mut self, name: &str) {
        self.phases.begin(name, self.elapsed(), self.counters());
        self.phase_stall0 = self.mem_stall_cycles;
    }

    /// Attach a gauge to the open phase.
    pub fn phase_metric(&mut self, key: &str, value: f64) {
        self.phases.metric(key, value);
    }

    /// Close the open phase, recording its datasheet energy and memory
    /// stall cycles.
    pub fn phase_end(&mut self) {
        self.phases.metric(
            "mem_stall_cycles",
            self.mem_stall_cycles - self.phase_stall0,
        );
        let (now, counters) = (self.elapsed(), self.counters());
        self.phases.end(now, &counters);
    }

    /// Finish the run into a record. Energy follows the paper's
    /// methodology — datasheet power × time — so the modelled breakdown
    /// stays zero and [`RunRecord::energy_j`] falls back to `power_w`.
    pub fn report(&self, label: &str) -> RunRecord {
        assert!(
            !self.phases.is_open(),
            "cannot report with a phase still open"
        );
        let mut record = RunRecord::new(label, self.elapsed_span());
        record.platform = "refcpu".to_string();
        record.power_w = self.params.power_w;
        record.counters = self.counters();
        record.set_metric("mem_stall_fraction", self.mem_stall_fraction());
        record.phases = self
            .phases
            .spans()
            .iter()
            .map(|span| {
                let mut metrics = span.metrics.clone();
                for (name, delta) in span.counters.iter() {
                    metrics.insert(name.to_string(), delta as f64);
                }
                let time_ms = TimeSpan::new(span.cycles(), self.params.clock).millis();
                desim::record::PhaseRecord {
                    name: span.name.clone(),
                    index: span.index,
                    start_ms: TimeSpan::new(span.start, self.params.clock).millis(),
                    time_ms,
                    energy_j: self.params.power_w * time_ms * 1e-3,
                    elink_utilization: 0.0,
                    mesh: desim::record::MeshUtilization::default(),
                    metrics,
                }
            })
            .collect();
        record
    }

    /// Restart with cold caches.
    pub fn reset(&mut self) {
        self.hierarchy.reset();
        self.cycles = 0.0;
        self.ops = OpCounts::default();
        self.mem_stall_cycles = 0.0;
        self.phases.clear();
        self.phase_stall0 = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> RefCpu {
        RefCpu::new(RefCpuParams::default())
    }

    #[test]
    fn compute_prices_ipc_and_specials() {
        let mut c = cpu();
        c.compute(&OpCounts {
            flops: 180,
            ..OpCounts::default()
        });
        assert_eq!(c.elapsed(), Cycle(100)); // 180 / 1.8
        let mut c2 = cpu();
        c2.compute(&OpCounts {
            sqrts: 10,
            ..OpCounts::default()
        });
        assert_eq!(c2.elapsed(), Cycle(10 * c2.params().sqrt_cycles));
    }

    #[test]
    fn fma_costs_two_instructions() {
        let mut a = cpu();
        a.compute(&OpCounts {
            fmas: 90,
            ..OpCounts::default()
        });
        let mut b = cpu();
        b.compute(&OpCounts {
            flops: 90,
            ..OpCounts::default()
        });
        assert_eq!(a.elapsed().raw(), 2 * b.elapsed().raw());
    }

    #[test]
    fn cached_reads_are_nearly_free_cold_reads_stall() {
        let mut c = cpu();
        c.mem_read(0x1000, 8);
        let cold = c.elapsed();
        c.mem_read(0x1000, 8);
        let warm = c.elapsed() - cold;
        assert!(warm.raw() * 10 < cold.raw(), "warm {warm} vs cold {cold}");
    }

    #[test]
    fn sequential_streams_beat_random_access() {
        let mut seq = cpu();
        for i in 0..10_000u64 {
            seq.mem_read(i * 8, 8);
        }
        let mut rnd = cpu();
        let mut x = 99u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rnd.mem_read((x >> 16) % (64 << 20), 8);
        }
        assert!(
            seq.elapsed().raw() * 3 < rnd.elapsed().raw(),
            "prefetcher should make streaming much cheaper: seq={}, rnd={}",
            seq.elapsed(),
            rnd.elapsed()
        );
    }

    #[test]
    fn mem_stall_fraction_reflects_traffic() {
        let mut c = cpu();
        c.compute(&OpCounts {
            flops: 1000,
            ..OpCounts::default()
        });
        assert_eq!(c.mem_stall_fraction(), 0.0);
        let mut x = 7u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            c.mem_read((x >> 12) % (128 << 20), 8);
        }
        assert!(c.mem_stall_fraction() > 0.5);
    }

    #[test]
    fn report_energy_uses_datasheet_power() {
        let mut c = cpu();
        c.compute(&OpCounts {
            flops: 2_670_000,
            ..OpCounts::default()
        });
        let r = c.report("ref");
        // 2.67e6/1.8 cycles at 2.67 GHz = 0.5556 ms; energy = 17.5 W x t.
        assert!((r.millis() - 0.5556).abs() < 0.01);
        assert!((r.energy_j() - 17.5 * r.elapsed.seconds()).abs() < 1e-12);
        assert_eq!(r.platform, "refcpu");
        assert_eq!(r.counters.get("fpu_instr"), 2_670_000);
        assert!(r.metric("mem_stall_fraction").is_some());
    }

    #[test]
    fn phases_carry_datasheet_energy_and_op_deltas() {
        let mut c = cpu();
        c.phase_begin("pulse_pair");
        c.compute(&OpCounts {
            flops: 1800,
            ..OpCounts::default()
        });
        c.phase_end();
        c.phase_begin("pulse_pair");
        c.compute(&OpCounts {
            flops: 3600,
            ..OpCounts::default()
        });
        c.phase_end();
        let r = c.report("phased");
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].metrics.get("fpu_instr"), Some(&1800.0));
        assert_eq!(r.phases[1].metrics.get("fpu_instr"), Some(&3600.0));
        let total: f64 = r.phases.iter().map(|p| p.energy_j).sum();
        assert!((total - r.energy_j()).abs() < 1e-9 * r.energy_j().max(1e-12));
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = cpu();
        c.mem_read(0, 64);
        c.reset();
        assert_eq!(c.elapsed(), Cycle::ZERO);
        assert_eq!(c.hierarchy().accesses(), 0);
    }
}
