//! Westmere-class model parameters with sources.

use desim::Frequency;
use memsim::HierarchyParams;

/// Timing constants for the reference CPU.
#[derive(Debug, Clone, Copy)]
pub struct RefCpuParams {
    /// Core clock (i7-M620: 2.67 GHz nominal; the paper pins it there
    /// and deliberately ignores Turbo Boost).
    pub clock: Frequency,
    /// Sustained instructions per cycle for scalar single-precision
    /// code with realistic dependence chains. Westmere can issue 4 µops
    /// but FP-latency-bound kernels sustain far less; 1.8 reflects
    /// hand-tuned scalar loops.
    pub sustained_ipc: f64,
    /// Latency of a scalar `sqrtss` (Westmere: ~14-21 cycles; dependent
    /// chains see latency, not throughput).
    pub sqrt_cycles: u64,
    /// Latency of a scalar `divss` (~14 cycles).
    pub div_cycles: u64,
    /// Cost of a libm trig/inverse-trig call (acosf ~ 40-80 cycles).
    pub trig_cycles: u64,
    /// Memory-level parallelism: independent outstanding misses the
    /// out-of-order window overlaps (Nehalem-class: ~4-8 for pointer-
    /// free loops).
    pub mlp: f64,
    /// Cache/DRAM hierarchy.
    pub hierarchy: HierarchyParams,
    /// Power attributed to this single core: the paper halves the
    /// 35 W chip dissipation -> 17.5 W.
    pub power_w: f64,
}

impl Default for RefCpuParams {
    fn default() -> Self {
        RefCpuParams {
            clock: Frequency::ghz(2.67),
            sustained_ipc: 1.8,
            sqrt_cycles: 18,
            div_cycles: 14,
            trig_cycles: 60,
            mlp: 4.0,
            hierarchy: HierarchyParams::default(),
            power_w: 17.5,
        }
    }
}

impl RefCpuParams {
    /// A variant with the hardware prefetcher disabled (ablation knob).
    pub fn without_prefetch() -> Self {
        let mut p = Self::default();
        p.hierarchy.prefetch = false;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_m620() {
        let p = RefCpuParams::default();
        assert!((p.clock.hz() - 2.67e9).abs() < 1e6);
        assert_eq!(p.power_w, 17.5);
        assert_eq!(p.hierarchy.l1_bytes, 32 * 1024);
        assert!(p.hierarchy.prefetch);
    }

    #[test]
    fn prefetch_knob() {
        assert!(!RefCpuParams::without_prefetch().hierarchy.prefetch);
    }
}
