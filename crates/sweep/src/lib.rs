//! `sweep` — the parallel configuration-sweep engine (DESIGN.md §3
//! S16): fan a Mapping × Platform × seed grid across worker threads
//! and serialise one versioned results document.
//!
//! Three properties define the engine:
//!
//! * **Determinism.** Every simulated cell is a deterministic
//!   function of its key, and cells are serialised in the grid's
//!   canonical order (pairs × seeds) — so the output document is
//!   byte-identical for *any* worker-thread count, and a re-run of an
//!   unchanged grid reproduces the file exactly.
//! * **Warm sharing.** Workload construction (pulse compression of
//!   the simulated scene) dwarfs many of the simulations themselves,
//!   so each kernel's workload is built once and shared read-only by
//!   every worker.
//! * **Incrementality.** Each cell is keyed by
//!   `(mapping, platform, kernel, scale, seed, record version)`; a
//!   [`CellCache`] loaded from a previous document satisfies matching
//!   cells without simulating, so growing a grid re-runs only the new
//!   cells ([`SweepOutcome::cells_run`] counts the difference).
//!
//! The `sweep` binary wraps [`run_grid`] behind
//! `--grid/--threads/--resume`; the grid spec format is documented on
//! [`GridSpec::parse`].

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use desim::{Json, RunRecord, RUN_RECORD_VERSION};
use faultsim::{FaultPlan, FaultState};
use sar_epiphany::mapping_named;
use sim_harness::{platform_named, run_ctx, Diagnostic, RunContext, Workload};

/// Grid-spec schema version accepted by [`GridSpec::parse`].
pub const GRID_SPEC_VERSION: u64 = 1;

/// One Mapping × Platform combination of the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSpec {
    /// Registered mapping name (`sar_epiphany::mapping_named`).
    pub mapping: String,
    /// Registered platform label (`sim_harness::platform_named`).
    pub platform: String,
}

/// A parsed and validated sweep grid.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Grid identity; the default output path is
    /// `results/sweep_<name>.json`.
    pub name: String,
    /// Whether cells run the reduced test-scale workloads.
    pub small: bool,
    /// The Mapping × Platform combinations, in serialisation order.
    pub pairs: Vec<PairSpec>,
    /// Fault seeds; every pair runs once per seed.
    pub seeds: Vec<u64>,
    /// Optional fault-spec JSON (the `faultsim` format), expanded per
    /// seed. Absent means every cell runs an empty (fault-free) plan
    /// that still stamps its seed into the record.
    pub faults: Option<String>,
}

/// One grid cell: a pair at one seed.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Mapping name.
    pub mapping: String,
    /// Platform label.
    pub platform: String,
    /// Fault seed.
    pub seed: u64,
}

/// The cache key of one cell. Includes [`RUN_RECORD_VERSION`], so a
/// schema bump invalidates every cached cell at once, and — when the
/// grid carries a fault spec — a digest of the spec text, so editing
/// (or removing) the `faults` block invalidates every cached cell of
/// the grid instead of silently serving records simulated under a
/// different fault schedule. Fault-free grids keep the legacy
/// digest-free key, so existing fault-free documents stay valid
/// caches and serialise byte-identically.
pub fn cell_key(
    mapping: &str,
    platform: &str,
    kernel: &str,
    small: bool,
    seed: u64,
    faults: Option<&str>,
) -> String {
    let scale = if small { "small" } else { "paper" };
    match faults {
        None => format!("{mapping}|{platform}|{kernel}|{scale}|{seed}|v{RUN_RECORD_VERSION}"),
        Some(spec) => format!(
            "{mapping}|{platform}|{kernel}|{scale}|{seed}|f{:016x}|v{RUN_RECORD_VERSION}",
            fault_digest(spec)
        ),
    }
}

/// FNV-1a 64-bit digest of the fault-spec text. Not cryptographic —
/// it only needs to make distinct specs (and spec edits) land on
/// distinct keys with overwhelming probability.
fn fault_digest(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn bad_spec(subject: impl Into<String>, message: impl Into<String>) -> Diagnostic {
    Diagnostic::hard("SWP001", subject, message)
}

impl GridSpec {
    /// Parse and validate a grid spec. The format:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "name": "scaling",
    ///   "small": true,
    ///   "pairs": [{"mapping": "ffbp_spmd", "platform": "e64"}],
    ///   "seeds": [1, 2],
    ///   "faults": { ... optional faultsim spec ... }
    /// }
    /// ```
    ///
    /// Every pair must name a registered mapping and platform the
    /// mapping supports (`SWP002` otherwise), so a sweep fails before
    /// any simulation starts rather than mid-grid.
    pub fn parse(text: &str) -> Result<GridSpec, Diagnostic> {
        let doc = Json::parse(text).map_err(|e| bad_spec("grid", format!("not JSON: {e}")))?;
        match doc.get("version").and_then(Json::as_u64) {
            Some(GRID_SPEC_VERSION) => {}
            v => {
                return Err(bad_spec(
                    "version",
                    format!("grid spec version must be {GRID_SPEC_VERSION}, got {v:?}"),
                ))
            }
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_spec("name", "grid spec needs a string 'name'"))?
            .to_string();
        let small = doc.get("small").and_then(Json::as_bool).unwrap_or(true);
        let pairs_json = doc
            .get("pairs")
            .and_then(Json::as_array)
            .filter(|a| !a.is_empty())
            .ok_or_else(|| bad_spec("pairs", "grid spec needs a non-empty 'pairs' array"))?;
        let mut pairs = Vec::with_capacity(pairs_json.len());
        for (i, p) in pairs_json.iter().enumerate() {
            let field = |key: &str| {
                p.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad_spec(format!("pairs[{i}]"), format!("missing '{key}'")))
            };
            let pair = PairSpec {
                mapping: field("mapping")?,
                platform: field("platform")?,
            };
            validate_pair(&pair, i)?;
            pairs.push(pair);
        }
        let seeds = match doc.get("seeds").and_then(Json::as_array) {
            None => vec![0],
            Some(list) => {
                let seeds: Option<Vec<u64>> = list.iter().map(Json::as_u64).collect();
                seeds
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| bad_spec("seeds", "'seeds' must be a non-empty u64 array"))?
            }
        };
        let faults = doc.get("faults").map(Json::to_string_pretty);
        if let Some(text) = &faults {
            // Fail early on an unparseable fault spec (seed value is
            // irrelevant to validity).
            FaultPlan::parse(text, 0)
                .map_err(|e| bad_spec("faults", format!("bad fault spec: {e}")))?;
        }
        Ok(GridSpec {
            name,
            small,
            pairs,
            seeds,
            faults,
        })
    }

    /// Every cell of the grid in canonical (pair-major, then seed)
    /// order — the order cells are serialised in, independent of which
    /// worker simulates them.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.pairs.len() * self.seeds.len());
        for pair in &self.pairs {
            for &seed in &self.seeds {
                cells.push(Cell {
                    mapping: pair.mapping.clone(),
                    platform: pair.platform.clone(),
                    seed,
                });
            }
        }
        cells
    }

    /// The spec echoed into the results document, so a document alone
    /// identifies the grid that produced it.
    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("version", GRID_SPEC_VERSION)
            .with("small", self.small)
            .with(
                "pairs",
                Json::Arr(
                    self.pairs
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .with("mapping", p.mapping.as_str())
                                .with("platform", p.platform.as_str())
                        })
                        .collect(),
                ),
            )
            .with(
                "seeds",
                Json::Arr(self.seeds.iter().map(|&s| Json::from(s)).collect()),
            )
            .with("faulted", self.faults.is_some())
    }
}

/// Resolve and cross-check one pair against the registries.
fn validate_pair(pair: &PairSpec, index: usize) -> Result<(), Diagnostic> {
    let subject = format!("pairs[{index}]");
    let mapping = mapping_named(&pair.mapping).ok_or_else(|| {
        Diagnostic::hard(
            "SWP002",
            subject.clone(),
            format!("unknown mapping '{}'", pair.mapping),
        )
    })?;
    let platform = platform_named(&pair.platform).ok_or_else(|| {
        Diagnostic::hard(
            "SWP002",
            subject.clone(),
            format!("unknown platform '{}'", pair.platform),
        )
    })?;
    if !mapping.supports(platform.kind()) {
        return Err(Diagnostic::hard(
            "SWP002",
            subject,
            format!(
                "mapping '{}' does not support platform '{}'",
                pair.mapping, pair.platform
            ),
        ));
    }
    Ok(())
}

/// Completed cells from a previous sweep document, keyed by
/// [`cell_key`]. Loading tolerates anything — a missing file, foreign
/// JSON or a version-bumped document simply yields an empty cache and
/// the sweep re-simulates.
#[derive(Debug, Default)]
pub struct CellCache {
    map: HashMap<String, RunRecord>,
}

impl CellCache {
    /// A cache with no cells.
    pub fn empty() -> CellCache {
        CellCache::default()
    }

    /// Cached cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Harvest the `cells` of a previous sweep document. Only
    /// documents written by this record-schema version contribute
    /// (cell keys embed the version too — this is the cheap outer
    /// guard).
    pub fn from_document(doc: &Json) -> CellCache {
        let mut cache = CellCache::empty();
        if doc.get("version").and_then(Json::as_u64) != Some(u64::from(RUN_RECORD_VERSION)) {
            return cache;
        }
        let Some(cells) = doc.get("cells").and_then(Json::as_array) else {
            return cache;
        };
        for cell in cells {
            let key = cell.get("key").and_then(Json::as_str);
            let record = cell.get("record").and_then(RunRecord::from_json);
            if let (Some(key), Some(record)) = (key, record) {
                cache.map.insert(key.to_string(), record);
            }
        }
        cache
    }

    /// [`CellCache::from_document`] on a file path; unreadable or
    /// unparseable files yield an empty cache.
    pub fn load(path: &Path) -> CellCache {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .map_or_else(CellCache::empty, |doc| CellCache::from_document(&doc))
    }
}

/// Wall-time attribution for one sweep, collected unconditionally
/// (an `Instant` pair per phase costs nothing next to a simulation)
/// and printed by the `sweep` binary under `--profile`. None of this
/// reaches the results document — profiling a run never changes its
/// bytes.
#[derive(Debug, Default)]
pub struct SweepProfile {
    /// Workload construction per kernel, in first-use order.
    pub setup: Vec<(String, Duration)>,
    /// Simulation wall time per *simulated* cell (cached and derived
    /// cells cost nothing), in canonical cell order.
    pub cells: Vec<(String, Duration)>,
    /// Assembling and pricing the results document.
    pub serialize: Duration,
}

/// What [`run_grid`] produced: the serialisable document plus the
/// run/cached/derived split (deliberately *not* part of the document,
/// so a resumed run emits byte-identical output).
#[derive(Debug)]
pub struct SweepOutcome {
    /// The versioned results document.
    pub document: Json,
    /// Total cells in the grid.
    pub cells_total: usize,
    /// Cells simulated this run.
    pub cells_run: usize,
    /// Cells satisfied from the cache.
    pub cells_cached: usize,
    /// Cells fast-forwarded from a same-pair representative (fault-free
    /// grids only — see [`run_grid`]).
    pub cells_derived: usize,
    /// Where the wall time went.
    pub profile: SweepProfile,
}

/// Run every cell of `spec` not already in `cache`, fanning the work
/// across `threads` scoped worker threads, and assemble the results
/// document. The document depends only on the grid (not on `threads`
/// or the cache hit pattern).
///
/// **Seed fast-forward.** On a fault-free grid the simulation is a
/// deterministic function of (mapping, platform, kernel, scale) alone:
/// the seed reaches the record only as the stamped `fault_seed`
/// identity counter. So only one representative cell per pair is
/// simulated; the remaining seeds are derived in closed form by
/// cloning the representative's record and re-stamping `fault_seed`
/// ([`SweepOutcome::cells_derived`] counts them). The equivalence
/// suite (`tests/equivalence.rs`) pins derived == simulated byte for
/// byte across every registered pair. Grids with a fault spec disable
/// the fast-forward entirely — there every seed expands a different
/// fault schedule.
pub fn run_grid(
    spec: &GridSpec,
    threads: usize,
    cache: &CellCache,
) -> Result<SweepOutcome, Diagnostic> {
    let cells = spec.cells();
    // Kernel identity per pair, and each kernel's workload built once.
    let kernels: Vec<&'static str> = spec
        .pairs
        .iter()
        .map(|p| {
            mapping_named(&p.mapping)
                .expect("validated at parse")
                .kernel()
        })
        .collect();
    let mut profile = SweepProfile::default();
    let mut workloads: HashMap<&'static str, Workload> = HashMap::new();
    for &kernel in &kernels {
        if !workloads.contains_key(kernel) {
            let t0 = Instant::now();
            let workload = Workload::named(kernel, spec.small).expect("registered kernel");
            profile.setup.push((kernel.to_string(), t0.elapsed()));
            workloads.insert(kernel, workload);
        }
    }
    let kernel_of = |cell_index: usize| kernels[cell_index / spec.seeds.len()];

    // Satisfy what the cache can; queue the rest. Fault-free grids
    // additionally dedup seeds: a pair's first unresolved cell becomes
    // the simulated representative, the rest are derived afterwards.
    let dedup = spec.faults.is_none();
    let seeds_n = spec.seeds.len();
    let mut slots: Vec<Option<RunRecord>> = Vec::with_capacity(cells.len());
    let mut work: Vec<usize> = Vec::new();
    let mut derive: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let key = cell_key(
            &cell.mapping,
            &cell.platform,
            kernel_of(i),
            spec.small,
            cell.seed,
            spec.faults.as_deref(),
        );
        match cache.map.get(&key) {
            Some(record) => slots.push(Some(record.clone())),
            None => {
                slots.push(None);
                let pair_start = (i / seeds_n) * seeds_n;
                let has_representative = dedup
                    && (slots[pair_start..i].iter().any(Option::is_some)
                        || work.last().is_some_and(|&w| w >= pair_start));
                if has_representative {
                    derive.push(i);
                } else {
                    work.push(i);
                }
            }
        }
    }
    let cells_run = work.len();
    let cells_derived = derive.len();
    let cells_cached = cells.len() - cells_run - cells_derived;

    let slots = Mutex::new(slots);
    let timings: Mutex<Vec<Option<Duration>>> = Mutex::new(vec![None; cells.len()]);
    let errors: Mutex<Vec<Diagnostic>> = Mutex::new(Vec::new());
    let cursor = AtomicUsize::new(0);
    let workers = threads.clamp(1, work.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&cell_index) = work.get(next) else {
                    return;
                };
                let cell = &cells[cell_index];
                let t0 = Instant::now();
                match simulate(
                    cell,
                    &workloads[kernel_of(cell_index)],
                    spec.faults.as_deref(),
                ) {
                    Ok(record) => {
                        slots.lock().expect("slots lock")[cell_index] = Some(record);
                        timings.lock().expect("timings lock")[cell_index] = Some(t0.elapsed());
                    }
                    Err(d) => errors.lock().expect("error lock").push(d),
                }
            });
        }
    });
    if let Some(first) = errors.into_inner().expect("error lock").into_iter().next() {
        return Err(first);
    }

    let mut slots = slots.into_inner().expect("slots lock");
    // Fast-forward the deduped seeds: clone any resolved same-pair
    // record and re-stamp the identity counter.
    for &i in &derive {
        let pair_start = (i / seeds_n) * seeds_n;
        let mut record = slots[pair_start..pair_start + seeds_n]
            .iter()
            .find_map(Clone::clone)
            .expect("a representative cell was simulated or cached");
        record.counters.set("fault_seed", cells[i].seed);
        slots[i] = Some(record);
    }
    let slots = slots;
    for (i, timing) in timings
        .into_inner()
        .expect("timings lock")
        .iter()
        .enumerate()
    {
        if let Some(elapsed) = timing {
            let cell = &cells[i];
            profile.cells.push((
                format!("{} x {} seed {}", cell.mapping, cell.platform, cell.seed),
                *elapsed,
            ));
        }
    }

    let t_serialize = Instant::now();
    let cell_docs: Vec<Json> = cells
        .iter()
        .zip(&slots)
        .enumerate()
        .map(|(i, (cell, record))| {
            let record = record.as_ref().expect("every cell resolved");
            Json::obj()
                .with(
                    "key",
                    cell_key(
                        &cell.mapping,
                        &cell.platform,
                        kernel_of(i),
                        spec.small,
                        cell.seed,
                        spec.faults.as_deref(),
                    ),
                )
                .with("mapping", cell.mapping.as_str())
                .with("platform", cell.platform.as_str())
                .with("kernel", kernel_of(i))
                .with("seed", cell.seed)
                .with("record", record.to_json())
        })
        .collect();

    let document = Json::obj()
        .with("bench", format!("sweep_{}", spec.name))
        .with("version", RUN_RECORD_VERSION)
        .with("grid", spec.to_json())
        .with("cells", Json::Arr(cell_docs))
        .with("scaling", scaling_summary(spec, &kernels, &cells, &slots))
        .with("power", power_summary(spec, &cells, &slots));
    profile.serialize = t_serialize.elapsed();
    Ok(SweepOutcome {
        document,
        cells_total: cells.len(),
        cells_run,
        cells_cached,
        cells_derived,
        profile,
    })
}

/// Simulate one cell: arm the fault plan for the cell's seed (an
/// empty plan when the grid has none, so the seed is still stamped)
/// and run through the unified harness entry point.
fn simulate(
    cell: &Cell,
    workload: &Workload,
    faults: Option<&str>,
) -> Result<RunRecord, Diagnostic> {
    let mapping = mapping_named(&cell.mapping).expect("validated at parse");
    let platform = platform_named(&cell.platform).expect("validated at parse");
    let plan = match faults {
        Some(text) => FaultPlan::parse(text, cell.seed)
            .map_err(|e| Diagnostic::hard("SWP001", "faults", format!("bad fault spec: {e}")))?,
        None => FaultPlan::empty(cell.seed),
    };
    let ctx = RunContext::plain().with_faults(FaultState::from_plan(&plan));
    let out = run_ctx(mapping.as_ref(), workload, platform.as_ref(), &ctx).map_err(|e| {
        Diagnostic::hard(
            "SWP003",
            format!("{} x {}", cell.mapping, cell.platform),
            e.to_string(),
        )
    })?;
    Ok(out.record)
}

/// The strong-scaling summary (Table-I style): one row per pair,
/// timed and priced from its first-seed record, with speedup and
/// energy ratios against whichever baselines the grid itself
/// contains — the same kernel's single-core `*_seq` mapping on the
/// 16-core chip (`vs_seq`), and the same mapping on the 16-core chip
/// (`vs_e16`, the cross-chip strong-scaling ratio).
fn scaling_summary(
    spec: &GridSpec,
    kernels: &[&'static str],
    cells: &[Cell],
    slots: &[Option<RunRecord>],
) -> Json {
    // First-seed record per pair (seeds replay the same simulation —
    // they only re-seed the fault plan).
    let record_of = |mapping: &str, platform: &str| {
        cells
            .iter()
            .position(|c| c.mapping == mapping && c.platform == platform)
            .and_then(|i| slots[i].as_ref())
    };
    let mut rows = Vec::with_capacity(spec.pairs.len());
    for (pair_index, pair) in spec.pairs.iter().enumerate() {
        let kernel = kernels[pair_index];
        let record = record_of(&pair.mapping, &pair.platform).expect("pair has a first cell");
        let platform = platform_named(&pair.platform).expect("validated at parse");
        let platform_cores = platform
            .epiphany_params()
            .map(|p| p.cores())
            .or_else(|| platform.host_threads())
            .unwrap_or(1);
        let mut row = Json::obj()
            .with("mapping", pair.mapping.as_str())
            .with("platform", pair.platform.as_str())
            .with("kernel", kernel)
            .with("platform_cores", platform_cores)
            .with("time_ms", record.millis())
            .with("energy_j", record.energy_j())
            .with("power_w", record.power_w);
        let seq = record_of(&format!("{kernel}_seq"), "epiphany");
        if let Some(seq) = seq.filter(|s| s.millis() > 0.0) {
            row.set("speedup_vs_seq", seq.millis() / record.millis());
            if record.energy_j() > 0.0 {
                row.set("energy_vs_seq", seq.energy_j() / record.energy_j());
            }
        }
        if pair.platform != "epiphany" {
            if let Some(e16) = record_of(&pair.mapping, "epiphany") {
                row.set("speedup_vs_e16", e16.millis() / record.millis());
            }
        }
        rows.push(row);
    }
    Json::obj().with("rows", Json::Arr(rows))
}

/// Powertrace aggregates over the grid: per-pair energy, peak power
/// and run-level dominant component from each first-seed record's
/// power block, plus grid-wide peak-power percentiles over *every*
/// priced cell (seeds included — fault recovery changes a cell's
/// power profile even though its first-seed timing is shared).
fn power_summary(spec: &GridSpec, cells: &[Cell], slots: &[Option<RunRecord>]) -> Json {
    let mut peaks: Vec<f64> = Vec::new();
    let mut total_energy = 0.0;
    let mut priced = 0usize;
    for record in slots.iter().flatten() {
        if let Some(power) = &record.power {
            peaks.push(power.peak_power_w(record.elapsed.clock));
        }
        total_energy += record.energy_j();
        priced += 1;
    }
    // total_cmp gives a total order (NaN-safe), keeping the document
    // byte-deterministic whatever the records contain.
    peaks.sort_by(f64::total_cmp);
    let quantile = |sorted: &[f64], q: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() - 1) as f64 * q).round() as usize]
        }
    };

    let mut rows = Vec::with_capacity(spec.pairs.len());
    for pair in &spec.pairs {
        let record = cells
            .iter()
            .position(|c| c.mapping == pair.mapping && c.platform == pair.platform)
            .and_then(|i| slots[i].as_ref());
        let Some(record) = record else { continue };
        let mut row = Json::obj()
            .with("mapping", pair.mapping.as_str())
            .with("platform", pair.platform.as_str())
            .with("energy_j", record.energy_j());
        if let Some(power) = &record.power {
            let run_energy = power.timeline.total_energy();
            let attribution = desim::PhaseAttribution::attribute(&run_energy, 0.0, 0.0, 0.0);
            row.set("epochs", power.timeline.epochs.len() as u64);
            row.set("peak_power_w", power.peak_power_w(record.elapsed.clock));
            row.set("dominant", attribution.dominant);
            row.set("dominant_share", attribution.dominant_share);
        }
        rows.push(row);
    }
    Json::obj()
        .with("cells_priced", priced as u64)
        .with(
            "energy_per_cell_j",
            if priced > 0 {
                total_energy / priced as f64
            } else {
                0.0
            },
        )
        .with(
            "peak_power_w",
            Json::obj()
                .with("p50", quantile(&peaks, 0.5))
                .with("p95", quantile(&peaks, 0.95))
                .with("max", peaks.last().copied().unwrap_or(0.0)),
        )
        .with("rows", Json::Arr(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> GridSpec {
        GridSpec::parse(
            r#"{
                "version": 1,
                "name": "t",
                "small": true,
                "pairs": [
                    {"mapping": "autofocus_seq", "platform": "epiphany"},
                    {"mapping": "autofocus_mpmd", "platform": "e64"}
                ],
                "seeds": [7, 8]
            }"#,
        )
        .expect("demo spec parses")
    }

    #[test]
    fn spec_parses_and_enumerates_cells_in_canonical_order() {
        let spec = demo_spec();
        assert_eq!(spec.name, "t");
        assert!(spec.small);
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.mapping.as_str(), c.seed))
                .collect::<Vec<_>>(),
            vec![
                ("autofocus_seq", 7),
                ("autofocus_seq", 8),
                ("autofocus_mpmd", 7),
                ("autofocus_mpmd", 8)
            ]
        );
    }

    #[test]
    fn bad_specs_fail_with_stable_codes() {
        let version = GridSpec::parse(r#"{"version": 9, "name": "x", "pairs": []}"#).unwrap_err();
        assert_eq!(version.code, "SWP001");
        let unknown = GridSpec::parse(
            r#"{"version": 1, "name": "x",
                "pairs": [{"mapping": "ffbp_gpu", "platform": "epiphany"}]}"#,
        )
        .unwrap_err();
        assert_eq!(unknown.code, "SWP002");
        let unsupported = GridSpec::parse(
            r#"{"version": 1, "name": "x",
                "pairs": [{"mapping": "ffbp_spmd", "platform": "refcpu"}]}"#,
        )
        .unwrap_err();
        assert_eq!(unsupported.code, "SWP002");
        assert!(unsupported.message.contains("does not support"));
    }

    #[test]
    fn cell_keys_embed_the_record_version() {
        let key = cell_key("ffbp_spmd", "e64", "ffbp", true, 3, None);
        assert_eq!(
            key,
            format!("ffbp_spmd|e64|ffbp|small|3|v{RUN_RECORD_VERSION}")
        );
        assert_ne!(key, cell_key("ffbp_spmd", "e64", "ffbp", false, 3, None));
    }

    #[test]
    fn cell_keys_embed_the_fault_spec() {
        let free = cell_key("ffbp_spmd", "e64", "ffbp", true, 3, None);
        let spec_a = r#"{"version": 1, "faults": []}"#;
        let spec_b = r#"{"version": 1, "faults": [{"kind": "flag_drop", "at": 2000}]}"#;
        let with_a = cell_key("ffbp_spmd", "e64", "ffbp", true, 3, Some(spec_a));
        let with_b = cell_key("ffbp_spmd", "e64", "ffbp", true, 3, Some(spec_b));
        // Adding, editing or removing the faults block all move the key.
        assert_ne!(free, with_a);
        assert_ne!(with_a, with_b);
        // Same spec text reproduces the same key (the cache contract).
        assert_eq!(
            with_a,
            cell_key("ffbp_spmd", "e64", "ffbp", true, 3, Some(spec_a))
        );
        // Fault-free keys keep the legacy digest-free format, so
        // existing fault-free sweep documents remain byte-identical.
        assert_eq!(free.split('|').count(), 6);
        assert_eq!(with_a.split('|').count(), 7);
    }

    #[test]
    fn a_grid_runs_and_summarises() {
        let spec = demo_spec();
        let out = run_grid(&spec, 2, &CellCache::empty()).expect("grid runs");
        assert_eq!(out.cells_total, 4);
        // Fault-free grid: one representative simulation per pair, the
        // second seed of each pair is derived in closed form.
        assert_eq!(out.cells_run, 2);
        assert_eq!(out.cells_derived, 2);
        assert_eq!(out.cells_cached, 0);
        let cells = out.document.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), 4);
        // Each record is stamped with its cell's fault seed.
        let seed_of = |c: &Json| {
            c.get("record")
                .and_then(RunRecord::from_json)
                .map(|r| r.counters.get("fault_seed"))
        };
        assert_eq!(seed_of(&cells[0]), Some(7));
        assert_eq!(seed_of(&cells[1]), Some(8));
        let rows = out
            .document
            .get("scaling")
            .and_then(|s| s.get("rows"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(rows.len(), 2);
        // The grid contains autofocus_seq x epiphany, so the mpmd row
        // gets a vs_seq speedup; the seq row's own ratio is 1.
        assert_eq!(
            rows[0].get("speedup_vs_seq").and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(
            rows[1]
                .get("speedup_vs_seq")
                .and_then(Json::as_f64)
                .unwrap()
                > 1.0
        );
        assert_eq!(
            rows[1].get("platform_cores").and_then(Json::as_u64),
            Some(64)
        );
    }

    #[test]
    fn the_power_summary_aggregates_every_priced_cell() {
        let spec = demo_spec();
        let out = run_grid(&spec, 2, &CellCache::empty()).expect("grid runs");
        let power = out.document.get("power").expect("power summary present");
        assert_eq!(
            power.get("cells_priced").and_then(Json::as_u64),
            Some(4),
            "all four cells priced"
        );
        assert!(
            power
                .get("energy_per_cell_j")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        let peaks = power.get("peak_power_w").expect("percentile block");
        let pct = |key: &str| peaks.get(key).and_then(Json::as_f64).unwrap();
        assert!(pct("p50") > 0.0);
        assert!(pct("p50") <= pct("p95") && pct("p95") <= pct("max"));
        let rows = power.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2, "one row per pair");
        for row in rows {
            assert!(row.get("epochs").and_then(Json::as_u64).unwrap() > 0);
            assert!(row.get("peak_power_w").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(row.get("dominant").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn the_cache_makes_identical_reruns_free() {
        let spec = demo_spec();
        let first = run_grid(&spec, 2, &CellCache::empty()).expect("grid runs");
        let cache = CellCache::from_document(&first.document);
        assert_eq!(cache.len(), 4);
        let second = run_grid(&spec, 2, &cache).expect("grid resumes");
        assert_eq!(second.cells_run, 0, "an identical grid simulates nothing");
        assert_eq!(second.cells_derived, 0, "cached cells need no derivation");
        assert_eq!(second.cells_cached, 4);
        assert_eq!(
            first.document.to_string_pretty(),
            second.document.to_string_pretty(),
            "a resumed run must reproduce the document byte for byte"
        );
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let spec = demo_spec();
        let serial = run_grid(&spec, 1, &CellCache::empty()).expect("serial");
        let wide = run_grid(&spec, 4, &CellCache::empty()).expect("parallel");
        assert_eq!(
            serial.document.to_string_pretty(),
            wide.document.to_string_pretty()
        );
    }

    #[test]
    fn seed_derivation_matches_direct_simulation() {
        // The fast-forward gate: a derived cell must be byte-identical
        // to actually simulating that seed (the full cross-registry
        // sweep lives in tests/equivalence.rs).
        let spec = demo_spec();
        let out = run_grid(&spec, 1, &CellCache::empty()).expect("grid runs");
        let cells = out.document.get("cells").and_then(Json::as_array).unwrap();
        let workload = Workload::named("autofocus", true).unwrap();
        for (i, cell) in spec.cells().iter().enumerate() {
            let direct = simulate(cell, &workload, None).expect("direct simulation");
            assert_eq!(
                cells[i].get("record").map(Json::to_string_pretty),
                Some(direct.to_json().to_string_pretty()),
                "cell {i} ({} x {} seed {}) derived != simulated",
                cell.mapping,
                cell.platform,
                cell.seed
            );
        }
    }

    #[test]
    fn a_fault_spec_edit_invalidates_the_cache() {
        let faulted = |faults: &str| {
            GridSpec::parse(&format!(
                r#"{{
                    "version": 1,
                    "name": "t",
                    "small": true,
                    "pairs": [{{"mapping": "autofocus_seq", "platform": "epiphany"}}],
                    "seeds": [7, 8],
                    "faults": {faults}
                }}"#
            ))
            .expect("faulted spec parses")
        };
        let spec = faulted(r#"{"version": 1, "faults": []}"#);
        let first = run_grid(&spec, 1, &CellCache::empty()).expect("grid runs");
        assert_eq!(first.cells_run, 2);
        let cache = CellCache::from_document(&first.document);

        // A no-op rerun of the unchanged grid stays free...
        let rerun = run_grid(&spec, 1, &cache).expect("grid resumes");
        assert_eq!(rerun.cells_run, 0, "unchanged faulted grid must be cached");
        assert_eq!(rerun.cells_cached, 2);
        assert_eq!(
            first.document.to_string_pretty(),
            rerun.document.to_string_pretty()
        );

        // ...but editing the faults block re-simulates every cell
        // instead of serving records from the old schedule...
        let edited = faulted(r#"{"version": 1, "faults": [{"kind": "flag_drop", "at": 2000}]}"#);
        let second = run_grid(&edited, 1, &cache).expect("edited grid runs");
        assert_eq!(
            second.cells_run, 2,
            "a fault-spec edit must invalidate every cached cell"
        );
        assert_eq!(second.cells_cached, 0);

        // ...and so does removing the block entirely.
        let removed = GridSpec {
            faults: None,
            ..spec.clone()
        };
        let third = run_grid(&removed, 1, &cache).expect("fault-free grid runs");
        assert_eq!(
            third.cells_cached, 0,
            "dropping the faults block must miss the faulted cache"
        );
    }

    #[test]
    fn faulted_grids_simulate_every_seed() {
        // Each seed expands its own fault schedule, so the seed
        // fast-forward must stay off.
        let spec = GridSpec::parse(
            r#"{
                "version": 1,
                "name": "t",
                "small": true,
                "pairs": [{"mapping": "autofocus_seq", "platform": "epiphany"}],
                "seeds": [7, 8],
                "faults": {"version": 1, "faults": []}
            }"#,
        )
        .expect("faulted spec parses");
        let out = run_grid(&spec, 1, &CellCache::empty()).expect("grid runs");
        assert_eq!(out.cells_run, 2);
        assert_eq!(out.cells_derived, 0);
    }

    #[test]
    fn version_bumped_documents_do_not_seed_the_cache() {
        let spec = demo_spec();
        let out = run_grid(&spec, 1, &CellCache::empty()).expect("grid runs");
        let doc = out
            .document
            .with("version", u64::from(RUN_RECORD_VERSION) + 1);
        assert!(CellCache::from_document(&doc).is_empty());
    }
}
