//! The sweep runner: fan a Mapping × Platform × seed grid across
//! worker threads and write one versioned results document.
//!
//! ```text
//! cargo run -p sweep --bin sweep --release -- \
//!     --grid specs/scaling_demo.json [--threads N] [--resume] \
//!     [--out results/sweep_<name>.json] [--json] [--force] [--no-write] \
//!     [--profile]
//! ```
//!
//! `--resume` loads the existing output document as a cell cache, so
//! re-running an unchanged grid simulates nothing and grown grids run
//! only their new cells. The output is byte-identical for any
//! `--threads` value. `--profile` prints where the wall time went
//! (workload setup, each simulated cell, serialisation) without
//! changing the output document.

use std::path::PathBuf;

use desim::Json;
use sim_harness::{check_overwrite, BenchHarness, Diagnostic, RESULTS_DIR};
use sweep::{run_grid, CellCache, GridSpec};

fn fail(d: &Diagnostic, code: i32) -> ! {
    eprintln!("{d}");
    std::process::exit(code);
}

fn main() {
    let h = BenchHarness::new("sweep");
    let grid_path = match h.operand("grid") {
        Ok(Some(path)) => path.to_string(),
        Ok(None) => fail(
            &Diagnostic::hard("CLI002", "--grid", "sweep requires --grid <spec.json>"),
            2,
        ),
        Err(d) => fail(&d, 2),
    };
    let text = std::fs::read_to_string(&grid_path).unwrap_or_else(|e| {
        fail(
            &Diagnostic::hard(
                "SWP001",
                grid_path.clone(),
                format!("cannot read grid: {e}"),
            ),
            2,
        )
    });
    let spec = GridSpec::parse(&text).unwrap_or_else(|d| fail(&d, 2));
    let threads = match h.value("threads").map(str::parse::<usize>) {
        None => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        Some(Ok(n)) if n >= 1 => n,
        _ => fail(
            &Diagnostic::hard(
                "CLI002",
                "--threads",
                "--threads requires a positive integer",
            ),
            2,
        ),
    };
    let out_path = h.value("out").map_or_else(
        || PathBuf::from(RESULTS_DIR).join(format!("sweep_{}.json", spec.name)),
        PathBuf::from,
    );
    let cache = if h.flag("resume") {
        CellCache::load(&out_path)
    } else {
        CellCache::empty()
    };

    h.say(format_args!(
        "sweep '{}': {} pair(s) x {} seed(s) on {} thread(s){}",
        spec.name,
        spec.pairs.len(),
        spec.seeds.len(),
        threads,
        if cache.is_empty() {
            String::new()
        } else {
            format!(", resuming over {} cached cell(s)", cache.len())
        }
    ));
    let outcome = run_grid(&spec, threads, &cache).unwrap_or_else(|d| fail(&d, 1));
    h.say(format_args!(
        "{} cell(s): {} simulated, {} derived, {} from cache",
        outcome.cells_total, outcome.cells_run, outcome.cells_derived, outcome.cells_cached
    ));

    if h.flag("profile") {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        h.say(format_args!("\nprofile: setup (workload build)"));
        for (kernel, t) in &outcome.profile.setup {
            h.say(format_args!("  {kernel:<28} {:>9.3} ms", ms(*t)));
        }
        h.say(format_args!("profile: simulate (per cell)"));
        for (label, t) in &outcome.profile.cells {
            h.say(format_args!("  {label:<28} {:>9.3} ms", ms(*t)));
        }
        h.say(format_args!(
            "profile: serialize               {:>9.3} ms",
            ms(outcome.profile.serialize)
        ));
    }

    if let Some(rows) = outcome
        .document
        .get("scaling")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    {
        h.say(format_args!(
            "\n{:<16} {:>9} {:>7} {:>12} {:>11} {:>9} {:>8}",
            "mapping", "platform", "cores", "time (ms)", "energy (J)", "vs seq", "vs e16"
        ));
        for row in rows {
            let s = |k: &str| row.get(k).and_then(Json::as_str).unwrap_or("?");
            let f = |k: &str| row.get(k).and_then(Json::as_f64);
            let ratio = |k: &str| f(k).map_or_else(|| "-".to_string(), |v| format!("{v:.2}x"));
            h.say(format_args!(
                "{:<16} {:>9} {:>7} {:>12.3} {:>11.4} {:>9} {:>8}",
                s("mapping"),
                s("platform"),
                row.get("platform_cores")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                f("time_ms").unwrap_or(0.0),
                f("energy_j").unwrap_or(0.0),
                ratio("speedup_vs_seq"),
                ratio("speedup_vs_e16"),
            ));
        }
    }

    if h.json() {
        print!("{}", outcome.document.to_string_pretty());
    }
    if h.flag("no-write") {
        return;
    }
    if let Err(d) = check_overwrite(&out_path, h.flag("force")) {
        fail(&d, 2);
    }
    if let Some(dir) = out_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
    }
    match std::fs::write(&out_path, outcome.document.to_string_pretty()) {
        Ok(()) => h.say(format_args!("\nwrote {}", out_path.display())),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out_path.display()),
    }
}
