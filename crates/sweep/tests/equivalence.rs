//! Byte-identity pins for the sweep fast paths (DESIGN.md §3 S17).
//!
//! Two closed-form shortcuts ride under every sweep: the seed
//! fast-forward in `run_grid` (one simulated representative per pair,
//! remaining seeds derived by re-stamping `fault_seed`) and the
//! chip-level burst executor (`Chip::read_external_run` absorbing
//! off-chip read spans without per-event stepping). Both claim *byte*
//! identity with the per-event path, so both are pinned here across
//! every registered Mapping × Platform pair at small scale.
//!
//! The one wall-clock pair (`ffbp_host` × `host`) measures real time,
//! so its `elapsed` span is neutralised before comparison; everything
//! else in its record must still match byte for byte.

use desim::trace::Tracer;
use desim::{Cycle, Frequency, Json, RunRecord, TimeSpan};
use sar_epiphany::{all_mappings, mapping_named};
use sim_harness::{
    all_platforms, platform_named, run_ctx, FaultPlan, FaultState, RunContext, Workload,
};
use sweep::{run_grid, CellCache, GridSpec, PairSpec};

/// Every supported Mapping × Platform combination, by registry name.
fn registered_pairs() -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    for m in all_mappings() {
        for p in all_platforms() {
            if m.supports(p.kind()) {
                pairs.push((m.name().to_string(), p.label().to_string()));
            }
        }
    }
    assert!(pairs.len() >= 13, "registry shrank: {} pairs", pairs.len());
    pairs
}

fn wall_clock(platform: &str) -> bool {
    platform == "host"
}

/// Serialise a record, pinning the wall-clock span of host runs to a
/// constant so the comparison covers every deterministic field.
fn canonical(record: &RunRecord, platform: &str) -> String {
    let mut record = record.clone();
    if wall_clock(platform) {
        record.elapsed = TimeSpan::new(Cycle(1), Frequency::ghz(1.0));
        // The harness-synthesised power timeline closes its epochs at
        // the wall-clock makespan, so it is neutralised the same way.
        if let Some(power) = &mut record.power {
            for e in &mut power.timeline.epochs {
                e.start = Cycle::ZERO;
                e.end = Cycle(1);
            }
        }
    }
    record.to_json().to_string_pretty()
}

fn simulate_direct(mapping: &str, platform: &str, seed: u64) -> RunRecord {
    let m = mapping_named(mapping).expect("registered mapping");
    let p = platform_named(platform).expect("registered platform");
    let w = Workload::named(m.kernel(), true).expect("registered kernel");
    let ctx = RunContext::plain().with_faults(FaultState::from_plan(&FaultPlan::empty(seed)));
    run_ctx(m.as_ref(), &w, p.as_ref(), &ctx)
        .expect("supported pair runs")
        .record
}

#[test]
fn derived_seed_records_match_direct_simulation() {
    for (mapping, platform) in registered_pairs() {
        let spec = GridSpec {
            name: "equiv".to_string(),
            small: true,
            pairs: vec![PairSpec {
                mapping: mapping.clone(),
                platform: platform.clone(),
            }],
            seeds: vec![1, 2],
            faults: None,
        };
        let out = run_grid(&spec, 1, &CellCache::empty()).expect("grid runs");
        assert_eq!(
            out.cells_run, 1,
            "{mapping} x {platform}: one representative"
        );
        assert_eq!(
            out.cells_derived, 1,
            "{mapping} x {platform}: one derived seed"
        );
        let cells = out
            .document
            .get("cells")
            .and_then(Json::as_array)
            .expect("cells array");
        for (cell, seed) in cells.iter().zip([1u64, 2]) {
            let in_grid = cell.get("record").expect("cell record");
            let direct = simulate_direct(&mapping, &platform, seed);
            if wall_clock(&platform) {
                let parsed = RunRecord::from_json(in_grid).expect("record parses");
                assert_eq!(
                    canonical(&parsed, &platform),
                    canonical(&direct, &platform),
                    "{mapping} x {platform} seed {seed}: derived vs direct (wall clock pinned)"
                );
            } else {
                assert_eq!(
                    in_grid.to_string_pretty(),
                    direct.to_json().to_string_pretty(),
                    "{mapping} x {platform} seed {seed}: derived record differs from direct simulation"
                );
            }
        }
    }
}

#[test]
fn traced_and_untraced_records_are_byte_identical() {
    // Tracing disables the burst executor (spans must be emitted per
    // event), so this pins that the absorbed fast path is invisible in
    // the closed record of every registered pair.
    for (mapping, platform) in registered_pairs() {
        let m = mapping_named(&mapping).expect("registered mapping");
        let p = platform_named(&platform).expect("registered platform");
        let w = Workload::named(m.kernel(), true).expect("registered kernel");
        let plain = RunContext::plain().with_faults(FaultState::from_plan(&FaultPlan::empty(7)));
        let traced = RunContext::traced(Tracer::enabled())
            .with_faults(FaultState::from_plan(&FaultPlan::empty(7)));
        let a = run_ctx(m.as_ref(), &w, p.as_ref(), &plain)
            .expect("untraced run")
            .record;
        let b = run_ctx(m.as_ref(), &w, p.as_ref(), &traced)
            .expect("traced run")
            .record;
        assert_eq!(
            canonical(&a, &platform),
            canonical(&b, &platform),
            "{mapping} x {platform}: tracing changed the record"
        );
    }
}
