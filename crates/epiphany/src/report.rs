//! Run reports: everything a harness needs to print a Table I row.

use std::fmt;

use desim::stats::Counters;
use desim::{Cycle, TimeSpan};

use crate::energy::EnergyBreakdown;

/// Summary of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human-readable configuration label.
    pub label: String,
    /// Cores the mapping actually used.
    pub cores_used: usize,
    /// Makespan.
    pub elapsed: TimeSpan,
    /// Modelled energy breakdown.
    pub energy: EnergyBreakdown,
    /// Aggregated operation counters across all cores.
    pub counters: Counters,
    /// Busy cycles of the most congested on-chip link.
    pub busiest_link_cycles: Cycle,
    /// Busy cycles of the off-chip eLink.
    pub elink_busy_cycles: Cycle,
    /// SDRAM open-row hit rate.
    pub sdram_row_hit_rate: f64,
}

impl RunReport {
    /// Execution time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.millis()
    }

    /// Average modelled power over the run, watts.
    pub fn avg_power_w(&self) -> f64 {
        self.energy.avg_power_w(self.elapsed.seconds())
    }

    /// Modelled energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// eLink utilisation over the makespan.
    pub fn elink_utilization(&self) -> f64 {
        if self.elapsed.cycles == Cycle::ZERO {
            0.0
        } else {
            (self.elink_busy_cycles.raw() as f64 / self.elapsed.cycles.raw() as f64).min(1.0)
        }
    }

    /// Wall-time speedup of this run over `baseline`.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.elapsed.seconds() / self.elapsed.seconds()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.label)?;
        writeln!(f, "  cores used     : {}", self.cores_used)?;
        writeln!(f, "  execution time : {:.3} ms", self.millis())?;
        writeln!(f, "  modelled energy: {:.4} J", self.energy_j())?;
        writeln!(f, "  modelled power : {:.3} W", self.avg_power_w())?;
        writeln!(f, "  eLink util     : {:.1}%", self.elink_utilization() * 100.0)?;
        writeln!(f, "  SDRAM row hits : {:.1}%", self.sdram_row_hit_rate * 100.0)?;
        write!(f, "{}", self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Frequency;

    fn report(cycles: u64) -> RunReport {
        RunReport {
            label: "t".into(),
            cores_used: 1,
            elapsed: TimeSpan::new(Cycle(cycles), Frequency::ghz(1.0)),
            energy: EnergyBreakdown::default(),
            counters: Counters::new(),
            busiest_link_cycles: Cycle::ZERO,
            elink_busy_cycles: Cycle(cycles / 2),
            sdram_row_hit_rate: 0.5,
        }
    }

    #[test]
    fn speedup_is_ratio_of_times() {
        let fast = report(1_000_000);
        let slow = report(4_250_000);
        assert!((fast.speedup_over(&slow) - 4.25).abs() < 1e-9);
    }

    #[test]
    fn elink_utilization_is_fraction_of_makespan() {
        let r = report(1000);
        assert!((r.elink_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_label() {
        let r = report(10);
        let s = format!("{r}");
        assert!(s.contains("== t =="));
        assert!(s.contains("execution time"));
    }
}
