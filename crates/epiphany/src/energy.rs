//! Activity-based energy accounting.
//!
//! The paper reports "estimated power" straight from the datasheets
//! (2 W for the chip, 17.5 W for one i7 core); this model additionally
//! decomposes the Epiphany side into per-component contributions so the
//! ablation benches can attribute energy to compute, fabric, eLink,
//! SDRAM and leakage. With fine-grained clock gating, idle cores cost
//! only static power — dynamic energy follows the operation counters.

use crate::activity::slot;
use crate::chip::Chip;
use crate::params::EpiphanyParams;

/// Joules by component — the shared record type, so chip reports embed
/// the breakdown directly.
pub use desim::record::EnergyRecord as EnergyBreakdown;

/// Prices a chip's activity counters.
pub struct EnergyModel {
    params: EpiphanyParams,
}

impl EnergyModel {
    /// Model with the chip's parameters.
    pub fn new(params: &EpiphanyParams) -> EnergyModel {
        EnergyModel { params: *params }
    }

    /// Evaluate the breakdown for everything `chip` has executed.
    pub fn evaluate(&self, chip: &Chip) -> EnergyBreakdown {
        let p = &self.params;
        let pj = 1e-12;

        let mut compute = 0.0;
        let mut sram = 0.0;
        let mut elink_bytes = 0u64;
        let mut sdram_bytes = 0u64;
        for core in 0..chip.cores() {
            // Slot-indexed reads: this runs at every phase boundary,
            // so it must not materialise the string-keyed map.
            let c = chip.activity(core);
            compute += c.get(slot::FPU_INSTR) as f64 * p.pj_per_flop
                + c.get(slot::IALU_LS_INSTR) as f64 * p.pj_per_ialu;
            sram += c.get(slot::LOCAL_ACCESS) as f64 * p.pj_per_local_access;
            let offchip =
                c.get(slot::EXT_READ_BYTES) + c.get(slot::EXT_WRITE_BYTES) + c.get(slot::DMA_BYTES);
            elink_bytes += offchip;
            sdram_bytes += offchip;
        }

        let fabric = chip.fabric();
        let byte_hops =
            fabric.cmesh.byte_hops() + fabric.rmesh.byte_hops() + fabric.xmesh.byte_hops();
        let mesh = byte_hops as f64 * p.pj_per_mesh_byte_hop;

        let seconds = chip.elapsed_span().seconds();
        let static_j = (p.static_w_per_core * chip.cores() as f64 + p.static_w_chip) * seconds;

        EnergyBreakdown {
            compute_j: compute * pj,
            sram_j: sram * pj,
            mesh_j: mesh * pj,
            elink_j: elink_bytes as f64 * p.pj_per_elink_byte * pj,
            sdram_j: sdram_bytes as f64 * p.pj_per_sdram_byte * pj,
            static_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OpCounts;
    use memsim::GlobalAddr;

    #[test]
    fn compute_dominates_for_local_kernels() {
        let mut chip = Chip::e16g3(EpiphanyParams::default());
        chip.compute(
            0,
            &OpCounts {
                fmas: 1_000_000,
                loads: 500_000,
                ..OpCounts::default()
            },
        );
        let e = chip.energy();
        assert!(e.compute_j > 0.0);
        assert!(e.elink_j == 0.0);
        assert!(e.compute_j > e.mesh_j);
    }

    #[test]
    fn offchip_traffic_costs_more_per_byte_than_mesh() {
        let p = EpiphanyParams::default();
        let mut on = Chip::e16g3(p);
        on.write_remote(0, 1, 4096);
        let e_on = on.energy();

        let mut off = Chip::e16g3(p);
        off.write_external(0, GlobalAddr::external(0), 4096);
        let e_off = off.energy();

        let on_dynamic = e_on.mesh_j + e_on.elink_j + e_on.sdram_j;
        let off_dynamic = e_off.mesh_j + e_off.elink_j + e_off.sdram_j;
        assert!(
            off_dynamic > 5.0 * on_dynamic,
            "off-chip {off_dynamic:.3e} J should dwarf on-chip {on_dynamic:.3e} J"
        );
    }

    #[test]
    fn static_energy_grows_with_makespan() {
        let p = EpiphanyParams::default();
        let mut fast = Chip::e16g3(p);
        fast.compute(
            0,
            &OpCounts {
                flops: 1000,
                ..OpCounts::default()
            },
        );
        let mut slow = Chip::e16g3(p);
        slow.compute(
            0,
            &OpCounts {
                flops: 1_000_000,
                ..OpCounts::default()
            },
        );
        assert!(slow.energy().static_j > fast.energy().static_j);
    }

    #[test]
    fn full_load_power_magnitude_is_plausible() {
        // All 16 cores at one FMA + one load per cycle for 1M cycles:
        // average power should land near the 2 W datasheet figure.
        let mut chip = Chip::e16g3(EpiphanyParams::default());
        for core in 0..16 {
            chip.compute(
                core,
                &OpCounts {
                    fmas: 800_000,
                    loads: 700_000,
                    ialu: 100_000,
                    ..OpCounts::default()
                },
            );
        }
        let e = chip.energy();
        let w = e.avg_power_w(chip.elapsed_span().seconds());
        assert!(
            (0.5..4.0).contains(&w),
            "full-load power {w:.2} W far from the 2 W datasheet figure"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut chip = Chip::e16g3(EpiphanyParams::default());
        chip.compute(
            0,
            &OpCounts {
                flops: 100,
                ..OpCounts::default()
            },
        );
        chip.write_external(0, GlobalAddr::external(0), 64);
        let e = chip.energy();
        let sum = e.compute_j + e.sram_j + e.mesh_j + e.elink_j + e.sdram_j + e.static_j;
        assert!((sum - e.total_j()).abs() < 1e-18);
        assert_eq!(e.avg_power_w(0.0), 0.0);
    }
}
