//! Abstract compute-cost blocks.
//!
//! Kernels report *what* they executed (counts of FPU ops, integer ops,
//! local loads/stores, and special functions); each machine model
//! prices those counts with its own constants. A [`CostBlock`] is the
//! already-lowered form for the Epiphany core model: special functions
//! have been expanded to FPU-instruction equivalents by
//! [`CostBlock::lower`].

use crate::params::EpiphanyParams;

pub use desim::work::OpCounts;

/// A compute region lowered to Epiphany issue slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostBlock {
    /// Instructions competing for the FPU issue slot.
    pub fpu_instrs: u64,
    /// Instructions competing for the IALU/load-store slot.
    pub ialu_ls_instrs: u64,
    /// Local-store accesses (for bank-energy accounting).
    pub local_accesses: u64,
}

impl CostBlock {
    /// Expand special functions into FPU instruction sequences using
    /// the machine's software-implementation costs.
    pub fn lower(ops: &OpCounts, p: &EpiphanyParams) -> CostBlock {
        let fpu = ops.flops
            + ops.fmas
            + ops.sqrts * p.sqrt_flops
            + ops.divs * p.div_flops
            + ops.trigs * p.trig_flops;
        let ls = ops.loads * p.local_load_cycles + ops.stores * p.local_store_cycles;
        CostBlock {
            fpu_instrs: fpu,
            ialu_ls_instrs: ops.ialu + ls,
            local_accesses: ops.loads + ops.stores,
        }
    }

    /// Issue cycles under dual-issue pairing: the longer of the two
    /// slots, divided by the pairing efficiency (imperfect scheduling
    /// makes some cycles single-issue).
    pub fn cycles(&self, p: &EpiphanyParams) -> u64 {
        let dominant = self.fpu_instrs.max(self.ialu_ls_instrs);
        ((dominant as f64) / p.pairing_efficiency).ceil() as u64
    }

    /// Merge another block into this one.
    pub fn add(&mut self, other: &CostBlock) {
        self.fpu_instrs += other.fpu_instrs;
        self.ialu_ls_instrs += other.ialu_ls_instrs;
        self.local_accesses += other.local_accesses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_expands_special_functions() {
        let p = EpiphanyParams::default();
        let ops = OpCounts {
            sqrts: 2,
            trigs: 1,
            flops: 5,
            ..OpCounts::default()
        };
        let cb = CostBlock::lower(&ops, &p);
        assert_eq!(cb.fpu_instrs, 5 + 2 * p.sqrt_flops + p.trig_flops);
    }

    #[test]
    fn dual_issue_hides_the_shorter_slot() {
        let p = EpiphanyParams {
            pairing_efficiency: 1.0,
            ..EpiphanyParams::default()
        };
        let balanced = CostBlock {
            fpu_instrs: 100,
            ialu_ls_instrs: 100,
            local_accesses: 0,
        };
        assert_eq!(balanced.cycles(&p), 100);
        let fpu_heavy = CostBlock {
            fpu_instrs: 100,
            ialu_ls_instrs: 10,
            local_accesses: 0,
        };
        assert_eq!(fpu_heavy.cycles(&p), 100);
    }

    #[test]
    fn pairing_efficiency_inflates_cycles() {
        let p = EpiphanyParams {
            pairing_efficiency: 0.5,
            ..EpiphanyParams::default()
        };
        let b = CostBlock {
            fpu_instrs: 100,
            ialu_ls_instrs: 0,
            local_accesses: 0,
        };
        assert_eq!(b.cycles(&p), 200);
    }

    #[test]
    fn fma_counts_one_instruction_two_flops() {
        let ops = OpCounts {
            fmas: 10,
            ..OpCounts::default()
        };
        assert_eq!(ops.flop_work(), 20);
        let p = EpiphanyParams::default();
        assert_eq!(CostBlock::lower(&ops, &p).fpu_instrs, 10);
    }

    #[test]
    fn scaling_and_accumulation() {
        let unit = OpCounts {
            flops: 3,
            loads: 2,
            ..OpCounts::default()
        };
        let mut total = OpCounts::default();
        total.add(&unit.scaled(4));
        assert_eq!(total.flops, 12);
        assert_eq!(total.loads, 8);

        let p = EpiphanyParams::default();
        let mut cb = CostBlock::lower(&unit, &p);
        cb.add(&CostBlock::lower(&unit, &p));
        assert_eq!(cb.local_accesses, 4);
    }
}
