//! The assembled chip model: cores + fabric + local stores + SDRAM.
//!
//! Each core owns a monotone time cursor. Mapping code advances a
//! core's cursor with [`Chip::compute`], and every off-core interaction
//! goes through the shared fabric/memory models where it contends with
//! the other cores' traffic.

use desim::power::{PhaseAttribution, PhasePower, PowerEpoch, PowerRecord, PowerTimeline};
use desim::record::{MeshHeatmap, MeshUtilization, PhaseRecord, RunRecord};
use desim::stats::{Counters, Histogram, PhaseTimeline};
use desim::trace::{Tracer, Track};
use desim::{Cycle, TimeSpan};
use emesh::network::TransferResult;
use emesh::{EMesh, Mesh2D, NodeId};
use faultsim::{FaultState, FlagFault};
use memsim::{GlobalAddr, LocalStore, Sdram};

use crate::activity::{slot, CoreCounters};
use crate::cost::{CostBlock, OpCounts};
use crate::dma::{DmaDirection, DmaEngine};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::params::EpiphanyParams;

/// A core index on the chip (row-major, same order as mesh nodes).
pub type CoreId = usize;

/// Mesh statistics captured at a phase boundary, so [`Chip::phase_end`]
/// can attribute byte-hop and link-busy deltas to the closing phase.
#[derive(Debug, Clone, Default)]
struct MeshSnapshot {
    cmesh_byte_hops: u64,
    rmesh_byte_hops: u64,
    xmesh_byte_hops: u64,
    transfers: u64,
    /// Per-link busy cycles, `cmesh ++ rmesh ++ xmesh` flattened.
    link_busy: Vec<Cycle>,
}

/// The E16G3 (or a scaled N×M sibling) machine model.
pub struct Chip {
    params: EpiphanyParams,
    mesh: Mesh2D,
    fabric: EMesh,
    sdram: Sdram,
    stores: Vec<LocalStore>,
    dma: Vec<DmaEngine>,
    /// Per-core time cursors.
    t: Vec<Cycle>,
    /// Per-core active (non-idle) cycles, for clock-gated energy.
    busy: Vec<Cycle>,
    /// Per-core operation counters (slot-indexed; materialised into
    /// string-keyed [`Counters`] only at observation points).
    counters: Vec<CoreCounters>,
    /// Per-core event timers (two ctimers per core, as on the E16G3).
    timers: Vec<[Option<Cycle>; 2]>,
    /// Phase-scoped statistics (see [`Chip::phase_begin`]).
    phases: PhaseTimeline,
    /// Modelled energy breakdown at the open phase's start.
    phase_energy0: EnergyBreakdown,
    /// eLink busy cycles at the open phase's start.
    phase_elink0: Cycle,
    /// SDRAM bus busy cycles at the open phase's start.
    phase_sdram0: Cycle,
    /// Summed core busy cycles at the open phase's start (the
    /// stall-vs-compute split of the attribution block).
    phase_busy0: Cycle,
    /// Mesh statistics at the open phase's start.
    phase_mesh0: MeshSnapshot,
    /// Power-sampling epochs: the cumulative energy breakdown at every
    /// phase boundary, in boundary order. [`Chip::report`] turns the
    /// deltas between consecutive marks into a [`PowerTimeline`], so
    /// the timeline's total telescopes exactly to the run energy.
    /// Grows only at phase boundaries — the hot path never touches it.
    power_marks: Vec<(Cycle, EnergyBreakdown)>,
    /// Event tracer (disabled by default; see [`Chip::set_tracer`]).
    tracer: Tracer,
    /// Fault schedule (disabled by default; see [`Chip::set_faults`]).
    faults: FaultState,
}

impl Chip {
    /// Build a `cols x rows` chip. The explicit geometry wins over
    /// whatever `params.mesh_cols/mesh_rows` said — the stored params
    /// are synced so [`Chip::params`] always reflects the real mesh.
    pub fn new(mut params: EpiphanyParams, cols: u16, rows: u16) -> Chip {
        params.mesh_cols = cols;
        params.mesh_rows = rows;
        let mesh = Mesh2D::new(cols, rows);
        let n = mesh.len();
        Chip {
            fabric: EMesh::new(mesh, params.emesh),
            sdram: Sdram::new(params.sdram),
            stores: (0..n).map(|_| LocalStore::new(params.sram)).collect(),
            dma: vec![DmaEngine::new(); n],
            t: vec![Cycle::ZERO; n],
            busy: vec![Cycle::ZERO; n],
            counters: (0..n).map(|_| CoreCounters::new()).collect(),
            timers: vec![[None; 2]; n],
            phases: PhaseTimeline::new(),
            phase_energy0: EnergyBreakdown::default(),
            phase_elink0: Cycle::ZERO,
            phase_sdram0: Cycle::ZERO,
            phase_busy0: Cycle::ZERO,
            phase_mesh0: MeshSnapshot::default(),
            power_marks: Vec::new(),
            tracer: Tracer::disabled(),
            faults: FaultState::disabled(),
            mesh,
            params,
        }
    }

    /// Attach a tracer to the whole machine: cores, DMA engines, all
    /// three meshes, the eLink, local stores and the SDRAM emit onto
    /// the shared timeline. Disabled tracers cost one branch per
    /// emission point.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.fabric.set_tracer(tracer.clone());
        self.sdram.set_tracer(tracer.clone());
        for (core, store) in self.stores.iter_mut().enumerate() {
            store.set_tracer(tracer.clone(), Track::Core(core as u32));
        }
        self.tracer = tracer;
    }

    /// The tracer attached to this chip (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach fault state to the whole machine: the fabric (mesh
    /// stalls, eLink degradation), the SDRAM (transient bit errors)
    /// and the chip itself (flag drops/delays, core halts) share one
    /// schedule, so every armed event injects exactly once across all
    /// injection points.
    pub fn set_faults(&mut self, faults: FaultState) {
        self.fabric.set_faults(faults.clone());
        self.sdram.set_faults(faults.clone());
        self.faults = faults;
    }

    /// The fault state attached to this chip (disabled by default).
    pub fn faults(&self) -> &FaultState {
        &self.faults
    }

    /// Sentinel returned by [`Chip::write_remote`] when an armed fault
    /// dropped the flag write: the data landed in the destination
    /// store, but the consumer will never see the flag go up.
    /// [`Chip::send_reliable`] turns this into a watchdog-driven
    /// retry; passing it to [`Chip::wait_flag`] is a bug.
    pub const DROPPED: Cycle = Cycle(u64::MAX);

    /// The 16-core E16G3.
    pub fn e16g3(params: EpiphanyParams) -> Chip {
        Chip::new(params, 4, 4)
    }

    /// A chip with the geometry the parameters declare
    /// (`mesh_cols x mesh_rows`) — the way mapping drivers should
    /// build their machine, so a platform's mesh choice flows through
    /// without the driver hard-coding 4x4.
    pub fn from_params(params: EpiphanyParams) -> Chip {
        Chip::new(params, params.mesh_cols, params.mesh_rows)
    }

    /// Mesh geometry `(cols, rows)`.
    pub fn mesh_dims(&self) -> (u16, u16) {
        (self.mesh.cols(), self.mesh.rows())
    }

    /// Row-major core ids of a compact `n`-core subgrid embedded at
    /// this chip's top-left corner: the [`Chip::mesh_for_cores`] shape
    /// for `n`, laid out inside the real mesh so neighbour relations
    /// (and therefore hop counts) match a dedicated `n`-core chip.
    /// Running the 16-core FFBP slice assignment on these ids on an
    /// E64 reproduces the E16G3 communication pattern exactly.
    ///
    /// Panics if the subgrid does not fit the chip.
    pub fn subgrid_cores(&self, n: usize) -> Vec<usize> {
        Chip::subgrid_on(self.mesh.cols(), self.mesh.rows(), n)
    }

    /// [`Chip::subgrid_cores`] as a free function on a `(cols, rows)`
    /// mesh, usable by program-model builders without a chip.
    pub fn subgrid_on(cols: u16, rows: u16, n: usize) -> Vec<usize> {
        let (sc, sr) = Chip::mesh_for_cores(n);
        assert!(
            sc <= cols && sr <= rows,
            "{n}-core subgrid ({sc}x{sr}) does not fit a {cols}x{rows} mesh"
        );
        let mut ids = Vec::with_capacity(n);
        'fill: for y in 0..sr {
            for x in 0..sc {
                if ids.len() == n {
                    break 'fill;
                }
                ids.push(y as usize * cols as usize + x as usize);
            }
        }
        ids
    }

    /// The smallest sensible `(cols, rows)` mesh covering `n` cores:
    /// minimal core count among meshes with bounded aspect ratio
    /// (`cols <= 2 * rows`, `cols >= rows`), tie-broken toward square.
    /// The aspect bound keeps worst-case mesh distances short — a 17×1
    /// strip would "cover" 17 cores with zero waste but terrible hop
    /// counts.
    pub fn mesh_for_cores(n: usize) -> (u16, u16) {
        assert!(n >= 1, "a chip needs at least one core");
        assert!(n <= u16::MAX as usize * u16::MAX as usize, "mesh too large");
        let mut best: Option<(u16, u16)> = None;
        let mut cols = (n as f64).sqrt().ceil() as u16;
        loop {
            let rows = (n as u16).div_ceil(cols);
            if cols > 2 * rows {
                break;
            }
            let better = match best {
                None => true,
                Some((bc, br)) => (cols as u32 * rows as u32) < (bc as u32 * br as u32),
            };
            if better {
                best = Some((cols, rows));
            }
            cols += 1;
        }
        best.expect("ceil(sqrt(n)) always yields a candidate")
    }

    /// A chip with at least `n` usable cores: the paper's E16G3 for
    /// `n <= 16`, otherwise the minimal [`Chip::mesh_for_cores`] mesh.
    /// Replaces the ad-hoc sizing mapping drivers used to hand-roll
    /// (which forced square meshes and over-provisioned non-square
    /// core counts).
    pub fn with_cores(params: EpiphanyParams, n: usize) -> Chip {
        if n <= 16 {
            Chip::e16g3(params)
        } else {
            let (cols, rows) = Chip::mesh_for_cores(n);
            Chip::new(params, cols, rows)
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &EpiphanyParams {
        self.params_ref()
    }

    fn params_ref(&self) -> &EpiphanyParams {
        &self.params
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.mesh.len()
    }

    /// Mesh node of `core`.
    pub fn node(&self, core: CoreId) -> NodeId {
        NodeId(core as u16)
    }

    /// Current time cursor of `core`.
    pub fn now(&self, core: CoreId) -> Cycle {
        self.t[core]
    }

    /// Access to the fabric (read-only, for congestion statistics).
    pub fn fabric(&self) -> &EMesh {
        &self.fabric
    }

    /// Access to the SDRAM model (read-only statistics).
    pub fn sdram(&self) -> &Sdram {
        &self.sdram
    }

    /// Local store of `core` (read-only statistics).
    pub fn store(&self, core: CoreId) -> &LocalStore {
        &self.stores[core]
    }

    /// Per-core operation counters, materialised by value from the
    /// core's activity slots.
    pub fn counters(&self, core: CoreId) -> Counters {
        self.counters[core].to_counters()
    }

    /// Slot-indexed view of `core`'s counters (the hot-path storage
    /// behind [`Chip::counters`]).
    pub fn activity(&self, core: CoreId) -> &CoreCounters {
        &self.counters[core]
    }

    fn spend(&mut self, core: CoreId, cycles: Cycle) {
        self.t[core] += cycles;
        self.busy[core] += cycles;
    }

    /// Let `core` idle (cursor advances, no busy cycles — the clock
    /// gate closes). Used for stalls whose time is spent waiting.
    fn stall_until(&mut self, core: CoreId, until: Cycle) {
        if until > self.t[core] {
            self.t[core] = until;
        }
    }

    // ---- compute --------------------------------------------------------

    /// Execute a compute region described by raw op counts.
    pub fn compute(&mut self, core: CoreId, ops: &OpCounts) {
        let block = CostBlock::lower(ops, &self.params);
        self.compute_block(core, &block);
    }

    /// Execute an already-lowered compute block.
    pub fn compute_block(&mut self, core: CoreId, block: &CostBlock) {
        let cycles = Cycle(block.cycles(&self.params));
        let start = self.t[core];
        self.spend(core, cycles);
        self.tracer
            .span(Track::Core(core as u32), "compute", start, self.t[core]);
        let c = &mut self.counters[core];
        c.add(slot::FPU_INSTR, block.fpu_instrs);
        c.add(slot::IALU_LS_INSTR, block.ialu_ls_instrs);
        c.add(slot::LOCAL_ACCESS, block.local_accesses);
    }

    /// Fast-forward a compute-only span: `reps` repetitions of the
    /// same op-count region, with no mesh or SDRAM interaction in
    /// flight on `core`. Advances the cursor and the counters in
    /// closed form (one multiply each) instead of `reps` round-trips
    /// through [`Chip::compute`] — byte-identical output, because the
    /// per-rep cycle cost and counter deltas are constants and `u64`
    /// addition is exact.
    ///
    /// With a tracer attached the span executor falls back to per-rep
    /// execution so the timeline keeps every `compute` span.
    pub fn compute_span(&mut self, core: CoreId, ops: &OpCounts, reps: u64) {
        let block = CostBlock::lower(ops, &self.params);
        self.compute_block_span(core, &block, reps);
    }

    /// [`Chip::compute_span`] for an already-lowered block.
    pub fn compute_block_span(&mut self, core: CoreId, block: &CostBlock, reps: u64) {
        if reps == 0 {
            return;
        }
        if self.tracer.is_enabled() {
            for _ in 0..reps {
                self.compute_block(core, block);
            }
            return;
        }
        self.spend(core, Cycle(block.cycles(&self.params) * reps));
        let c = &mut self.counters[core];
        c.add(slot::FPU_INSTR, block.fpu_instrs * reps);
        c.add(slot::IALU_LS_INSTR, block.ialu_ls_instrs * reps);
        c.add(slot::LOCAL_ACCESS, block.local_accesses * reps);
    }

    // ---- on-chip communication -------------------------------------------

    /// Posted write of `bytes` into `dst`'s local store. The sender
    /// pays only issue cycles; delivery is returned for synchronisation
    /// (flag-based streaming uses it as the data-ready time).
    pub fn write_remote(&mut self, core: CoreId, dst: CoreId, bytes: u64) -> Cycle {
        let issue = Cycle(bytes.div_ceil(8).max(1) * self.params.write_issue_cycles_per_dword);
        self.spend(core, issue);
        let res: TransferResult =
            self.fabric
                .write_onchip(self.t[core], self.node(core), self.node(dst), bytes);
        // Inbound mesh write lands in a destination bank; model the port
        // time so concurrent core accesses to that bank see conflicts.
        let _ = self.stores[dst].access_bank(res.arrival, 0, bytes);
        if self.tracer.is_enabled() {
            // Landing marker for the sarlint dynamic cross-check: the
            // observed access must fit a statically declared buffer.
            self.tracer.instant(
                Track::Dma(dst as u32),
                format!("land:bank0+{bytes}"),
                res.arrival,
            );
        }
        let c = &mut self.counters[core];
        c.bump(slot::REMOTE_WRITE);
        c.add(slot::REMOTE_WRITE_BYTES, bytes);
        if self.faults.is_enabled() {
            match self.faults.flag_fault(res.arrival) {
                Some(FlagFault::Drop) => {
                    self.tracer
                        .instant(Track::Core(dst as u32), "fault:flag_drop", res.arrival);
                    return Chip::DROPPED;
                }
                Some(FlagFault::Delay(extra)) => {
                    // Saturating: `res.arrival + extra` must not wrap
                    // past the DROPPED sentinel into a small instant. A
                    // delay that saturates to the sentinel is
                    // indistinguishable from a lost flag, so report it
                    // as one and let send_reliable recover.
                    let arrival = res.arrival.saturating_add(Cycle(extra));
                    if arrival == Chip::DROPPED {
                        self.tracer.instant(
                            Track::Core(dst as u32),
                            "fault:flag_drop",
                            res.arrival,
                        );
                        return Chip::DROPPED;
                    }
                    self.tracer
                        .instant(Track::Core(dst as u32), "fault:flag_delay", arrival);
                    return arrival;
                }
                None => {}
            }
        }
        res.arrival
    }

    /// Reliable flag-signalled send: [`Chip::write_remote`] wrapped in
    /// a producer-side model of the consumer's watchdog. If the flag
    /// write is lost (a fault dropped it), the consumer's watchdog
    /// expires after `flag_retry_timeout_cycles`, NACKs the producer,
    /// and the message is re-sent; the timeout doubles per attempt,
    /// capped at 8x the base. With faults disabled this is exactly one
    /// [`Chip::write_remote`] — bit-identical to calling it directly.
    ///
    /// # Panics
    /// If `flag_retry_max` re-sends are all lost.
    pub fn send_reliable(&mut self, core: CoreId, dst: CoreId, bytes: u64) -> Cycle {
        let ready = self.write_remote(core, dst, bytes);
        if ready != Chip::DROPPED {
            return ready;
        }
        // Recovery path: snapshot time and energy so the retry storm
        // lands in the fault record, not silently in the baseline.
        let t0 = self.t[core];
        let e0 = self.energy().total_j();
        let base = self.params.flag_retry_timeout_cycles.max(1);
        let mut timeout = base;
        for _ in 0..self.params.flag_retry_max {
            // Watchdog expiry at the consumer, NACK back over the
            // rMesh: the producer idles until the NACK lands. The
            // backoff add saturates: it must never wrap even if a
            // sentinel-adjacent cursor ever reached here.
            let expiry = self.t[core].saturating_add(Cycle(timeout));
            self.stall_until(core, expiry);
            self.faults.add_retries(1);
            self.tracer
                .instant(Track::Core(core as u32), "fault:flag_retry", self.t[core]);
            let ready = self.write_remote(core, dst, bytes);
            if ready != Chip::DROPPED {
                self.faults
                    .add_recovery_cycles(self.t[core].saturating_sub(t0).raw());
                self.faults
                    .add_recovery_energy((self.energy().total_j() - e0).max(0.0));
                return ready;
            }
            timeout = (timeout * 2).min(8 * base);
        }
        panic!(
            "send_reliable: flag write from core {core} to {dst} lost {} times",
            self.params.flag_retry_max
        );
    }

    /// Blocking read of `bytes` from `src_core`'s local store: request
    /// travels the rMesh, data returns over the cMesh; the reader
    /// stalls until the data is back.
    pub fn read_remote(&mut self, core: CoreId, src_core: CoreId, bytes: u64) -> Cycle {
        self.spend(core, Cycle(self.params.read_issue_cycles));
        let issued = self.t[core];
        let res =
            self.fabric
                .read_onchip(self.t[core], self.node(core), self.node(src_core), bytes);
        self.stall_until(core, res.arrival);
        self.tracer
            .span(Track::Core(core as u32), "rd_remote", issued, self.t[core]);
        let c = &mut self.counters[core];
        c.bump(slot::REMOTE_READ);
        c.add(slot::REMOTE_READ_BYTES, bytes);
        res.arrival
    }

    // ---- off-chip communication --------------------------------------------

    /// Blocking read of `bytes` at external address `addr`.
    pub fn read_external(&mut self, core: CoreId, addr: GlobalAddr, bytes: u64) -> Cycle {
        assert!(
            addr.is_external(),
            "read_external wants an external address"
        );
        self.spend(core, Cycle(self.params.read_issue_cycles));
        let issued = self.t[core];
        let mem = self.sdram.latency_of(self.t[core], addr.0);
        let res = self
            .fabric
            .read_offchip(self.t[core], self.node(core), bytes, mem);
        self.stall_until(core, res.arrival);
        self.tracer
            .span(Track::Core(core as u32), "rd_ext", issued, self.t[core]);
        let c = &mut self.counters[core];
        c.bump(slot::EXT_READ);
        c.add(slot::EXT_READ_BYTES, bytes);
        res.arrival
    }

    /// Blocking reads of `bytes` at each address in `addrs`, issued
    /// back-to-back by `core` — semantically `addrs.len()` calls to
    /// [`Chip::read_external`], byte-identical in every observable
    /// (cursors, counters, SDRAM state, fabric statistics).
    ///
    /// When the span is provably uncontended — no tracer attached, no
    /// fault events pending, and the off-chip path idle at the first
    /// issue ([`EMesh::can_absorb_offchip_reads`]) — issue and arrival
    /// times follow arithmetically from the fabric's constant path
    /// latencies, and the whole span absorbs into the fabric in
    /// closed form ([`EMesh::absorb_offchip_reads`]): `O(1)` per-link
    /// work per span instead of a dozen FIFO walks per read. This is
    /// the read-side analogue of [`Chip::compute_span`] and the
    /// dominant win for FFBP, whose inner loop is a run of 8-byte
    /// external reads per output row.
    ///
    /// Otherwise the reads fall back to per-event execution one at a
    /// time, re-checking before each read — so a span blocked by, say,
    /// the previous row's write-back still absorbs its tail the
    /// moment the eLink drains.
    pub fn read_external_run(&mut self, core: CoreId, addrs: &[GlobalAddr], bytes: u64) {
        let issue = Cycle(self.params.read_issue_cycles);
        let node = self.node(core);
        // Span-invariant gates: a tracer cannot attach mid-call and
        // fault schedules only ever drain.
        let quiet =
            !self.tracer.is_enabled() && (!self.faults.is_enabled() || self.faults.pending() == 0);
        let mut i = 0;
        while i < addrs.len() {
            if quiet
                && self
                    .fabric
                    .can_absorb_offchip_reads(node, self.t[core] + issue)
            {
                let path = self.fabric.offchip_read_path(node, bytes);
                let n = addrs.len() - i;
                let mut t = Vec::with_capacity(n);
                let mut mem = Vec::with_capacity(n);
                for &addr in &addrs[i..] {
                    assert!(
                        addr.is_external(),
                        "read_external wants an external address"
                    );
                    self.spend(core, issue);
                    let at = self.t[core];
                    let m = self.sdram.latency_of(at, addr.0);
                    t.push(at);
                    mem.push(m);
                    self.stall_until(core, at + path.latency(m));
                }
                self.fabric.absorb_offchip_reads(node, bytes, &t, &mem);
                let c = &mut self.counters[core];
                c.add(slot::EXT_READ, n as u64);
                c.add(slot::EXT_READ_BYTES, bytes * n as u64);
                return;
            }
            self.read_external(core, addrs[i], bytes);
            i += 1;
        }
    }

    /// Posted write of `bytes` to external address `addr`. Issue is
    /// single-cycle-per-dword ("write without stalling"); a finite
    /// write buffer applies backpressure when the eLink backlog exceeds
    /// `write_buffer_cycles`.
    pub fn write_external(&mut self, core: CoreId, addr: GlobalAddr, bytes: u64) -> Cycle {
        assert!(
            addr.is_external(),
            "write_external wants an external address"
        );
        let issue = Cycle(bytes.div_ceil(8).max(1) * self.params.write_issue_cycles_per_dword);
        self.spend(core, issue);
        let res = self
            .fabric
            .write_offchip(self.t[core], self.node(core), bytes);
        self.sdram.latency_of(res.arrival, addr.0); // open-row bookkeeping
                                                    // Backpressure: if the write would complete far beyond the
                                                    // buffer horizon, the core stalls until the backlog drains.
        let horizon = self.t[core] + Cycle(self.params.write_buffer_cycles);
        if res.arrival > horizon {
            let stall_from = self.t[core];
            self.stall_until(core, res.arrival - Cycle(self.params.write_buffer_cycles));
            self.tracer.span(
                Track::Core(core as u32),
                "wr_backpressure",
                stall_from,
                self.t[core],
            );
        }
        let c = &mut self.counters[core];
        c.bump(slot::EXT_WRITE);
        c.add(slot::EXT_WRITE_BYTES, bytes);
        res.arrival
    }

    // ---- DMA ---------------------------------------------------------------

    /// Start a DMA transfer on `core`'s engine. The core pays only the
    /// descriptor setup; the transfer itself overlaps with compute.
    /// Returns the completion time (pass it to [`Chip::dma_wait`]).
    pub fn dma_start(
        &mut self,
        core: CoreId,
        dir: DmaDirection,
        addr: GlobalAddr,
        bank: usize,
        bytes: u64,
    ) -> Cycle {
        self.spend(core, Cycle(self.params.dma_setup_cycles));
        let start = self.dma[core].earliest_start(self.t[core]);
        let done = match dir {
            DmaDirection::ExternalToLocal => {
                let mem = self.sdram.latency_of(start, addr.0);
                let res = self.fabric.read_offchip(start, self.node(core), bytes, mem);
                // Landing in the chosen local bank.
                let landed = self.stores[core].access_bank(res.arrival, bank, bytes);
                if self.tracer.is_enabled() {
                    // Landing marker for the sarlint dynamic cross-check.
                    self.tracer.instant(
                        Track::Dma(core as u32),
                        format!("land:bank{bank}+{bytes}"),
                        landed.end,
                    );
                }
                landed.end
            }
            DmaDirection::LocalToExternal => {
                let drained = self.stores[core].access_bank(start, bank, bytes);
                let res = self
                    .fabric
                    .write_offchip(drained.end, self.node(core), bytes);
                self.sdram.latency_of(res.arrival, addr.0);
                res.arrival
            }
            DmaDirection::LocalToRemote => {
                let drained = self.stores[core].access_bank(start, bank, bytes);
                let res = self.fabric.write_onchip(
                    drained.end,
                    self.node(core),
                    NodeId(addr.row() as u16 * self.mesh.cols() + addr.col() as u16),
                    bytes,
                );
                res.arrival
            }
        };
        self.dma[core].commit(done, bytes);
        let dma_name = match dir {
            DmaDirection::ExternalToLocal => "dma_in",
            DmaDirection::LocalToExternal => "dma_out",
            DmaDirection::LocalToRemote => "dma_remote",
        };
        self.tracer
            .span(Track::Dma(core as u32), dma_name, start, done);
        self.counters[core].add(slot::DMA_BYTES, bytes);
        done
    }

    /// Block `core` until its DMA engine reaches `completion`.
    pub fn dma_wait(&mut self, core: CoreId, completion: Cycle) {
        self.counters[core].bump(slot::DMA_WAIT);
        let from = self.t[core];
        self.stall_until(core, completion);
        self.tracer
            .span(Track::Core(core as u32), "dma_wait", from, self.t[core]);
    }

    /// Start a strided (2D) DMA descriptor: `rows` rows of `row_bytes`
    /// each, `stride_bytes` apart in external memory, landing packed
    /// in local `bank`. One descriptor occupies the engine for the
    /// whole transfer (as on the real 2D DMA); each row pays its own
    /// SDRAM access. Returns the completion time.
    #[allow(clippy::too_many_arguments)]
    pub fn dma_start_2d(
        &mut self,
        core: CoreId,
        dir: DmaDirection,
        addr: GlobalAddr,
        bank: usize,
        rows: u32,
        row_bytes: u64,
        stride_bytes: u32,
    ) -> Cycle {
        assert!(rows > 0 && row_bytes > 0, "degenerate 2D descriptor");
        self.spend(core, Cycle(self.params.dma_setup_cycles));
        let mut t = self.dma[core].earliest_start(self.t[core]);
        let started = t;
        for row in 0..rows {
            let row_addr = GlobalAddr(addr.0 + row * stride_bytes);
            t = match dir {
                DmaDirection::ExternalToLocal => {
                    let mem = self.sdram.latency_of(t, row_addr.0);
                    let res = self.fabric.read_offchip(t, self.node(core), row_bytes, mem);
                    let landed = self.stores[core].access_bank(res.arrival, bank, row_bytes);
                    if self.tracer.is_enabled() {
                        // Landing marker for the sarlint dynamic cross-check.
                        self.tracer.instant(
                            Track::Dma(core as u32),
                            format!("land:bank{bank}+{row_bytes}"),
                            landed.end,
                        );
                    }
                    landed.end
                }
                DmaDirection::LocalToExternal => {
                    let drained = self.stores[core].access_bank(t, bank, row_bytes);
                    let res = self
                        .fabric
                        .write_offchip(drained.end, self.node(core), row_bytes);
                    self.sdram.latency_of(res.arrival, row_addr.0);
                    res.arrival
                }
                DmaDirection::LocalToRemote => {
                    let drained = self.stores[core].access_bank(t, bank, row_bytes);
                    self.fabric
                        .write_onchip(
                            drained.end,
                            self.node(core),
                            NodeId(
                                row_addr.row() as u16 * self.mesh.cols() + row_addr.col() as u16,
                            ),
                            row_bytes,
                        )
                        .arrival
                }
            };
        }
        self.dma[core].commit(t, rows as u64 * row_bytes);
        self.tracer
            .span(Track::Dma(core as u32), "dma_2d", started, t);
        self.counters[core].add(slot::DMA_BYTES, rows as u64 * row_bytes);
        self.counters[core].bump(slot::DMA_2D);
        t
    }

    /// Host-side program/data load into `core`'s local store: the
    /// image enters through the eLink and rides the cMesh to the core
    /// (which sits in reset — it is stalled, not busy). Returns the
    /// completion time.
    pub fn host_load(&mut self, core: CoreId, src: GlobalAddr, bytes: u64) -> Cycle {
        let begun = self.t[core];
        let r = self.fabric.elink_request(self.t[core], bytes + 8);
        self.sdram.latency_of(r.end, src.0);
        let res =
            self.fabric
                .cmesh
                .transfer(r.end, self.fabric.elink_node(), self.node(core), bytes + 8);
        let landed = self.stores[core].access_bank(res.arrival, 0, bytes);
        self.stall_until(core, landed.end);
        self.tracer
            .span(Track::Host, "host_load", begun, landed.end);
        let c = &mut self.counters[core];
        c.bump(slot::HOST_LOAD);
        c.add(slot::HOST_LOAD_BYTES, bytes);
        landed.end
    }

    // ---- timers ----------------------------------------------------------------

    /// Arm ctimer `ch` (0 or 1) of `core` at the core's current time.
    pub fn timer_start(&mut self, core: CoreId, ch: usize) {
        self.timers[core][ch] = Some(self.t[core]);
    }

    /// Read-and-stop ctimer `ch`: cycles since [`Chip::timer_start`].
    ///
    /// # Panics
    /// If the timer was never started.
    pub fn timer_stop(&mut self, core: CoreId, ch: usize) -> Cycle {
        let started = self.timers[core][ch]
            .take()
            .expect("timer_stop without timer_start");
        self.t[core] - started
    }

    // ---- synchronisation -----------------------------------------------------

    /// Flag-based consumer wait: `core` spins on the flag word until
    /// `ready` (a delivery time returned by [`Chip::write_remote`]).
    /// The poll loop retires one check every `flag_poll_cycles` for as
    /// long as the flag stays down (capped at `flag_poll_max_polls`,
    /// minimum one check), so a long wait costs proportionally more
    /// energy than a hit — but the core's cursor still lands exactly
    /// where a single-check model would put it, `max(now + one poll,
    /// ready)`, because the charged polls fit inside the wait.
    ///
    /// # Panics
    /// If `ready` is the [`Chip::DROPPED`] sentinel. This is a hard
    /// assert (not debug-only): letting the sentinel through would
    /// stall the core cursor to `u64::MAX`, after which every later
    /// `+ Cycle(...)` on that cursor wraps around in release builds
    /// and silently corrupts the timeline.
    pub fn wait_flag(&mut self, core: CoreId, ready: Cycle) {
        assert!(
            ready != Chip::DROPPED,
            "wait_flag on a dropped flag write; use Chip::send_reliable \
             for fault-tolerant signalling"
        );
        let from = self.t[core];
        let waited = ready.saturating_sub(from).0;
        let polls = (waited / self.params.flag_poll_cycles.max(1))
            .clamp(1, self.params.flag_poll_max_polls.max(1));
        self.spend(core, Cycle(polls * self.params.flag_poll_cycles));
        self.stall_until(core, ready);
        self.tracer
            .span(Track::Core(core as u32), "wait_flag", from, self.t[core]);
        let c = &mut self.counters[core];
        c.bump(slot::FLAG_WAIT);
        c.add(slot::FLAG_POLLS, polls);
        // Each poll iteration is a local load + compare on the IALU/LS
        // pipe; charge it so spin time shows up in the energy account.
        c.add(slot::IALU_LS_INSTR, polls);
    }

    /// Barrier across `cores`: every participant advances to the
    /// latest cursor plus the barrier cost.
    pub fn barrier(&mut self, cores: &[CoreId]) {
        let latest = cores
            .iter()
            .map(|&c| self.t[c])
            .max()
            .unwrap_or(Cycle::ZERO);
        let release = latest + Cycle(self.params.barrier_base_cycles);
        for &c in cores {
            let from = self.t[c];
            self.stall_until(c, release);
            self.tracer
                .span(Track::Core(c as u32), "barrier", from, self.t[c]);
            self.counters[c].bump(slot::BARRIER);
        }
    }

    // ---- phase-scoped statistics -----------------------------------------------

    /// Merged operation counters across all cores.
    fn merged_counters(&self) -> Counters {
        let mut merged = Counters::new();
        for c in &self.counters {
            c.merge_into(&mut merged);
        }
        merged
    }

    /// Open a named observation phase (a merge iteration, a pipeline
    /// stage) at the current makespan cursor. Phases are strictly
    /// sequential — close the previous one with [`Chip::phase_end`]
    /// first.
    pub fn phase_begin(&mut self, name: &str) {
        // Phase boundary: drain the meshes' scratch statistics into
        // their totals (getters merge both sides, so this is purely a
        // batching bound — see `MeshNetwork::flush_stats`).
        self.fabric.flush_stats();
        let now = self.elapsed();
        self.phases.begin(name, now, self.merged_counters());
        let e0 = self.energy();
        self.mark_power(now, e0);
        self.phase_energy0 = e0;
        self.phase_elink0 = self.fabric.elink.busy_cycles();
        self.phase_sdram0 = self.sdram.busy_cycles();
        self.phase_busy0 = self.busy.iter().copied().fold(Cycle::ZERO, |a, b| a + b);
        self.phase_mesh0 = self.mesh_snapshot();
    }

    /// Record a power-sampling mark: the cumulative energy breakdown at
    /// a phase boundary. Consecutive identical marks are deduplicated so
    /// back-to-back phases don't inject zero-span epochs.
    fn mark_power(&mut self, at: Cycle, energy: EnergyBreakdown) {
        if self.power_marks.last() != Some(&(at, energy)) {
            self.power_marks.push((at, energy));
        }
    }

    fn mesh_snapshot(&self) -> MeshSnapshot {
        let f = &self.fabric;
        let mut link_busy = f.cmesh.link_busy_vec();
        link_busy.extend(f.rmesh.link_busy_vec());
        link_busy.extend(f.xmesh.link_busy_vec());
        MeshSnapshot {
            cmesh_byte_hops: f.cmesh.byte_hops(),
            rmesh_byte_hops: f.rmesh.byte_hops(),
            xmesh_byte_hops: f.xmesh.byte_hops(),
            transfers: f.cmesh.transfers() + f.rmesh.transfers() + f.xmesh.transfers(),
            link_busy,
        }
    }

    /// Attach a gauge (occupancy, queue depth, …) to the open phase.
    pub fn phase_metric(&mut self, key: &str, value: f64) {
        self.phases.metric(key, value);
    }

    /// Close the open phase at the current makespan cursor, recording
    /// the energy and eLink activity it accounted for.
    pub fn phase_end(&mut self) {
        self.fabric.flush_stats();
        let e_now = self.energy();
        let denergy = e_now.delta_since(&self.phase_energy0);
        let elink = self
            .fabric
            .elink
            .busy_cycles()
            .saturating_sub(self.phase_elink0);
        let sdram_busy = self.sdram.busy_cycles().saturating_sub(self.phase_sdram0);
        let core_busy = self
            .busy
            .iter()
            .copied()
            .fold(Cycle::ZERO, |a, b| a + b)
            .saturating_sub(self.phase_busy0);
        self.phases.metric("energy_j", denergy.total_j());
        self.phases.metric("elink_busy_cycles", elink.raw() as f64);
        self.phases
            .metric("sdram_busy_cycles", sdram_busy.raw() as f64);

        // Component-resolved energy deltas, smuggled through reserved
        // `power::` keys that report() lifts into the phase's
        // PhasePower entry (and strips from the metric map).
        for (name, joules) in denergy.components() {
            self.phases.metric(&format!("power::{name}_j"), joules);
        }
        self.phases
            .metric("power::busy_cycles", core_busy.raw() as f64);

        // Mesh deltas since phase_begin, smuggled through reserved
        // metric keys that report() lifts into PhaseRecord::mesh.
        let now_mesh = self.mesh_snapshot();
        let m0 = &self.phase_mesh0;
        self.phases.metric(
            "mesh::cmesh_byte_hops",
            (now_mesh.cmesh_byte_hops - m0.cmesh_byte_hops) as f64,
        );
        self.phases.metric(
            "mesh::rmesh_byte_hops",
            (now_mesh.rmesh_byte_hops - m0.rmesh_byte_hops) as f64,
        );
        self.phases.metric(
            "mesh::xmesh_byte_hops",
            (now_mesh.xmesh_byte_hops - m0.xmesh_byte_hops) as f64,
        );
        self.phases.metric(
            "mesh::transfers",
            (now_mesh.transfers - m0.transfers) as f64,
        );
        let busy_delta: u64 = now_mesh
            .link_busy
            .iter()
            .zip(&m0.link_busy)
            .map(|(now, was)| now.saturating_sub(*was).raw())
            .sum();
        self.phases
            .metric("mesh::link_busy_cycles", busy_delta as f64);
        let max_link_delta = now_mesh
            .link_busy
            .iter()
            .zip(&m0.link_busy)
            .map(|(now, was)| now.saturating_sub(*was).raw())
            .max()
            .unwrap_or(0);

        let (now, merged) = (self.elapsed(), self.merged_counters());
        // Like per-phase eLink utilisation, not asserted ≤ 1: link
        // reservations made in this phase can extend past its end.
        let span_cycles = self
            .phases
            .open_start()
            .map_or(0, |s| now.saturating_sub(s).raw());
        let busiest = if span_cycles > 0 {
            max_link_delta as f64 / span_cycles as f64
        } else {
            0.0
        };
        self.phases
            .metric("mesh::busiest_link_utilization", busiest);
        self.phases.end(now, &merged);
        self.mark_power(now, e_now);

        // Run-track span + cumulative-energy sample for the timeline.
        if self.tracer.is_enabled() {
            if let Some(span) = self.phases.spans().last() {
                self.tracer.span(
                    Track::Run,
                    format!("{}[{}]", span.name, span.index),
                    span.start,
                    span.start + span.cycles(),
                );
                self.tracer
                    .counter(Track::Run, "energy_j", now, e_now.total_j());
                // Per-component average power over the phase, rendered
                // as counter tracks by the Chrome trace export.
                let seconds = TimeSpan::new(span.cycles(), self.params.clock).seconds();
                for (name, joules) in denergy.components() {
                    let watts = if seconds > 0.0 { joules / seconds } else { 0.0 };
                    self.tracer
                        .counter(Track::Run, format!("power_{name}_w"), now, watts);
                }
            }
        }
    }

    // ---- results ---------------------------------------------------------------

    /// Latest cursor across all cores — the makespan.
    pub fn elapsed(&self) -> Cycle {
        self.t.iter().copied().max().unwrap_or(Cycle::ZERO)
    }

    /// Makespan as a wall-time span.
    pub fn elapsed_span(&self) -> TimeSpan {
        TimeSpan::new(self.elapsed(), self.params.clock)
    }

    /// Busy cycles of `core`.
    pub fn busy(&self, core: CoreId) -> Cycle {
        self.busy[core]
    }

    /// Modelled energy for the run so far.
    pub fn energy(&self) -> EnergyBreakdown {
        EnergyModel::new(&self.params).evaluate(self)
    }

    /// Produce a run record labelled `label`, counting `cores_used`
    /// toward utilisation figures. Kernel/mapping/platform identity is
    /// stamped later by the harness; closed phases become
    /// [`PhaseRecord`]s.
    pub fn report(&self, label: &str, cores_used: usize) -> RunRecord {
        assert!(
            !self.phases.is_open(),
            "cannot report with a phase still open"
        );
        let mut record = RunRecord::new(label, self.elapsed_span());
        record.platform = "epiphany".to_string();
        record.cores_used = cores_used;
        record.energy = self.energy();
        record.counters = self.merged_counters();
        record.busiest_link_cycles = self
            .fabric
            .cmesh
            .max_link_busy()
            .max(self.fabric.xmesh.max_link_busy());
        record.elink_busy_cycles = self.fabric.elink.busy_cycles();
        record.sdram_row_hit_rate = self.sdram.row_hit_rate();
        record.faults = self.faults.totals();

        // Aggregate link statistics — present even with tracing off.
        let f = &self.fabric;
        record.counters.add("cmesh_byte_hops", f.cmesh.byte_hops());
        record.counters.add("rmesh_byte_hops", f.rmesh.byte_hops());
        record.counters.add("xmesh_byte_hops", f.xmesh.byte_hops());
        record.counters.add(
            "mesh_byte_hops",
            f.cmesh.byte_hops() + f.rmesh.byte_hops() + f.xmesh.byte_hops(),
        );
        record.counters.add(
            "mesh_transfers",
            f.cmesh.transfers() + f.rmesh.transfers() + f.xmesh.transfers(),
        );
        record
            .counters
            .add("mesh_link_busy_cycles", f.total_link_busy().raw());
        let mut lat = |name_p50: &'static str,
                       name_p95: &'static str,
                       name_max: &'static str,
                       h: &Histogram| {
            if h.count() > 0 {
                record.counters.add(name_p50, h.quantile(0.5).unwrap_or(0));
                record.counters.add(name_p95, h.quantile(0.95).unwrap_or(0));
                record.counters.add(name_max, h.max().unwrap_or(0));
            }
        };
        lat(
            "cmesh_lat_p50",
            "cmesh_lat_p95",
            "cmesh_lat_max",
            &f.cmesh.latency(),
        );
        lat(
            "rmesh_lat_p50",
            "rmesh_lat_p95",
            "rmesh_lat_max",
            &f.rmesh.latency(),
        );
        lat(
            "xmesh_lat_p50",
            "xmesh_lat_p95",
            "xmesh_lat_max",
            &f.xmesh.latency(),
        );
        record.mesh_heatmap = Some(MeshHeatmap {
            cols: self.mesh.cols() as usize,
            rows: self.mesh.rows() as usize,
            links: f.link_stats(self.elapsed()),
        });
        // Run-level eLink utilisation is bounded by construction (the
        // chip is quiescent at report time), so the asserting path in
        // `RunRecord::elink_utilization` applies. Exercise it here so
        // accounting bugs surface at the producer.
        let _ = record.elink_utilization();
        let mut phase_powers = Vec::with_capacity(self.phases.spans().len());
        record.phases = self
            .phases
            .spans()
            .iter()
            .map(|span| {
                let mut metrics = span.metrics.clone();
                let energy_j = metrics.remove("energy_j").unwrap_or(0.0);
                let elink_busy = metrics.remove("elink_busy_cycles").unwrap_or(0.0);
                let mesh = MeshUtilization {
                    cmesh_byte_hops: metrics.remove("mesh::cmesh_byte_hops").unwrap_or(0.0) as u64,
                    rmesh_byte_hops: metrics.remove("mesh::rmesh_byte_hops").unwrap_or(0.0) as u64,
                    xmesh_byte_hops: metrics.remove("mesh::xmesh_byte_hops").unwrap_or(0.0) as u64,
                    transfers: metrics.remove("mesh::transfers").unwrap_or(0.0) as u64,
                    link_busy_cycles: metrics.remove("mesh::link_busy_cycles").unwrap_or(0.0)
                        as u64,
                    busiest_link_utilization: metrics
                        .remove("mesh::busiest_link_utilization")
                        .unwrap_or(0.0),
                };
                // Lift the component-resolved energy deltas smuggled by
                // phase_end into the phase's power entry.
                let denergy = EnergyBreakdown {
                    compute_j: metrics.remove("power::compute_j").unwrap_or(0.0),
                    sram_j: metrics.remove("power::sram_j").unwrap_or(0.0),
                    mesh_j: metrics.remove("power::mesh_j").unwrap_or(0.0),
                    elink_j: metrics.remove("power::elink_j").unwrap_or(0.0),
                    sdram_j: metrics.remove("power::sdram_j").unwrap_or(0.0),
                    static_j: metrics.remove("power::static_j").unwrap_or(0.0),
                };
                let core_busy = metrics.remove("power::busy_cycles").unwrap_or(0.0);
                for (name, delta) in span.counters.iter() {
                    metrics.insert(name.to_string(), delta as f64);
                }
                // Computed without `utilization()`'s over-unity assert:
                // a posted external write reserves eLink time that can
                // extend past the phase-end cursor, so the busy delta
                // attributed to a short phase may legitimately exceed
                // its span (the tail drains during a later phase).
                let span_cycles = span.cycles().raw() as f64;
                let elink_utilization = if span_cycles > 0.0 {
                    elink_busy / span_cycles
                } else {
                    0.0
                };
                // Stall-vs-compute split: busy cycles over the phase's
                // core-cycle budget. Only cores actually used count —
                // idle cores are clock-gated and cost static power only.
                let compute_fraction = if span_cycles > 0.0 && cores_used > 0 {
                    (core_busy / (cores_used as f64 * span_cycles)).min(1.0)
                } else {
                    0.0
                };
                let stall_fraction = if span_cycles > 0.0 {
                    1.0 - compute_fraction
                } else {
                    0.0
                };
                phase_powers.push(PhasePower {
                    name: span.name.clone(),
                    index: span.index,
                    energy: denergy,
                    attribution: PhaseAttribution::attribute(
                        &denergy,
                        mesh.busiest_link_utilization,
                        compute_fraction,
                        stall_fraction,
                    ),
                });
                PhaseRecord {
                    name: span.name.clone(),
                    index: span.index,
                    start_ms: TimeSpan::new(span.start, self.params.clock).millis(),
                    time_ms: TimeSpan::new(span.cycles(), self.params.clock).millis(),
                    energy_j,
                    elink_utilization,
                    mesh,
                    metrics,
                }
            })
            .collect();

        // Power timeline: deltas between consecutive boundary marks,
        // closed by a final epoch up to the makespan. The telescoping
        // sum equals the run energy exactly (modulo the non-negativity
        // clamp in delta_since, which only fires on a non-monotone
        // model).
        let mut timeline = PowerTimeline::new();
        let mut prev: (Cycle, EnergyBreakdown) = (Cycle::ZERO, EnergyBreakdown::default());
        for &(at, e) in &self.power_marks {
            timeline.push(PowerEpoch {
                start: prev.0,
                end: at,
                energy: e.delta_since(&prev.1),
            });
            prev = (at, e);
        }
        let makespan = self.elapsed();
        timeline.push(PowerEpoch {
            start: prev.0,
            end: makespan,
            energy: record.energy.delta_since(&prev.1),
        });
        record.power = Some(PowerRecord {
            timeline,
            phases: phase_powers,
        });
        record
    }

    /// Clear all state for a fresh run on the same chip.
    pub fn reset(&mut self) {
        self.fabric.reset();
        self.sdram.reset();
        for s in &mut self.stores {
            s.reset();
        }
        for d in &mut self.dma {
            d.reset();
        }
        self.t.iter_mut().for_each(|t| *t = Cycle::ZERO);
        self.busy.iter_mut().for_each(|b| *b = Cycle::ZERO);
        self.counters.iter_mut().for_each(CoreCounters::clear);
        self.timers.iter_mut().for_each(|t| *t = [None; 2]);
        self.phases.clear();
        self.phase_energy0 = EnergyBreakdown::default();
        self.phase_elink0 = Cycle::ZERO;
        self.phase_sdram0 = Cycle::ZERO;
        self.phase_busy0 = Cycle::ZERO;
        self.phase_mesh0 = MeshSnapshot::default();
        self.power_marks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Chip {
        Chip::e16g3(EpiphanyParams::default())
    }

    fn ext(off: u32) -> GlobalAddr {
        GlobalAddr::external(off)
    }

    #[test]
    fn compute_advances_only_that_core() {
        let mut c = chip();
        c.compute(
            0,
            &OpCounts {
                flops: 800,
                ..OpCounts::default()
            },
        );
        assert_eq!(c.now(0), Cycle(1000)); // 800 / 0.8 pairing
        assert_eq!(c.now(1), Cycle::ZERO);
        assert_eq!(c.busy(0), Cycle(1000));
    }

    #[test]
    fn remote_read_stalls_remote_write_does_not() {
        let mut c = chip();
        let t0 = c.now(0);
        c.write_remote(0, 15, 64);
        let after_write = c.now(0);
        // Issue cost only: 8 dwords = 8 cycles.
        assert_eq!(after_write - t0, Cycle(8));

        let mut c2 = chip();
        c2.read_remote(0, 15, 64);
        // Round trip across 6+6 hops dwarfs the posted-write issue cost.
        assert!(c2.now(0) > after_write);
    }

    #[test]
    fn external_read_is_much_slower_than_local_compute() {
        let mut c = chip();
        c.read_external(0, ext(0), 8);
        let ext_cost = c.now(0);
        let mut c2 = chip();
        c2.compute(
            0,
            &OpCounts {
                flops: 8,
                ..OpCounts::default()
            },
        );
        assert!(
            ext_cost.raw() > 10 * c2.now(0).raw(),
            "off-chip read {ext_cost} should dwarf 8 flops {:?}",
            c2.now(0)
        );
    }

    #[test]
    fn external_writes_post_until_buffer_fills() {
        let mut c = chip();
        // First small write: issue cost only.
        c.write_external(0, ext(0), 8);
        assert_eq!(c.now(0), Cycle(1));
        // Hammer the eLink; eventually backpressure stalls the core
        // beyond pure issue cost.
        for i in 0..200u32 {
            c.write_external(0, ext(8 * (i + 1)), 8);
        }
        // Pure issue would be 201 cycles; the eLink admits one 16-byte
        // wire transaction every 2 cycles, so backpressure pushes the
        // core toward the link rate.
        assert!(
            c.now(0).raw() > 320,
            "no backpressure observed: {:?}",
            c.now(0)
        );
    }

    #[test]
    fn sixteen_cores_share_the_elink() {
        let mut c = chip();
        // One core streams 64 KB off chip.
        let solo = {
            let mut c1 = chip();
            for i in 0..64u32 {
                c1.write_external(0, ext(i * 1024), 1024);
            }
            c1.now(0)
        };
        // Sixteen cores each stream 64 KB off chip.
        for i in 0..64u32 {
            for core in 0..16 {
                c.write_external(core, ext(i * 1024 + core as u32), 1024);
            }
        }
        let shared = (0..16).map(|k| c.now(k)).max().unwrap();
        // A lone core is already issue-limited near the eLink rate, so
        // sixteen cores cannot scale: expect heavy serialisation (the
        // aggregate demand is 16x the link capacity).
        assert!(
            shared.raw() > 4 * solo.raw(),
            "eLink sharing should serialise cores: solo={solo}, shared={shared}"
        );
    }

    #[test]
    fn dma_overlaps_with_compute() {
        let mut c = chip();
        let done = c.dma_start(0, DmaDirection::ExternalToLocal, ext(0), 2, 8192);
        let after_setup = c.now(0);
        assert!(after_setup < done, "setup should return before completion");
        // Core computes while DMA flies.
        c.compute(
            0,
            &OpCounts {
                flops: 100,
                ..OpCounts::default()
            },
        );
        c.dma_wait(0, done);
        assert!(c.now(0) >= done);
        // The compute time was hidden inside the DMA time.
        assert!(c.now(0) == done || c.now(0) < done + Cycle(200));
    }

    #[test]
    fn back_to_back_dma_serialises_on_engine() {
        let mut c = chip();
        let d1 = c.dma_start(0, DmaDirection::ExternalToLocal, ext(0), 2, 4096);
        let d2 = c.dma_start(0, DmaDirection::ExternalToLocal, ext(8192), 3, 4096);
        assert!(d2 > d1);
    }

    #[test]
    fn barrier_aligns_cursors() {
        let mut c = chip();
        c.compute(
            0,
            &OpCounts {
                flops: 1000,
                ..OpCounts::default()
            },
        );
        c.compute(
            1,
            &OpCounts {
                flops: 10,
                ..OpCounts::default()
            },
        );
        let before = c.now(0);
        c.barrier(&[0, 1]);
        assert_eq!(c.now(0), c.now(1));
        assert!(c.now(1) >= before);
    }

    #[test]
    fn wait_flag_blocks_until_delivery() {
        let mut c = chip();
        c.compute(
            0,
            &OpCounts {
                flops: 500,
                ..OpCounts::default()
            },
        );
        let ready = c.write_remote(0, 1, 128);
        c.wait_flag(1, ready);
        assert!(c.now(1) >= ready);
    }

    #[test]
    fn wait_flag_charges_polls_proportional_to_the_wait() {
        let p = EpiphanyParams::default();
        // Short wait: the flag is already up — exactly one poll.
        let mut c = chip();
        c.wait_flag(0, Cycle::ZERO);
        assert_eq!(c.counters(0).get("flag_polls"), 1);
        assert_eq!(c.busy(0), Cycle(p.flag_poll_cycles));

        // Medium wait: the consumer spins, one poll per poll period.
        let mut c = chip();
        c.wait_flag(0, Cycle(20 * p.flag_poll_cycles));
        assert_eq!(c.counters(0).get("flag_polls"), 20);
        assert_eq!(c.busy(0), Cycle(20 * p.flag_poll_cycles));
        // The polls fit inside the wait: the cursor still lands on
        // the delivery time.
        assert_eq!(c.now(0), Cycle(20 * p.flag_poll_cycles));

        // Long wait: the poll charge saturates at the cap.
        let mut c = chip();
        c.wait_flag(0, Cycle(1_000_000));
        assert_eq!(c.counters(0).get("flag_polls"), p.flag_poll_max_polls);
        assert_eq!(c.now(0), Cycle(1_000_000), "makespan must not change");
        assert!(c.busy(0) < Cycle(1_000_000));
    }

    #[test]
    fn wait_flag_spin_shows_up_in_compute_energy() {
        let mut idle = chip();
        idle.wait_flag(0, Cycle::ZERO);
        let mut spinning = chip();
        spinning.wait_flag(0, Cycle(100));
        assert!(
            spinning.energy().compute_j > idle.energy().compute_j,
            "a longer spin must cost more energy"
        );
    }

    #[test]
    fn idle_cycles_are_not_busy() {
        let mut c = chip();
        c.read_external(0, ext(0), 8);
        // Stall time is cursor-only: busy << now.
        assert!(c.busy(0) < c.now(0));
    }

    #[test]
    fn report_aggregates_counters() {
        let mut c = chip();
        c.compute(
            0,
            &OpCounts {
                flops: 10,
                loads: 4,
                ..OpCounts::default()
            },
        );
        c.compute(
            1,
            &OpCounts {
                flops: 5,
                ..OpCounts::default()
            },
        );
        c.write_remote(0, 1, 32);
        let r = c.report("test", 2);
        assert_eq!(r.counters.get("fpu_instr"), 15);
        assert_eq!(r.counters.get("remote_write"), 1);
        assert!(r.elapsed.seconds() > 0.0);
        assert!(r.energy.total_j() > 0.0);
        assert_eq!(r.platform, "epiphany");
    }

    #[test]
    fn mesh_sizing_covers_every_core_count() {
        for n in 1..=64usize {
            let (cols, rows) = Chip::mesh_for_cores(n);
            assert!(
                cols as usize * rows as usize >= n,
                "{n} cores need coverage"
            );
            assert!(cols <= 2 * rows, "aspect bound violated for {n}");
            // Minimality: shrinking either dimension must lose coverage.
            assert!(
                ((cols as usize - 1) * rows as usize) < n
                    || (cols as usize * (rows as usize - 1)) < n,
                "{n} cores: {cols}x{rows} is not minimal"
            );
            let chip = Chip::with_cores(EpiphanyParams::default(), n);
            assert!(chip.cores() >= n);
            if n <= 16 {
                // Paper fidelity: small runs stay on the E16G3 mesh.
                assert_eq!(chip.cores(), 16);
            }
        }
        // The old ad-hoc sizing forced square meshes: 17 cores got 25.
        assert_eq!(Chip::mesh_for_cores(17), (6, 3));
        assert_eq!(Chip::mesh_for_cores(32), (8, 4));
        assert_eq!(Chip::mesh_for_cores(64), (8, 8));
    }

    #[test]
    fn from_params_builds_the_declared_mesh() {
        let c = Chip::from_params(EpiphanyParams::e64());
        assert_eq!(c.mesh_dims(), (8, 8));
        assert_eq!(c.cores(), 64);
        assert_eq!((c.params().mesh_cols, c.params().mesh_rows), (8, 8));
        // An explicit geometry overrides (and re-syncs) the params.
        let c = Chip::new(EpiphanyParams::e64(), 4, 4);
        assert_eq!(c.mesh_dims(), (4, 4));
        assert_eq!((c.params().mesh_cols, c.params().mesh_rows), (4, 4));
    }

    #[test]
    fn subgrid_embeds_the_small_mesh_in_the_big_one() {
        let c = Chip::from_params(EpiphanyParams::e64());
        // 16 cores on an 8x8 chip: the 4x4 corner, row-major in the
        // 8-wide id space.
        let ids = c.subgrid_cores(16);
        assert_eq!(
            ids,
            vec![0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19, 24, 25, 26, 27]
        );
        // Neighbour relations match a dedicated 4x4 chip: horizontal
        // neighbours stay adjacent, vertical neighbours are one row
        // (8 ids) apart but still distance 1 on the mesh.
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                let d64 = {
                    let (ax, ay) = (a % 8, a / 8);
                    let (bx, by) = (b % 8, b / 8);
                    ax.abs_diff(bx) + ay.abs_diff(by)
                };
                let d16 = {
                    let (ax, ay) = (i % 4, i / 4);
                    let (bx, by) = (j % 4, j / 4);
                    ax.abs_diff(bx) + ay.abs_diff(by)
                };
                assert_eq!(d64, d16, "hop distance differs for slot pair ({i},{j})");
            }
        }
        // Non-rectangular counts take a prefix of the covering shape.
        assert_eq!(c.subgrid_cores(5), vec![0, 1, 2, 8, 9]);
        // The whole chip is its own subgrid.
        assert_eq!(c.subgrid_cores(64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn subgrid_rejects_oversized_requests() {
        let _ = chip().subgrid_cores(17);
    }

    #[test]
    fn phases_record_time_energy_and_counter_deltas() {
        let mut c = chip();
        c.phase_begin("merge");
        c.compute(
            0,
            &OpCounts {
                flops: 100,
                ..OpCounts::default()
            },
        );
        c.phase_metric("occupancy", 0.5);
        c.phase_end();
        c.phase_begin("merge");
        c.compute(
            0,
            &OpCounts {
                flops: 300,
                ..OpCounts::default()
            },
        );
        c.write_external(0, ext(0), 64);
        c.phase_end();

        let r = c.report("phased", 1);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "merge");
        assert_eq!((r.phases[0].index, r.phases[1].index), (0, 1));
        assert_eq!(r.phases[0].metrics.get("occupancy"), Some(&0.5));
        // Counter deltas are per-phase, not cumulative.
        assert_eq!(r.phases[0].metrics.get("fpu_instr"), Some(&100.0));
        assert_eq!(r.phases[1].metrics.get("fpu_instr"), Some(&300.0));
        assert!(r.phases[1].start_ms >= r.phases[0].start_ms + r.phases[0].time_ms - 1e-12);
        assert!(r.phases[0].energy_j > 0.0);
        assert!(
            r.phases[1].elink_utilization > 0.0,
            "external write drives the eLink"
        );
        // Phase energy must sum to no more than the run total.
        let phase_sum: f64 = r.phases.iter().map(|p| p.energy_j).sum();
        assert!(phase_sum <= r.energy.total_j() + 1e-12);
    }

    #[test]
    fn heatmap_sums_to_total_byte_hops() {
        let mut c = chip();
        c.phase_begin("merge");
        c.write_remote(0, 15, 512);
        c.read_remote(3, 12, 256);
        c.write_external(5, ext(0), 1024);
        c.read_external(9, ext(4096), 128);
        c.phase_end();
        let r = c.report("mesh", 16);

        let map = r.mesh_heatmap.as_ref().expect("heatmap present");
        assert_eq!((map.cols, map.rows), (4, 4));
        assert_eq!(
            map.total_byte_hops(),
            r.counters.get("mesh_byte_hops"),
            "heatmap must sum to the run's total byte-hops"
        );
        assert_eq!(
            r.counters.get("mesh_byte_hops"),
            r.counters.get("cmesh_byte_hops")
                + r.counters.get("rmesh_byte_hops")
                + r.counters.get("xmesh_byte_hops")
        );
        assert!(r.counters.get("cmesh_lat_p50") > 0);
        // Quantiles are bucket midpoints clamped to the observed range:
        // monotone in q and never above the exact max.
        assert!(r.counters.get("cmesh_lat_p95") >= r.counters.get("cmesh_lat_p50"));
        assert!(r.counters.get("cmesh_lat_max") >= r.counters.get("cmesh_lat_p95"));
        assert!(r.counters.get("cmesh_lat_max") > 0);

        // The single phase saw all of the run's mesh traffic.
        let pm = &r.phases[0].mesh;
        assert!(pm.is_modelled());
        assert_eq!(pm.total_byte_hops(), r.counters.get("mesh_byte_hops"));
        assert_eq!(pm.transfers, r.counters.get("mesh_transfers"));
        assert!(pm.busiest_link_utilization > 0.0);
        // Reserved keys were lifted out of the free-form metrics.
        assert!(r.phases[0].metrics.keys().all(|k| !k.starts_with("mesh::")));
    }

    #[test]
    fn phase_mesh_deltas_are_per_phase() {
        let mut c = chip();
        c.phase_begin("a");
        c.write_remote(0, 3, 256);
        c.phase_end();
        c.phase_begin("b");
        c.write_remote(4, 7, 512);
        c.write_remote(8, 11, 512);
        c.phase_end();
        let r = c.report("two", 16);
        let (a, b) = (&r.phases[0].mesh, &r.phases[1].mesh);
        assert!(b.cmesh_byte_hops > a.cmesh_byte_hops);
        assert_eq!(
            a.cmesh_byte_hops + b.cmesh_byte_hops,
            r.counters.get("cmesh_byte_hops")
        );
        assert_eq!(a.transfers + b.transfers, r.counters.get("mesh_transfers"));
    }

    #[test]
    fn tracer_threads_through_the_whole_machine() {
        use desim::trace::{EventKind, MeshKind};
        let mut c = chip();
        let t = Tracer::enabled();
        c.set_tracer(t.clone());
        c.phase_begin("merge");
        c.compute(
            2,
            &OpCounts {
                flops: 100,
                ..OpCounts::default()
            },
        );
        c.write_remote(0, 15, 256);
        c.read_external(1, ext(0), 64);
        let done = c.dma_start(3, DmaDirection::ExternalToLocal, ext(8192), 2, 4096);
        c.dma_wait(3, done);
        c.phase_end();

        let events = t.snapshot();
        let has = |track: Track| events.iter().any(|e| e.track == track);
        assert!(has(Track::Core(2)), "compute span");
        assert!(has(Track::Core(1)), "external-read stall span");
        assert!(has(Track::Dma(3)), "dma engine span");
        assert!(has(Track::Run), "phase span");
        assert!(has(Track::ELink), "eLink occupancy");
        assert!(
            events.iter().any(|e| matches!(
                e.track,
                Track::MeshLink {
                    mesh: MeshKind::CMesh,
                    ..
                }
            )),
            "cMesh link spans"
        );
        assert!(
            events
                .iter()
                .any(|e| e.track == Track::Run && matches!(e.kind, EventKind::Counter { .. })),
            "energy counter sample"
        );
    }

    #[test]
    fn disabled_tracer_changes_no_results() {
        let run = |traced: bool| {
            let mut c = chip();
            if traced {
                c.set_tracer(Tracer::enabled());
            }
            c.phase_begin("m");
            c.compute(
                0,
                &OpCounts {
                    flops: 500,
                    ..OpCounts::default()
                },
            );
            c.write_external(0, ext(0), 512);
            c.phase_end();
            let r = c.report("x", 1);
            (r.elapsed.cycles, r.counters.get("mesh_byte_hops"))
        };
        assert_eq!(run(false), run(true), "tracing must not perturb timing");
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn nested_phases_are_rejected() {
        let mut c = chip();
        c.phase_begin("a");
        c.phase_begin("b");
    }

    #[test]
    fn reset_clears_phases() {
        let mut c = chip();
        c.phase_begin("warm");
        c.compute(
            0,
            &OpCounts {
                flops: 1,
                ..OpCounts::default()
            },
        );
        c.phase_end();
        c.reset();
        assert!(c.report("clean", 1).phases.is_empty());
    }

    #[test]
    fn dma_2d_costs_per_row_latency() {
        // Same bytes, contiguous vs strided: the strided descriptor
        // pays an SDRAM access per row and finishes later.
        let mut c1 = chip();
        let flat = c1.dma_start(0, DmaDirection::ExternalToLocal, ext(0), 2, 8192);
        let mut c2 = chip();
        let strided = c2.dma_start_2d(
            0,
            DmaDirection::ExternalToLocal,
            ext(0),
            2,
            8,
            1024,
            100_000, // far apart: every row misses the open row
        );
        assert!(strided > flat, "strided {strided} vs contiguous {flat}");
        assert_eq!(c2.counters(0).get("dma_2d"), 1);
        assert_eq!(c2.counters(0).get("dma_bytes"), 8192);
    }

    #[test]
    fn timers_measure_core_cycles() {
        let mut c = chip();
        c.timer_start(0, 0);
        c.compute(
            0,
            &OpCounts {
                flops: 800,
                ..OpCounts::default()
            },
        );
        let elapsed = c.timer_stop(0, 0);
        assert_eq!(elapsed, Cycle(1000));
        // Timers are per core and per channel.
        c.timer_start(1, 1);
        c.compute(
            1,
            &OpCounts {
                flops: 80,
                ..OpCounts::default()
            },
        );
        assert_eq!(c.timer_stop(1, 1), Cycle(100));
    }

    #[test]
    #[should_panic(expected = "without timer_start")]
    fn stopping_an_unarmed_timer_panics() {
        let mut c = chip();
        let _ = c.timer_stop(0, 0);
    }

    #[test]
    fn host_load_streams_through_the_elink() {
        let mut c = chip();
        let done = c.host_load(5, ext(0), 16 * 1024);
        // 16 KB at 8 B/cycle is at least 2k cycles.
        assert!(done.raw() >= 2000);
        assert_eq!(c.counters(5).get("host_load_bytes"), 16 * 1024);
        // The core waited (stalled), it did not burn busy cycles.
        assert_eq!(c.busy(5), Cycle::ZERO);
        assert!(c.now(5) >= done);
    }

    #[test]
    fn flag_delay_fault_perturbs_exactly_one_send() {
        use faultsim::{FaultEvent, FaultPlan, FaultState};
        let mut c = chip();
        let baseline = {
            let mut b = chip();
            (b.write_remote(0, 1, 64), b.write_remote(0, 1, 64))
        };
        c.set_faults(FaultState::from_plan(&FaultPlan::from_events(
            0,
            vec![FaultEvent::FlagDelay {
                at: Cycle(0),
                extra: 500,
            }],
        )));
        let first = c.write_remote(0, 1, 64);
        let second = c.write_remote(0, 1, 64);
        assert_eq!(first, baseline.0 + Cycle(500), "armed delay applies once");
        assert_eq!(second, baseline.1, "subsequent sends untouched");
        assert_eq!(c.faults().totals().faults_injected, 1);
    }

    #[test]
    fn send_reliable_recovers_a_dropped_flag() {
        use faultsim::{FaultEvent, FaultPlan, FaultState};
        let p = EpiphanyParams::default();
        let mut c = chip();
        c.set_faults(FaultState::from_plan(&FaultPlan::from_events(
            0,
            vec![FaultEvent::FlagDrop { at: Cycle(0) }],
        )));
        let ready = c.send_reliable(0, 1, 64);
        assert_ne!(ready, Chip::DROPPED);
        // The producer sat out at least one watchdog timeout.
        assert!(c.now(0).raw() >= p.flag_retry_timeout_cycles);
        let totals = c.faults().totals();
        assert_eq!(totals.faults_injected, 1);
        assert_eq!(totals.retries, 1);
        assert!(totals.recovery_cycles >= p.flag_retry_timeout_cycles);
        assert!(totals.recovery_energy_j > 0.0);
        // The consumer can wait on the recovered delivery as usual.
        c.wait_flag(1, ready);
        assert!(c.now(1) >= ready);
        // And the report carries the fault block.
        let r = c.report("recovered", 2);
        assert_eq!(r.faults.retries, 1);
    }

    #[test]
    #[should_panic(expected = "wait_flag on a dropped flag write")]
    fn wait_flag_rejects_the_dropped_sentinel() {
        // Regression: this used to be a debug_assert, so release
        // builds stalled the core cursor to u64::MAX and every later
        // cursor addition wrapped around.
        let mut c = chip();
        c.wait_flag(0, Chip::DROPPED);
    }

    #[test]
    fn saturating_flag_delay_degrades_to_a_drop() {
        // Regression: a huge armed delay used to wrap `arrival +
        // extra` past u64::MAX into a *small* instant, making the
        // flag appear delivered in the past. It now saturates, and a
        // delay that reaches the sentinel is reported as a drop that
        // send_reliable recovers from.
        use faultsim::{FaultEvent, FaultPlan, FaultState};
        let mut c = chip();
        c.set_faults(FaultState::from_plan(&FaultPlan::from_events(
            0,
            vec![FaultEvent::FlagDelay {
                at: Cycle(0),
                extra: u64::MAX,
            }],
        )));
        let ready = c.send_reliable(0, 1, 64);
        assert_ne!(ready, Chip::DROPPED);
        assert!(
            ready.raw() < u64::MAX / 2,
            "recovered delivery must be a real instant, got {ready:?}"
        );
        assert_eq!(c.faults().totals().retries, 1, "recovered via watchdog");
        c.wait_flag(1, ready);
    }

    #[test]
    #[should_panic(expected = "send_reliable")]
    fn send_reliable_gives_up_after_max_retries() {
        use faultsim::{FaultEvent, FaultPlan, FaultState};
        let p = EpiphanyParams {
            flag_retry_max: 2,
            ..Default::default()
        };
        let mut c = Chip::e16g3(p);
        // More drops armed than the retry budget tolerates.
        let drops = (0..8)
            .map(|_| FaultEvent::FlagDrop { at: Cycle(0) })
            .collect();
        c.set_faults(FaultState::from_plan(&FaultPlan::from_events(0, drops)));
        let _ = c.send_reliable(0, 1, 64);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_disabled() {
        use faultsim::{FaultPlan, FaultState};
        let run = |faults: Option<FaultState>| {
            let mut c = chip();
            if let Some(f) = faults {
                c.set_faults(f);
            }
            c.phase_begin("m");
            c.compute(
                0,
                &OpCounts {
                    flops: 500,
                    ..OpCounts::default()
                },
            );
            let ready = c.send_reliable(0, 1, 256);
            c.wait_flag(1, ready);
            c.read_external(2, ext(0), 512);
            c.write_external(3, ext(4096), 512);
            let done = c.dma_start(4, DmaDirection::ExternalToLocal, ext(8192), 2, 4096);
            c.dma_wait(4, done);
            c.barrier(&[0, 1, 2, 3, 4]);
            c.phase_end();
            let r = c.report("x", 5);
            (
                r.elapsed.cycles,
                r.counters.get("mesh_byte_hops"),
                r.energy.total_j().to_bits(),
                r.faults,
            )
        };
        let plain = run(None);
        let armed_but_empty = run(Some(FaultState::from_plan(&FaultPlan::empty(7))));
        assert_eq!(plain, armed_but_empty, "empty plan must not perturb runs");
        assert_eq!(plain.3, desim::FaultRecord::default());
    }

    #[test]
    fn reset_restores_time_zero() {
        let mut c = chip();
        c.compute(
            3,
            &OpCounts {
                flops: 100,
                ..OpCounts::default()
            },
        );
        c.write_external(3, ext(0), 64);
        c.reset();
        assert_eq!(c.elapsed(), Cycle::ZERO);
        assert_eq!(c.counters(3).get("fpu_instr"), 0);
        assert_eq!(c.fabric().elink.busy_cycles(), Cycle::ZERO);
    }

    #[test]
    fn compute_span_is_identical_to_repeated_compute() {
        let ops = OpCounts {
            flops: 37,
            fmas: 12,
            ialu: 11,
            loads: 5,
            stores: 3,
            sqrts: 1,
            ..OpCounts::default()
        };
        for reps in [0u64, 1, 2, 7, 1000] {
            let mut fast = chip();
            fast.compute_span(0, &ops, reps);
            let mut slow = chip();
            for _ in 0..reps {
                slow.compute(0, &ops);
            }
            assert_eq!(fast.now(0), slow.now(0), "reps={reps}");
            assert_eq!(fast.busy(0), slow.busy(0), "reps={reps}");
            let pairs = |c: &Chip| c.counters(0).iter().collect::<Vec<_>>();
            assert_eq!(pairs(&fast), pairs(&slow), "reps={reps}");
            // Energy is priced off the counters, so it must be
            // bit-identical, not merely close.
            assert_eq!(
                fast.energy().total_j().to_bits(),
                slow.energy().total_j().to_bits(),
                "reps={reps}"
            );
        }
    }

    #[test]
    fn compute_span_with_a_tracer_keeps_every_span() {
        let ops = OpCounts {
            flops: 100,
            ..OpCounts::default()
        };
        let tracer = Tracer::enabled();
        let mut traced = chip();
        traced.set_tracer(tracer.clone());
        traced.compute_span(0, &ops, 5);
        // Per-rep fallback: five compute spans on the core track.
        assert_eq!(tracer.event_count(), 5);
        // The fallback still lands the cursor exactly where the
        // closed form does.
        let mut fast = chip();
        fast.compute_span(0, &ops, 5);
        assert_eq!(traced.now(0), fast.now(0));
        assert_eq!(traced.counters(0).get("fpu_instr"), 500);
    }

    /// Every observable the report layer reads must agree between two
    /// chips: cursors, busy cycles, counters, SDRAM behaviour, fabric
    /// statistics and energy (bit-exact — it is priced off the rest).
    fn assert_chips_agree(a: &Chip, b: &Chip, what: &str) {
        assert_eq!(a.now(0), b.now(0), "{what}: cursor");
        assert_eq!(a.busy(0), b.busy(0), "{what}: busy");
        let (ca, cb): (Vec<_>, Vec<_>) = (
            a.counters(0).iter().collect(),
            b.counters(0).iter().collect(),
        );
        assert_eq!(ca, cb, "{what}: counters");
        assert_eq!(a.sdram().accesses(), b.sdram().accesses(), "{what}: sdram");
        assert_eq!(
            a.sdram().row_hit_rate().to_bits(),
            b.sdram().row_hit_rate().to_bits(),
            "{what}: row hits"
        );
        let (fa, fb) = (a.fabric(), b.fabric());
        assert_eq!(fa.elink.free_at(), fb.elink.free_at(), "{what}: elink");
        assert_eq!(fa.elink.busy_cycles(), fb.elink.busy_cycles(), "{what}");
        assert_eq!(fa.elink.served(), fb.elink.served(), "{what}");
        assert_eq!(fa.total_link_busy(), fb.total_link_busy(), "{what}");
        for (ma, mb) in [
            (&fa.rmesh, &fb.rmesh),
            (&fa.cmesh, &fb.cmesh),
            (&fa.xmesh, &fb.xmesh),
        ] {
            assert_eq!(ma.transfers(), mb.transfers(), "{what}: transfers");
            assert_eq!(ma.byte_hops(), mb.byte_hops(), "{what}: byte hops");
            assert_eq!(ma.link_busy_vec(), mb.link_busy_vec(), "{what}: links");
            let (ha, hb) = (ma.latency(), mb.latency());
            assert_eq!(
                (ha.count(), ha.min(), ha.max(), ha.quantile(0.5)),
                (hb.count(), hb.min(), hb.max(), hb.quantile(0.5)),
                "{what}: latency histogram"
            );
        }
        assert_eq!(
            a.energy().total_j().to_bits(),
            b.energy().total_j().to_bits(),
            "{what}: energy"
        );
    }

    #[test]
    fn read_external_run_matches_per_read_loop() {
        // Addresses mixing open-row hits and misses across banks, so
        // per-read SDRAM latencies genuinely vary within the span.
        let addrs: Vec<GlobalAddr> = (0..300u32).map(|i| ext(i * 8 + (i % 5) * 4096)).collect();
        let makes: [fn() -> Chip; 2] = [chip, || Chip::new(EpiphanyParams::e64(), 4, 4)];
        for make in makes {
            let (mut a, mut b) = (make(), make());
            // A posted write first: the eLink is still draining when
            // the span starts, so the run begins on the per-event
            // fallback and absorbs its tail once the port is idle —
            // the exact shape of FFBP's write-back-then-read rows.
            a.write_external(0, ext(1 << 20), 512);
            b.write_external(0, ext(1 << 20), 512);
            for &addr in &addrs {
                a.read_external(0, addr, 8);
            }
            b.read_external_run(0, &addrs, 8);
            assert_chips_agree(&a, &b, "after hybrid span");
            // Follow-on traffic lands identically: frontiers, idle-gap
            // rings and SDRAM open rows all survived the absorption.
            let ra = a.read_external(0, ext(64), 64);
            let rb = b.read_external(0, ext(64), 64);
            assert_eq!(ra, rb, "follow-on read");
        }
    }

    #[test]
    fn read_external_run_from_quiescent_start_absorbs_whole_span() {
        let addrs: Vec<GlobalAddr> = (0..64u32).map(|i| ext(i * 8)).collect();
        let (mut a, mut b) = (chip(), chip());
        for &addr in &addrs {
            a.read_external(5, addr, 8);
        }
        b.read_external_run(5, &addrs, 8);
        assert_eq!(a.now(5), b.now(5));
        assert_eq!(a.counters(5).get("ext_read"), 64);
        assert_eq!(b.counters(5).get("ext_read"), 64);
        assert_eq!(
            a.fabric().elink.busy_cycles(),
            b.fabric().elink.busy_cycles()
        );
    }

    #[test]
    fn read_external_run_with_tracer_falls_back_and_keeps_spans() {
        let addrs: Vec<GlobalAddr> = (0..10u32).map(|i| ext(i * 8)).collect();
        let tracer = Tracer::enabled();
        let mut traced = chip();
        traced.set_tracer(tracer.clone());
        traced.read_external_run(0, &addrs, 8);
        let mut plain = chip();
        plain.read_external_run(0, &addrs, 8);
        // Fallback lands the cursor exactly where the closed form does
        // and keeps one rd_ext span per read on the core track.
        assert_eq!(traced.now(0), plain.now(0));
        let spans = tracer
            .snapshot()
            .iter()
            .filter(|e| e.track == Track::Core(0) && e.name == "rd_ext")
            .count();
        assert_eq!(spans, 10);
    }

    #[test]
    fn read_external_run_with_pending_faults_falls_back() {
        use faultsim::{FaultEvent, FaultPlan};
        let addrs: Vec<GlobalAddr> = (0..10u32).map(|i| ext(i * 8)).collect();
        let plan = FaultPlan::from_events(
            0,
            vec![FaultEvent::ElinkDegrade {
                at: Cycle(0),
                extra: 5_000,
            }],
        );
        let (mut a, mut b) = (chip(), chip());
        a.set_faults(FaultState::from_plan(&plan));
        b.set_faults(FaultState::from_plan(&plan));
        for &addr in &addrs {
            a.read_external(0, addr, 8);
        }
        b.read_external_run(0, &addrs, 8);
        // Both sides take the degradation hit identically; once the
        // schedule drained the run may absorb, which must not change
        // any observable either.
        assert_chips_agree(&a, &b, "faulted span");
        assert!(a.now(0) > Cycle(5_000), "the degrade window was taken");
    }
}
