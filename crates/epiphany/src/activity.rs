//! Slot-indexed per-core activity counters.
//!
//! The chip's hot paths bump operation counters on every modelled
//! instruction, transfer and stall. Doing that through the string-keyed
//! [`Counters`] map costs a `BTreeMap` lookup (several string compares)
//! per event; this module keeps the per-core counts in a flat array
//! indexed by [`slot`] constants and only materialises a `Counters`
//! map at observation points (phase boundaries, energy evaluation,
//! reports).
//!
//! A `touched` bitmask preserves the map's presence semantics exactly:
//! `Counters::add(key, 0)` inserts the key (it appears in the record's
//! JSON as `0`), so a slot written with zero must still be emitted.
//! Because `Counters` sorts its keys, the order slots are emitted in is
//! irrelevant to the serialised output — materialised records are
//! byte-identical to the per-event map updates they replace.

use desim::stats::Counters;

/// Counter slots, one per per-core counter key the chip maintains.
pub mod slot {
    /// `barrier`
    pub const BARRIER: usize = 0;
    /// `dma_2d`
    pub const DMA_2D: usize = 1;
    /// `dma_bytes`
    pub const DMA_BYTES: usize = 2;
    /// `dma_wait`
    pub const DMA_WAIT: usize = 3;
    /// `ext_read`
    pub const EXT_READ: usize = 4;
    /// `ext_read_bytes`
    pub const EXT_READ_BYTES: usize = 5;
    /// `ext_write`
    pub const EXT_WRITE: usize = 6;
    /// `ext_write_bytes`
    pub const EXT_WRITE_BYTES: usize = 7;
    /// `flag_polls`
    pub const FLAG_POLLS: usize = 8;
    /// `flag_wait`
    pub const FLAG_WAIT: usize = 9;
    /// `fpu_instr`
    pub const FPU_INSTR: usize = 10;
    /// `host_load`
    pub const HOST_LOAD: usize = 11;
    /// `host_load_bytes`
    pub const HOST_LOAD_BYTES: usize = 12;
    /// `ialu_ls_instr`
    pub const IALU_LS_INSTR: usize = 13;
    /// `local_access`
    pub const LOCAL_ACCESS: usize = 14;
    /// `remote_read`
    pub const REMOTE_READ: usize = 15;
    /// `remote_read_bytes`
    pub const REMOTE_READ_BYTES: usize = 16;
    /// `remote_write`
    pub const REMOTE_WRITE: usize = 17;
    /// `remote_write_bytes`
    pub const REMOTE_WRITE_BYTES: usize = 18;
    /// Number of slots.
    pub const COUNT: usize = 19;
    /// Counter key of each slot.
    pub const NAMES: [&str; COUNT] = [
        "barrier",
        "dma_2d",
        "dma_bytes",
        "dma_wait",
        "ext_read",
        "ext_read_bytes",
        "ext_write",
        "ext_write_bytes",
        "flag_polls",
        "flag_wait",
        "fpu_instr",
        "host_load",
        "host_load_bytes",
        "ialu_ls_instr",
        "local_access",
        "remote_read",
        "remote_read_bytes",
        "remote_write",
        "remote_write_bytes",
    ];
}

/// One core's activity counters: a flat array plus the bitmask of
/// slots that have been written (even with zero).
#[derive(Debug, Clone)]
pub struct CoreCounters {
    vals: [u64; slot::COUNT],
    touched: u32,
}

impl Default for CoreCounters {
    fn default() -> CoreCounters {
        CoreCounters::new()
    }
}

impl CoreCounters {
    /// All-zero, nothing touched.
    pub fn new() -> CoreCounters {
        CoreCounters {
            vals: [0; slot::COUNT],
            touched: 0,
        }
    }

    /// Add `value` to `s` (marks the slot even when `value` is zero).
    #[inline]
    pub fn add(&mut self, s: usize, value: u64) {
        self.vals[s] += value;
        self.touched |= 1 << s;
    }

    /// Add one to `s`.
    #[inline]
    pub fn bump(&mut self, s: usize) {
        self.add(s, 1);
    }

    /// Current value of `s` (zero if never touched).
    #[inline]
    pub fn get(&self, s: usize) -> u64 {
        self.vals[s]
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.vals = [0; slot::COUNT];
        self.touched = 0;
    }

    /// Emit every touched slot into `out` (adding to whatever is
    /// already there). Untouched slots stay absent, matching the keys
    /// a per-event `Counters` would have accumulated.
    pub fn merge_into(&self, out: &mut Counters) {
        for s in 0..slot::COUNT {
            if self.touched & (1 << s) != 0 {
                out.add(slot::NAMES[s], self.vals[s]);
            }
        }
    }

    /// Materialise as a fresh string-keyed map.
    pub fn to_counters(&self) -> Counters {
        let mut out = Counters::new();
        self.merge_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_names_are_sorted_and_distinct() {
        // `Counters` is a sorted map, so keeping NAMES sorted makes the
        // slot order line up with serialisation order (not required for
        // correctness, but cheap to keep tidy).
        for w in slot::NAMES.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn zero_adds_preserve_key_presence() {
        let mut c = CoreCounters::new();
        c.add(slot::FPU_INSTR, 0);
        c.bump(slot::BARRIER);
        let m = c.to_counters();
        assert!(m.contains("fpu_instr"), "zero add must still emit the key");
        assert_eq!(m.get("fpu_instr"), 0);
        assert_eq!(m.get("barrier"), 1);
        assert!(
            !m.contains("ext_read"),
            "untouched slots must stay absent from the map"
        );
    }

    #[test]
    fn materialisation_matches_a_per_event_map() {
        let mut fast = CoreCounters::new();
        let mut slow = Counters::new();
        for &(s, v) in &[
            (slot::EXT_READ, 1),
            (slot::EXT_READ_BYTES, 8),
            (slot::EXT_READ, 1),
            (slot::EXT_READ_BYTES, 0),
            (slot::REMOTE_WRITE_BYTES, 4096),
        ] {
            fast.add(s, v);
            slow.add(slot::NAMES[s], v);
        }
        let pairs = |c: &Counters| c.iter().collect::<Vec<_>>();
        assert_eq!(pairs(&fast.to_counters()), pairs(&slow));
    }

    #[test]
    fn merge_into_accumulates_across_cores() {
        let mut a = CoreCounters::new();
        let mut b = CoreCounters::new();
        a.add(slot::FPU_INSTR, 10);
        b.add(slot::FPU_INSTR, 5);
        b.bump(slot::BARRIER);
        let mut merged = Counters::new();
        a.merge_into(&mut merged);
        b.merge_into(&mut merged);
        assert_eq!(merged.get("fpu_instr"), 15);
        assert_eq!(merged.get("barrier"), 1);
    }

    #[test]
    fn clear_resets_values_and_presence() {
        let mut c = CoreCounters::new();
        c.add(slot::DMA_BYTES, 100);
        c.clear();
        assert_eq!(c.get(slot::DMA_BYTES), 0);
        assert_eq!(c.to_counters().iter().count(), 0);
    }
}
