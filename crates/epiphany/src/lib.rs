//! Execution-driven performance/energy model of the Adapteva Epiphany
//! E16G3 manycore.
//!
//! The model is *transaction-level and execution-driven*: application
//! kernels run natively (producing real numerical results) while
//! emitting abstract operation counts; this crate prices those counts
//! with datasheet-derived microarchitecture constants and plays all
//! off-core interactions (remote reads, posted writes, DMA, barriers,
//! core-to-core streams) against the shared [`emesh`] fabric and
//! [`memsim`] SDRAM, where they contend with each other.
//!
//! What is modelled — because the paper's conclusions rest on it:
//!
//! * dual-issue cores: one FPU op (including fused multiply-add) can
//!   pair with one IALU/load/store per cycle,
//! * software sqrt/divide/trig (no hardware units on Epiphany),
//! * *blocking* remote/off-chip reads vs *posted* writes ("write
//!   without stalling", single-cycle issue throughput),
//! * per-core DMA engines that overlap transfers with compute,
//! * 4×8 KB single-ported local-store banks,
//! * the 8 GB/s eLink shared by all cores vs the 512 GB/s aggregate
//!   on-chip fabric,
//! * activity-based energy with fine-grained clock gating (idle cores
//!   burn only static power).
//!
//! Execution model: each core owns a monotone *time cursor*. Compute
//! advances the cursor analytically; communication reserves shared FIFO
//! resources. Mapping code is expected to interleave cores in phases
//! (SPMD iterations, pipeline stages) so cursors stay close; shared
//! resources then resolve contention in near-arrival order. This is the
//! standard transaction-level trade: per-cycle interleaving fidelity is
//! given up, aggregate bandwidth/latency/queueing behaviour is kept.

#![forbid(unsafe_code)]

pub mod activity;
pub mod chip;
pub mod cost;
pub mod dma;
pub mod energy;
pub mod loader;
pub mod params;

pub use chip::Chip;
pub use cost::CostBlock;
pub use desim::record::{PhaseRecord, RunRecord};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use params::EpiphanyParams;
