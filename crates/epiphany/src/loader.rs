//! Program loading model.
//!
//! Epiphany programs are "built independently and then loaded onto the
//! chip using a common loader" (paper §III): the host pushes each
//! core's executable image through the eLink into that core's local
//! store, then releases it from reset. For SPMD one image is
//! replicated to every core; MPMD ships a distinct image per core —
//! the loader cost model makes the difference visible (it is part of
//! the turnaround-time argument in the programmability discussion).

use desim::Cycle;

use crate::chip::{Chip, CoreId};
use memsim::GlobalAddr;

/// One per-core executable image.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    /// Name (diagnostics).
    pub name: String,
    /// Code + initialised data size, bytes. Must fit the local store
    /// alongside the data banks (the paper keeps code in the lower two
    /// banks).
    pub bytes: u64,
}

impl ProgramImage {
    /// A named image of `bytes` bytes.
    pub fn new(name: &str, bytes: u64) -> ProgramImage {
        ProgramImage {
            name: name.to_string(),
            bytes,
        }
    }
}

/// Result of loading a set of programs.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Cycle at which every core is loaded and released.
    pub done: Cycle,
    /// Total bytes shipped through the eLink.
    pub bytes: u64,
    /// Number of cores loaded.
    pub cores: usize,
}

/// Load `programs` onto the chip: `programs[i]` goes to core
/// `targets[i]`. Loading streams each image from the host through the
/// eLink and across the mesh into the core's local store; cores are
/// released when their own image has landed (the returned report's
/// `done` is the last release — the earliest time the application can
/// start).
///
/// # Panics
/// If lengths mismatch or an image exceeds half the local store
/// (code must coexist with data banks).
pub fn load_programs(chip: &mut Chip, targets: &[CoreId], programs: &[ProgramImage]) -> LoadReport {
    assert_eq!(targets.len(), programs.len(), "one image per target core");
    let store_half = chip.params().sram.bank_bytes as u64 * 2;
    let mut done = Cycle::ZERO;
    let mut bytes = 0u64;
    for (&core, img) in targets.iter().zip(programs) {
        assert!(
            img.bytes <= store_half,
            "image '{}' of {} B exceeds the {} B code region",
            img.name,
            img.bytes,
            store_half
        );
        let finished = chip.host_load(core, GlobalAddr::external(0), img.bytes);
        // Gate the format!: names must not allocate on the disabled path.
        if chip.tracer().is_enabled() {
            chip.tracer().instant(
                desim::trace::Track::Host,
                format!("loaded {} -> core {core}", img.name),
                finished,
            );
        }
        done = done.max(finished);
        bytes += img.bytes;
    }
    LoadReport {
        done,
        bytes,
        cores: targets.len(),
    }
}

/// SPMD convenience: replicate one image to every listed core.
pub fn load_spmd(chip: &mut Chip, cores: &[CoreId], image: &ProgramImage) -> LoadReport {
    let programs = vec![image.clone(); cores.len()];
    load_programs(chip, cores, &programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EpiphanyParams;

    #[test]
    fn spmd_load_replicates_one_image() {
        let mut chip = Chip::e16g3(EpiphanyParams::default());
        let cores: Vec<usize> = (0..16).collect();
        let img = ProgramImage::new("ffbp_spmd", 12 * 1024);
        let r = load_spmd(&mut chip, &cores, &img);
        assert_eq!(r.cores, 16);
        assert_eq!(r.bytes, 16 * 12 * 1024);
        // 192 KB through an 8 B/cycle eLink: at least 24k cycles.
        assert!(r.done.raw() >= 24_000, "load too fast: {:?}", r.done);
    }

    #[test]
    fn mpmd_load_ships_distinct_images() {
        let mut chip = Chip::e16g3(EpiphanyParams::default());
        let targets = vec![0usize, 1, 2];
        let programs = vec![
            ProgramImage::new("range", 6 * 1024),
            ProgramImage::new("beam", 7 * 1024),
            ProgramImage::new("corr", 4 * 1024),
        ];
        let r = load_programs(&mut chip, &targets, &programs);
        assert_eq!(r.bytes, 17 * 1024);
        assert!(r.done > Cycle::ZERO);
    }

    #[test]
    fn loading_more_cores_takes_longer() {
        let img = ProgramImage::new("k", 8 * 1024);
        let few = {
            let mut chip = Chip::e16g3(EpiphanyParams::default());
            load_spmd(&mut chip, &[0, 1], &img).done
        };
        let many = {
            let mut chip = Chip::e16g3(EpiphanyParams::default());
            let cores: Vec<usize> = (0..16).collect();
            load_spmd(&mut chip, &cores, &img).done
        };
        assert!(many > few, "eLink serialises the images: {few} vs {many}");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_image_rejected() {
        let mut chip = Chip::e16g3(EpiphanyParams::default());
        let img = ProgramImage::new("fat", 20 * 1024);
        let _ = load_spmd(&mut chip, &[0], &img);
    }
}
