//! Per-core DMA engine state.
//!
//! Each Epiphany core has a DMA engine able to move a double word per
//! clock, operating concurrently with the core. We model one in-flight
//! descriptor per engine (matching how the FFBP mapping uses it:
//! prefetch the next block while computing on the current one); issuing
//! a new descriptor while one is active queues behind it.

use desim::Cycle;

/// Direction of a DMA transfer (for statistics and energy accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// External SDRAM into the local store.
    ExternalToLocal,
    /// Local store out to external SDRAM.
    LocalToExternal,
    /// Local store into another core's local store.
    LocalToRemote,
}

/// One core's DMA engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DmaEngine {
    /// When the engine finishes its current descriptor.
    busy_until: Cycle,
    /// Descriptors completed.
    transfers: u64,
    /// Bytes moved.
    bytes: u64,
}

impl DmaEngine {
    /// New idle engine.
    pub fn new() -> DmaEngine {
        DmaEngine::default()
    }

    /// Earliest time a new descriptor can start moving data, given the
    /// engine may still be draining a previous one.
    pub fn earliest_start(&self, requested: Cycle) -> Cycle {
        requested.max(self.busy_until)
    }

    /// Commit a descriptor that the chip model has priced: the engine
    /// is busy until `done`.
    pub fn commit(&mut self, done: Cycle, bytes: u64) {
        debug_assert!(done >= self.busy_until);
        self.busy_until = done;
        self.transfers += 1;
        self.bytes += bytes;
    }

    /// Completion time of the most recent descriptor.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Descriptors completed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Bytes moved so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Clear the engine.
    pub fn reset(&mut self) {
        *self = DmaEngine::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_serialise_on_one_engine() {
        let mut e = DmaEngine::new();
        assert_eq!(e.earliest_start(Cycle(5)), Cycle(5));
        e.commit(Cycle(100), 512);
        assert_eq!(e.earliest_start(Cycle(5)), Cycle(100));
        assert_eq!(e.earliest_start(Cycle(150)), Cycle(150));
        e.commit(Cycle(200), 256);
        assert_eq!(e.transfers(), 2);
        assert_eq!(e.bytes(), 768);
    }

    #[test]
    fn reset_idles_engine() {
        let mut e = DmaEngine::new();
        e.commit(Cycle(50), 64);
        e.reset();
        assert_eq!(e.busy_until(), Cycle::ZERO);
        assert_eq!(e.transfers(), 0);
    }
}
