//! E16G3 model parameters, each annotated with its source.
//!
//! Nothing in here is fitted to the paper's *results*; the constants
//! are architecture facts from the Epiphany Architecture Reference /
//! E16G3 datasheet, the Microprocessor Report piece ("Adapteva: More
//! flops, less watts", 2011), or standard software-implementation costs
//! for an FPU without divide/sqrt hardware.

use desim::Frequency;
use emesh::network::EMeshParams;
use memsim::{SdramParams, SramParams};

/// Microarchitecture and energy constants for the Epiphany model.
#[derive(Debug, Clone, Copy)]
pub struct EpiphanyParams {
    /// Core clock. The evaluation board runs at 400 MHz; the paper
    /// reports results scaled to the 1 GHz specification point, which
    /// is also our default.
    pub clock: Frequency,

    // ---- chip geometry -------------------------------------------------
    /// Mesh columns. The default 4x4 is the E16G3; the family scales
    /// the same core to larger meshes (E64: 8x8) with identical
    /// per-core constants.
    pub mesh_cols: u16,
    /// Mesh rows.
    pub mesh_rows: u16,

    // ---- core pipeline -------------------------------------------------
    /// Instruction-level-parallelism efficiency of the dual-issue
    /// pairing: the fraction of cycles where an FPU and an IALU/LS
    /// instruction actually pair (dependences and branches break
    /// pairing). 0.8 reflects hand-scheduled inner loops.
    pub pairing_efficiency: f64,
    /// FPU instructions a software square root expands to (Newton
    /// iterations on a seed; the paper notes a "less compute-intensive
    /// implementation of the square root operation").
    pub sqrt_flops: u64,
    /// FPU instructions for a software divide (reciprocal + Newton).
    pub div_flops: u64,
    /// FPU instructions for a polynomial acos/cos evaluation.
    pub trig_flops: u64,
    /// Cycles for a local-store load (pipelined; back-to-back issue).
    pub local_load_cycles: u64,
    /// Cycles for a local-store store.
    pub local_store_cycles: u64,

    // ---- communication -------------------------------------------------
    /// Posted-write issue cost at the source (single-cycle throughput
    /// per double word; the transaction then rides the mesh).
    pub write_issue_cycles_per_dword: u64,
    /// Extra cycles a core spends setting up one remote read (address
    /// computation is already in the op counts; this is the transaction
    /// issue overhead).
    pub read_issue_cycles: u64,
    /// Outstanding posted-write backlog a core tolerates before it
    /// stalls (models the finite write buffer toward the eLink).
    pub write_buffer_cycles: u64,
    /// Cycles to set up one DMA descriptor.
    pub dma_setup_cycles: u64,
    /// Cost of a synchronization flag check (poll iteration).
    pub flag_poll_cycles: u64,
    /// Cap on charged poll iterations per flag wait. A consumer spins
    /// on the flag word for the whole wait, but the loop is a local
    /// load + branch hitting the same bank line, so after the line is
    /// hot the energy per iteration collapses; the cap models that
    /// saturation (and keeps a pathological wait from dominating the
    /// energy account).
    pub flag_poll_max_polls: u64,
    /// Barrier cost per participant pair (flag write + poll across the
    /// mesh; dominated by two neighbour hops each way).
    pub barrier_base_cycles: u64,
    /// Consumer watchdog timeout before a lost flag write is NACKed
    /// and re-sent ([`crate::Chip::send_reliable`]). Sized well above
    /// the worst-case on-chip delivery so the fault-free path never
    /// trips it.
    pub flag_retry_timeout_cycles: u64,
    /// Re-send attempts before [`crate::Chip::send_reliable`] gives up
    /// (the timeout doubles each attempt, capped at 8x the base).
    pub flag_retry_max: u32,

    // ---- fabric & memory geometry --------------------------------------
    /// eMesh parameters (link width, hop latency, eLink width).
    pub emesh: EMeshParams,
    /// Local-store geometry (4 x 8 KB banks).
    pub sram: SramParams,
    /// Board SDRAM parameters (latencies in core cycles).
    pub sdram: SdramParams,

    // ---- energy (65 nm; calibrated only to the 2 W chip figure) --------
    /// Energy per FPU instruction, picojoules.
    pub pj_per_flop: f64,
    /// Energy per IALU instruction, picojoules.
    pub pj_per_ialu: f64,
    /// Energy per local-store access (8 bytes), picojoules.
    pub pj_per_local_access: f64,
    /// Energy per byte-hop on the mesh, picojoules.
    pub pj_per_mesh_byte_hop: f64,
    /// Energy per byte through the eLink (I/O drivers), picojoules.
    pub pj_per_elink_byte: f64,
    /// Energy per byte of SDRAM traffic (device + PHY), picojoules.
    pub pj_per_sdram_byte: f64,
    /// Static (leakage + always-on clock tree) power per core, watts.
    /// With fine-grained clock gating this is all an idle core burns.
    pub static_w_per_core: f64,
    /// Chip-level static power (PLL, I/O standby), watts.
    pub static_w_chip: f64,
}

impl Default for EpiphanyParams {
    fn default() -> Self {
        EpiphanyParams {
            clock: Frequency::ghz(1.0),
            mesh_cols: 4,
            mesh_rows: 4,
            pairing_efficiency: 0.8,
            sqrt_flops: 12,
            div_flops: 8,
            trig_flops: 18,
            local_load_cycles: 1,
            local_store_cycles: 1,
            write_issue_cycles_per_dword: 1,
            read_issue_cycles: 2,
            write_buffer_cycles: 32,
            dma_setup_cycles: 20,
            flag_poll_cycles: 2,
            flag_poll_max_polls: 64,
            barrier_base_cycles: 12,
            flag_retry_timeout_cycles: 2048,
            flag_retry_max: 8,
            emesh: EMeshParams::default(),
            sram: SramParams::default(),
            // Board SDRAM is reached through the eLink and an FPGA
            // memory controller on the evaluation board; unbuffered
            // reads cost on the order of 100+ core cycles at 1 GHz.
            sdram: SdramParams {
                bytes_per_cycle: 16,
                row_hit_cycles: 80,
                row_miss_cycles: 140,
                banks: 8,
                row_bytes: 2048,
            },
            // 65 nm per-op energies including fetch/decode/regfile
            // overhead; chosen so 16 fully busy cores plus statics land
            // near the 2 W datasheet chip figure.
            pj_per_flop: 50.0,
            pj_per_ialu: 15.0,
            pj_per_local_access: 20.0,
            pj_per_mesh_byte_hop: 2.0,
            pj_per_elink_byte: 60.0,
            pj_per_sdram_byte: 150.0,
            static_w_per_core: 0.015,
            static_w_chip: 0.2,
        }
    }
}

impl EpiphanyParams {
    /// Parameters for the experimental board clocked at 400 MHz.
    pub fn board_400mhz() -> Self {
        EpiphanyParams {
            clock: Frequency::mhz(400.0),
            ..Self::default()
        }
    }

    /// Core count of the reference E16G3 chip the energy constants are
    /// calibrated against.
    pub const REFERENCE_CORES: usize = 16;

    /// Number of cores implied by the mesh geometry.
    pub fn cores(&self) -> usize {
        self.mesh_cols as usize * self.mesh_rows as usize
    }

    /// Parameters for a `cols x rows` chip of the same family: same
    /// per-core microarchitecture and energy constants, with the
    /// chip-level static power (clock tree, PLL fanout) scaled with
    /// die area relative to the 16-core reference. Per-core static
    /// power scales automatically in the energy model via the core
    /// count.
    pub fn with_mesh(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "degenerate {cols}x{rows} mesh");
        let base = Self::default();
        let scale = (cols as usize * rows as usize) as f64 / Self::REFERENCE_CORES as f64;
        EpiphanyParams {
            mesh_cols: cols,
            mesh_rows: rows,
            static_w_chip: base.static_w_chip * scale,
            ..base
        }
    }

    /// Parameters for the 64-core family member (8x8 mesh).
    pub fn e64() -> Self {
        Self::with_mesh(8, 8)
    }

    /// The datasheet "estimated power" figure the paper uses for the
    /// whole chip in Table I (watts).
    pub const DATASHEET_POWER_W: f64 = 2.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_datasheet_geometry() {
        let p = EpiphanyParams::default();
        assert_eq!(p.sram.banks, 4);
        assert_eq!(p.sram.bank_bytes, 8 * 1024);
        assert_eq!(p.emesh.link_bytes_per_cycle, 8);
        assert_eq!(p.emesh.elink_bytes_per_cycle, 8);
        assert!((p.clock.hz() - 1e9).abs() < 1.0);
    }

    #[test]
    fn board_clock_is_400mhz() {
        let p = EpiphanyParams::board_400mhz();
        assert!((p.clock.hz() - 4e8).abs() < 1.0);
    }

    /// Full-load chip power implied by the energy constants, derived
    /// from the mesh geometry rather than a hard-coded core count.
    fn full_load_w(p: &EpiphanyParams) -> f64 {
        let per_core_w =
            (p.pj_per_flop + p.pj_per_ialu + 0.5 * p.pj_per_local_access) * 1e-12 * p.clock.hz();
        p.cores() as f64 * (per_core_w + p.static_w_per_core) + p.static_w_chip
    }

    #[test]
    fn full_load_power_is_near_two_watts() {
        // Sanity check on the energy constants: every core retiring
        // one FPU + one IALU + ~0.5 local accesses per cycle at 1 GHz,
        // plus statics, should land in the neighbourhood of the 2 W
        // datasheet figure (within a factor ~1.5 either way).
        let p = EpiphanyParams::default();
        assert_eq!(p.cores(), EpiphanyParams::REFERENCE_CORES);
        let chip_w = full_load_w(&p);
        assert!(
            (1.0..3.0).contains(&chip_w),
            "implausible full-load power {chip_w:.2} W"
        );
    }

    #[test]
    fn e64_scales_power_with_the_mesh() {
        let e16 = EpiphanyParams::default();
        let e64 = EpiphanyParams::e64();
        assert_eq!((e64.mesh_cols, e64.mesh_rows), (8, 8));
        assert_eq!(e64.cores(), 64);
        // Same per-core constants...
        assert_eq!(e64.pj_per_flop, e16.pj_per_flop);
        assert_eq!(e64.static_w_per_core, e16.static_w_per_core);
        // ...chip-level static scaled 4x with die area...
        assert!((e64.static_w_chip - 4.0 * e16.static_w_chip).abs() < 1e-12);
        // ...so full-load power scales 4x with the core count.
        let ratio = full_load_w(&e64) / full_load_w(&e16);
        assert!((ratio - 4.0).abs() < 1e-9, "e64/e16 ratio {ratio:.6}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_sized_mesh_is_rejected() {
        let _ = EpiphanyParams::with_mesh(0, 4);
    }
}
