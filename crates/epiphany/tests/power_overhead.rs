//! Powertrace's zero-cost guarantee: power sampling touches its state
//! (boundary marks, component snapshots) only in `phase_begin` /
//! `phase_end`, so running a batch of operations *inside* a phase must
//! allocate exactly as much as running the identical batch outside
//! one — the sampler adds nothing to the per-operation hot path. This
//! test binary installs a counting global allocator (which is why it
//! lives alone in its own integration-test binary) and compares the
//! two counts; the simulator is deterministic, so the counts are too.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use epiphany::cost::OpCounts;
use epiphany::{Chip, EpiphanyParams};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run the standard batch on a fresh chip, counting only the
/// allocations of the operations themselves — phase boundaries (which
/// legitimately allocate for metric maps and boundary marks) sit
/// outside the measured window.
fn batch_allocations(in_phase: bool) -> u64 {
    let mut chip = Chip::e16g3(EpiphanyParams::default());
    let ops = OpCounts {
        fmas: 64,
        loads: 32,
        ialu: 8,
        ..OpCounts::default()
    };
    if in_phase {
        chip.phase_begin("measured");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..100_000usize {
        let core = i % 16;
        chip.compute(core, &ops);
        chip.write_remote(core, (core + 1) % 16, 64);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    if in_phase {
        chip.phase_end();
        let record = chip.report("overhead", 16);
        let power = record.power.expect("chip records carry a power block");
        assert!(!power.timeline.is_empty());
        assert!((power.timeline.total_j() - record.energy.total_j()).abs() <= 1e-12);
    }
    after - before
}

#[test]
fn power_sampling_adds_no_hot_path_allocations() {
    // First run pays for lazy statics; the second is the baseline.
    let _warmup = batch_allocations(false);
    let bare = batch_allocations(false);
    let sampled = batch_allocations(true);
    assert_eq!(
        sampled, bare,
        "an open phase changed the hot path's allocation count \
         ({sampled} vs {bare} across 200k operations)"
    );
}
