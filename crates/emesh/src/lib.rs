//! Transaction-level model of the Adapteva eMesh network-on-chip.
//!
//! The Epiphany eMesh is a 2D mesh with four duplex links per node and
//! *three* physically separate mesh structures (E16G3 datasheet, "eGrid"):
//!
//! * **cMesh** — on-chip write transactions (posted, 8 bytes/cycle/link),
//! * **rMesh** — read *requests* (one transaction per cycle; the reply
//!   data returns as a write on the cMesh),
//! * **xMesh** — transactions destined off chip, draining into the
//!   east-edge eLink on the evaluation board.
//!
//! Routing is dimension-ordered (X then Y) with a single-cycle routing
//! latency per hop and round-robin five-direction arbitration at each
//! node. This crate models each directed link as a FIFO server
//! ([`desim::FifoResource`]) — contention, serialization and per-hop
//! latency are captured at transaction granularity, which is the level
//! the paper's arguments live at (neighbour-only mapping, the 64x
//! on-chip/off-chip bandwidth ratio, congestion at the correlator core).
//!
//! The stand-alone [`arbiter::RoundRobinArbiter`] implements the
//! five-direction rotating-priority grant used for same-cycle conflicts.

#![forbid(unsafe_code)]

pub mod arbiter;
pub mod network;
pub mod packet;
pub mod routing;
pub mod topology;

pub use network::{EMesh, MeshNetwork, TransferResult};
pub use packet::{Packet, PacketKind};
pub use routing::{route_xy, Direction};
pub use topology::{Coord, Mesh2D, NodeId};
