//! Round-robin arbitration.
//!
//! Each eMesh routing node grants one of its five input directions per
//! cycle per output port, rotating priority so no input starves. The
//! transaction-level network resolves *temporal* contention through FIFO
//! link servers; this arbiter resolves *same-cycle* conflicts and is
//! reused by the local-memory bank model for simultaneous port requests.

/// A rotating-priority arbiter over `N` requesters.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Requester granted most recently; next grant search starts after it.
    last: usize,
    /// Grants issued per requester (fairness observability).
    grants: Vec<u64>,
}

impl RoundRobinArbiter {
    /// Arbiter over `n` requesters.
    ///
    /// # Panics
    /// If `n` is zero.
    pub fn new(n: usize) -> RoundRobinArbiter {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter {
            n,
            last: n - 1, // so requester 0 has initial priority
            grants: vec![0; n],
        }
    }

    /// Grant one of the asserted requests (bitmask-style slice of bools),
    /// rotating priority from just after the previous grant. Returns the
    /// granted index, or `None` if nothing is requesting.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request width mismatch");
        for offset in 1..=self.n {
            let idx = (self.last + offset) % self.n;
            if requests[idx] {
                self.last = idx;
                self.grants[idx] += 1;
                return Some(idx);
            }
        }
        None
    }

    /// Grants issued to requester `idx` so far.
    pub fn grants(&self, idx: usize) -> u64 {
        self.grants[idx]
    }

    /// Number of requesters.
    pub fn width(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requester_always_wins() {
        let mut a = RoundRobinArbiter::new(3);
        for _ in 0..5 {
            assert_eq!(a.grant(&[false, true, false]), Some(1));
        }
        assert_eq!(a.grants(1), 5);
    }

    #[test]
    fn rotates_between_contenders() {
        let mut a = RoundRobinArbiter::new(2);
        let all = [true, true];
        let seq: Vec<_> = (0..6).map(|_| a.grant(&all).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn no_request_no_grant() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(&[false; 4]), None);
    }

    #[test]
    fn fairness_under_full_contention() {
        let mut a = RoundRobinArbiter::new(5);
        let all = [true; 5];
        for _ in 0..100 {
            a.grant(&all);
        }
        for i in 0..5 {
            assert_eq!(a.grants(i), 20, "requester {i} starved or favoured");
        }
    }

    #[test]
    fn priority_resumes_after_last_grant() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(&[true, false, false, true]), Some(0));
        // After granting 0, priority order is 1,2,3,0.
        assert_eq!(a.grant(&[true, false, false, true]), Some(3));
        assert_eq!(a.grant(&[true, false, false, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "request width mismatch")]
    fn wrong_width_panics() {
        let mut a = RoundRobinArbiter::new(2);
        let _ = a.grant(&[true]);
    }
}
