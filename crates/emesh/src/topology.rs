//! Mesh geometry: node identifiers, coordinates and adjacency.

use std::fmt;

/// A core/router index in row-major order (`y * cols + x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn raw(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Integer mesh coordinates; `(0, 0)` is the north-west corner, x grows
/// east and y grows south (matches the E16G3 core numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (east-west position).
    pub x: u16,
    /// Row (north-south position).
    pub y: u16,
}

impl Coord {
    /// Manhattan distance to `other` — equals the XY-routed hop count
    /// between routers (excluding injection/ejection).
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A rectangular 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2D {
    cols: u16,
    rows: u16,
}

impl Mesh2D {
    /// Create a `cols x rows` mesh.
    ///
    /// # Panics
    /// If either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Mesh2D {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Mesh2D { cols, rows }
    }

    /// The 4x4 E16G3 mesh.
    pub fn e16g3() -> Mesh2D {
        Mesh2D::new(4, 4)
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Whether the mesh has zero nodes (never true — kept for clippy).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Node at `coord`.
    ///
    /// # Panics
    /// If `coord` is outside the mesh.
    pub fn node(&self, coord: Coord) -> NodeId {
        assert!(self.contains(coord), "{coord} outside {self:?}");
        NodeId(coord.y * self.cols + coord.x)
    }

    /// Coordinates of `node`.
    ///
    /// # Panics
    /// If `node` is outside the mesh.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!((node.raw()) < self.len(), "{node} outside {self:?}");
        Coord {
            x: node.0 % self.cols,
            y: node.0 / self.cols,
        }
    }

    /// Whether `coord` lies inside the mesh.
    pub fn contains(&self, coord: Coord) -> bool {
        coord.x < self.cols && coord.y < self.rows
    }

    /// All nodes in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u16).map(NodeId)
    }

    /// In-mesh neighbours of `coord` (2 to 4 of them).
    pub fn neighbors(&self, coord: Coord) -> Vec<Coord> {
        let mut out = Vec::with_capacity(4);
        if coord.x > 0 {
            out.push(Coord {
                x: coord.x - 1,
                y: coord.y,
            });
        }
        if coord.x + 1 < self.cols {
            out.push(Coord {
                x: coord.x + 1,
                y: coord.y,
            });
        }
        if coord.y > 0 {
            out.push(Coord {
                x: coord.x,
                y: coord.y - 1,
            });
        }
        if coord.y + 1 < self.rows {
            out.push(Coord {
                x: coord.x,
                y: coord.y + 1,
            });
        }
        out
    }

    /// `(x, y)` of the row-major node index `id`.
    ///
    /// Shared coordinate helper: every layer that reasons about node
    /// positions (program models, placement lints, the cost model, the
    /// placement autotuner) derives coordinates from here so they can
    /// never disagree about the geometry.
    ///
    /// # Panics
    /// If `id` is outside the mesh.
    pub fn xy(&self, id: usize) -> (u16, u16) {
        let c = self.coord(NodeId(u16::try_from(id).expect("node id fits u16")));
        (c.x, c.y)
    }

    /// XY-routed hop count between the row-major node indices `a` and
    /// `b` (the Manhattan distance; injection/ejection excluded).
    ///
    /// # Panics
    /// If either id is outside the mesh.
    pub fn hops(&self, a: usize, b: usize) -> u16 {
        let (dx, dy) = self.xy_legs(a, b);
        dx + dy
    }

    /// The two legs of the dimension-ordered XY route between the
    /// row-major node indices `a` and `b`: `(|dx|, |dy|)` — first along
    /// x, then along y.
    ///
    /// # Panics
    /// If either id is outside the mesh.
    pub fn xy_legs(&self, a: usize, b: usize) -> (u16, u16) {
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        (ax.abs_diff(bx), ay.abs_diff(by))
    }

    /// The node whose east edge hosts the off-chip eLink on the E16G3
    /// evaluation board: the east-most node of row 2 in a 4x4 array
    /// (clamped for other sizes).
    pub fn elink_node(&self) -> NodeId {
        let y = (self.rows / 2).min(self.rows - 1);
        self.node(Coord {
            x: self.cols - 1,
            y,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh2D::e16g3();
        assert_eq!(m.len(), 16);
        for n in m.nodes() {
            assert_eq!(m.node(m.coord(n)), n);
        }
        assert_eq!(m.node(Coord { x: 3, y: 2 }), NodeId(11));
        assert_eq!(m.coord(NodeId(11)), Coord { x: 3, y: 2 });
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 3, y: 2 };
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn corner_has_two_neighbors_center_has_four() {
        let m = Mesh2D::e16g3();
        assert_eq!(m.neighbors(Coord { x: 0, y: 0 }).len(), 2);
        assert_eq!(m.neighbors(Coord { x: 1, y: 1 }).len(), 4);
        assert_eq!(m.neighbors(Coord { x: 1, y: 0 }).len(), 3);
    }

    #[test]
    fn neighbors_are_adjacent_and_in_mesh() {
        let m = Mesh2D::new(5, 3);
        for n in m.nodes() {
            let c = m.coord(n);
            for nb in m.neighbors(c) {
                assert!(m.contains(nb));
                assert_eq!(c.manhattan(nb), 1);
            }
        }
    }

    #[test]
    fn id_level_helpers_match_coord_arithmetic() {
        let m = Mesh2D::new(5, 3);
        for a in m.nodes() {
            for b in m.nodes() {
                let d = m.coord(a).manhattan(m.coord(b));
                assert_eq!(u32::from(m.hops(a.raw(), b.raw())), d);
                let (dx, dy) = m.xy_legs(a.raw(), b.raw());
                assert_eq!(u32::from(dx) + u32::from(dy), d);
            }
        }
        assert_eq!(m.xy(7), (2, 1));
    }

    #[test]
    fn elink_sits_on_east_edge() {
        let m = Mesh2D::e16g3();
        let c = m.coord(m.elink_node());
        assert_eq!(c.x, 3);
        let one = Mesh2D::new(1, 1);
        assert_eq!(one.elink_node(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_mesh_coord_panics() {
        let m = Mesh2D::e16g3();
        let _ = m.node(Coord { x: 4, y: 0 });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mesh_rejected() {
        let _ = Mesh2D::new(0, 4);
    }
}
