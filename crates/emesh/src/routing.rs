//! Dimension-ordered (XY) routing.
//!
//! The eMesh routes a transaction fully along X (east/west) and then
//! along Y (north/south); this is deadlock-free on a mesh and is what
//! the distributed address-based routing of the Epiphany implements.

use crate::topology::{Coord, Mesh2D};

/// One of the five router directions (four neighbours plus the local
/// core port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward decreasing x.
    West,
    /// Toward increasing x.
    East,
    /// Toward decreasing y.
    North,
    /// Toward increasing y.
    South,
    /// Into the node itself (ejection) or out of it (injection).
    Local,
}

impl Direction {
    /// All five directions, in arbitration order.
    pub const ALL: [Direction; 5] = [
        Direction::West,
        Direction::East,
        Direction::North,
        Direction::South,
        Direction::Local,
    ];

    /// Index into per-direction tables.
    pub fn index(self) -> usize {
        match self {
            Direction::West => 0,
            Direction::East => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }
}

/// A directed link in the mesh, identified by the router it leaves and
/// the direction it leaves in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    /// Coordinates of the router the link exits.
    pub from: Coord,
    /// Exit direction.
    pub dir: Direction,
}

/// Allocation-free walker over the XY route from `src` to `dst`: an
/// exact-size iterator yielding each directed link in traversal order
/// (fully along X, then along Y). An exhausted-immediately iterator
/// means `src == dst` (local delivery without touching the mesh).
///
/// The mesh transfer hot path walks this directly; [`route_xy`]
/// collects it for callers that want the materialised list.
#[derive(Debug, Clone)]
pub struct RouteIter {
    cur: Coord,
    dst: Coord,
}

impl RouteIter {
    /// Walker from `src` to `dst`.
    ///
    /// # Panics
    /// If either endpoint is outside `mesh`.
    pub fn new(mesh: &Mesh2D, src: Coord, dst: Coord) -> RouteIter {
        assert!(
            mesh.contains(src) && mesh.contains(dst),
            "route endpoints must be in mesh"
        );
        RouteIter { cur: src, dst }
    }

    /// Hops not yet yielded (the Manhattan distance still to cover).
    pub fn remaining(&self) -> u32 {
        self.cur.manhattan(self.dst)
    }
}

impl Iterator for RouteIter {
    type Item = Hop;

    fn next(&mut self) -> Option<Hop> {
        let (cur, dst) = (self.cur, self.dst);
        if cur.x != dst.x {
            let east = dst.x > cur.x;
            self.cur.x = if east { cur.x + 1 } else { cur.x - 1 };
            Some(Hop {
                from: cur,
                dir: if east {
                    Direction::East
                } else {
                    Direction::West
                },
            })
        } else if cur.y != dst.y {
            let south = dst.y > cur.y;
            self.cur.y = if south { cur.y + 1 } else { cur.y - 1 };
            Some(Hop {
                from: cur,
                dir: if south {
                    Direction::South
                } else {
                    Direction::North
                },
            })
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteIter {}

/// Compute the XY route from `src` to `dst` as the ordered list of
/// directed links traversed. An empty route means `src == dst` (local
/// delivery without touching the mesh).
pub fn route_xy(mesh: &Mesh2D, src: Coord, dst: Coord) -> Vec<Hop> {
    RouteIter::new(mesh, src, dst).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh2D {
        Mesh2D::e16g3()
    }

    #[test]
    fn route_length_is_manhattan_distance() {
        let m = mesh();
        for s in m.nodes() {
            for d in m.nodes() {
                let (sc, dc) = (m.coord(s), m.coord(d));
                assert_eq!(route_xy(&m, sc, dc).len() as u32, sc.manhattan(dc));
            }
        }
    }

    #[test]
    fn route_goes_x_first() {
        let m = mesh();
        let hops = route_xy(&m, Coord { x: 0, y: 0 }, Coord { x: 2, y: 2 });
        assert_eq!(hops.len(), 4);
        assert_eq!(hops[0].dir, Direction::East);
        assert_eq!(hops[1].dir, Direction::East);
        assert_eq!(hops[2].dir, Direction::South);
        assert_eq!(hops[3].dir, Direction::South);
        assert_eq!(hops[0].from, Coord { x: 0, y: 0 });
        assert_eq!(hops[2].from, Coord { x: 2, y: 0 });
    }

    #[test]
    fn reverse_route_uses_opposite_directions() {
        let m = mesh();
        let hops = route_xy(&m, Coord { x: 3, y: 3 }, Coord { x: 1, y: 1 });
        assert!(hops.iter().take(2).all(|h| h.dir == Direction::West));
        assert!(hops.iter().skip(2).all(|h| h.dir == Direction::North));
    }

    #[test]
    fn self_route_is_empty() {
        let m = mesh();
        let c = Coord { x: 2, y: 1 };
        assert!(route_xy(&m, c, c).is_empty());
    }

    #[test]
    fn route_iter_is_exact_size_and_matches_collected_route() {
        let m = mesh();
        for s in m.nodes() {
            for d in m.nodes() {
                let (sc, dc) = (m.coord(s), m.coord(d));
                let it = RouteIter::new(&m, sc, dc);
                assert_eq!(it.len() as u32, sc.manhattan(dc));
                let walked: Vec<Hop> = it.collect();
                assert_eq!(walked, route_xy(&m, sc, dc));
            }
        }
    }

    #[test]
    fn direction_indices_are_distinct() {
        let mut seen = [false; 5];
        for d in Direction::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }
}
