//! Transaction (packet) descriptions.

use crate::topology::NodeId;

/// The class of a mesh transaction; selects which physical mesh carries
/// it and its header overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Posted write to another core's memory (cMesh). Fire-and-forget:
    /// the sender does not stall (single-cycle throughput at the source).
    WriteOnChip,
    /// Read request to another core or off-chip (rMesh). The requester
    /// stalls until the reply write returns.
    ReadRequest,
    /// Reply data for a read, returned as a write (cMesh on chip).
    ReadReply,
    /// Write leaving the chip through the eLink (xMesh).
    WriteOffChip,
}

impl PacketKind {
    /// Header bytes added to the payload on the wire. The eMesh carries
    /// address + control alongside data; we charge one 8-byte beat.
    pub fn header_bytes(self) -> u64 {
        8
    }
}

/// A single mesh transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node (for off-chip packets, the eLink node).
    pub dst: NodeId,
    /// Payload size in bytes (0 for a pure read request).
    pub payload: u64,
    /// Transaction class.
    pub kind: PacketKind,
}

impl Packet {
    /// Total bytes on the wire: payload plus header beat.
    pub fn wire_bytes(&self) -> u64 {
        self.payload + self.kind.header_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let p = Packet {
            src: NodeId(0),
            dst: NodeId(5),
            payload: 64,
            kind: PacketKind::WriteOnChip,
        };
        assert_eq!(p.wire_bytes(), 72);
        let rr = Packet {
            payload: 0,
            kind: PacketKind::ReadRequest,
            ..p
        };
        assert_eq!(rr.wire_bytes(), 8);
    }
}
