//! The three-mesh eMesh fabric with contention and per-hop latency.

use desim::record::LinkLoad;
use desim::stats::Histogram;
use desim::trace::{direction_letter, MeshKind, Tracer, Track};
use desim::{Cycle, FifoResource, Reservation};
use faultsim::FaultState;

use crate::routing::Direction;
use crate::topology::{Coord, Mesh2D, NodeId};

/// How a link serialises traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkMode {
    /// `n` bytes per cycle (cMesh/xMesh data links).
    BytesPerCycle(u64),
    /// One transaction per cycle regardless of size (rMesh request wires).
    TransactionPerCycle,
}

/// Outcome of pushing one transaction through a mesh.
#[derive(Debug, Clone, Copy)]
pub struct TransferResult {
    /// Cycle the full payload has arrived at the destination router.
    pub arrival: Cycle,
    /// Router-to-router hops traversed.
    pub hops: u32,
    /// Total queueing delay accumulated across links.
    pub queued: Cycle,
}

/// Aggregate transfer statistics for one mesh. The hot path records
/// into a *scratch* instance and [`MeshNetwork::flush_stats`] folds it
/// into the running totals at phase boundaries (via
/// [`Histogram::merge`], which is exact); every getter reads the
/// merged view, so no reported figure ever depends on when a flush
/// happened.
#[derive(Debug, Default)]
struct MeshStats {
    transfers: u64,
    bytes: u64,
    byte_hops: u64,
    latency: Histogram,
}

impl MeshStats {
    fn merge(&mut self, other: &MeshStats) {
        self.transfers += other.transfers;
        self.bytes += other.bytes;
        self.byte_hops += other.byte_hops;
        self.latency.merge(&other.latency);
    }

    fn clear(&mut self) {
        *self = MeshStats::default();
    }
}

/// One physical mesh: a grid of routers with four directed output links
/// each, modelled as FIFO servers, wormhole-pipelined with a single
/// cycle of routing latency per hop.
///
/// Links live in a flat table indexed `node * 4 + direction`, and the
/// transfer hot path walks the XY route with an incremental node index
/// (east `+1`, west `-1`, south `+cols`, north `-cols`) — no per-hop
/// coordinate-to-node arithmetic and no route allocation.
pub struct MeshNetwork {
    mesh: Mesh2D,
    kind: MeshKind,
    mode: LinkMode,
    hop_latency: u64,
    /// Flat link table: `links[node * 4 + direction]`.
    links: Vec<FifoResource>,
    /// Flat wire-byte table, same indexing as `links`.
    link_bytes: Vec<u64>,
    /// Since the last flush.
    scratch: MeshStats,
    /// Flushed totals.
    total: MeshStats,
    tracer: Tracer,
    faults: FaultState,
}

impl MeshNetwork {
    /// Build the `kind` mesh where every link follows `mode` and each
    /// hop costs `hop_latency` cycles of routing delay.
    pub fn new(mesh: Mesh2D, kind: MeshKind, mode: LinkMode, hop_latency: u64) -> MeshNetwork {
        let make = || match mode {
            LinkMode::BytesPerCycle(b) => FifoResource::per_units(1, b),
            LinkMode::TransactionPerCycle => FifoResource::per_units(1, 1),
        };
        let links = (0..mesh.len() * 4).map(|_| make()).collect();
        MeshNetwork {
            mesh,
            kind,
            mode,
            hop_latency,
            links,
            link_bytes: vec![0; mesh.len() * 4],
            scratch: MeshStats::default(),
            total: MeshStats::default(),
            tracer: Tracer::disabled(),
            faults: FaultState::disabled(),
        }
    }

    /// Attach a tracer; every subsequent link reservation emits a span
    /// on its [`Track::MeshLink`] track.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attach fault state; armed stall events perturb subsequent
    /// transfers (exactly one transfer per event).
    pub fn set_faults(&mut self, faults: FaultState) {
        self.faults = faults;
    }

    fn units_for(&self, wire_bytes: u64) -> u64 {
        match self.mode {
            LinkMode::BytesPerCycle(_) => wire_bytes,
            LinkMode::TransactionPerCycle => 1,
        }
    }

    /// Whether a tracer is attached (fast-forward executors fall back
    /// to per-event transfers so the timeline stays complete).
    pub fn is_traced(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// XY-route legs from `src` to `dst`: `(steps, direction index,
    /// node index delta)` for the X leg then the Y leg — the walk
    /// [`MeshNetwork::transfer`] takes, shared with the span executor
    /// and its quiescence pre-check.
    fn legs(&self, src: NodeId, dst: NodeId) -> [(usize, usize, isize); 2] {
        let (sc, dc) = (self.mesh.coord(src), self.mesh.coord(dst));
        let cols = self.mesh.cols() as isize;
        let dx = dc.x as isize - sc.x as isize;
        let dy = dc.y as isize - sc.y as isize;
        [
            (
                dx.unsigned_abs(),
                if dx > 0 {
                    Direction::East
                } else {
                    Direction::West
                }
                .index(),
                dx.signum(),
            ),
            (
                dy.unsigned_abs(),
                if dy > 0 {
                    Direction::South
                } else {
                    Direction::North
                }
                .index(),
                dy.signum() * cols,
            ),
        ]
    }

    /// Tail serialization interval for `wire_bytes` under this mesh's
    /// link mode.
    fn serialization(&self, wire_bytes: u64) -> Cycle {
        match self.mode {
            LinkMode::BytesPerCycle(b) => Cycle(wire_bytes.max(1).div_ceil(b)),
            LinkMode::TransactionPerCycle => Cycle(1),
        }
    }

    /// End-to-end latency of an uncontended `src -> dst` transfer of
    /// `wire_bytes`: pure geometry and rates, the constant every
    /// transfer in an absorbed span observes.
    pub fn uncontended_latency(&self, src: NodeId, dst: NodeId, wire_bytes: u64) -> Cycle {
        let [x, y] = self.legs(src, dst);
        let hops = (x.0 + y.0) as u64;
        Cycle(hops.max(1) * self.hop_latency) + self.serialization(wire_bytes)
    }

    /// True when every link on the XY route `src -> dst` is idle at
    /// `at` (frontier at or before `at`) — the conservative
    /// quiescence pre-check for [`MeshNetwork::transfer_run`], taken
    /// at the span's first issue time (later hops and later transfers
    /// only ever run later).
    pub fn quiet_route(&self, src: NodeId, dst: NodeId, at: Cycle) -> bool {
        let mut node = src.raw();
        for (steps, dir, delta) in self.legs(src, dst) {
            for _ in 0..steps {
                if self.links[node * 4 + dir].free_at() > at {
                    return false;
                }
                node = node.wrapping_add_signed(delta);
            }
        }
        true
    }

    /// Absorb a span of `n` identical transfers `src -> dst` of
    /// `wire_bytes`, the `i`-th issued at `start_of(i)`, in closed
    /// form. Preconditions — the caller gates on them, debug builds
    /// assert them:
    ///
    /// * every traversed link is idle when the span begins
    ///   ([`MeshNetwork::quiet_route`] at `start_of(0)`),
    /// * issue times are spaced further apart than the link hold (true
    ///   for blocking reads, whose spacing is a full round trip),
    /// * no tracer is attached and no fault events are pending.
    ///
    /// Then every transfer is uncontended, its latency is the
    /// geometric constant of [`MeshNetwork::uncontended_latency`], and
    /// the per-link reservations absorb via
    /// [`FifoResource::absorb_run`] — the final state (link frontiers,
    /// busy cycles, idle-gap rings, wire bytes, scratch statistics) is
    /// byte-identical to `n` [`MeshNetwork::transfer`] calls at `O(1)`
    /// per link instead of `O(n)`.
    pub fn transfer_run(
        &mut self,
        n: u64,
        src: NodeId,
        dst: NodeId,
        wire_bytes: u64,
        start_of: impl Fn(u64) -> Cycle,
    ) -> Cycle {
        debug_assert!(!self.tracer.is_enabled(), "transfer_run skips tracer spans");
        debug_assert!(self.quiet_route(src, dst, start_of(0)));
        let units = self.units_for(wire_bytes);
        let hold = self
            .links
            .first()
            .expect("mesh has links")
            .service_cycles(units);
        let mut node = src.raw();
        let mut hop = 0u64;
        let legs = self.legs(src, dst);
        for (steps, dir, delta) in legs {
            for _ in 0..steps {
                // The header reaches hop `h` one hop latency after the
                // previous one, exactly as the per-event walk advances.
                let offset = Cycle(hop * self.hop_latency);
                let link = node * 4 + dir;
                self.links[link]
                    .absorb_run(n, Cycle(hold.raw() * n), |i| (start_of(i) + offset, hold));
                self.link_bytes[link] += wire_bytes * n;
                node = node.wrapping_add_signed(delta);
                hop += 1;
            }
        }
        let hops = (legs[0].0 + legs[1].0) as u64;
        let latency = Cycle(hops.max(1) * self.hop_latency) + self.serialization(wire_bytes);
        self.scratch.transfers += n;
        self.scratch.bytes += wire_bytes * n;
        self.scratch.byte_hops += wire_bytes * hops * n;
        self.scratch.latency.record_n(latency.raw(), n);
        latency
    }

    /// Send `wire_bytes` from `src` to `dst` starting at `at`.
    ///
    /// The header advances one hop per `hop_latency` cycles, reserving
    /// each traversed link FIFO for the message's serialization time;
    /// the tail arrives one serialization interval after the header.
    /// `src == dst` models a local (router-bypass) delivery costing one
    /// hop latency.
    pub fn transfer(
        &mut self,
        at: Cycle,
        src: NodeId,
        dst: NodeId,
        wire_bytes: u64,
    ) -> TransferResult {
        let units = self.units_for(wire_bytes);
        let hop_latency = Cycle(self.hop_latency);

        // Walk the XY route in place: the X leg steps the node index
        // by ±1, the Y leg by ±cols — the same hops `route_xy` yields,
        // without materialising them.
        let legs = self.legs(src, dst);
        let mut node = src.raw();
        let mut t = at;
        let mut queued = Cycle::ZERO;
        // Last traversed link, for fault-stall attribution (a local
        // delivery stalls at the source router).
        let mut last = (node as u32, 0u8);
        for (steps, dir, delta) in legs {
            for _ in 0..steps {
                let link = node * 4 + dir;
                let r = self.links[link].request(t, units);
                self.link_bytes[link] += wire_bytes;
                if self.tracer.is_enabled() {
                    self.tracer.span(
                        Track::MeshLink {
                            mesh: self.kind,
                            node: node as u32,
                            dir: dir as u8,
                        },
                        "xfer",
                        r.start,
                        r.end,
                    );
                }
                queued += r.wait(t);
                t = r.start + hop_latency;
                last = (node as u32, dir as u8);
                node = node.wrapping_add_signed(delta);
            }
        }
        let hops = legs[0].0 + legs[1].0;

        // Tail of the message: serialization of the payload behind the
        // header. For a zero-hop (local) transfer charge one hop of
        // latency plus serialization at the local port rate.
        let serialization = self.serialization(wire_bytes);
        let mut arrival = if hops == 0 {
            at + hop_latency + serialization
        } else {
            t + serialization
        };
        if self.faults.is_enabled() {
            if let Some(extra) = self.faults.mesh_stall(self.kind, at) {
                // A stall window holds the message at its last
                // traversed link.
                arrival += Cycle(extra);
                let (node, dir) = last;
                self.tracer.instant(
                    Track::MeshLink {
                        mesh: self.kind,
                        node,
                        dir,
                    },
                    "fault:mesh_stall",
                    arrival,
                );
            }
        }
        self.scratch.transfers += 1;
        self.scratch.bytes += wire_bytes;
        self.scratch.byte_hops += wire_bytes * hops as u64;
        self.scratch.latency.record((arrival - at).raw());
        TransferResult {
            arrival,
            hops: hops as u32,
            queued,
        }
    }

    /// Fold the scratch statistics into the running totals. Machine
    /// models call this at phase boundaries; getters merge the two
    /// sides on read, so flushing (or never flushing) cannot change
    /// any reported figure — it only bounds how much scratch state a
    /// phase accumulates.
    pub fn flush_stats(&mut self) {
        self.total.merge(&self.scratch);
        self.scratch.clear();
    }

    /// Total transactions carried.
    pub fn transfers(&self) -> u64 {
        self.total.transfers + self.scratch.transfers
    }

    /// Total wire bytes carried.
    pub fn bytes(&self) -> u64 {
        self.total.bytes + self.scratch.bytes
    }

    /// Sum over transfers of `wire_bytes * hops` — the fabric activity
    /// figure the energy model charges per byte-hop.
    pub fn byte_hops(&self) -> u64 {
        self.total.byte_hops + self.scratch.byte_hops
    }

    /// End-to-end latency histogram (cycles): the merge of flushed
    /// totals and the current scratch window, exact by
    /// [`Histogram::merge`].
    pub fn latency(&self) -> Histogram {
        let mut h = self.total.latency.clone();
        h.merge(&self.scratch.latency);
        h
    }

    /// Busiest link's busy-cycle count — the congestion hot spot.
    pub fn max_link_busy(&self) -> Cycle {
        self.links
            .iter()
            .map(desim::FifoResource::busy_cycles)
            .max()
            .unwrap_or(Cycle::ZERO)
    }

    /// Busy cycles of the output link leaving `from` in `dir`.
    pub fn link_busy(&self, from: Coord, dir: Direction) -> Cycle {
        let node = self.mesh.node(from).raw();
        self.links[node * 4 + dir.index()].busy_cycles()
    }

    /// Busy cycles summed over every directed link.
    pub fn total_link_busy(&self) -> Cycle {
        self.links
            .iter()
            .map(desim::FifoResource::busy_cycles)
            .fold(Cycle::ZERO, |a, b| a + b)
    }

    /// Per-link busy cycles, flattened `node * 4 + dir` — cheap to
    /// snapshot at phase boundaries.
    pub fn link_busy_vec(&self) -> Vec<Cycle> {
        self.links
            .iter()
            .map(desim::FifoResource::busy_cycles)
            .collect()
    }

    /// Load summary of every link that carried traffic, in
    /// `(node, dir)` order. `makespan` scales busy cycles into a busy
    /// fraction (clamped to 1: reservations can extend past the last
    /// core cursor).
    pub fn link_stats(&self, makespan: Cycle) -> Vec<LinkLoad> {
        let mut out = Vec::new();
        for (i, link) in self.links.iter().enumerate() {
            let byte_hops = self.link_bytes[i];
            let busy = link.busy_cycles();
            if byte_hops == 0 && busy == Cycle::ZERO {
                continue;
            }
            let busy_fraction = if makespan == Cycle::ZERO {
                0.0
            } else {
                (busy.raw() as f64 / makespan.raw() as f64).min(1.0)
            };
            out.push(LinkLoad {
                mesh: self.kind.label().to_string(),
                node: (i / 4) as u32,
                dir: direction_letter((i % 4) as u8).to_string(),
                byte_hops,
                busy_cycles: busy.raw(),
                busy_fraction,
            });
        }
        out
    }

    /// Clear all link state and statistics.
    pub fn reset(&mut self) {
        for link in &mut self.links {
            link.reset();
        }
        for bytes in &mut self.link_bytes {
            *bytes = 0;
        }
        self.scratch.clear();
        self.total.clear();
    }
}

/// Datasheet-derived fabric parameters.
#[derive(Debug, Clone, Copy)]
pub struct EMeshParams {
    /// cMesh/xMesh link width in bytes per cycle (E16G3: 8 — a double
    /// word per cycle per link).
    pub link_bytes_per_cycle: u64,
    /// Routing latency per node (E16G3: single-cycle wait per node).
    pub hop_latency: u64,
    /// Off-chip eLink bandwidth in bytes per cycle at core clock
    /// (E16G3: 8 GB/s total at 1 GHz = 8 B/cycle).
    pub elink_bytes_per_cycle: u64,
}

impl Default for EMeshParams {
    fn default() -> Self {
        EMeshParams {
            link_bytes_per_cycle: 8,
            hop_latency: 1,
            elink_bytes_per_cycle: 8,
        }
    }
}

/// Constant timing components of an uncontended off-chip read from a
/// fixed source (see [`EMesh::offchip_read_path`]): the per-mesh
/// latencies depend only on geometry and rates, the eLink holds only
/// on sizes, so a span of back-to-back reads differs read to read
/// only in its SDRAM access time.
#[derive(Debug, Clone, Copy)]
pub struct OffchipReadPath {
    /// rMesh request latency: issue to arrival at the eLink node.
    pub request: Cycle,
    /// eLink hold for the 8-byte read request.
    pub out_hold: Cycle,
    /// eLink hold for the `bytes + 8` reply payload.
    pub back_hold: Cycle,
    /// cMesh reply latency: eLink release to data back at the reader.
    pub reply: Cycle,
}

impl OffchipReadPath {
    /// End-to-end latency of one read given its SDRAM access time —
    /// the closed form of [`EMesh::read_offchip`]'s arrival delta on
    /// an uncontended fabric.
    pub fn latency(&self, memory_cycles: Cycle) -> Cycle {
        self.request + self.out_hold + memory_cycles + self.back_hold + self.reply
    }
}

/// True when fault state cannot perturb timing: disabled outright, or
/// armed with no events left to fire (probing an empty schedule does
/// not mutate it, so skipping the probes is invisible).
fn fault_free(faults: &FaultState) -> bool {
    !faults.is_enabled() || faults.pending() == 0
}

/// The full eMesh: three physical meshes plus the off-chip eLink port.
///
/// * on-chip writes ride the cMesh and are *posted* — the sender
///   continues immediately (this is the "write without stalling"
///   behaviour the paper exploits in FFBP),
/// * reads issue a request on the rMesh and stall the requester until
///   the reply write returns over the cMesh,
/// * off-chip traffic crosses the xMesh to the eLink node and then
///   serialises through the much narrower eLink.
pub struct EMesh {
    mesh: Mesh2D,
    /// On-chip write mesh.
    pub cmesh: MeshNetwork,
    /// Read-request mesh.
    pub rmesh: MeshNetwork,
    /// Off-chip mesh.
    pub xmesh: MeshNetwork,
    /// The shared off-chip link (both directions contend).
    pub elink: FifoResource,
    elink_node: NodeId,
    tracer: Tracer,
    faults: FaultState,
}

impl EMesh {
    /// Build the fabric for `mesh` with `params`.
    pub fn new(mesh: Mesh2D, params: EMeshParams) -> EMesh {
        EMesh {
            mesh,
            cmesh: MeshNetwork::new(
                mesh,
                MeshKind::CMesh,
                LinkMode::BytesPerCycle(params.link_bytes_per_cycle),
                params.hop_latency,
            ),
            rmesh: MeshNetwork::new(
                mesh,
                MeshKind::RMesh,
                LinkMode::TransactionPerCycle,
                params.hop_latency,
            ),
            xmesh: MeshNetwork::new(
                mesh,
                MeshKind::XMesh,
                LinkMode::BytesPerCycle(params.link_bytes_per_cycle),
                params.hop_latency,
            ),
            elink: FifoResource::per_units(1, params.elink_bytes_per_cycle),
            elink_node: mesh.elink_node(),
            tracer: Tracer::disabled(),
            faults: FaultState::disabled(),
        }
    }

    /// Attach a tracer to the fabric: all three meshes emit per-link
    /// spans and the eLink emits occupancy spans.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.cmesh.set_tracer(tracer.clone());
        self.rmesh.set_tracer(tracer.clone());
        self.xmesh.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attach fault state to the fabric: the three meshes take stall
    /// events, the eLink takes degradation windows.
    pub fn set_faults(&mut self, faults: FaultState) {
        self.cmesh.set_faults(faults.clone());
        self.rmesh.set_faults(faults.clone());
        self.xmesh.set_faults(faults.clone());
        self.faults = faults;
    }

    /// Extra start delay for an eLink operation at `at` when a
    /// degradation window has armed (link retraining: the port is
    /// unavailable for the window).
    fn elink_fault_delay(&mut self, at: Cycle) -> Cycle {
        match self.faults.elink_degrade(at) {
            Some(extra) => {
                self.tracer.instant(Track::ELink, "fault:elink_degrade", at);
                Cycle(extra)
            }
            None => Cycle::ZERO,
        }
    }

    /// Load summary of every loaded link across all three meshes.
    pub fn link_stats(&self, makespan: Cycle) -> Vec<LinkLoad> {
        let mut out = self.cmesh.link_stats(makespan);
        out.extend(self.rmesh.link_stats(makespan));
        out.extend(self.xmesh.link_stats(makespan));
        out
    }

    /// Busy cycles summed over every directed link of all meshes.
    pub fn total_link_busy(&self) -> Cycle {
        self.cmesh.total_link_busy() + self.rmesh.total_link_busy() + self.xmesh.total_link_busy()
    }

    /// Cycles the off-chip eLink has been reserved — one of the
    /// component busy times the power sampler snapshots at phase
    /// boundaries.
    pub fn elink_busy_cycles(&self) -> Cycle {
        self.elink.busy_cycles()
    }

    /// Byte-hops summed across all three meshes.
    pub fn total_byte_hops(&self) -> u64 {
        self.cmesh.byte_hops() + self.rmesh.byte_hops() + self.xmesh.byte_hops()
    }

    /// The topology this fabric spans.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Node hosting the off-chip eLink.
    pub fn elink_node(&self) -> NodeId {
        self.elink_node
    }

    /// Posted write of `bytes` payload from `src` into `dst`'s memory.
    /// Returns the delivery completion time; the *sender* does not wait.
    pub fn write_onchip(
        &mut self,
        at: Cycle,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> TransferResult {
        self.cmesh.transfer(at, src, dst, bytes + 8)
    }

    /// Blocking read of `bytes` from `dst`'s memory by `src`. Returns the
    /// time the data is back at `src` (request on rMesh, reply on cMesh).
    pub fn read_onchip(
        &mut self,
        at: Cycle,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> TransferResult {
        let req = self.rmesh.transfer(at, src, dst, 8);
        let rep = self.cmesh.transfer(req.arrival, dst, src, bytes + 8);
        TransferResult {
            arrival: rep.arrival,
            hops: req.hops + rep.hops,
            queued: req.queued + rep.queued,
        }
    }

    /// Posted write of `bytes` from `src` to off-chip memory: xMesh to
    /// the eLink node, then serialization through the eLink. Returns the
    /// time the payload has left the chip.
    pub fn write_offchip(&mut self, at: Cycle, src: NodeId, bytes: u64) -> TransferResult {
        let to_edge = self.xmesh.transfer(at, src, self.elink_node, bytes + 8);
        let delay = self.elink_fault_delay(to_edge.arrival);
        let r = self.elink.request(to_edge.arrival + delay, bytes + 8);
        self.tracer.span(Track::ELink, "wr_out", r.start, r.end);
        TransferResult {
            arrival: r.end,
            hops: to_edge.hops,
            queued: to_edge.queued + r.wait(to_edge.arrival),
        }
    }

    /// Blocking read of `bytes` from off-chip memory by `src`.
    /// `memory_cycles` is the SDRAM access time supplied by the memory
    /// model. Returns the time the data is back at `src`: request over
    /// rMesh to the edge, eLink request slot, SDRAM access, reply data
    /// serialised through the eLink and routed back over the cMesh.
    pub fn read_offchip(
        &mut self,
        at: Cycle,
        src: NodeId,
        bytes: u64,
        memory_cycles: Cycle,
    ) -> TransferResult {
        let req = self.rmesh.transfer(at, src, self.elink_node, 8);
        let delay = self.elink_fault_delay(req.arrival);
        let out = self.elink.request(req.arrival + delay, 8);
        let data_ready = out.end + memory_cycles;
        let back = self.elink.request(data_ready, bytes + 8);
        self.tracer.span(Track::ELink, "rd_req", out.start, out.end);
        self.tracer
            .span(Track::ELink, "rd_data", back.start, back.end);
        let rep = self
            .cmesh
            .transfer(back.end, self.elink_node, src, bytes + 8);
        TransferResult {
            arrival: rep.arrival,
            hops: req.hops + rep.hops,
            queued: req.queued + rep.queued + out.wait(req.arrival) + back.wait(data_ready),
        }
    }

    /// The constant timing components of [`EMesh::read_offchip`] for
    /// `bytes`-sized reads from `src` on an uncontended fabric.
    pub fn offchip_read_path(&self, src: NodeId, bytes: u64) -> OffchipReadPath {
        OffchipReadPath {
            request: self.rmesh.uncontended_latency(src, self.elink_node, 8),
            out_hold: self.elink.service_cycles(8),
            back_hold: self.elink.service_cycles(bytes + 8),
            reply: self
                .cmesh
                .uncontended_latency(self.elink_node, src, bytes + 8),
        }
    }

    /// True when a span of back-to-back off-chip reads from `src`
    /// first issued at `t0` can be absorbed in closed form: no tracer
    /// on the path (spans would go missing), no pending fault events
    /// (they would perturb timing), and the rMesh route, the eLink
    /// and the cMesh return route all idle at `t0`. The resource
    /// checks are conservative — the eLink and cMesh are actually
    /// used later than `t0` — so a false here only costs a per-event
    /// fallback, never correctness.
    pub fn can_absorb_offchip_reads(&self, src: NodeId, t0: Cycle) -> bool {
        !self.tracer.is_enabled()
            && !self.rmesh.is_traced()
            && !self.cmesh.is_traced()
            && fault_free(&self.faults)
            && fault_free(&self.rmesh.faults)
            && fault_free(&self.cmesh.faults)
            && self.elink.free_at() <= t0
            && self.rmesh.quiet_route(src, self.elink_node, t0)
            && self.cmesh.quiet_route(self.elink_node, src, t0)
    }

    /// Absorb `n` back-to-back off-chip reads from `src` whose issue
    /// times `t[i]` and SDRAM access times `mem[i]` the caller already
    /// laid out arithmetically with [`EMesh::offchip_read_path`].
    /// Byte-identical in final fabric state to `n`
    /// [`EMesh::read_offchip`] calls, under the
    /// [`EMesh::can_absorb_offchip_reads`] precondition: request
    /// headers absorb into the rMesh at the issue times, the eLink
    /// takes the `2n` interleaved request/reply reservations, and the
    /// replies absorb into the cMesh the instant the eLink releases
    /// them.
    pub fn absorb_offchip_reads(&mut self, src: NodeId, bytes: u64, t: &[Cycle], mem: &[Cycle]) {
        let n = t.len() as u64;
        if n == 0 {
            return;
        }
        debug_assert_eq!(t.len(), mem.len());
        let path = self.offchip_read_path(src, bytes);
        self.rmesh
            .transfer_run(n, src, self.elink_node, 8, |i| t[i as usize]);
        self.elink.absorb_run(
            2 * n,
            Cycle((path.out_hold.raw() + path.back_hold.raw()) * n),
            |k| {
                let i = (k / 2) as usize;
                let out_start = t[i] + path.request;
                if k % 2 == 0 {
                    (out_start, path.out_hold)
                } else {
                    (out_start + path.out_hold + mem[i], path.back_hold)
                }
            },
        );
        let release = path.request + path.out_hold + path.back_hold;
        self.cmesh
            .transfer_run(n, self.elink_node, src, bytes + 8, |i| {
                t[i as usize] + release + mem[i as usize]
            });
    }

    /// Reserve the raw eLink (used by DMA models).
    pub fn elink_request(&mut self, at: Cycle, bytes: u64) -> Reservation {
        let delay = self.elink_fault_delay(at);
        let r = self.elink.request(at + delay, bytes);
        self.tracer.span(Track::ELink, "dma", r.start, r.end);
        r
    }

    /// Fold each mesh's scratch statistics into its totals. Machine
    /// models call this at phase boundaries; see
    /// [`MeshNetwork::flush_stats`].
    pub fn flush_stats(&mut self) {
        self.cmesh.flush_stats();
        self.rmesh.flush_stats();
        self.xmesh.flush_stats();
    }

    /// Reset all meshes and the eLink.
    pub fn reset(&mut self) {
        self.cmesh.reset();
        self.rmesh.reset();
        self.xmesh.reset();
        self.elink.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> EMesh {
        EMesh::new(Mesh2D::e16g3(), EMeshParams::default())
    }

    #[test]
    fn neighbor_write_is_cheap() {
        let mut f = fabric();
        let r = f.write_onchip(Cycle(0), NodeId(0), NodeId(1), 8);
        // 1 hop + serialization of 16 wire bytes at 8 B/cyc = 1 + 2.
        assert_eq!(r.hops, 1);
        assert_eq!(r.arrival, Cycle(3));
    }

    #[test]
    fn distant_write_costs_more_hops() {
        let mut f = fabric();
        let near = f.write_onchip(Cycle(0), NodeId(0), NodeId(1), 64);
        f.reset();
        let far = f.write_onchip(Cycle(0), NodeId(0), NodeId(15), 64);
        assert_eq!(far.hops, 6);
        assert!(far.arrival > near.arrival);
        // Same serialization, extra hops only.
        assert_eq!(far.arrival.raw() - near.arrival.raw(), 5);
    }

    #[test]
    fn read_costs_round_trip() {
        let mut f = fabric();
        let w = f.write_onchip(Cycle(0), NodeId(0), NodeId(5), 8);
        f.reset();
        let r = f.read_onchip(Cycle(0), NodeId(0), NodeId(5), 8);
        assert!(
            r.arrival > w.arrival,
            "read {:?} should exceed posted write {:?}",
            r,
            w
        );
        assert_eq!(r.hops, 2 * w.hops);
    }

    #[test]
    fn contention_queues_on_shared_link() {
        let mut f = fabric();
        // Two large writes from the same source at the same time share
        // the first eastbound link.
        let a = f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 800);
        let b = f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 800);
        assert_eq!(a.queued, Cycle::ZERO);
        assert!(b.queued > Cycle::ZERO);
        assert!(b.arrival > a.arrival);
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut f = fabric();
        let a = f.write_onchip(Cycle(0), NodeId(0), NodeId(1), 800);
        // Row 3: node 12 -> 13 uses a different link entirely.
        let b = f.write_onchip(Cycle(0), NodeId(12), NodeId(13), 800);
        assert_eq!(a.queued, Cycle::ZERO);
        assert_eq!(b.queued, Cycle::ZERO);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn offchip_read_includes_memory_and_elink() {
        let mut f = fabric();
        let r = f.read_offchip(Cycle(0), NodeId(0), 64, Cycle(50));
        // Must include at least: route to edge + elink + 50 + data return.
        assert!(r.arrival.raw() > 50 + 8);
    }

    #[test]
    fn offchip_bandwidth_is_the_bottleneck() {
        let mut f = fabric();
        // Pump 10 KB off chip from one core; the eLink (8 B/cyc) should
        // dominate: ~10*1024/8 cycles of serialization.
        let mut t = Cycle(0);
        let mut last = Cycle(0);
        for _ in 0..10 {
            let r = f.write_offchip(t, NodeId(0), 1024);
            last = r.arrival;
            t += Cycle(1);
        }
        assert!(last.raw() >= 10 * 1032 / 8);
    }

    #[test]
    fn elink_is_shared_between_cores() {
        let mut f = fabric();
        let a = f.write_offchip(Cycle(0), NodeId(0), 1024);
        let b = f.write_offchip(Cycle(0), NodeId(15), 1024);
        // Whoever arrives second at the edge queues behind the first.
        let (first, second) = if a.arrival < b.arrival {
            (a, b)
        } else {
            (b, a)
        };
        assert!(second.queued > Cycle::ZERO || second.arrival > first.arrival);
    }

    #[test]
    fn local_transfer_still_costs_a_cycle() {
        let mut f = fabric();
        let r = f.write_onchip(Cycle(10), NodeId(4), NodeId(4), 8);
        assert_eq!(r.hops, 0);
        assert!(r.arrival > Cycle(10));
    }

    #[test]
    fn zero_byte_transfer_still_takes_a_transaction_slot() {
        // A zero-byte payload maps to zero link *units* under
        // BytesPerCycle — the FIFO still charges its one-cycle
        // transaction slot — while the tail serialization clamps to
        // one cycle (`wire_bytes.max(1)`). The edge case pins both
        // semantics: arrival equals a 1-byte message's, and the link
        // is held for exactly one cycle.
        let mut f = fabric();
        let zero = f.cmesh.transfer(Cycle(0), NodeId(0), NodeId(1), 0);
        assert_eq!(zero.hops, 1);
        // 1 hop latency + ceil(max(0,1)/8) = 2 cycles.
        assert_eq!(zero.arrival, Cycle(2));
        assert_eq!(
            f.cmesh.link_busy(Coord { x: 0, y: 0 }, Direction::East),
            Cycle(1)
        );
        let mut g = fabric();
        let one = g.cmesh.transfer(Cycle(0), NodeId(0), NodeId(1), 1);
        assert_eq!(one.arrival, zero.arrival);
        // Accounting: the transfer counts, but carries no bytes.
        assert_eq!(f.cmesh.transfers(), 1);
        assert_eq!(f.cmesh.bytes(), 0);
        assert_eq!(f.cmesh.byte_hops(), 0);
        // Local zero-byte delivery: one hop latency + clamped tail.
        let local = f.cmesh.transfer(Cycle(10), NodeId(4), NodeId(4), 0);
        assert_eq!(local.hops, 0);
        assert_eq!(local.arrival, Cycle(12));
    }

    #[test]
    fn flush_timing_never_changes_reported_statistics() {
        // Same traffic on two fabrics, one flushing after every
        // transfer: every merged-view getter must agree.
        let mut a = fabric();
        let mut b = fabric();
        let traffic: [(u16, u16, u64); 4] = [(0, 15, 256), (3, 12, 64), (5, 5, 8), (1, 2, 0)];
        for (i, (s, d, bytes)) in traffic.into_iter().enumerate() {
            let t = Cycle(i as u64 * 3);
            let ra = a.cmesh.transfer(t, NodeId(s), NodeId(d), bytes);
            let rb = b.cmesh.transfer(t, NodeId(s), NodeId(d), bytes);
            assert_eq!(ra.arrival, rb.arrival);
            b.flush_stats();
        }
        assert_eq!(a.cmesh.transfers(), b.cmesh.transfers());
        assert_eq!(a.cmesh.bytes(), b.cmesh.bytes());
        assert_eq!(a.cmesh.byte_hops(), b.cmesh.byte_hops());
        let (ha, hb) = (a.cmesh.latency(), b.cmesh.latency());
        assert_eq!(ha.count(), hb.count());
        assert_eq!(ha.min(), hb.min());
        assert_eq!(ha.max(), hb.max());
        assert_eq!(ha.quantile(0.5), hb.quantile(0.5));
        // A final flush on `a` leaves everything unchanged too.
        let before = (a.cmesh.transfers(), a.cmesh.latency().quantile(0.95));
        a.flush_stats();
        assert_eq!(
            (a.cmesh.transfers(), a.cmesh.latency().quantile(0.95)),
            before
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut f = fabric();
        f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 32);
        f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 32);
        assert_eq!(f.cmesh.transfers(), 2);
        assert_eq!(f.cmesh.bytes(), 80);
        assert!(f.cmesh.max_link_busy() > Cycle::ZERO);
        assert_eq!(f.cmesh.latency().count(), 2);
        f.reset();
        assert_eq!(f.cmesh.transfers(), 0);
        assert_eq!(f.cmesh.max_link_busy(), Cycle::ZERO);
    }

    #[test]
    fn link_stats_sum_to_byte_hops() {
        let mut f = fabric();
        f.write_onchip(Cycle(0), NodeId(0), NodeId(15), 256);
        f.read_onchip(Cycle(10), NodeId(3), NodeId(12), 64);
        f.write_offchip(Cycle(20), NodeId(5), 512);
        let stats = f.link_stats(Cycle(10_000));
        let total: u64 = stats.iter().map(|l| l.byte_hops).sum();
        assert_eq!(
            total,
            f.cmesh.byte_hops() + f.rmesh.byte_hops() + f.xmesh.byte_hops()
        );
        assert!(stats.iter().all(|l| l.busy_fraction <= 1.0));
        assert!(stats.iter().any(|l| l.mesh == "cmesh"));
        assert!(stats.iter().any(|l| l.mesh == "rmesh"));
        assert!(stats.iter().any(|l| l.mesh == "xmesh"));
    }

    #[test]
    fn tracer_records_mesh_link_and_elink_spans() {
        use desim::trace::EventKind;
        let mut f = fabric();
        let t = Tracer::enabled();
        f.set_tracer(t.clone());
        f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 64);
        f.write_offchip(Cycle(0), NodeId(0), 128);
        let events = t.snapshot();
        assert!(events.iter().any(|e| matches!(
            e.track,
            Track::MeshLink {
                mesh: MeshKind::CMesh,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e.track,
            Track::MeshLink {
                mesh: MeshKind::XMesh,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| e.track == Track::ELink && matches!(e.kind, EventKind::Span { .. })));
    }

    #[test]
    fn mesh_stall_fault_perturbs_exactly_one_transfer() {
        use faultsim::{FaultEvent, FaultPlan};
        let mut clean = fabric();
        let baseline = clean
            .write_onchip(Cycle(0), NodeId(0), NodeId(3), 64)
            .arrival;

        let mut f = fabric();
        let plan = FaultPlan::from_events(
            0,
            vec![FaultEvent::MeshStall {
                mesh: MeshKind::CMesh,
                at: Cycle(0),
                extra: 500,
            }],
        );
        let faults = FaultState::from_plan(&plan);
        f.set_faults(faults.clone());
        let hit = f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 64).arrival;
        assert_eq!(hit, baseline + Cycle(500));
        // The event fired once: the next identical transfer only pays
        // ordinary link contention, never the stall again.
        let next = f.write_onchip(Cycle(10_000), NodeId(0), NodeId(3), 64);
        assert_eq!(next.arrival, Cycle(10_000) + (baseline - Cycle(0)));
        assert_eq!(faults.totals().faults_injected, 1);
    }

    #[test]
    fn elink_degrade_fault_delays_the_offchip_path_once() {
        use faultsim::{FaultEvent, FaultPlan};
        let mut clean = fabric();
        let baseline = clean.write_offchip(Cycle(0), NodeId(0), 128).arrival;

        let mut f = fabric();
        let faults = FaultState::from_plan(&FaultPlan::from_events(
            0,
            vec![FaultEvent::ElinkDegrade {
                at: Cycle(0),
                extra: 300,
            }],
        ));
        f.set_faults(faults.clone());
        let hit = f.write_offchip(Cycle(0), NodeId(0), 128).arrival;
        assert_eq!(hit, baseline + Cycle(300));
        assert_eq!(faults.totals().faults_injected, 1);
        assert_eq!(faults.pending(), 0);
    }

    #[test]
    fn disabled_faults_leave_timing_bit_identical() {
        let mut a = fabric();
        let mut b = fabric();
        b.set_faults(FaultState::disabled());
        for t in 0..50u64 {
            let ra = a.write_onchip(Cycle(t), NodeId(0), NodeId(15), 256);
            let rb = b.write_onchip(Cycle(t), NodeId(0), NodeId(15), 256);
            assert_eq!(ra.arrival, rb.arrival);
            let oa = a.read_offchip(Cycle(t), NodeId(3), 64, Cycle(40));
            let ob = b.read_offchip(Cycle(t), NodeId(3), 64, Cycle(40));
            assert_eq!(oa.arrival, ob.arrival);
        }
    }

    #[test]
    fn absorbed_offchip_read_span_matches_per_event_execution() {
        // Same blocking-read schedule on two fabrics, one per-event
        // and one absorbed in closed form: every observable — the
        // closed-form arrival itself, frontiers, busy cycles, served
        // counts, scratch statistics, per-link loads, and how later
        // traffic lands in the remembered idle gaps — must agree.
        let mut a = fabric();
        let mut b = fabric();
        let src = NodeId(0);
        let bytes = 8u64;
        let path = b.offchip_read_path(src, bytes);
        // SDRAM times vary per read (open-row hit/miss mix); issue
        // times are spaced like blocking reads: previous arrival plus
        // an issue cycle.
        let mems: Vec<Cycle> = (0..200u64).map(|i| Cycle(20 + (i % 7) * 11)).collect();
        let mut t = Vec::new();
        let mut at = Cycle(100);
        for &m in &mems {
            t.push(at);
            let r = a.read_offchip(at, src, bytes, m);
            assert_eq!(r.arrival, at + path.latency(m), "closed form is exact");
            assert_eq!(r.queued, Cycle::ZERO, "span is uncontended");
            at = r.arrival + Cycle(1);
        }
        assert!(b.can_absorb_offchip_reads(src, t[0]));
        b.absorb_offchip_reads(src, bytes, &t, &mems);

        assert_eq!(a.elink.free_at(), b.elink.free_at());
        assert_eq!(a.elink.busy_cycles(), b.elink.busy_cycles());
        assert_eq!(a.elink.served(), b.elink.served());
        assert!((a.elink.mean_wait() - b.elink.mean_wait()).abs() < 1e-12);
        for (ma, mb) in [(&a.rmesh, &b.rmesh), (&a.cmesh, &b.cmesh)] {
            assert_eq!(ma.transfers(), mb.transfers());
            assert_eq!(ma.bytes(), mb.bytes());
            assert_eq!(ma.byte_hops(), mb.byte_hops());
            assert_eq!(ma.link_busy_vec(), mb.link_busy_vec());
            let (ha, hb) = (ma.latency(), mb.latency());
            assert_eq!(ha.count(), hb.count());
            assert_eq!(ha.min(), hb.min());
            assert_eq!(ha.max(), hb.max());
            assert_eq!(ha.quantile(0.5), hb.quantile(0.5));
        }
        let (sa, sb) = (a.link_stats(Cycle(1 << 20)), b.link_stats(Cycle(1 << 20)));
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!((x.byte_hops, x.busy_cycles), (y.byte_hops, y.busy_cycles));
        }
        // A late-timestamped read backfills identically on both sides:
        // the gap rings survived the absorption intact.
        let ra = a.read_offchip(Cycle(150), src, 64, Cycle(30));
        let rb = b.read_offchip(Cycle(150), src, 64, Cycle(30));
        assert_eq!(ra.arrival, rb.arrival);
    }

    #[test]
    fn absorb_precheck_rejects_busy_tracer_or_faulted_paths() {
        use faultsim::{FaultEvent, FaultPlan};
        // Draining eLink: a prior off-chip write holds the port.
        let mut f = fabric();
        let w = f.write_offchip(Cycle(0), NodeId(0), 1024);
        assert!(!f.can_absorb_offchip_reads(NodeId(0), Cycle(1)));
        assert!(f.can_absorb_offchip_reads(NodeId(0), w.arrival));
        // Tracer attached: per-event fallback keeps the timeline.
        let mut tr = fabric();
        tr.set_tracer(Tracer::enabled());
        assert!(!tr.can_absorb_offchip_reads(NodeId(0), Cycle(0)));
        // Armed fault events: timing may be perturbed. Once the event
        // has fired, the schedule is inert and absorption is safe.
        let mut fl = fabric();
        let faults = FaultState::from_plan(&FaultPlan::from_events(
            0,
            vec![FaultEvent::ElinkDegrade {
                at: Cycle(0),
                extra: 300,
            }],
        ));
        fl.set_faults(faults.clone());
        assert!(!fl.can_absorb_offchip_reads(NodeId(0), Cycle(0)));
        fl.write_offchip(Cycle(0), NodeId(0), 8);
        assert_eq!(faults.pending(), 0);
        assert!(fl.can_absorb_offchip_reads(NodeId(0), Cycle(10_000)));
    }

    #[test]
    fn rmesh_requests_are_one_per_cycle() {
        let mut f = fabric();
        // Ten read requests from the same node toward the same target:
        // the first rMesh link admits one per cycle.
        let mut arrivals = Vec::new();
        for _ in 0..10 {
            arrivals.push(f.rmesh.transfer(Cycle(0), NodeId(0), NodeId(3), 8).arrival);
        }
        for w in arrivals.windows(2) {
            assert_eq!(w[1].raw() - w[0].raw(), 1);
        }
    }
}
