//! The three-mesh eMesh fabric with contention and per-hop latency.

use desim::record::LinkLoad;
use desim::stats::Histogram;
use desim::trace::{direction_letter, MeshKind, Tracer, Track};
use desim::{Cycle, FifoResource, Reservation};
use faultsim::FaultState;

use crate::routing::{route_xy, Direction};
use crate::topology::{Coord, Mesh2D, NodeId};

/// How a link serialises traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkMode {
    /// `n` bytes per cycle (cMesh/xMesh data links).
    BytesPerCycle(u64),
    /// One transaction per cycle regardless of size (rMesh request wires).
    TransactionPerCycle,
}

/// Outcome of pushing one transaction through a mesh.
#[derive(Debug, Clone, Copy)]
pub struct TransferResult {
    /// Cycle the full payload has arrived at the destination router.
    pub arrival: Cycle,
    /// Router-to-router hops traversed.
    pub hops: u32,
    /// Total queueing delay accumulated across links.
    pub queued: Cycle,
}

/// One physical mesh: a grid of routers with four directed output links
/// each, modelled as FIFO servers, wormhole-pipelined with a single
/// cycle of routing latency per hop.
pub struct MeshNetwork {
    mesh: Mesh2D,
    kind: MeshKind,
    mode: LinkMode,
    hop_latency: u64,
    /// `links[node][direction]` for the four non-local directions.
    links: Vec<Vec<FifoResource>>,
    /// `link_bytes[node][direction]`: wire bytes each link carried.
    link_bytes: Vec<[u64; 4]>,
    transfers: u64,
    bytes: u64,
    byte_hops: u64,
    latency: Histogram,
    tracer: Tracer,
    faults: FaultState,
}

impl MeshNetwork {
    /// Build the `kind` mesh where every link follows `mode` and each
    /// hop costs `hop_latency` cycles of routing delay.
    pub fn new(mesh: Mesh2D, kind: MeshKind, mode: LinkMode, hop_latency: u64) -> MeshNetwork {
        let make = || match mode {
            LinkMode::BytesPerCycle(b) => FifoResource::per_units(1, b),
            LinkMode::TransactionPerCycle => FifoResource::per_units(1, 1),
        };
        let links = (0..mesh.len())
            .map(|_| (0..4).map(|_| make()).collect())
            .collect();
        MeshNetwork {
            mesh,
            kind,
            mode,
            hop_latency,
            links,
            link_bytes: vec![[0; 4]; mesh.len()],
            transfers: 0,
            bytes: 0,
            byte_hops: 0,
            latency: Histogram::new(),
            tracer: Tracer::disabled(),
            faults: FaultState::disabled(),
        }
    }

    /// Attach a tracer; every subsequent link reservation emits a span
    /// on its [`Track::MeshLink`] track.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attach fault state; armed stall events perturb subsequent
    /// transfers (exactly one transfer per event).
    pub fn set_faults(&mut self, faults: FaultState) {
        self.faults = faults;
    }

    fn units_for(&self, wire_bytes: u64) -> u64 {
        match self.mode {
            LinkMode::BytesPerCycle(_) => wire_bytes,
            LinkMode::TransactionPerCycle => 1,
        }
    }

    /// Send `wire_bytes` from `src` to `dst` starting at `at`.
    ///
    /// The header advances one hop per `hop_latency` cycles, reserving
    /// each traversed link FIFO for the message's serialization time;
    /// the tail arrives one serialization interval after the header.
    /// `src == dst` models a local (router-bypass) delivery costing one
    /// hop latency.
    pub fn transfer(
        &mut self,
        at: Cycle,
        src: NodeId,
        dst: NodeId,
        wire_bytes: u64,
    ) -> TransferResult {
        let (sc, dc) = (self.mesh.coord(src), self.mesh.coord(dst));
        let route = route_xy(&self.mesh, sc, dc);
        let units = self.units_for(wire_bytes);
        let mut t = at;
        let mut queued = Cycle::ZERO;
        for hop in &route {
            let hop_latency = self.hop_latency;
            let node = self.mesh.node(hop.from).raw();
            let dir = hop.dir.index();
            let r = self.links[node][dir].request(t, units);
            self.link_bytes[node][dir] += wire_bytes;
            if self.tracer.is_enabled() {
                self.tracer.span(
                    Track::MeshLink {
                        mesh: self.kind,
                        node: node as u32,
                        dir: dir as u8,
                    },
                    "xfer",
                    r.start,
                    r.end,
                );
            }
            queued += r.wait(t);
            t = r.start + Cycle(hop_latency);
        }
        // Tail of the message: serialization of the payload behind the
        // header. For a zero-hop (local) transfer charge one hop of
        // latency plus serialization at the local port rate.
        let serialization = match self.mode {
            LinkMode::BytesPerCycle(b) => Cycle(wire_bytes.max(1).div_ceil(b)),
            LinkMode::TransactionPerCycle => Cycle(1),
        };
        let mut arrival = if route.is_empty() {
            at + Cycle(self.hop_latency) + serialization
        } else {
            t + serialization
        };
        if self.faults.is_enabled() {
            if let Some(extra) = self.faults.mesh_stall(self.kind, at) {
                // A stall window holds the message at its last
                // traversed link (a local delivery stalls at the
                // source router).
                arrival += Cycle(extra);
                let (node, dir) = route.last().map_or_else(
                    || (self.mesh.node(sc).raw() as u32, 0u8),
                    |hop| (self.mesh.node(hop.from).raw() as u32, hop.dir.index() as u8),
                );
                self.tracer.instant(
                    Track::MeshLink {
                        mesh: self.kind,
                        node,
                        dir,
                    },
                    "fault:mesh_stall",
                    arrival,
                );
            }
        }
        self.transfers += 1;
        self.bytes += wire_bytes;
        self.byte_hops += wire_bytes * route.len() as u64;
        self.latency.record((arrival - at).raw());
        TransferResult {
            arrival,
            hops: route.len() as u32,
            queued,
        }
    }

    /// Total transactions carried.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total wire bytes carried.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Sum over transfers of `wire_bytes * hops` — the fabric activity
    /// figure the energy model charges per byte-hop.
    pub fn byte_hops(&self) -> u64 {
        self.byte_hops
    }

    /// End-to-end latency histogram (cycles).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Busiest link's busy-cycle count — the congestion hot spot.
    pub fn max_link_busy(&self) -> Cycle {
        self.links
            .iter()
            .flatten()
            .map(desim::FifoResource::busy_cycles)
            .max()
            .unwrap_or(Cycle::ZERO)
    }

    /// Busy cycles of the output link leaving `from` in `dir`.
    pub fn link_busy(&self, from: Coord, dir: Direction) -> Cycle {
        let node = self.mesh.node(from).raw();
        self.links[node][dir.index()].busy_cycles()
    }

    /// Busy cycles summed over every directed link.
    pub fn total_link_busy(&self) -> Cycle {
        self.links
            .iter()
            .flatten()
            .map(desim::FifoResource::busy_cycles)
            .fold(Cycle::ZERO, |a, b| a + b)
    }

    /// Per-link busy cycles, flattened `node * 4 + dir` — cheap to
    /// snapshot at phase boundaries.
    pub fn link_busy_vec(&self) -> Vec<Cycle> {
        self.links
            .iter()
            .flatten()
            .map(desim::FifoResource::busy_cycles)
            .collect()
    }

    /// Load summary of every link that carried traffic, in
    /// `(node, dir)` order. `makespan` scales busy cycles into a busy
    /// fraction (clamped to 1: reservations can extend past the last
    /// core cursor).
    pub fn link_stats(&self, makespan: Cycle) -> Vec<LinkLoad> {
        let mut out = Vec::new();
        for (node, dirs) in self.links.iter().enumerate() {
            for (dir, link) in dirs.iter().enumerate() {
                let byte_hops = self.link_bytes[node][dir];
                let busy = link.busy_cycles();
                if byte_hops == 0 && busy == Cycle::ZERO {
                    continue;
                }
                let busy_fraction = if makespan == Cycle::ZERO {
                    0.0
                } else {
                    (busy.raw() as f64 / makespan.raw() as f64).min(1.0)
                };
                out.push(LinkLoad {
                    mesh: self.kind.label().to_string(),
                    node: node as u32,
                    dir: direction_letter(dir as u8).to_string(),
                    byte_hops,
                    busy_cycles: busy.raw(),
                    busy_fraction,
                });
            }
        }
        out
    }

    /// Clear all link state and statistics.
    pub fn reset(&mut self) {
        for node in &mut self.links {
            for link in node {
                link.reset();
            }
        }
        for bytes in &mut self.link_bytes {
            *bytes = [0; 4];
        }
        self.transfers = 0;
        self.bytes = 0;
        self.byte_hops = 0;
        self.latency = Histogram::new();
    }
}

/// Datasheet-derived fabric parameters.
#[derive(Debug, Clone, Copy)]
pub struct EMeshParams {
    /// cMesh/xMesh link width in bytes per cycle (E16G3: 8 — a double
    /// word per cycle per link).
    pub link_bytes_per_cycle: u64,
    /// Routing latency per node (E16G3: single-cycle wait per node).
    pub hop_latency: u64,
    /// Off-chip eLink bandwidth in bytes per cycle at core clock
    /// (E16G3: 8 GB/s total at 1 GHz = 8 B/cycle).
    pub elink_bytes_per_cycle: u64,
}

impl Default for EMeshParams {
    fn default() -> Self {
        EMeshParams {
            link_bytes_per_cycle: 8,
            hop_latency: 1,
            elink_bytes_per_cycle: 8,
        }
    }
}

/// The full eMesh: three physical meshes plus the off-chip eLink port.
///
/// * on-chip writes ride the cMesh and are *posted* — the sender
///   continues immediately (this is the "write without stalling"
///   behaviour the paper exploits in FFBP),
/// * reads issue a request on the rMesh and stall the requester until
///   the reply write returns over the cMesh,
/// * off-chip traffic crosses the xMesh to the eLink node and then
///   serialises through the much narrower eLink.
pub struct EMesh {
    mesh: Mesh2D,
    /// On-chip write mesh.
    pub cmesh: MeshNetwork,
    /// Read-request mesh.
    pub rmesh: MeshNetwork,
    /// Off-chip mesh.
    pub xmesh: MeshNetwork,
    /// The shared off-chip link (both directions contend).
    pub elink: FifoResource,
    elink_node: NodeId,
    tracer: Tracer,
    faults: FaultState,
}

impl EMesh {
    /// Build the fabric for `mesh` with `params`.
    pub fn new(mesh: Mesh2D, params: EMeshParams) -> EMesh {
        EMesh {
            mesh,
            cmesh: MeshNetwork::new(
                mesh,
                MeshKind::CMesh,
                LinkMode::BytesPerCycle(params.link_bytes_per_cycle),
                params.hop_latency,
            ),
            rmesh: MeshNetwork::new(
                mesh,
                MeshKind::RMesh,
                LinkMode::TransactionPerCycle,
                params.hop_latency,
            ),
            xmesh: MeshNetwork::new(
                mesh,
                MeshKind::XMesh,
                LinkMode::BytesPerCycle(params.link_bytes_per_cycle),
                params.hop_latency,
            ),
            elink: FifoResource::per_units(1, params.elink_bytes_per_cycle),
            elink_node: mesh.elink_node(),
            tracer: Tracer::disabled(),
            faults: FaultState::disabled(),
        }
    }

    /// Attach a tracer to the fabric: all three meshes emit per-link
    /// spans and the eLink emits occupancy spans.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.cmesh.set_tracer(tracer.clone());
        self.rmesh.set_tracer(tracer.clone());
        self.xmesh.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attach fault state to the fabric: the three meshes take stall
    /// events, the eLink takes degradation windows.
    pub fn set_faults(&mut self, faults: FaultState) {
        self.cmesh.set_faults(faults.clone());
        self.rmesh.set_faults(faults.clone());
        self.xmesh.set_faults(faults.clone());
        self.faults = faults;
    }

    /// Extra start delay for an eLink operation at `at` when a
    /// degradation window has armed (link retraining: the port is
    /// unavailable for the window).
    fn elink_fault_delay(&mut self, at: Cycle) -> Cycle {
        match self.faults.elink_degrade(at) {
            Some(extra) => {
                self.tracer.instant(Track::ELink, "fault:elink_degrade", at);
                Cycle(extra)
            }
            None => Cycle::ZERO,
        }
    }

    /// Load summary of every loaded link across all three meshes.
    pub fn link_stats(&self, makespan: Cycle) -> Vec<LinkLoad> {
        let mut out = self.cmesh.link_stats(makespan);
        out.extend(self.rmesh.link_stats(makespan));
        out.extend(self.xmesh.link_stats(makespan));
        out
    }

    /// Busy cycles summed over every directed link of all meshes.
    pub fn total_link_busy(&self) -> Cycle {
        self.cmesh.total_link_busy() + self.rmesh.total_link_busy() + self.xmesh.total_link_busy()
    }

    /// The topology this fabric spans.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Node hosting the off-chip eLink.
    pub fn elink_node(&self) -> NodeId {
        self.elink_node
    }

    /// Posted write of `bytes` payload from `src` into `dst`'s memory.
    /// Returns the delivery completion time; the *sender* does not wait.
    pub fn write_onchip(
        &mut self,
        at: Cycle,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> TransferResult {
        self.cmesh.transfer(at, src, dst, bytes + 8)
    }

    /// Blocking read of `bytes` from `dst`'s memory by `src`. Returns the
    /// time the data is back at `src` (request on rMesh, reply on cMesh).
    pub fn read_onchip(
        &mut self,
        at: Cycle,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> TransferResult {
        let req = self.rmesh.transfer(at, src, dst, 8);
        let rep = self.cmesh.transfer(req.arrival, dst, src, bytes + 8);
        TransferResult {
            arrival: rep.arrival,
            hops: req.hops + rep.hops,
            queued: req.queued + rep.queued,
        }
    }

    /// Posted write of `bytes` from `src` to off-chip memory: xMesh to
    /// the eLink node, then serialization through the eLink. Returns the
    /// time the payload has left the chip.
    pub fn write_offchip(&mut self, at: Cycle, src: NodeId, bytes: u64) -> TransferResult {
        let to_edge = self.xmesh.transfer(at, src, self.elink_node, bytes + 8);
        let delay = self.elink_fault_delay(to_edge.arrival);
        let r = self.elink.request(to_edge.arrival + delay, bytes + 8);
        self.tracer.span(Track::ELink, "wr_out", r.start, r.end);
        TransferResult {
            arrival: r.end,
            hops: to_edge.hops,
            queued: to_edge.queued + r.wait(to_edge.arrival),
        }
    }

    /// Blocking read of `bytes` from off-chip memory by `src`.
    /// `memory_cycles` is the SDRAM access time supplied by the memory
    /// model. Returns the time the data is back at `src`: request over
    /// rMesh to the edge, eLink request slot, SDRAM access, reply data
    /// serialised through the eLink and routed back over the cMesh.
    pub fn read_offchip(
        &mut self,
        at: Cycle,
        src: NodeId,
        bytes: u64,
        memory_cycles: Cycle,
    ) -> TransferResult {
        let req = self.rmesh.transfer(at, src, self.elink_node, 8);
        let delay = self.elink_fault_delay(req.arrival);
        let out = self.elink.request(req.arrival + delay, 8);
        let data_ready = out.end + memory_cycles;
        let back = self.elink.request(data_ready, bytes + 8);
        self.tracer.span(Track::ELink, "rd_req", out.start, out.end);
        self.tracer
            .span(Track::ELink, "rd_data", back.start, back.end);
        let rep = self
            .cmesh
            .transfer(back.end, self.elink_node, src, bytes + 8);
        TransferResult {
            arrival: rep.arrival,
            hops: req.hops + rep.hops,
            queued: req.queued + rep.queued + out.wait(req.arrival) + back.wait(data_ready),
        }
    }

    /// Reserve the raw eLink (used by DMA models).
    pub fn elink_request(&mut self, at: Cycle, bytes: u64) -> Reservation {
        let delay = self.elink_fault_delay(at);
        let r = self.elink.request(at + delay, bytes);
        self.tracer.span(Track::ELink, "dma", r.start, r.end);
        r
    }

    /// Reset all meshes and the eLink.
    pub fn reset(&mut self) {
        self.cmesh.reset();
        self.rmesh.reset();
        self.xmesh.reset();
        self.elink.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> EMesh {
        EMesh::new(Mesh2D::e16g3(), EMeshParams::default())
    }

    #[test]
    fn neighbor_write_is_cheap() {
        let mut f = fabric();
        let r = f.write_onchip(Cycle(0), NodeId(0), NodeId(1), 8);
        // 1 hop + serialization of 16 wire bytes at 8 B/cyc = 1 + 2.
        assert_eq!(r.hops, 1);
        assert_eq!(r.arrival, Cycle(3));
    }

    #[test]
    fn distant_write_costs_more_hops() {
        let mut f = fabric();
        let near = f.write_onchip(Cycle(0), NodeId(0), NodeId(1), 64);
        f.reset();
        let far = f.write_onchip(Cycle(0), NodeId(0), NodeId(15), 64);
        assert_eq!(far.hops, 6);
        assert!(far.arrival > near.arrival);
        // Same serialization, extra hops only.
        assert_eq!(far.arrival.raw() - near.arrival.raw(), 5);
    }

    #[test]
    fn read_costs_round_trip() {
        let mut f = fabric();
        let w = f.write_onchip(Cycle(0), NodeId(0), NodeId(5), 8);
        f.reset();
        let r = f.read_onchip(Cycle(0), NodeId(0), NodeId(5), 8);
        assert!(
            r.arrival > w.arrival,
            "read {:?} should exceed posted write {:?}",
            r,
            w
        );
        assert_eq!(r.hops, 2 * w.hops);
    }

    #[test]
    fn contention_queues_on_shared_link() {
        let mut f = fabric();
        // Two large writes from the same source at the same time share
        // the first eastbound link.
        let a = f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 800);
        let b = f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 800);
        assert_eq!(a.queued, Cycle::ZERO);
        assert!(b.queued > Cycle::ZERO);
        assert!(b.arrival > a.arrival);
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut f = fabric();
        let a = f.write_onchip(Cycle(0), NodeId(0), NodeId(1), 800);
        // Row 3: node 12 -> 13 uses a different link entirely.
        let b = f.write_onchip(Cycle(0), NodeId(12), NodeId(13), 800);
        assert_eq!(a.queued, Cycle::ZERO);
        assert_eq!(b.queued, Cycle::ZERO);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn offchip_read_includes_memory_and_elink() {
        let mut f = fabric();
        let r = f.read_offchip(Cycle(0), NodeId(0), 64, Cycle(50));
        // Must include at least: route to edge + elink + 50 + data return.
        assert!(r.arrival.raw() > 50 + 8);
    }

    #[test]
    fn offchip_bandwidth_is_the_bottleneck() {
        let mut f = fabric();
        // Pump 10 KB off chip from one core; the eLink (8 B/cyc) should
        // dominate: ~10*1024/8 cycles of serialization.
        let mut t = Cycle(0);
        let mut last = Cycle(0);
        for _ in 0..10 {
            let r = f.write_offchip(t, NodeId(0), 1024);
            last = r.arrival;
            t += Cycle(1);
        }
        assert!(last.raw() >= 10 * 1032 / 8);
    }

    #[test]
    fn elink_is_shared_between_cores() {
        let mut f = fabric();
        let a = f.write_offchip(Cycle(0), NodeId(0), 1024);
        let b = f.write_offchip(Cycle(0), NodeId(15), 1024);
        // Whoever arrives second at the edge queues behind the first.
        let (first, second) = if a.arrival < b.arrival {
            (a, b)
        } else {
            (b, a)
        };
        assert!(second.queued > Cycle::ZERO || second.arrival > first.arrival);
    }

    #[test]
    fn local_transfer_still_costs_a_cycle() {
        let mut f = fabric();
        let r = f.write_onchip(Cycle(10), NodeId(4), NodeId(4), 8);
        assert_eq!(r.hops, 0);
        assert!(r.arrival > Cycle(10));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut f = fabric();
        f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 32);
        f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 32);
        assert_eq!(f.cmesh.transfers(), 2);
        assert_eq!(f.cmesh.bytes(), 80);
        assert!(f.cmesh.max_link_busy() > Cycle::ZERO);
        assert_eq!(f.cmesh.latency().count(), 2);
        f.reset();
        assert_eq!(f.cmesh.transfers(), 0);
        assert_eq!(f.cmesh.max_link_busy(), Cycle::ZERO);
    }

    #[test]
    fn link_stats_sum_to_byte_hops() {
        let mut f = fabric();
        f.write_onchip(Cycle(0), NodeId(0), NodeId(15), 256);
        f.read_onchip(Cycle(10), NodeId(3), NodeId(12), 64);
        f.write_offchip(Cycle(20), NodeId(5), 512);
        let stats = f.link_stats(Cycle(10_000));
        let total: u64 = stats.iter().map(|l| l.byte_hops).sum();
        assert_eq!(
            total,
            f.cmesh.byte_hops() + f.rmesh.byte_hops() + f.xmesh.byte_hops()
        );
        assert!(stats.iter().all(|l| l.busy_fraction <= 1.0));
        assert!(stats.iter().any(|l| l.mesh == "cmesh"));
        assert!(stats.iter().any(|l| l.mesh == "rmesh"));
        assert!(stats.iter().any(|l| l.mesh == "xmesh"));
    }

    #[test]
    fn tracer_records_mesh_link_and_elink_spans() {
        use desim::trace::EventKind;
        let mut f = fabric();
        let t = Tracer::enabled();
        f.set_tracer(t.clone());
        f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 64);
        f.write_offchip(Cycle(0), NodeId(0), 128);
        let events = t.snapshot();
        assert!(events.iter().any(|e| matches!(
            e.track,
            Track::MeshLink {
                mesh: MeshKind::CMesh,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e.track,
            Track::MeshLink {
                mesh: MeshKind::XMesh,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| e.track == Track::ELink && matches!(e.kind, EventKind::Span { .. })));
    }

    #[test]
    fn mesh_stall_fault_perturbs_exactly_one_transfer() {
        use faultsim::{FaultEvent, FaultPlan};
        let mut clean = fabric();
        let baseline = clean
            .write_onchip(Cycle(0), NodeId(0), NodeId(3), 64)
            .arrival;

        let mut f = fabric();
        let plan = FaultPlan::from_events(
            0,
            vec![FaultEvent::MeshStall {
                mesh: MeshKind::CMesh,
                at: Cycle(0),
                extra: 500,
            }],
        );
        let faults = FaultState::from_plan(&plan);
        f.set_faults(faults.clone());
        let hit = f.write_onchip(Cycle(0), NodeId(0), NodeId(3), 64).arrival;
        assert_eq!(hit, baseline + Cycle(500));
        // The event fired once: the next identical transfer only pays
        // ordinary link contention, never the stall again.
        let next = f.write_onchip(Cycle(10_000), NodeId(0), NodeId(3), 64);
        assert_eq!(next.arrival, Cycle(10_000) + (baseline - Cycle(0)));
        assert_eq!(faults.totals().faults_injected, 1);
    }

    #[test]
    fn elink_degrade_fault_delays_the_offchip_path_once() {
        use faultsim::{FaultEvent, FaultPlan};
        let mut clean = fabric();
        let baseline = clean.write_offchip(Cycle(0), NodeId(0), 128).arrival;

        let mut f = fabric();
        let faults = FaultState::from_plan(&FaultPlan::from_events(
            0,
            vec![FaultEvent::ElinkDegrade {
                at: Cycle(0),
                extra: 300,
            }],
        ));
        f.set_faults(faults.clone());
        let hit = f.write_offchip(Cycle(0), NodeId(0), 128).arrival;
        assert_eq!(hit, baseline + Cycle(300));
        assert_eq!(faults.totals().faults_injected, 1);
        assert_eq!(faults.pending(), 0);
    }

    #[test]
    fn disabled_faults_leave_timing_bit_identical() {
        let mut a = fabric();
        let mut b = fabric();
        b.set_faults(FaultState::disabled());
        for t in 0..50u64 {
            let ra = a.write_onchip(Cycle(t), NodeId(0), NodeId(15), 256);
            let rb = b.write_onchip(Cycle(t), NodeId(0), NodeId(15), 256);
            assert_eq!(ra.arrival, rb.arrival);
            let oa = a.read_offchip(Cycle(t), NodeId(3), 64, Cycle(40));
            let ob = b.read_offchip(Cycle(t), NodeId(3), 64, Cycle(40));
            assert_eq!(oa.arrival, ob.arrival);
        }
    }

    #[test]
    fn rmesh_requests_are_one_per_cycle() {
        let mut f = fabric();
        // Ten read requests from the same node toward the same target:
        // the first rMesh link admits one per cycle.
        let mut arrivals = Vec::new();
        for _ in 0..10 {
            arrivals.push(f.rmesh.transfer(Cycle(0), NodeId(0), NodeId(3), 8).arrival);
        }
        for w in arrivals.windows(2) {
            assert_eq!(w[1].raw() - w[0].raw(), 1);
        }
    }
}
