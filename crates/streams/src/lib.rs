//! A CSP-style process-network layer over the Epiphany machine model.
//!
//! The paper closes on programmability: the MPMD autofocus mapping
//! needed a hand-written C program per core plus manual flag
//! synchronisation, and the authors point to their occam-pi work as
//! the way to raise the abstraction level "while not compromising the
//! performance benefits". This crate is that idea in Rust: a network
//! of named *actors* placed on cores, connected by typed point-to-point
//! *channels*; an actor fires when every input port holds a token,
//! charges its compute to its core, and sends output tokens that ride
//! the modelled mesh as posted writes. Synchronisation (the flag
//! polling of the hand-written version) is implicit in the firing rule.
//!
//! Semantics are those of a Kahn process network restricted to
//! one-token-per-port firings (static dataflow): deterministic by
//! construction, matching the deterministic machine model underneath.
//!
//! ```
//! use desim::OpCounts;
//! use epiphany::{Chip, EpiphanyParams};
//! use streams::{Actor, FireCtx, Network};
//!
//! struct Doubler;
//! impl Actor<u64> for Doubler {
//!     fn fire(&mut self, inputs: Vec<u64>, ctx: &mut FireCtx<'_, u64>) {
//!         ctx.charge(&OpCounts { ialu: 1, ..OpCounts::default() });
//!         ctx.send(0, inputs[0] * 2, 8);
//!     }
//! }
//!
//! struct Sink(Vec<u64>);
//! impl Actor<u64> for Sink {
//!     fn fire(&mut self, inputs: Vec<u64>, _ctx: &mut FireCtx<'_, u64>) {
//!         self.0.push(inputs[0]);
//!     }
//! }
//!
//! let mut net = Network::new(Chip::e16g3(EpiphanyParams::default()));
//! let doubler = net.add_actor("doubler", 0, Box::new(Doubler));
//! let sink = net.add_actor("sink", 1, Box::new(Sink(Vec::new())));
//! net.connect(doubler, sink);
//! net.feed(doubler, 21, 8);
//! net.run();
//! ```

#![forbid(unsafe_code)]

pub mod network;

pub use network::{Actor, ActorId, ChannelId, FireCtx, Network};
