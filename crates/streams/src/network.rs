//! The actor network and its data-driven scheduler.

use std::collections::VecDeque;

use desim::{Cycle, OpCounts};
use epiphany::chip::CoreId;
use epiphany::Chip;

/// Index of an actor in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(usize);

/// Index of a channel in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(usize);

/// Behaviour of one process. `T` is the network's token type.
pub trait Actor<T> {
    /// Consume one token from every input port. Charge compute through
    /// [`FireCtx::charge`] and emit tokens with [`FireCtx::send`]
    /// (output ports are numbered in [`Network::connect`] order).
    fn fire(&mut self, inputs: Vec<T>, ctx: &mut FireCtx<'_, T>);
}

/// Firing context handed to an actor.
pub struct FireCtx<'a, T> {
    chip: &'a mut Chip,
    core: CoreId,
    outputs: &'a [ChannelId],
    emitted: Vec<(ChannelId, T, u64)>,
}

impl<T> FireCtx<'_, T> {
    /// Charge a compute region to the actor's core.
    pub fn charge(&mut self, ops: &OpCounts) {
        self.chip.compute(self.core, ops);
    }

    /// Emit `token` (`bytes` long on the wire) on output port `port`.
    ///
    /// # Panics
    /// If `port` exceeds the actor's output arity.
    pub fn send(&mut self, port: usize, token: T, bytes: u64) {
        assert!(
            port < self.outputs.len(),
            "actor has {} output ports, tried {port}",
            self.outputs.len()
        );
        self.emitted.push((self.outputs[port], token, bytes));
    }

    /// The core this actor is placed on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Current simulated time on this actor's core.
    pub fn now(&self) -> Cycle {
        self.chip.now(self.core)
    }
}

struct ActorSlot<T> {
    name: String,
    core: CoreId,
    behaviour: Box<dyn Actor<T>>,
    inputs: Vec<ChannelId>,
    outputs: Vec<ChannelId>,
    /// Synthetic channel carrying externally fed tokens (sources only).
    source: Option<ChannelId>,
    firings: u64,
}

struct ChannelState<T> {
    to: ActorId,
    /// Tokens with their data-ready times at the consumer.
    queue: VecDeque<(Cycle, T)>,
    tokens_carried: u64,
    /// Deepest the queue has grown (high-water mark).
    max_depth: u64,
}

impl<T> ChannelState<T> {
    fn push(&mut self, ready: Cycle, token: T) {
        self.queue.push_back((ready, token));
        self.max_depth = self.max_depth.max(self.queue.len() as u64);
    }
}

/// A placed process network over a chip model.
pub struct Network<T> {
    chip: Chip,
    actors: Vec<ActorSlot<T>>,
    channels: Vec<ChannelState<T>>,
}

impl<T> Network<T> {
    /// Empty network over `chip`.
    pub fn new(chip: Chip) -> Network<T> {
        Network {
            chip,
            actors: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Place an actor on `core`.
    pub fn add_actor(&mut self, name: &str, core: CoreId, behaviour: Box<dyn Actor<T>>) -> ActorId {
        assert!(core < self.chip.cores(), "core {core} outside the chip");
        self.actors.push(ActorSlot {
            name: name.to_string(),
            core,
            behaviour,
            inputs: Vec::new(),
            outputs: Vec::new(),
            source: None,
            firings: 0,
        });
        ActorId(self.actors.len() - 1)
    }

    /// Connect `from` to `to` with a new channel; it becomes the next
    /// output port of `from` and the next input port of `to`.
    pub fn connect(&mut self, from: ActorId, to: ActorId) -> ChannelId {
        let id = ChannelId(self.channels.len());
        self.channels.push(ChannelState {
            to,
            queue: VecDeque::new(),
            tokens_carried: 0,
            max_depth: 0,
        });
        self.actors[from.0].outputs.push(id);
        self.actors[to.0].inputs.push(id);
        id
    }

    /// Inject an external token directly into `actor` (which must have
    /// no input channels — a source). `bytes` models the host-side
    /// delivery (charged as an external read by the source when fired).
    pub fn feed(&mut self, actor: ActorId, token: T, bytes: u64) {
        let slot = &self.actors[actor.0];
        assert!(
            slot.source.is_some() || slot.inputs.is_empty(),
            "feed() is for source actors; '{}' has channel inputs",
            slot.name
        );
        // Sources get a synthetic self-channel on first feed.
        let chan = if let Some(c) = slot.source {
            c
        } else {
            let id = ChannelId(self.channels.len());
            self.channels.push(ChannelState {
                to: actor,
                queue: VecDeque::new(),
                tokens_carried: 0,
                max_depth: 0,
            });
            // Input-only: never an output port of the actor.
            self.actors[actor.0].inputs.push(id);
            self.actors[actor.0].source = Some(id);
            id
        };
        let ready = self.chip.now(self.actors[actor.0].core);
        self.channels[chan.0].push(ready, token);
        let _ = bytes;
    }

    /// Whether `actor` can fire now.
    fn fireable(&self, idx: usize) -> bool {
        let a = &self.actors[idx];
        !a.inputs.is_empty()
            && a.inputs
                .iter()
                .all(|c| !self.channels[c.0].queue.is_empty())
    }

    /// Run until no actor can fire. Returns the number of firings.
    pub fn run(&mut self) -> u64 {
        let mut total = 0u64;
        while let Some(idx) = (0..self.actors.len()).find(|&i| self.fireable(i)) {
            total += 1;
            self.fire_one(idx);
        }
        total
    }

    fn fire_one(&mut self, idx: usize) {
        // Pop one token per input port; the actor blocks until the
        // latest one has arrived (the implicit flag wait).
        let input_chans: Vec<ChannelId> = self.actors[idx].inputs.clone();
        let mut tokens = Vec::with_capacity(input_chans.len());
        let mut latest = Cycle::ZERO;
        for c in &input_chans {
            let (ready, tok) = self.channels[c.0]
                .queue
                .pop_front()
                .expect("fireable checked non-empty");
            latest = latest.max(ready);
            tokens.push(tok);
        }
        let core = self.actors[idx].core;
        self.chip.wait_flag(core, latest);

        let outputs = self.actors[idx].outputs.clone();
        let mut ctx = FireCtx {
            chip: &mut self.chip,
            core,
            outputs: &outputs,
            emitted: Vec::new(),
        };
        // Temporarily take the behaviour out to satisfy the borrow
        // checker (the actor may not touch the network, only the ctx).
        let mut behaviour =
            std::mem::replace(&mut self.actors[idx].behaviour, Box::new(InertActor));
        behaviour.fire(tokens, &mut ctx);
        let emitted = ctx.emitted;
        self.actors[idx].behaviour = behaviour;
        self.actors[idx].firings += 1;

        for (chan, token, bytes) in emitted {
            let dst_actor = self.channels[chan.0].to;
            let dst_core = self.actors[dst_actor.0].core;
            let ready = self.chip.write_remote(core, dst_core, bytes);
            self.channels[chan.0].push(ready, token);
            self.channels[chan.0].tokens_carried += 1;
        }
    }

    /// Times the network has fired `actor`.
    pub fn firings(&self, actor: ActorId) -> u64 {
        self.actors[actor.0].firings
    }

    /// Tokens carried by `channel` so far.
    pub fn tokens_carried(&self, channel: ChannelId) -> u64 {
        self.channels[channel.0].tokens_carried
    }

    /// High-water queue depth of `channel`.
    pub fn max_queue_depth(&self, channel: ChannelId) -> u64 {
        self.channels[channel.0].max_depth
    }

    /// Deepest any channel queue has grown since construction (or the
    /// last [`Network::take_queue_peak`]).
    pub fn queue_peak(&self) -> u64 {
        self.channels.iter().map(|c| c.max_depth).max().unwrap_or(0)
    }

    /// Return [`Network::queue_peak`] and reset every channel's
    /// high-water mark to its current depth (per-phase sampling).
    pub fn take_queue_peak(&mut self) -> u64 {
        let peak = self.queue_peak();
        for c in &mut self.channels {
            c.max_depth = c.queue.len() as u64;
        }
        peak
    }

    /// Actor name (diagnostics).
    pub fn name(&self, actor: ActorId) -> &str {
        &self.actors[actor.0].name
    }

    /// The underlying chip (time/energy reports).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Mutable chip access (e.g. initial DMA loads before running).
    pub fn chip_mut(&mut self) -> &mut Chip {
        &mut self.chip
    }

    /// Consume the network, returning the chip and the actors'
    /// behaviours for inspection (sinks often accumulate results).
    pub fn into_parts(self) -> (Chip, Vec<Box<dyn Actor<T>>>) {
        (
            self.chip,
            self.actors.into_iter().map(|a| a.behaviour).collect(),
        )
    }
}

/// Placeholder behaviour swapped in while an actor is firing.
struct InertActor;
impl<T> Actor<T> for InertActor {
    fn fire(&mut self, _inputs: Vec<T>, _ctx: &mut FireCtx<'_, T>) {
        unreachable!("inert placeholder must never fire");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiphany::EpiphanyParams;

    fn chip() -> Chip {
        Chip::e16g3(EpiphanyParams::default())
    }

    struct AddOne;
    impl Actor<u64> for AddOne {
        fn fire(&mut self, inputs: Vec<u64>, ctx: &mut FireCtx<'_, u64>) {
            ctx.charge(&OpCounts {
                ialu: 1,
                ..OpCounts::default()
            });
            ctx.send(0, inputs[0] + 1, 8);
        }
    }

    struct Collect(Vec<u64>);
    impl Actor<u64> for Collect {
        fn fire(&mut self, inputs: Vec<u64>, ctx: &mut FireCtx<'_, u64>) {
            ctx.charge(&OpCounts {
                ialu: 1,
                ..OpCounts::default()
            });
            self.0.push(inputs.into_iter().sum());
        }
    }

    #[test]
    fn tokens_flow_through_a_pipeline_in_order() {
        let mut net = Network::new(chip());
        let a = net.add_actor("inc1", 0, Box::new(AddOne));
        let b = net.add_actor("inc2", 1, Box::new(AddOne));
        let sink = net.add_actor("sink", 2, Box::new(Collect(Vec::new())));
        net.connect(a, b);
        net.connect(b, sink);
        for v in [10u64, 20, 30] {
            net.feed(a, v, 8);
        }
        let firings = net.run();
        assert_eq!(firings, 9); // 3 tokens x 3 actors
        assert_eq!(net.firings(sink), 3);
        let (chip, actors) = net.into_parts();
        assert!(chip.elapsed() > Cycle::ZERO);
        // Downcast-free inspection: the sink is the third actor.
        let _ = actors;
    }

    struct CollectProbe(std::rc::Rc<std::cell::RefCell<Vec<u64>>>);
    impl Actor<u64> for CollectProbe {
        fn fire(&mut self, inputs: Vec<u64>, _ctx: &mut FireCtx<'_, u64>) {
            self.0.borrow_mut().push(inputs.into_iter().sum());
        }
    }

    #[test]
    fn results_are_correct_and_ordered() {
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut net = Network::new(chip());
        let a = net.add_actor("inc", 0, Box::new(AddOne));
        let sink = net.add_actor("sink", 1, Box::new(CollectProbe(results.clone())));
        net.connect(a, sink);
        for v in [1u64, 2, 3, 4] {
            net.feed(a, v, 8);
        }
        net.run();
        assert_eq!(*results.borrow(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn join_waits_for_both_producers() {
        // Two producers on different cores feed one consumer; the
        // consumer fires exactly min(tokens_left, tokens_right) times.
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut net = Network::new(chip());
        let left = net.add_actor("left", 0, Box::new(AddOne));
        let right = net.add_actor("right", 5, Box::new(AddOne));
        let join = net.add_actor("join", 10, Box::new(CollectProbe(results.clone())));
        net.connect(left, join);
        net.connect(right, join);
        net.feed(left, 100, 8);
        net.feed(left, 200, 8);
        net.feed(right, 1, 8);
        net.run();
        // Only one pair available: (101) + (2).
        assert_eq!(*results.borrow(), vec![103]);
        assert_eq!(net.firings(join), 1);
    }

    #[test]
    fn communication_advances_simulated_time() {
        struct Heavy;
        impl Actor<u64> for Heavy {
            fn fire(&mut self, inputs: Vec<u64>, ctx: &mut FireCtx<'_, u64>) {
                ctx.charge(&OpCounts {
                    fmas: 10_000,
                    ..OpCounts::default()
                });
                ctx.send(0, inputs[0], 4096);
            }
        }
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut net = Network::new(chip());
        let p = net.add_actor("heavy", 0, Box::new(Heavy));
        let s = net.add_actor("sink", 15, Box::new(CollectProbe(results.clone())));
        net.connect(p, s);
        net.feed(p, 7, 8);
        net.run();
        // Compute (10k FMA) + 4 KB across six hops must both show.
        let elapsed = net.chip().elapsed();
        assert!(elapsed.raw() > 10_000, "elapsed {elapsed}");
        assert_eq!(net.tokens_carried(ChannelId(0)), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut net = Network::new(chip());
            let a = net.add_actor("a", 0, Box::new(AddOne));
            let b = net.add_actor("b", 3, Box::new(AddOne));
            let s = net.add_actor("s", 12, Box::new(Collect(Vec::new())));
            net.connect(a, b);
            net.connect(b, s);
            for v in 0..20u64 {
                net.feed(a, v, 64);
            }
            net.run();
            net.chip().elapsed()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "output ports")]
    fn sending_on_a_missing_port_panics() {
        struct Bad;
        impl Actor<u64> for Bad {
            fn fire(&mut self, _inputs: Vec<u64>, ctx: &mut FireCtx<'_, u64>) {
                ctx.send(0, 0, 8); // no outputs connected
            }
        }
        let mut net = Network::new(chip());
        let a = net.add_actor("bad", 0, Box::new(Bad));
        net.feed(a, 1, 8);
        net.run();
    }

    #[test]
    #[should_panic(expected = "source actors")]
    fn feeding_a_non_source_panics() {
        let mut net = Network::new(chip());
        let a = net.add_actor("a", 0, Box::new(AddOne));
        let b = net.add_actor("b", 1, Box::new(AddOne));
        net.connect(a, b);
        net.feed(b, 1, 8);
    }

    #[test]
    fn queue_depth_high_water_is_tracked() {
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut net = Network::new(chip());
        let a = net.add_actor("inc", 0, Box::new(AddOne));
        let sink = net.add_actor("sink", 1, Box::new(CollectProbe(results.clone())));
        let chan = net.connect(a, sink);
        for v in 0..5u64 {
            net.feed(a, v, 8);
        }
        // All five feeds queue on the synthetic source channel.
        assert_eq!(net.queue_peak(), 5);
        net.run();
        // The greedy scheduler drains the source first, so the a->sink
        // channel also backs up to five before the sink fires.
        assert_eq!(net.max_queue_depth(chan), 5);
        assert_eq!(net.take_queue_peak(), 5);
        // After the drain every queue is empty, so the reset peak is 0.
        assert_eq!(net.queue_peak(), 0);
    }

    #[test]
    fn names_and_cores_are_tracked() {
        let mut net: Network<u64> = Network::new(chip());
        let a = net.add_actor("range0", 4, Box::new(AddOne));
        assert_eq!(net.name(a), "range0");
    }
}
