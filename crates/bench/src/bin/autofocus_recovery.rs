//! A7 — the Figure 4 pipeline end to end: fly a *non-linear* track,
//! form the image with plain FFBP (defocused), then with per-merge
//! autofocus (recovered), against the straight-track ideal. This is
//! the system the paper's two kernels exist to serve.
//!
//! Usage: `cargo run -p bench --bin autofocus_recovery --release [-- --json]`

use sar_core::autofocus::integrated::{ffbp_with_autofocus, IntegratedConfig};
use sar_core::ffbp::{ffbp, FfbpConfig};
use sar_core::geometry::SarGeometry;
use sar_core::quality::{image_entropy, response_width, Axis};
use sar_core::scene::{simulate_compressed_data, simulate_with_track, Scene};
use sar_core::track::FlightTrack;
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("autofocus_recovery");
    let geom = SarGeometry {
        num_pulses: 256,
        num_bins: 257,
        ..SarGeometry::paper_size()
    };
    let scene = Scene::single_target(geom);
    let clean = simulate_compressed_data(&scene, 0.0, 0);
    let ideal = ffbp(&clean, &geom, &FfbpConfig::default());
    let (ideal_peak, _, _) = ideal.image.peak();

    h.say("Autofocus recovery under non-linear flight tracks");
    h.say(format_args!(
        "({} pulses, single target; peaks relative to straight-track FFBP)",
        geom.num_pulses
    ));
    h.say(format_args!(
        "\n{:<28} {:>11} {:>11} {:>11} {:>9} {:>12}",
        "track", "plain peak", "autof peak", "recovered", "fixes", "entropy +/-"
    ));
    for (name, track) in [
        ("straight", FlightTrack::straight(geom.num_pulses)),
        ("step 1.5 m", FlightTrack::step(geom.num_pulses, 1.5)),
        (
            "sinusoid 1.0 m / 96 p",
            FlightTrack::sinusoidal(geom.num_pulses, 1.0, 96.0),
        ),
        (
            "sinusoid 1.0 m / 128 p*",
            FlightTrack::sinusoidal(geom.num_pulses, 1.0, 128.0),
        ),
        (
            "random walk 0.10 m/p",
            FlightTrack::random_walk(geom.num_pulses, 0.10, 5),
        ),
    ] {
        let data = simulate_with_track(&scene, &track, 0.0, 0);
        let plain = ffbp(&data, &geom, &FfbpConfig::default());
        let (mut record, auto_run) = BenchHarness::host_record(
            &format!("FFBP + per-merge autofocus — {name} track"),
            || ffbp_with_autofocus(&data, &geom, &IntegratedConfig::default()),
        );
        let (p_plain, _, _) = plain.image.peak();
        let (p_auto, _, _) = auto_run.image.peak();
        h.say(format_args!(
            "{:<28} {:>10.1}% {:>10.1}% {:>10.1}% {:>9} {:>5.2}/{:<5.2}",
            name,
            100.0 * p_plain / ideal_peak,
            100.0 * p_auto / ideal_peak,
            100.0 * (p_auto - p_plain) / ideal_peak,
            auto_run.corrections.len(),
            image_entropy(&plain.image),
            image_entropy(&auto_run.image),
        ));
        record.set_metric("plain_peak_pct", f64::from(100.0 * p_plain / ideal_peak));
        record.set_metric("autofocus_peak_pct", f64::from(100.0 * p_auto / ideal_peak));
        record.set_metric(
            "recovered_pct",
            f64::from(100.0 * (p_auto - p_plain) / ideal_peak),
        );
        record.set_metric("corrections", auto_run.corrections.len() as f64);
        record.set_metric("entropy_plain", image_entropy(&plain.image));
        record.set_metric("entropy_autofocus", image_entropy(&auto_run.image));
        h.record(record);
    }
    h.say(format_args!(
        "\nideal -6 dB response widths: range {:.1} px, cross-range {:.1} px",
        response_width(&ideal.image, Axis::Range, 0.5),
        response_width(&ideal.image, Axis::CrossRange, 0.5)
    ));
    h.say("\nPer-merge autofocus recovers (or over-recovers — it also fixes the");
    h.say("NN pipeline's own sub-bin envelope misalignment) the peak a");
    h.say("perturbed track costs. (*) A sinusoid whose period divides the");
    h.say("subaperture lengths is the estimator's blind spot: every");
    h.say("subaperture's mean offset is zero, so pairwise shifts vanish —");
    h.say("intra-subaperture errors need finer-grained compensation (GPS).");
    h.finish();
}
