//! E3 — energy deep-dive. Table I only multiplies datasheet power by
//! time; the model can attribute the Epiphany's energy to components
//! (datapath, local store, mesh, eLink, SDRAM, leakage) and show *why*
//! the streaming autofocus pipeline is 2x more energy-efficient per
//! datasheet watt than FFBP: it never touches the expensive off-chip
//! path.
//!
//! Usage: `cargo run -p bench --bin energy_report --release [-- --full]`

use epiphany::{EnergyBreakdown, RunReport};
use sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_epiphany::autofocus_seq;
use sar_epiphany::ffbp_seq;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload};

fn show(report: &RunReport) {
    let e: &EnergyBreakdown = &report.energy;
    let total = e.total_j();
    let pct = |x: f64| 100.0 * x / total.max(f64::MIN_POSITIVE);
    println!("\n{}", report.label);
    println!("  time {:>10.3} ms | energy {:>10.4} J | power {:>6.3} W", report.millis(), total, report.avg_power_w());
    println!(
        "  datapath {:>5.1}% | SRAM {:>5.1}% | mesh {:>5.1}% | eLink {:>5.1}% | SDRAM {:>5.1}% | static {:>5.1}%",
        pct(e.compute_j),
        pct(e.sram_j),
        pct(e.mesh_j),
        pct(e.elink_j),
        pct(e.sdram_j),
        pct(e.static_j)
    );
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let fw = if full { FfbpWorkload::paper() } else { bench::reduced_ffbp(256, 1001) };
    let aw = AutofocusWorkload::paper();

    println!("Component-level energy breakdowns (Epiphany model)");
    show(&ffbp_seq::run(&fw, epiphany::EpiphanyParams::default()).report);
    show(&ffbp_spmd::run(&fw, epiphany::EpiphanyParams::default(), SpmdOptions::default()).report);
    show(&autofocus_seq::run(&aw, autofocus_seq::params()).report);
    show(&autofocus_mpmd::run(&aw, autofocus_mpmd::params(), Placement::neighbor()).report);

    println!("\nFFBP pays for every byte that crosses the eLink (drivers + SDRAM);");
    println!("the autofocus pipeline keeps data on the mesh, so nearly all its");
    println!("energy is useful arithmetic — the mechanism behind 38x vs 78x.");
}
