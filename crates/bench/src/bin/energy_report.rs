//! E3 — energy deep-dive. Table I only multiplies datasheet power by
//! time; the model can attribute the Epiphany's energy to components
//! (datapath, local store, mesh, eLink, SDRAM, leakage) and show *why*
//! the streaming autofocus pipeline is 2x more energy-efficient per
//! datasheet watt than FFBP: it never touches the expensive off-chip
//! path.
//!
//! Runs through the harness registry, so every record carries the
//! powertrace block: the component split comes from the per-phase
//! [`desim::PhasePower`] deltas, and each phase prints its dominant
//! component and stall/compute attribution.
//!
//! Usage: `cargo run -p bench --bin energy_report --release [-- --full] [-- --json]`

use desim::RunRecord;
use sar_epiphany::harness_impls::mapping_named;
use sim_harness::{platform_named, run, BenchHarness, Workload};

fn show(h: &mut BenchHarness, record: RunRecord) {
    let e = &record.energy;
    let total = e.total_j();
    let pct = |x: f64| 100.0 * x / total.max(f64::MIN_POSITIVE);
    h.say(format_args!("\n{}", record.label));
    h.say(format_args!(
        "  time {:>10.3} ms | energy {:>10.4} J | power {:>6.3} W",
        record.millis(),
        total,
        record.avg_power_w()
    ));
    h.say(format_args!(
        "  datapath {:>5.1}% | SRAM {:>5.1}% | mesh {:>5.1}% | eLink {:>5.1}% | SDRAM {:>5.1}% | static {:>5.1}%",
        pct(e.compute_j),
        pct(e.sram_j),
        pct(e.mesh_j),
        pct(e.elink_j),
        pct(e.sdram_j),
        pct(e.static_j)
    ));
    if let Some(power) = &record.power {
        for p in &power.phases {
            let a = &p.attribution;
            h.say(format_args!(
                "    {:<20} {:>9.6} J  dominant {:<7} {:>5.1}%  compute {:>3.0}% / stall {:>3.0}%",
                format!("{}[{}]", p.name, p.index),
                p.energy.total_j(),
                a.dominant,
                100.0 * a.dominant_share,
                100.0 * a.compute_fraction,
                100.0 * a.stall_fraction
            ));
        }
    }
    h.record(record);
}

fn main() {
    let mut h = BenchHarness::new("energy_report");
    let small = !h.flag("full");
    let platform = platform_named("epiphany").expect("epiphany platform is registered");

    h.say("Component-level energy breakdowns (Epiphany model)");
    for name in ["ffbp_seq", "ffbp_spmd", "autofocus_seq", "autofocus_mpmd"] {
        let m = mapping_named(name).expect("registered mapping");
        let w = Workload::named(m.kernel(), small).expect("registered workload");
        let out = run(m.as_ref(), &w, platform.as_ref()).expect("registered pair runs");
        show(&mut h, out.record);
    }

    h.say("\nFFBP pays for every byte that crosses the eLink (drivers + SDRAM);");
    h.say("the autofocus pipeline keeps data on the mesh, so nearly all its");
    h.say("energy is useful arithmetic — the mechanism behind 38x vs 78x.");
    h.finish();
}
