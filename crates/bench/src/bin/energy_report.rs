//! E3 — energy deep-dive. Table I only multiplies datasheet power by
//! time; the model can attribute the Epiphany's energy to components
//! (datapath, local store, mesh, eLink, SDRAM, leakage) and show *why*
//! the streaming autofocus pipeline is 2x more energy-efficient per
//! datasheet watt than FFBP: it never touches the expensive off-chip
//! path.
//!
//! Usage: `cargo run -p bench --bin energy_report --release [-- --full] [-- --json]`

use desim::RunRecord;
use sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_epiphany::autofocus_seq;
use sar_epiphany::ffbp_seq;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload};
use sim_harness::BenchHarness;

fn show(h: &mut BenchHarness, record: RunRecord) {
    let e = &record.energy;
    let total = e.total_j();
    let pct = |x: f64| 100.0 * x / total.max(f64::MIN_POSITIVE);
    h.say(format_args!("\n{}", record.label));
    h.say(format_args!(
        "  time {:>10.3} ms | energy {:>10.4} J | power {:>6.3} W",
        record.millis(),
        total,
        record.avg_power_w()
    ));
    h.say(format_args!(
        "  datapath {:>5.1}% | SRAM {:>5.1}% | mesh {:>5.1}% | eLink {:>5.1}% | SDRAM {:>5.1}% | static {:>5.1}%",
        pct(e.compute_j),
        pct(e.sram_j),
        pct(e.mesh_j),
        pct(e.elink_j),
        pct(e.sdram_j),
        pct(e.static_j)
    ));
    h.record(record);
}

fn main() {
    let mut h = BenchHarness::new("energy_report");
    let fw = if h.flag("full") {
        FfbpWorkload::paper()
    } else {
        bench::reduced_ffbp(256, 1001)
    };
    let aw = AutofocusWorkload::paper();

    h.say("Component-level energy breakdowns (Epiphany model)");
    show(
        &mut h,
        ffbp_seq::run(&fw, epiphany::EpiphanyParams::default()).record,
    );
    show(
        &mut h,
        ffbp_spmd::run(
            &fw,
            epiphany::EpiphanyParams::default(),
            SpmdOptions::default(),
        )
        .record,
    );
    show(
        &mut h,
        autofocus_seq::run(&aw, autofocus_seq::params()).record,
    );
    show(
        &mut h,
        autofocus_mpmd::run(&aw, autofocus_mpmd::params(), Placement::neighbor()).record,
    );

    h.say("\nFFBP pays for every byte that crosses the eLink (drivers + SDRAM);");
    h.say("the autofocus pipeline keeps data on the mesh, so nearly all its");
    h.say("energy is useful arithmetic — the mechanism behind 38x vs 78x.");
    h.finish();
}
