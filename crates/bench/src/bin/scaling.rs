//! A1 — FFBP core-count scaling (the paper's "natural scalability"
//! claim and its 64-core outlook in §VII).
//!
//! Usage: `cargo run -p bench --bin scaling --release [-- --full] [-- --json]`
//! (default uses a 256-pulse workload; `--full` runs the paper size).

use epiphany::EpiphanyParams;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::FfbpWorkload;
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("scaling");
    let w = if h.flag("full") {
        FfbpWorkload::paper()
    } else {
        bench::reduced_ffbp(256, 1001)
    };
    h.say(format_args!(
        "FFBP SPMD core scaling ({} pulses x {} bins)",
        w.geom.num_pulses, w.geom.num_bins
    ));
    h.say(format_args!(
        "{:>6} {:>12} {:>9} {:>11} {:>12} {:>10}",
        "cores", "time (ms)", "speedup", "efficiency", "eLink util", "misses"
    ));
    let mut base_ms = None;
    for cores in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut r = ffbp_spmd::run(
            &w,
            EpiphanyParams::default(),
            SpmdOptions {
                cores: Some(cores),
                ..SpmdOptions::default()
            },
        );
        let ms = r.record.millis();
        let base = *base_ms.get_or_insert(ms);
        let speedup = base / ms;
        h.say(format_args!(
            "{:>6} {:>12.2} {:>8.2}x {:>10.1}% {:>11.1}% {:>10}",
            cores,
            ms,
            speedup,
            100.0 * speedup / cores as f64,
            100.0 * r.record.elink_utilization(),
            r.external_misses
        ));
        r.record.set_metric("speedup_vs_1", speedup);
        h.record(r.record);
    }
    h.say("\nThe eLink becomes the scaling wall: watch utilisation approach");
    h.say("100% while efficiency falls — the paper's off-chip-bandwidth story.");
    h.finish();
}
