//! A3 — attribute the SPMD FFBP performance to its two memory tricks:
//! DMA prefetch into the upper local banks, and non-stalling posted
//! writes. The paper credits both (§VI); this bench isolates each.
//!
//! Usage: `cargo run -p bench --bin prefetch_ablation --release [-- --json]`

use epiphany::EpiphanyParams;
use refcpu::RefCpuParams;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::{ffbp_ref, ffbp_seq};
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("prefetch_ablation");
    let w = bench::reduced_ffbp(256, 1001);
    h.say(format_args!(
        "FFBP memory-system ablation ({} pulses x {} bins)",
        w.geom.num_pulses, w.geom.num_bins
    ));

    let with = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    let without = ffbp_spmd::run(
        &w,
        EpiphanyParams::default(),
        SpmdOptions {
            prefetch: false,
            ..SpmdOptions::default()
        },
    );
    h.say("\nEpiphany SPMD (16 cores):");
    h.say(format_args!(
        "  prefetch ON : {:>10.2} ms   local {} / external {}",
        with.record.millis(),
        with.local_hits,
        with.external_misses
    ));
    h.say(format_args!(
        "  prefetch OFF: {:>10.2} ms   local {} / external {}",
        without.record.millis(),
        without.local_hits,
        without.external_misses
    ));
    h.say(format_args!(
        "  prefetch speedup: {}",
        bench::fmt_x(without.record.elapsed.seconds() / with.record.elapsed.seconds())
    ));
    let mut r_with = with.record;
    r_with.label = format!("{} — prefetch ON", r_with.label);
    let mut r_without = without.record;
    r_without.label = format!("{} — prefetch OFF", r_without.label);
    r_without.set_metric("slowdown_vs_prefetch", {
        r_without.elapsed.seconds() / r_with.elapsed.seconds()
    });
    h.record(r_with);
    h.record(r_without);

    // Sequential side: Epiphany's naive port vs the i7 with and
    // without *its* prefetcher — the other half of the paper's
    // memory-system argument.
    let seq = ffbp_seq::run(&w, EpiphanyParams::default());
    let i7 = ffbp_ref::run(&w, RefCpuParams::default());
    let i7_nopf = ffbp_ref::run(&w, RefCpuParams::without_prefetch());
    h.say("\nSequential configurations:");
    h.say(format_args!(
        "  Epiphany 1 core (no cache)     : {:>10.2} ms",
        seq.record.millis()
    ));
    h.say(format_args!(
        "  i7 model (caches + prefetcher) : {:>10.2} ms",
        i7.record.millis()
    ));
    h.say(format_args!(
        "  i7 model (prefetcher disabled) : {:>10.2} ms",
        i7_nopf.record.millis()
    ));
    h.say(format_args!(
        "  i7 prefetcher contribution     : {}",
        bench::fmt_x(i7_nopf.record.elapsed.seconds() / i7.record.elapsed.seconds())
    ));
    h.record(seq.record);
    h.record(i7.record);
    let mut r_nopf = i7_nopf.record;
    r_nopf.label = format!("{} — prefetcher disabled", r_nopf.label);
    h.record(r_nopf);
    h.finish();
}
