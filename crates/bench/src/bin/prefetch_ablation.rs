//! A3 — attribute the SPMD FFBP performance to its two memory tricks:
//! DMA prefetch into the upper local banks, and non-stalling posted
//! writes. The paper credits both (§VI); this bench isolates each.
//!
//! Usage: `cargo run -p bench --bin prefetch_ablation --release`

use epiphany::EpiphanyParams;
use refcpu::RefCpuParams;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::{ffbp_ref, ffbp_seq};

fn main() {
    let w = bench::reduced_ffbp(256, 1001);
    println!(
        "FFBP memory-system ablation ({} pulses x {} bins)",
        w.geom.num_pulses, w.geom.num_bins
    );

    let with = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    let without = ffbp_spmd::run(
        &w,
        EpiphanyParams::default(),
        SpmdOptions { prefetch: false, ..SpmdOptions::default() },
    );
    println!("\nEpiphany SPMD (16 cores):");
    println!(
        "  prefetch ON : {:>10.2} ms   local {} / external {}",
        with.report.millis(),
        with.local_hits,
        with.external_misses
    );
    println!(
        "  prefetch OFF: {:>10.2} ms   local {} / external {}",
        without.report.millis(),
        without.local_hits,
        without.external_misses
    );
    println!(
        "  prefetch speedup: {}",
        bench::fmt_x(without.report.elapsed.seconds() / with.report.elapsed.seconds())
    );

    // Sequential side: Epiphany's naive port vs the i7 with and
    // without *its* prefetcher — the other half of the paper's
    // memory-system argument.
    let seq = ffbp_seq::run(&w, EpiphanyParams::default());
    let i7 = ffbp_ref::run(&w, RefCpuParams::default());
    let i7_nopf = ffbp_ref::run(&w, RefCpuParams::without_prefetch());
    println!("\nSequential configurations:");
    println!("  Epiphany 1 core (no cache)     : {:>10.2} ms", seq.report.millis());
    println!("  i7 model (caches + prefetcher) : {:>10.2} ms", i7.report.millis());
    println!("  i7 model (prefetcher disabled) : {:>10.2} ms", i7_nopf.report.millis());
    println!(
        "  i7 prefetcher contribution     : {}",
        bench::fmt_x(i7_nopf.report.elapsed.seconds() / i7.report.elapsed.seconds())
    );
}
