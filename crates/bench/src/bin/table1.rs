//! Regenerates Table I of the paper at full workload scale.
//!
//! Usage: `cargo run -p bench --bin table1 --release [-- --small] [-- --json]`
//!
//! The bench document carries the six per-configuration [`desim::RunRecord`]s
//! plus a `"table"` key with the rendered rows — the same shape as the
//! checked-in golden baseline `results/table1_baseline.json`.

use sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload};
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("table1");
    let (fw, aw) = if h.small() {
        (FfbpWorkload::small(), AutofocusWorkload::small())
    } else {
        (FfbpWorkload::paper(), AutofocusWorkload::paper())
    };
    let t = sar_epiphany::table1(&fw, &aw);
    h.say(&t);
    h.attach("table", t.to_json());
    for r in t.records {
        h.record(r);
    }
    h.finish();
}
