//! Regenerates Table I of the paper at full workload scale.
//!
//! Usage: `cargo run -p bench --bin table1 --release [-- --small] [-- --json]`
//!
//! `--json` emits the table as machine-readable JSON (for regression
//! tracking) instead of the human-readable rendering.

use sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let json = std::env::args().any(|a| a == "--json");
    let (fw, aw) = if small {
        (FfbpWorkload::small(), AutofocusWorkload::small())
    } else {
        (FfbpWorkload::paper(), AutofocusWorkload::paper())
    };
    let t = sar_epiphany::table1(&fw, &aw);
    if json {
        println!("{}", serde_json::to_string_pretty(&t).expect("serialise table"));
    } else {
        println!("{t}");
    }
}
