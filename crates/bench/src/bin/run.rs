//! The unified experiment runner: any registered Mapping × Platform ×
//! Workload triple through the single harness entry point.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin run --release -- [--mapping M] [--platform P] \
//!     [--workload ffbp|autofocus] [--small] [--json] [--list]
//! ```
//!
//! Omitted selectors mean "all": with no flags the runner executes
//! every supported mapping × platform pair on its kernel's workload.
//! `--list` prints the registries and exits.

use sar_epiphany::harness_impls::{all_mappings, mapping_named};
use sim_harness::{all_platforms, platform_named, run, BenchHarness, Platform, Workload};

fn main() {
    let mut h = BenchHarness::new("run");

    let mappings = match h.value("mapping") {
        Some(name) => vec![mapping_named(name).unwrap_or_else(|| {
            eprintln!("unknown mapping '{name}'; try --list");
            std::process::exit(2);
        })],
        None => all_mappings(),
    };
    let platforms: Vec<Box<dyn Platform>> = match h.value("platform") {
        Some(name) => vec![platform_named(name).unwrap_or_else(|| {
            eprintln!("unknown platform '{name}'; try --list");
            std::process::exit(2);
        })],
        None => all_platforms(),
    };
    let kernel = h.value("workload").map(str::to_string);
    if let Some(k) = &kernel {
        if Workload::named(k, true).is_none() {
            eprintln!("unknown workload '{k}'; try --list");
            std::process::exit(2);
        }
    }

    if h.flag("list") {
        println!("mappings  :");
        for m in all_mappings() {
            println!("  {:<16} kernel {}", m.name(), m.kernel());
        }
        println!("platforms :");
        for p in all_platforms() {
            println!("  {}", p.label());
        }
        println!("workloads : ffbp, autofocus");
        return;
    }

    h.say(format_args!(
        "unified runner — {} scale",
        if h.small() { "small" } else { "paper" }
    ));
    h.say(format_args!(
        "\n{:<16} {:>10} {:>6} {:>12} {:>9} {:>12}",
        "mapping", "platform", "cores", "time (ms)", "power W", "energy (J)"
    ));
    let mut ran = 0usize;
    for m in &mappings {
        if kernel.as_deref().is_some_and(|k| k != m.kernel()) {
            continue;
        }
        let workload = Workload::named(m.kernel(), h.small()).expect("registered kernel");
        for p in &platforms {
            let r = match run(m.as_ref(), &workload, p.as_ref()) {
                Ok(r) => r,
                Err(_) => continue, // unsupported pair — skip, don't fail
            };
            h.say(format_args!(
                "{:<16} {:>10} {:>6} {:>12.3} {:>9.1} {:>12.6}",
                r.record.mapping,
                r.record.platform,
                r.record.cores_used,
                r.record.millis(),
                r.record.power_w,
                r.record.energy_j()
            ));
            h.record(r.record);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no supported mapping x platform pair matched the selection");
        std::process::exit(1);
    }
    h.finish();
}
