//! The unified experiment runner: any registered Mapping × Platform ×
//! Workload triple through the single harness entry point.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin run --release -- [--mapping M] [--platform P] \
//!     [--workload ffbp|rda|autofocus] \
//!     [--placement neighbor|scattered|@placement.json] \
//!     [--faults spec.json] [--seed N] \
//!     [--small] [--json] [--list] [--analyze] [--cost] [--trace out.json] \
//!     [--heatmap] [--power]
//! ```
//!
//! Omitted selectors mean "all": with no flags the runner executes
//! every supported mapping × platform pair on its kernel's workload.
//! `--list` prints the registries and exits. `--analyze` runs the
//! `sarlint` static checks on each pair first and *refuses to
//! simulate* any pair with a hard diagnostic (exit 1); adding `--cost`
//! also prices each simulated pair with the static cost model and
//! prints the predicted bounds next to the simulated result
//! (presentation only — the records are unchanged). `--trace P`
//! exports a Chrome `trace_event` timeline per executed pair (the
//! first pair writes `P`, later ones `P` with `-1`, `-2`, … before the
//! extension); `--heatmap` prints the per-link mesh table after each
//! Epiphany run; `--power` prints the power timeline and per-phase
//! energy-attribution table after each run (presentation only — the
//! records are byte-identical with or without it).
//!
//! `--faults spec.json` arms deterministic fault injection: the spec's
//! random groups expand from `--seed N` (default 0), each executed
//! pair gets a fresh schedule, and the per-run fault/recovery totals
//! land in the record (`faults_injected`, `retries`, …). Same seed +
//! same spec reproduce the run exactly.
//!
//! `--placement` accepts the hand names or `@path/to/placement.json`
//! — a file the `autotune` binary's `--placement-out` writes — so a
//! tuned placement is simulated through the identical path as the
//! hand ones.
//!
//! Bad command lines exit 2 with a `CLI***` diagnostic on stderr:
//! `CLI003` for an unknown `--placement` name, `CLI004` for a
//! malformed `--seed`, `CLI005` for an unreadable or malformed
//! `--faults` spec, `CLI007` for an unreadable, malformed or
//! out-of-bounds `--placement` file.

use sar_epiphany::autofocus_mpmd::Placement;
use sar_epiphany::harness_impls::{all_mappings, mapping_named_placed};
use sim_harness::{
    all_platforms, platform_named, run_ctx, BenchHarness, Diagnostic, FaultPlan, FaultState,
    Mapping, Platform, RunContext, Workload,
};

/// `path` for run 0, `path` with `-n` spliced before the extension for
/// later runs (so an unselective sweep doesn't overwrite its traces).
fn trace_file(path: &str, n: usize) -> String {
    if n == 0 {
        return path.to_string();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{n}.{ext}"),
        None => format!("{path}-{n}"),
    }
}

/// Print a command-line diagnostic and exit 2 (the CLI error status;
/// 1 is reserved for "ran, found problems").
fn fail(d: &Diagnostic) -> ! {
    eprintln!("{d}");
    eprintln!("try --list for the registered names");
    std::process::exit(2);
}

/// `h.operand(name)`, with a missing-operand diagnostic fatal.
fn operand<'a>(h: &'a BenchHarness, name: &str) -> Option<&'a str> {
    h.operand(name).unwrap_or_else(|d| fail(&d))
}

/// What the selector flags resolved to: mappings, platforms, the
/// optional kernel filter, and the resolved `--placement` override
/// (with its original spelling for diagnostics).
type Selection = (
    Vec<Box<dyn Mapping>>,
    Vec<Box<dyn Platform>>,
    Option<String>,
    Option<(String, Placement)>,
);

fn selection(h: &BenchHarness) -> Selection {
    let placed = operand(h, "placement").map(|spec| {
        let p = Placement::resolve(spec).unwrap_or_else(|d| fail(&d));
        (spec.to_string(), p)
    });
    let place = placed
        .as_ref()
        .map_or_else(Placement::neighbor, |(_, p)| *p);
    let mappings = match operand(h, "mapping") {
        Some(name) => vec![mapping_named_placed(name, place).unwrap_or_else(|| {
            fail(&Diagnostic::hard(
                "CLI001",
                format!("--mapping {name}"),
                "unknown mapping name",
            ))
        })],
        None => all_mappings()
            .iter()
            .map(|m| mapping_named_placed(m.name(), place).expect("registry name resolves"))
            .collect(),
    };
    let platforms: Vec<Box<dyn Platform>> = match operand(h, "platform") {
        Some(name) => vec![platform_named(name).unwrap_or_else(|| {
            fail(&Diagnostic::hard(
                "CLI001",
                format!("--platform {name}"),
                "unknown platform name",
            ))
        })],
        None => all_platforms(),
    };
    let kernel = operand(h, "workload").map(str::to_string);
    if let Some(k) = &kernel {
        if Workload::named(k, true).is_none() {
            fail(&Diagnostic::hard(
                "CLI001",
                format!("--workload {k}"),
                "unknown workload name; expected 'ffbp', 'rda' or 'autofocus'",
            ));
        }
    }
    (mappings, platforms, kernel, placed)
}

fn main() {
    let mut h = BenchHarness::new("run");
    let (mappings, platforms, kernel, placed) = selection(&h);

    if h.flag("list") {
        println!("mappings  :");
        for m in all_mappings() {
            println!("  {:<16} kernel {}", m.name(), m.kernel());
        }
        println!("platforms :");
        for p in all_platforms() {
            println!("  {}", p.label());
        }
        println!("workloads : ffbp, rda, autofocus");
        println!("placements: neighbor, scattered, @path/to/placement.json");
        return;
    }

    let seed: u64 = operand(&h, "seed").map_or(0, |s| {
        s.parse().unwrap_or_else(|_| {
            fail(&Diagnostic::hard(
                "CLI004",
                format!("--seed {s}"),
                "malformed seed; expected an unsigned 64-bit integer",
            ))
        })
    });
    let fault_plan: Option<FaultPlan> = operand(&h, "faults").map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            fail(&Diagnostic::hard(
                "CLI005",
                format!("--faults {path}"),
                format!("cannot read fault spec: {e}"),
            ))
        });
        FaultPlan::parse(&text, seed).unwrap_or_else(|e| {
            fail(&Diagnostic::hard(
                "CLI005",
                format!("--faults {path}"),
                format!("malformed fault spec: {e}"),
            ))
        })
    });

    h.say(format_args!(
        "unified runner — {} scale{}",
        if h.small() { "small" } else { "paper" },
        if h.flag("analyze") {
            ", sarlint gate on"
        } else {
            ""
        }
    ));
    h.say(format_args!(
        "\n{:<16} {:>10} {:>6} {:>12} {:>9} {:>12}",
        "mapping", "platform", "cores", "time (ms)", "power W", "energy (J)"
    ));
    let mut ran = 0usize;
    let mut refused = 0usize;
    for m in &mappings {
        if kernel.as_deref().is_some_and(|k| k != m.kernel()) {
            continue;
        }
        let workload = Workload::named(m.kernel(), h.small()).unwrap_or_else(|| {
            fail(&Diagnostic::hard(
                "CLI001",
                m.kernel().to_string(),
                "mapping names a kernel with no registered workload",
            ))
        });
        for p in &platforms {
            if !m.supports(p.kind()) {
                continue; // unsupported pair — skip, don't fail
            }
            if let Some((spec, pl)) = &placed {
                // An out-of-bounds placement would panic deep inside
                // the drivers; refuse it up front, per platform mesh.
                if let Some(ep) = p.epiphany_params() {
                    if !pl.fits(ep.mesh_cols, ep.mesh_rows) {
                        fail(&Diagnostic::hard(
                            "CLI007",
                            format!("--placement {spec}"),
                            format!(
                                "placement does not fit the {}x{} {} mesh",
                                ep.mesh_cols,
                                ep.mesh_rows,
                                p.label()
                            ),
                        ));
                    }
                }
            }
            if h.flag("analyze") {
                let report = sarlint::analyze_pair(m.as_ref(), &workload, p.as_ref());
                if !report.is_clean() {
                    eprintln!(
                        "refusing to simulate {} x {}: {} hard sarlint finding(s)",
                        m.name(),
                        p.label(),
                        report.hard_count()
                    );
                    for d in report.hard() {
                        eprintln!("{d}");
                    }
                    refused += 1;
                    continue;
                }
            }
            let tracer = h.tracer();
            let mut ctx = RunContext::traced(tracer.clone());
            if let Some(plan) = &fault_plan {
                // Each pair gets a fresh schedule, so a sweep injects
                // the same faults into every run.
                ctx = ctx.with_faults(FaultState::from_plan(plan));
            }
            let r = match run_ctx(m.as_ref(), &workload, p.as_ref(), &ctx) {
                Ok(r) => r,
                Err(e) => {
                    // supports() said yes but execute() refused: a
                    // registry bug worth surfacing, not skipping.
                    eprintln!("{} x {}: {e}", m.name(), p.label());
                    continue;
                }
            };
            h.say(format_args!(
                "{:<16} {:>10} {:>6} {:>12.3} {:>9.1} {:>12.6}",
                r.record.mapping,
                r.record.platform,
                r.record.cores_used,
                r.record.millis(),
                r.record.power_w,
                r.record.energy_j()
            ));
            if h.flag("analyze") && h.flag("cost") {
                let (c, _lints) = sarlint::cost::cost_pair(m.as_ref(), &workload, p.as_ref());
                if c.bounded {
                    let cycles = r.record.elapsed.cycles.raw() as f64;
                    let energy = r.record.energy_j();
                    h.say(format_args!(
                        "  {} — simulated {cycles:.3e} cycles / {energy:.6} J ({})",
                        c.summary(),
                        if c.cycles.contains(cycles) && c.total_j.contains(energy) {
                            "within bounds"
                        } else {
                            "OUTSIDE BOUNDS"
                        }
                    ));
                } else {
                    h.say(format_args!("  {}", c.summary()));
                }
            }
            if r.record.faults.any() {
                let f = &r.record.faults;
                h.say(format_args!(
                    "  faults: {} injected, {} retries, {} recovery cycles, \
                     {} degraded core(s), {:.6} J recovery energy",
                    f.faults_injected,
                    f.retries,
                    f.recovery_cycles,
                    f.degraded_cores,
                    f.recovery_energy_j
                ));
            }
            if let Some(path) = h.trace_path() {
                h.write_trace(trace_file(path, ran), &tracer, r.record.elapsed.clock);
            }
            if h.heatmap() {
                if let Some(heatmap) = &r.record.mesh_heatmap {
                    h.say(format_args!("\n{}", heatmap.render(8)));
                }
            }
            if h.flag("power") {
                if let Some(power) = &r.record.power {
                    h.say(format_args!("\n{}", power.render(r.record.elapsed.clock)));
                }
            }
            h.record(r.record);
            ran += 1;
        }
    }
    if ran == 0 && refused == 0 {
        eprintln!("no supported mapping x platform pair matched the selection");
        std::process::exit(1);
    }
    h.finish();
    if refused > 0 {
        eprintln!("{refused} pair(s) refused by the sarlint gate");
        std::process::exit(1);
    }
}
