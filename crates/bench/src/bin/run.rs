//! The unified experiment runner: any registered Mapping × Platform ×
//! Workload triple through the single harness entry point.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin run --release -- [--mapping M] [--platform P] \
//!     [--workload ffbp|autofocus] [--small] [--json] [--list] \
//!     [--trace out.json] [--heatmap]
//! ```
//!
//! Omitted selectors mean "all": with no flags the runner executes
//! every supported mapping × platform pair on its kernel's workload.
//! `--list` prints the registries and exits. `--trace P` exports a
//! Chrome `trace_event` timeline per executed pair (the first pair
//! writes `P`, later ones `P` with `-1`, `-2`, … before the
//! extension); `--heatmap` prints the per-link mesh table after each
//! Epiphany run.

use sar_epiphany::harness_impls::{all_mappings, mapping_named};
use sim_harness::{all_platforms, platform_named, run_traced, BenchHarness, Platform, Workload};

/// `path` for run 0, `path` with `-n` spliced before the extension for
/// later runs (so an unselective sweep doesn't overwrite its traces).
fn trace_file(path: &str, n: usize) -> String {
    if n == 0 {
        return path.to_string();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{n}.{ext}"),
        None => format!("{path}-{n}"),
    }
}

fn main() {
    let mut h = BenchHarness::new("run");

    let mappings = match h.value("mapping") {
        Some(name) => vec![mapping_named(name).unwrap_or_else(|| {
            eprintln!("unknown mapping '{name}'; try --list");
            std::process::exit(2);
        })],
        None => all_mappings(),
    };
    let platforms: Vec<Box<dyn Platform>> = match h.value("platform") {
        Some(name) => vec![platform_named(name).unwrap_or_else(|| {
            eprintln!("unknown platform '{name}'; try --list");
            std::process::exit(2);
        })],
        None => all_platforms(),
    };
    let kernel = h.value("workload").map(str::to_string);
    if let Some(k) = &kernel {
        if Workload::named(k, true).is_none() {
            eprintln!("unknown workload '{k}'; try --list");
            std::process::exit(2);
        }
    }

    if h.flag("list") {
        println!("mappings  :");
        for m in all_mappings() {
            println!("  {:<16} kernel {}", m.name(), m.kernel());
        }
        println!("platforms :");
        for p in all_platforms() {
            println!("  {}", p.label());
        }
        println!("workloads : ffbp, autofocus");
        return;
    }

    h.say(format_args!(
        "unified runner — {} scale",
        if h.small() { "small" } else { "paper" }
    ));
    h.say(format_args!(
        "\n{:<16} {:>10} {:>6} {:>12} {:>9} {:>12}",
        "mapping", "platform", "cores", "time (ms)", "power W", "energy (J)"
    ));
    let mut ran = 0usize;
    for m in &mappings {
        if kernel.as_deref().is_some_and(|k| k != m.kernel()) {
            continue;
        }
        let workload = Workload::named(m.kernel(), h.small()).expect("registered kernel");
        for p in &platforms {
            let tracer = h.tracer();
            let r = match run_traced(m.as_ref(), &workload, p.as_ref(), &tracer) {
                Ok(r) => r,
                Err(_) => continue, // unsupported pair — skip, don't fail
            };
            h.say(format_args!(
                "{:<16} {:>10} {:>6} {:>12.3} {:>9.1} {:>12.6}",
                r.record.mapping,
                r.record.platform,
                r.record.cores_used,
                r.record.millis(),
                r.record.power_w,
                r.record.energy_j()
            ));
            if let Some(path) = h.trace_path() {
                h.write_trace(trace_file(path, ran), &tracer, r.record.elapsed.clock);
            }
            if h.heatmap() {
                if let Some(heatmap) = &r.record.mesh_heatmap {
                    h.say(format_args!("\n{}", heatmap.render(8)));
                }
            }
            h.record(r.record);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no supported mapping x platform pair matched the selection");
        std::process::exit(1);
    }
    h.finish();
}
