//! A5 — clock scaling: the evaluation board runs the E16G3 at
//! 400 MHz; the paper reports results scaled to the 1 GHz spec point.
//! Verify the scaling assumption holds in the model (compute scales
//! with clock; SDRAM latency is clock-domain-relative in the model, as
//! it is for cycle counts measured on the board).
//!
//! Usage: `cargo run -p bench --bin clock_sweep --release [-- --json]`

use desim::Frequency;
use epiphany::EpiphanyParams;
use sar_epiphany::autofocus_seq;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::AutofocusWorkload;
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("clock_sweep");
    let fw = bench::reduced_ffbp(256, 1001);
    let aw = AutofocusWorkload::paper();
    h.say("Epiphany clock sweep");
    h.say(format_args!(
        "{:>10} {:>16} {:>20} {:>14}",
        "clock", "FFBP-16 (ms)", "autofocus (px/s)", "AF energy (J)"
    ));
    for mhz in [400.0f64, 600.0, 800.0, 1000.0] {
        let p = EpiphanyParams {
            clock: Frequency::mhz(mhz),
            ..EpiphanyParams::default()
        };
        let mut f = ffbp_spmd::run(&fw, p, SpmdOptions::default());
        let ap = EpiphanyParams {
            clock: Frequency::mhz(mhz),
            ..autofocus_seq::params()
        };
        let mut a = autofocus_seq::run(&aw, ap);
        h.say(format_args!(
            "{:>7} MHz {:>16.2} {:>20.0} {:>14.6}",
            mhz,
            f.record.millis(),
            aw.pixels() as f64 / a.record.elapsed.seconds(),
            a.record.energy_j()
        ));
        f.record.set_metric("clock_mhz", mhz);
        a.record.set_metric("clock_mhz", mhz);
        h.record(f.record);
        h.record(a.record);
    }
    h.say("\nCycle counts are clock-invariant in the model, so wall time scales");
    h.say("inversely with frequency — the scaling the paper applies to its");
    h.say("400 MHz board measurements.");
    h.finish();
}
