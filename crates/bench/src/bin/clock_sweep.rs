//! A5 — clock scaling: the evaluation board runs the E16G3 at
//! 400 MHz; the paper reports results scaled to the 1 GHz spec point.
//! Verify the scaling assumption holds in the model (compute scales
//! with clock; SDRAM latency is clock-domain-relative in the model, as
//! it is for cycle counts measured on the board).
//!
//! Usage: `cargo run -p bench --bin clock_sweep --release`

use desim::Frequency;
use epiphany::EpiphanyParams;
use sar_epiphany::autofocus_seq;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::AutofocusWorkload;

fn main() {
    let fw = bench::reduced_ffbp(256, 1001);
    let aw = AutofocusWorkload::paper();
    println!("Epiphany clock sweep");
    println!(
        "{:>10} {:>16} {:>20} {:>14}",
        "clock", "FFBP-16 (ms)", "autofocus (px/s)", "AF energy (J)"
    );
    for mhz in [400.0f64, 600.0, 800.0, 1000.0] {
        let p = EpiphanyParams {
            clock: Frequency::mhz(mhz),
            ..EpiphanyParams::default()
        };
        let f = ffbp_spmd::run(&fw, p, SpmdOptions::default());
        let ap = EpiphanyParams {
            clock: Frequency::mhz(mhz),
            ..autofocus_seq::params()
        };
        let a = autofocus_seq::run(&aw, ap);
        println!(
            "{:>7} MHz {:>16.2} {:>20.0} {:>14.6}",
            mhz,
            f.report.millis(),
            aw.pixels() as f64 / a.report.elapsed.seconds(),
            a.report.energy_j()
        );
    }
    println!("\nCycle counts are clock-invariant in the model, so wall time scales");
    println!("inversely with frequency — the scaling the paper applies to its");
    println!("400 MHz board measurements.");
}
