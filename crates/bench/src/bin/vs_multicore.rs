//! Related-work context (paper §IV/VI-A, Lidberg et al.): FFBP on a
//! general-purpose multicore host — real threads, real wall time —
//! against the simulated 16-core Epiphany, compared on energy
//! efficiency as the paper does ("our implementation outperforms
//! theirs in terms of energy efficiency").
//!
//! Host energy uses an assumed package power (configurable constant
//! below) times measured wall time; the Epiphany side uses the 2 W
//! datasheet figure times simulated time.
//!
//! Usage: `cargo run -p bench --bin vs_multicore --release [-- --json]`

use epiphany::EpiphanyParams;
use sar_core::parallel::ffbp_parallel;
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sim_harness::{BenchHarness, EPIPHANY_POWER_W};

/// Assumed host package power under load, watts (a mobile/desktop
/// multicore; adjust for your machine).
const HOST_POWER_W: f64 = 45.0;

fn main() {
    let mut h = BenchHarness::new("vs_multicore");
    let w = bench::reduced_ffbp(256, 1001);
    let pixels = w.pixels() as f64;
    h.say(format_args!(
        "FFBP: host threads (measured wall time) vs simulated Epiphany ({} px)",
        w.pixels()
    ));
    h.say(format_args!(
        "\n{:>16} {:>12} {:>14} {:>16}",
        "config", "time (ms)", "Mpx/s", "Mpx/s/W"
    ));

    let mut host_best = f64::MAX;
    let max_threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    for threads in [1usize, 2, 4, max_threads] {
        let (mut record, _run) =
            BenchHarness::host_record(&format!("FFBP / host, {threads} threads"), || {
                ffbp_parallel(&w.data, &w.geom, &w.config, threads)
            });
        let secs = record.elapsed.seconds();
        host_best = host_best.min(secs);
        let mpx = pixels / secs / 1e6;
        h.say(format_args!(
            "{:>12} x{:<3} {:>12.1} {:>14.2} {:>16.4}",
            "host",
            threads,
            secs * 1e3,
            mpx,
            mpx / HOST_POWER_W
        ));
        record.power_w = HOST_POWER_W;
        record.set_metric("threads", threads as f64);
        record.set_metric("mpx_per_s", mpx);
        record.set_metric("mpx_per_s_per_w", mpx / HOST_POWER_W);
        h.record(record);
    }

    let epi = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
    let secs = epi.record.elapsed.seconds();
    let mpx = pixels / secs / 1e6;
    h.say(format_args!(
        "{:>16} {:>12.1} {:>14.2} {:>16.4}",
        "Epiphany x16",
        secs * 1e3,
        mpx,
        mpx / EPIPHANY_POWER_W
    ));
    let mut epi_record = epi.record;
    epi_record.set_metric("mpx_per_s", mpx);
    epi_record.set_metric("mpx_per_s_per_w", mpx / EPIPHANY_POWER_W);
    h.record(epi_record);

    let host_mpx_w = pixels / host_best / 1e6 / HOST_POWER_W;
    let epi_mpx_w = mpx / EPIPHANY_POWER_W;
    h.say(format_args!(
        "\nenergy-efficiency advantage (Epiphany / best host): {:.1}x",
        epi_mpx_w / host_mpx_w
    ));
    h.say("The host wins raw throughput; per watt the manycore wins — the");
    h.say("paper's conclusion against the Lidberg et al. Xeon implementation.");
    h.finish();
}
