//! Fault-intensity sweep: how much makespan and energy the recovery
//! policies cost as the injected-fault count grows, on both recovered
//! mappings — the SPMD FFBP (checkpoint/restart + degraded cores) and
//! the MPMD autofocus pipeline (watchdog retry + drain-and-restart
//! with spare-core remap). Level 0 is the fault-free baseline; every
//! level reuses the same seed, so the sweep is reproducible run to
//! run.
//!
//! Usage: `cargo run -p bench --bin fault_sweep --release [-- --json --seed N]`

use sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::{AutofocusWorkload, FfbpWorkload};
use sim_harness::{BenchHarness, FaultPlan, FaultState};

/// A mixed-kind random fault group spec: `n` of each perturbation kind
/// drawn from the first `window` cycles of the run.
fn spec(n: u64, window: u64) -> String {
    format!(
        r#"{{"version": 1, "faults": [
            {{"kind": "flag_drop", "count": {n}, "window": [0, {window}]}},
            {{"kind": "sdram_bit_error", "count": {n}, "window": [0, {window}]}},
            {{"kind": "elink_degrade", "count": {n}, "window": [0, {window}], "extra": 128}},
            {{"kind": "mesh_stall", "count": {n}, "window": [0, {window}], "extra": 256}}
        ]}}"#
    )
}

fn main() {
    let mut h = BenchHarness::new("fault_sweep");
    let seed: u64 = h
        .operand("seed")
        .unwrap_or_else(|d| {
            eprintln!("{d}");
            std::process::exit(2);
        })
        .map_or(7, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!(
                    "error[CLI004] --seed {s}: malformed seed; expected an unsigned 64-bit integer"
                );
                std::process::exit(2);
            })
        });
    let fw = FfbpWorkload::small();
    let aw = AutofocusWorkload::small();

    h.say(format_args!("fault-intensity sweep (seed {seed})"));
    h.say(format_args!(
        "{:>14} {:>7} {:>10} {:>8} {:>12} {:>12}",
        "mapping", "faults", "time (ms)", "retries", "rec. cycles", "overhead"
    ));

    let mut ffbp_base = 0.0f64;
    let mut af_base = 0.0f64;
    for n in [0u64, 1, 2, 4, 8] {
        // FFBP/SPMD: the window spans the run so every level lands
        // inside it. Flag drops stay pending here (the SPMD drain uses
        // local flags, not remote writes) — only the timing kinds bite.
        let plan = FaultPlan::parse(&spec(n, 400_000), seed).expect("sweep spec parses");
        let faults = FaultState::from_plan(&plan);
        let r = ffbp_spmd::run_faulted(
            &fw,
            epiphany::EpiphanyParams::default(),
            SpmdOptions::default(),
            desim::trace::Tracer::disabled(),
            faults.clone(),
        );
        let ms = r.record.millis();
        if n == 0 {
            ffbp_base = ms;
        }
        let mut record = r.record;
        record.set_metric("fault_level", n as f64);
        record.set_metric("overhead_pct", 100.0 * (ms / ffbp_base - 1.0));
        h.say(format_args!(
            "{:>14} {:>7} {:>10.3} {:>8} {:>12} {:>11.2}%",
            "ffbp_spmd",
            record.faults.faults_injected,
            ms,
            record.faults.retries,
            record.faults.recovery_cycles,
            100.0 * (ms / ffbp_base - 1.0)
        ));
        h.record(record);

        // Autofocus/MPMD: a shorter run, so a tighter window; here the
        // flag drops do bite (every inter-stage message is a remote
        // flag write) and cost watchdog timeouts.
        let plan = FaultPlan::parse(&spec(n, 40_000), seed).expect("sweep spec parses");
        let faults = FaultState::from_plan(&plan);
        let r = autofocus_mpmd::run_faulted(
            &aw,
            autofocus_mpmd::params(),
            Placement::neighbor(),
            desim::trace::Tracer::disabled(),
            faults.clone(),
        );
        let ms = r.record.millis();
        if n == 0 {
            af_base = ms;
        }
        let mut record = r.record;
        record.set_metric("fault_level", n as f64);
        record.set_metric("overhead_pct", 100.0 * (ms / af_base - 1.0));
        h.say(format_args!(
            "{:>14} {:>7} {:>10.3} {:>8} {:>12} {:>11.2}%",
            "autofocus_mpmd",
            record.faults.faults_injected,
            ms,
            record.faults.retries,
            record.faults.recovery_cycles,
            100.0 * (ms / af_base - 1.0)
        ));
        h.record(record);
    }

    h.say("\nRecovery degrades gracefully: overhead grows with the injected");
    h.say("count, and every level produces bit-identical images/sweeps to the");
    h.say("fault-free run (the drivers' recovery tests assert this).");
    h.finish();
}
