//! A2 — interpolation-kernel ablation: the paper uses simplified
//! (nearest-neighbour) interpolation and remarks that cubic kernels
//! would "considerably improve" image quality at higher cost. Quantify
//! both sides: cycles on the Epiphany model and fidelity to GBP.
//!
//! Usage: `cargo run -p bench --bin interp_ablation --release [-- --json]`

use epiphany::EpiphanyParams;
use sar_core::ffbp::{ffbp, FfbpConfig, InterpKind};
use sar_core::gbp::gbp;
use sar_core::quality::{image_entropy, normalized_rmse};
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::FfbpWorkload;
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("interp_ablation");
    let base = bench::reduced_ffbp(256, 513);
    let reference = gbp(&base.data, &base.geom, base.geom.num_pulses);
    h.say(format_args!(
        "FFBP interpolation ablation ({} pulses x {} bins; RMSE vs GBP)",
        base.geom.num_pulses, base.geom.num_bins
    ));
    h.say(format_args!(
        "{:>9} {:>14} {:>12} {:>12} {:>10}",
        "kernel", "epiphany (ms)", "flop work", "RMSE", "entropy"
    ));
    for (name, kind) in [
        ("nearest", InterpKind::Nearest),
        ("linear", InterpKind::Linear),
        ("cubic", InterpKind::Cubic),
    ] {
        let w = FfbpWorkload {
            config: FfbpConfig {
                interp: kind,
                ..base.config
            },
            ..base.clone()
        };
        let mut machine = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let plain = ffbp(&w.data, &w.geom, &w.config);
        let rmse = normalized_rmse(&plain.image, &reference.image);
        let entropy = image_entropy(&plain.image);
        h.say(format_args!(
            "{:>9} {:>14.2} {:>12} {:>12.4} {:>10.2}",
            name,
            machine.record.millis(),
            plain.counts.flop_work(),
            rmse,
            entropy
        ));
        machine.record.label = format!("{} — {name} interpolation", machine.record.label);
        machine
            .record
            .set_metric("flop_work", plain.counts.flop_work() as f64);
        machine.record.set_metric("rmse_vs_gbp", rmse);
        machine.record.set_metric("entropy", entropy);
        h.record(machine.record);
    }
    h.say("\nNearest is cheapest and noisiest; cubic buys fidelity with flops —");
    h.say("the trade the paper points at without quantifying.");
    h.finish();
}
