//! A2 — interpolation-kernel ablation: the paper uses simplified
//! (nearest-neighbour) interpolation and remarks that cubic kernels
//! would "considerably improve" image quality at higher cost. Quantify
//! both sides: cycles on the Epiphany model and fidelity to GBP.
//!
//! Usage: `cargo run -p bench --bin interp_ablation --release`

use epiphany::EpiphanyParams;
use sar_core::ffbp::{ffbp, FfbpConfig, InterpKind};
use sar_core::gbp::gbp;
use sar_core::quality::{image_entropy, normalized_rmse};
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::FfbpWorkload;

fn main() {
    let base = bench::reduced_ffbp(256, 513);
    let reference = gbp(&base.data, &base.geom, base.geom.num_pulses);
    println!(
        "FFBP interpolation ablation ({} pulses x {} bins; RMSE vs GBP)",
        base.geom.num_pulses, base.geom.num_bins
    );
    println!(
        "{:>9} {:>14} {:>12} {:>12} {:>10}",
        "kernel", "epiphany (ms)", "flop work", "RMSE", "entropy"
    );
    for (name, kind) in [
        ("nearest", InterpKind::Nearest),
        ("linear", InterpKind::Linear),
        ("cubic", InterpKind::Cubic),
    ] {
        let w = FfbpWorkload {
            config: FfbpConfig { interp: kind, ..base.config },
            ..base.clone()
        };
        let machine = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let plain = ffbp(&w.data, &w.geom, &w.config);
        println!(
            "{:>9} {:>14.2} {:>12} {:>12.4} {:>10.2}",
            name,
            machine.report.millis(),
            plain.counts.flop_work(),
            normalized_rmse(&plain.image, &reference.image),
            image_entropy(&plain.image)
        );
    }
    println!("\nNearest is cheapest and noisiest; cubic buys fidelity with flops —");
    println!("the trade the paper points at without quantifying.");
}
