//! Figure 7: (a) pulse-compressed raw data, (b) GBP image, (c) FFBP
//! image "on Intel", (d) FFBP image "on Epiphany".
//!
//! Writes the four panels as PGM files into `fig7_out/` and prints the
//! quality metrics the paper discusses: the FFBP panels are identical
//! to each other (same functional kernel on both machines) and
//! measurably noisier than the GBP reference because of the simplified
//! nearest-neighbour interpolation.
//!
//! Usage: `cargo run -p bench --bin fig7 --release [-- --small] [-- --json]`

use std::path::Path;

use sar_core::gbp::gbp;
use sar_core::quality::{image_entropy, normalized_rmse, peak_sidelobe_ratio_db};
use sar_epiphany::workloads::FfbpWorkload;
use sar_epiphany::{ffbp_ref, ffbp_seq};
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("fig7");
    let w = if h.small() {
        FfbpWorkload::small()
    } else {
        FfbpWorkload::paper()
    };
    let out = Path::new("fig7_out");
    std::fs::create_dir_all(out).expect("create output dir");

    h.say(format_args!(
        "Figure 7 reproduction ({} x {})",
        w.geom.num_pulses, w.geom.num_bins
    ));

    // (a) raw pulse-compressed data: six curved target paths.
    w.data
        .write_pgm(&out.join("fig7a_raw_data.pgm"), -50.0)
        .expect("write (a)");
    h.say("(a) pulse-compressed raw data  -> fig7a_raw_data.pgm");

    // (b) GBP reference.
    let reference = gbp(&w.data, &w.geom, w.geom.num_pulses);
    reference
        .image
        .write_pgm(&out.join("fig7b_gbp.pgm"), -50.0)
        .expect("write (b)");
    h.say(format_args!(
        "(b) GBP image                  -> fig7b_gbp.pgm   (PSLR {:.1} dB, entropy {:.2})",
        peak_sidelobe_ratio_db(&reference.image, 4),
        image_entropy(&reference.image)
    ));

    // (c)/(d) FFBP through the two machine models — same kernel, same
    // numbers; only time/energy differ.
    let intel = ffbp_ref::run(&w, refcpu::RefCpuParams::default());
    intel
        .image
        .write_pgm(&out.join("fig7c_ffbp_intel.pgm"), -50.0)
        .expect("write (c)");
    let epiphany = ffbp_seq::run(&w, epiphany::EpiphanyParams::default());
    epiphany
        .image
        .write_pgm(&out.join("fig7d_ffbp_epiphany.pgm"), -50.0)
        .expect("write (d)");

    let identical = intel.image.as_slice() == epiphany.image.as_slice();
    h.say(format_args!(
        "(c) FFBP on Intel model        -> fig7c_ffbp_intel.pgm    (PSLR {:.1} dB, entropy {:.2})",
        peak_sidelobe_ratio_db(&intel.image, 4),
        image_entropy(&intel.image)
    ));
    h.say(format_args!(
        "(d) FFBP on Epiphany model     -> fig7d_ffbp_epiphany.pgm (identical to (c): {identical})"
    ));
    let rmse = normalized_rmse(&intel.image, &reference.image);
    h.say("\nQuality vs GBP (the paper: FFBP/NN is visibly noisier):");
    h.say(format_args!("  FFBP normalized RMSE vs GBP : {rmse:.4}"));
    h.say(format_args!(
        "  entropy GBP / FFBP          : {:.2} / {:.2}",
        image_entropy(&reference.image),
        image_entropy(&intel.image)
    ));
    for mut record in [intel.record, epiphany.record] {
        record.set_metric("rmse_vs_gbp", rmse);
        record.set_metric("entropy", image_entropy(&intel.image));
        record.set_metric(
            "pslr_db",
            f64::from(peak_sidelobe_ratio_db(&intel.image, 4)),
        );
        record.set_metric("images_identical", f64::from(u8::from(identical)));
        h.record(record);
    }
    h.finish();
    assert!(identical, "machines must produce identical FFBP images");
}
