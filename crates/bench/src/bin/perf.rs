//! Simulator-core microbenchmarks with a pinned perf trajectory.
//!
//! Three throughput probes cover the hot paths the sweep engine
//! exercises end to end:
//!
//! * **mesh** — raw [`EMesh::write_onchip`] transfers on an otherwise
//!   idle E16 fabric (nanoseconds per transfer),
//! * **spmd** — full `ffbp_spmd x epiphany` simulations per second
//!   (the machine-model path: chip, meshes, SDRAM, counters),
//! * **sweep** — cold-cache single-threaded [`run_grid`] cells per
//!   second on `specs/scaling_demo.json` (the headline figure
//!   `BENCH_simulator.json` pins),
//! * **pricing** — candidate placements priced per second through the
//!   `autotune` evaluator (probe wiring + static cost model), the
//!   placement search's inner loop.
//!
//! Usage:
//!
//! ```text
//! perf [--quick] [--record <label>] [--check <file>] [--out <file>] [--json]
//! ```
//!
//! `--record <label>` appends an entry to `BENCH_simulator.json` (or
//! `--out <file>`); `--check <file>` compares against the file's last
//! entry and exits 1 if any metric regressed by more than 2x — the CI
//! perf-smoke gate. `--quick` shrinks iteration counts for CI.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use desim::Json;
use emesh::network::EMeshParams;
use emesh::{EMesh, Mesh2D, NodeId};
use sim_harness::{platform_named, run, BenchHarness, Placement, Workload};
use sweep::{CellCache, GridSpec};

/// One measured set of the three probe metrics.
struct Metrics {
    mesh_transfer_ns: f64,
    spmd_runs_per_sec: f64,
    sweep_cells_per_sec: f64,
    placement_prices_per_sec: f64,
}

impl Metrics {
    fn to_json(&self, label: &str) -> Json {
        Json::obj()
            .with("label", label)
            .with("mesh_transfer_ns", round1(self.mesh_transfer_ns))
            .with("spmd_runs_per_sec", round1(self.spmd_runs_per_sec))
            .with("sweep_cells_per_sec", round1(self.sweep_cells_per_sec))
            .with(
                "placement_prices_per_sec",
                round1(self.placement_prices_per_sec),
            )
    }
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

/// Nanoseconds per posted on-chip write, averaged over a deterministic
/// all-pairs traffic pattern with per-source monotone time cursors
/// (the access shape every mapping generates).
fn bench_mesh(transfers: u64) -> f64 {
    let mut fabric = EMesh::new(Mesh2D::e16g3(), EMeshParams::default());
    let n = fabric.mesh().len() as u64;
    let mut cursors = vec![0u64; n as usize];
    let t0 = Instant::now();
    for i in 0..transfers {
        let src = (i % n) as u16;
        let dst = ((i * 7 + 3) % n) as u16;
        let bytes = 8 + (i % 4) * 32;
        let r = fabric.write_onchip(
            desim::Cycle(cursors[src as usize]),
            NodeId(src),
            NodeId(dst),
            bytes,
        );
        cursors[src as usize] = cursors[src as usize].max(r.arrival.raw() / 4);
        black_box(r.arrival);
    }
    let elapsed = t0.elapsed();
    black_box(fabric.cmesh.byte_hops());
    elapsed.as_nanos() as f64 / transfers as f64
}

/// Full `ffbp_spmd x epiphany` machine-model simulations per second.
fn bench_spmd(reps: u32) -> f64 {
    let mapping = sar_epiphany::mapping_named("ffbp_spmd").expect("registered");
    let platform = platform_named("epiphany").expect("registered");
    let workload = Workload::named("ffbp", true).expect("registered");
    // Warm once (first run pays one-time table builds).
    let _ = run(mapping.as_ref(), &workload, platform.as_ref()).expect("supported");
    let t0 = Instant::now();
    for _ in 0..reps {
        let out = run(mapping.as_ref(), &workload, platform.as_ref()).expect("supported");
        black_box(out.record.elapsed);
    }
    f64::from(reps) / t0.elapsed().as_secs_f64()
}

/// Cold-cache single-threaded sweep throughput on the demo grid,
/// best of `reps` (the first rep also warms any process-wide caches —
/// steady-state throughput is what the trajectory pins).
fn bench_sweep(spec: &GridSpec, reps: u32) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..=reps {
        let t0 = Instant::now();
        let outcome = sweep::run_grid(spec, 1, &CellCache::empty()).expect("valid grid");
        let secs = t0.elapsed().as_secs_f64();
        black_box(&outcome.document);
        best = best.max(outcome.cells_total as f64 / secs);
    }
    best
}

/// Candidate placements priced per second through the autotune
/// evaluator: every legal move from the hand `neighbor` placement,
/// cycled until `reps` candidates have been priced. This is the
/// placement search's entire inner loop — model wiring plus the
/// static cost model, no simulation.
fn bench_pricing(reps: u32) -> f64 {
    let eval = autotune::Evaluator::for_pair("autofocus_mpmd:epiphany", true).expect("tunable");
    let space = autotune::PlacementSpace::for_mesh(eval.mesh());
    let start = Placement::neighbor();
    let moves = space.moves(&start);
    // Warm once (the probe and platform tables are already built; this
    // pays any lazy allocator costs).
    black_box(eval.evaluate(&start));
    let t0 = Instant::now();
    let mut priced = 0u32;
    'outer: loop {
        for &mv in &moves {
            if priced >= reps {
                break 'outer;
            }
            let cand = autotune::PlacementSpace::apply(&start, mv);
            black_box(eval.evaluate(&cand));
            priced += 1;
        }
    }
    f64::from(reps) / t0.elapsed().as_secs_f64()
}

/// `measured` regressed more than 2x against `recorded` (higher is
/// better for throughputs; `inverted` flips that for latencies).
fn regressed(recorded: f64, measured: f64, inverted: bool) -> bool {
    if recorded <= 0.0 {
        return false;
    }
    if inverted {
        measured > recorded * 2.0
    } else {
        measured < recorded / 2.0
    }
}

fn check(path: &str, m: &Metrics) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf: {path} is not JSON: {e}");
            return 1;
        }
    };
    let Some(last) = doc
        .get("entries")
        .and_then(Json::as_array)
        .and_then(<[Json]>::last)
    else {
        eprintln!("perf: {path} has no entries");
        return 1;
    };
    let get = |k: &str| last.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let label = last.get("label").and_then(Json::as_str).unwrap_or("?");
    let mut failed = 0;
    let checks = [
        ("mesh_transfer_ns", m.mesh_transfer_ns, true),
        ("spmd_runs_per_sec", m.spmd_runs_per_sec, false),
        ("sweep_cells_per_sec", m.sweep_cells_per_sec, false),
        (
            "placement_prices_per_sec",
            m.placement_prices_per_sec,
            false,
        ),
    ];
    for (key, measured, inverted) in checks {
        let recorded = get(key);
        if regressed(recorded, measured, inverted) {
            eprintln!(
                "perf: {key} regressed >2x vs '{label}': recorded {recorded:.1}, measured {measured:.1}"
            );
            failed = 1;
        }
    }
    if failed == 0 {
        println!("perf: within 2x of '{label}' entry in {path}");
    }
    failed
}

fn record(path: &str, m: &Metrics, label: &str) {
    let mut entries: Vec<Json> = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|d| {
            d.get("entries")
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
        })
        .unwrap_or_default();
    entries.push(m.to_json(label));
    let doc = Json::obj()
        .with("schema", "bench-simulator-v1")
        .with("grid", "specs/scaling_demo.json")
        .with("entries", Json::from(entries));
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write bench file");
    println!("perf: recorded '{label}' entry in {path}");
}

fn main() {
    let h = BenchHarness::new("perf");
    let quick = h.flag("quick");
    let spec_path = h.value("grid").unwrap_or("specs/scaling_demo.json");
    let text = std::fs::read_to_string(spec_path)
        .unwrap_or_else(|e| panic!("cannot read {spec_path}: {e}"));
    let spec = GridSpec::parse(&text).unwrap_or_else(|d| panic!("bad grid spec: {d}"));

    let (mesh_n, spmd_reps, sweep_reps, price_reps) = if quick {
        (200_000, 3, 1, 2_000)
    } else {
        (2_000_000, 10, 4, 20_000)
    };
    let metrics = Metrics {
        mesh_transfer_ns: bench_mesh(mesh_n),
        spmd_runs_per_sec: bench_spmd(spmd_reps),
        sweep_cells_per_sec: bench_sweep(&spec, sweep_reps),
        placement_prices_per_sec: bench_pricing(price_reps),
    };
    if h.json() {
        println!("{}", metrics.to_json("measured").to_string_pretty());
    } else {
        println!(
            "mesh transfer:     {:>10.1} ns/transfer",
            metrics.mesh_transfer_ns
        );
        println!(
            "ffbp_spmd x e16:   {:>10.1} runs/sec",
            metrics.spmd_runs_per_sec
        );
        println!(
            "sweep ({}): {:>10.1} cells/sec",
            spec.name, metrics.sweep_cells_per_sec
        );
        println!(
            "placement pricing: {:>10.1} placements/sec",
            metrics.placement_prices_per_sec
        );
    }

    let out = h.value("out").unwrap_or("BENCH_simulator.json");
    if let Some(label) = h.value("record") {
        record(out, &metrics, label);
    }
    if let Some(path) = h.value("check") {
        let code = check(path, &metrics);
        if code != 0 {
            std::process::exit(code);
        }
    }
    let _ = Path::new(out);
}
