//! E6 — the RDA corner turn under the microscope. The Range–Doppler
//! mapping is the only kernel in the registry with an explicit
//! all-to-all phase: between range and azimuth compression the full
//! range-compressed matrix crosses the mesh twice (gather tile, scatter
//! transposed tile). This report isolates what that costs on the
//! Epiphany model — time, energy, byte-hops and the gating resource per
//! phase — and puts the FFBP SPMD mapping next to it on the same scene
//! geometry, whose merge tree never stages a full transpose.
//!
//! Usage: `cargo run -p bench --bin rda_corner_turn --release [-- --small] [-- --json]`
//!
//! Writes `results/rda_corner_turn.json`: every record at the current
//! schema plus a `corner_turn` summary block with the phase's share of
//! runtime, energy and mesh traffic per platform.

use desim::{Json, RunRecord};
use sar_epiphany::harness_impls::mapping_named;
use sim_harness::{platform_named, run, BenchHarness, Workload};

/// Sum of `f` over the phases whose family name is `name`.
fn phase_sum(r: &RunRecord, name: &str, f: impl Fn(&desim::PhaseRecord) -> f64) -> f64 {
    r.phases.iter().filter(|p| p.name == name).map(f).sum()
}

fn show_phases(h: &BenchHarness, r: &RunRecord) {
    h.say(format_args!(
        "\n{} — {:.3} ms, {:.6} J, {} core(s)",
        r.label,
        r.millis(),
        r.energy.total_j(),
        r.cores_used
    ));
    h.say(format_args!(
        "  {:<16} {:>10} {:>11} {:>14} {:>7}",
        "phase", "time ms", "energy J", "mesh byte-hops", "eLink%"
    ));
    for p in &r.phases {
        h.say(format_args!(
            "  {:<16} {:>10.3} {:>11.6} {:>14} {:>6.1}%",
            format!("{}[{}]", p.name, p.index),
            p.time_ms,
            p.energy_j,
            p.mesh.total_byte_hops(),
            100.0 * p.elink_utilization
        ));
    }
    if let Some(power) = &r.power {
        for p in power.phases.iter().filter(|p| p.name == "corner_turn") {
            let a = &p.attribution;
            h.say(format_args!(
                "  corner_turn gated by {} ({:.0}% of phase energy), \
                 {:.0}% compute / {:.0}% stall",
                a.dominant,
                100.0 * a.dominant_share,
                100.0 * a.compute_fraction,
                100.0 * a.stall_fraction
            ));
        }
    }
}

/// The corner-turn phase's share of the whole run, as a JSON summary
/// row (and the ratios the prose quotes).
fn corner_turn_summary(r: &RunRecord) -> (Json, f64, f64) {
    let total_hops: f64 = r
        .phases
        .iter()
        .map(|p| p.mesh.total_byte_hops() as f64)
        .sum();
    let ct_ms = phase_sum(r, "corner_turn", |p| p.time_ms);
    let ct_j = phase_sum(r, "corner_turn", |p| p.energy_j);
    let ct_hops = phase_sum(r, "corner_turn", |p| p.mesh.total_byte_hops() as f64);
    let time_share = ct_ms / r.millis().max(f64::MIN_POSITIVE);
    let energy_share = ct_j / r.energy.total_j().max(f64::MIN_POSITIVE);
    let doc = Json::obj()
        .with("platform", r.platform.as_str())
        .with("cores", r.cores_used)
        .with("time_ms", ct_ms)
        .with("time_share", time_share)
        .with("energy_j", ct_j)
        .with("energy_share", energy_share)
        .with("byte_hops", ct_hops)
        .with(
            "byte_hop_share",
            ct_hops / total_hops.max(f64::MIN_POSITIVE),
        );
    (doc, time_share, energy_share)
}

fn main() {
    let mut h = BenchHarness::new("rda_corner_turn");
    let small = h.small();

    h.say("RDA corner-turn cost report (Epiphany model)");
    let pairs = [
        ("rda_seq", "epiphany"),
        ("rda_spmd", "epiphany"),
        ("rda_spmd", "e64"),
        ("ffbp_spmd", "epiphany"),
        ("ffbp_spmd", "e64"),
    ];
    let mut summary = Vec::new();
    for (mapping, platform) in pairs {
        let m = mapping_named(mapping).expect("registered mapping");
        let w = Workload::named(m.kernel(), small).expect("registered workload");
        let p = platform_named(platform).expect("registered platform");
        let out = run(m.as_ref(), &w, p.as_ref()).expect("registered pair runs");
        show_phases(&h, &out.record);
        if mapping == "rda_spmd" {
            let (doc, time_share, energy_share) = corner_turn_summary(&out.record);
            summary.push(doc);
            h.say(format_args!(
                "  corner turn: {:.1}% of the runtime, {:.1}% of the energy",
                100.0 * time_share,
                100.0 * energy_share
            ));
        }
        h.record(out.record);
    }
    h.attach("corner_turn", Json::Arr(summary));

    h.say("\nThe corner turn is pure data motion: every range-compressed");
    h.say("byte crosses the mesh twice and lands in SDRAM between the two");
    h.say("passes, so the phase is stall-dominated at any core count —");
    h.say("the price the Range–Doppler structure pays for its bin-major");
    h.say("azimuth stage, where FFBP's merge tree keeps neighbour");
    h.say("exchanges on-chip instead.");
    h.finish();
}
