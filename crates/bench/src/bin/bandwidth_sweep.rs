//! A4 — off-chip bandwidth sensitivity. The paper's argument: the
//! on-chip fabric has 64x the off-chip bandwidth, so the streaming
//! autofocus pipeline is immune to the eLink while FFBP lives and dies
//! by it. Sweep the eLink width and watch who cares.
//!
//! Usage: `cargo run -p bench --bin bandwidth_sweep --release [-- --json]`

use epiphany::EpiphanyParams;
use sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_epiphany::workloads::AutofocusWorkload;
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("bandwidth_sweep");
    let fw = bench::reduced_ffbp(256, 1001);
    let aw = AutofocusWorkload::paper();
    h.say("Off-chip bandwidth sweep (eLink bytes/cycle; datasheet = 8)");
    h.say(format_args!(
        "{:>10} {:>16} {:>18} {:>12}",
        "B/cycle", "FFBP-16 (ms)", "autofocus (px/s)", "eLink util"
    ));
    for bpc in [1u64, 2, 4, 8, 16, 32] {
        let mut p = EpiphanyParams::default();
        p.emesh.elink_bytes_per_cycle = bpc;
        let mut f = ffbp_spmd::run(&fw, p, SpmdOptions::default());
        let mut ap = autofocus_mpmd::params();
        ap.emesh.elink_bytes_per_cycle = bpc;
        let mut a = autofocus_mpmd::run(&aw, ap, Placement::neighbor());
        h.say(format_args!(
            "{:>10} {:>16.2} {:>18.0} {:>11.1}%",
            bpc,
            f.record.millis(),
            aw.pixels() as f64 / a.record.elapsed.seconds(),
            100.0 * f.record.elink_utilization()
        ));
        f.record.set_metric("elink_bytes_per_cycle", bpc as f64);
        a.record.set_metric("elink_bytes_per_cycle", bpc as f64);
        a.record.set_metric(
            "throughput_px_s",
            aw.pixels() as f64 / a.record.elapsed.seconds(),
        );
        h.record(f.record);
        h.record(a.record);
    }
    h.say("\nFFBP time falls with bandwidth until compute-bound; the streaming");
    h.say("autofocus pipeline barely moves — the paper's 64x-ratio argument.");
    h.finish();
}
