//! E5 — the Figure 9 placement study: the paper's custom MPMD mapping
//! keeps every producer-consumer pair within a couple of mesh hops and
//! "avoids transactions with distant cores". Compare it against a
//! deliberately scattered placement.
//!
//! Usage: `cargo run -p bench --bin mapping_ablation --release`

use sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_epiphany::workloads::AutofocusWorkload;

fn main() {
    let w = AutofocusWorkload::paper();
    println!("Autofocus MPMD placement ablation ({} hypotheses)", w.hypotheses);
    println!(
        "{:>12} {:>12} {:>16} {:>14} {:>16}",
        "placement", "time (ms)", "px/s", "mesh energy", "busiest link"
    );
    for (name, place) in [
        ("neighbor", Placement::neighbor()),
        ("scattered", Placement::scattered()),
    ] {
        let r = autofocus_mpmd::run(&w, autofocus_mpmd::params(), place);
        println!(
            "{:>12} {:>12.3} {:>16.0} {:>11.3e} J {:>13} cyc",
            name,
            r.report.millis(),
            w.pixels() as f64 / r.report.elapsed.seconds(),
            r.report.energy.mesh_j,
            r.report.busiest_link_cycles.raw()
        );
    }
    println!("\nThroughput barely moves (posted writes pipeline across the mesh),");
    println!("but the scattered mapping multiplies byte-hops: more fabric energy");
    println!("and hotter links — why the paper bothers with a custom mapping on a");
    println!("power-constrained part.");
}
