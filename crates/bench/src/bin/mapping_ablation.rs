//! E5 — the Figure 9 placement study: the paper's custom MPMD mapping
//! keeps every producer-consumer pair within a couple of mesh hops and
//! "avoids transactions with distant cores". Compare it against a
//! deliberately scattered placement.
//!
//! Usage: `cargo run -p bench --bin mapping_ablation --release [-- --json]`

use sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_epiphany::workloads::AutofocusWorkload;
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("mapping_ablation");
    let w = AutofocusWorkload::paper();
    h.say(format_args!(
        "Autofocus MPMD placement ablation ({} hypotheses)",
        w.hypotheses
    ));
    h.say(format_args!(
        "{:>12} {:>12} {:>16} {:>14} {:>16}",
        "placement", "time (ms)", "px/s", "mesh energy", "busiest link"
    ));
    for (name, place) in [
        ("neighbor", Placement::neighbor()),
        ("scattered", Placement::scattered()),
    ] {
        let mut r = autofocus_mpmd::run(&w, autofocus_mpmd::params(), place);
        h.say(format_args!(
            "{:>12} {:>12.3} {:>16.0} {:>11.3e} J {:>13} cyc",
            name,
            r.record.millis(),
            w.pixels() as f64 / r.record.elapsed.seconds(),
            r.record.energy.mesh_j,
            r.record.busiest_link_cycles.raw()
        ));
        r.record.label = format!("{} ({name} placement)", r.record.label);
        h.record(r.record);
    }
    h.say("\nThroughput barely moves (posted writes pipeline across the mesh),");
    h.say("but the scattered mapping multiplies byte-hops: more fabric energy");
    h.say("and hotter links — why the paper bothers with a custom mapping on a");
    h.say("power-constrained part.");
    h.finish();
}
