//! A6 — merge-base choice. The paper fixes merge base 2 (ten
//! iterations for 1024 pulses); base 4 halves the iteration count but
//! each combine touches four children. Compare arithmetic cost and
//! image quality.
//!
//! Usage: `cargo run -p bench --bin merge_base --release [-- --json]`

use sar_core::ffbp::{ffbp, FfbpConfig};
use sar_core::gbp::gbp;
use sar_core::quality::{image_entropy, normalized_rmse};
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("merge_base");
    let w = bench::reduced_ffbp(256, 513);
    let reference = gbp(&w.data, &w.geom, w.geom.num_pulses);
    h.say(format_args!(
        "FFBP merge-base ablation ({} pulses x {} bins)",
        w.geom.num_pulses, w.geom.num_bins
    ));
    h.say(format_args!(
        "{:>5} {:>11} {:>14} {:>12} {:>12} {:>10}",
        "base", "iterations", "flop work", "host (ms)", "RMSE", "entropy"
    ));
    for base in [2usize, 4] {
        let cfg = FfbpConfig {
            merge_base: base,
            ..w.config
        };
        let (mut record, run) =
            BenchHarness::host_record(&format!("FFBP / host, merge base {base}"), || {
                ffbp(&w.data, &w.geom, &cfg)
            });
        let rmse = normalized_rmse(&run.image, &reference.image);
        let entropy = image_entropy(&run.image);
        h.say(format_args!(
            "{:>5} {:>11} {:>14} {:>12.1} {:>12.4} {:>10.2}",
            base,
            run.iterations,
            run.counts.flop_work(),
            record.millis(),
            rmse,
            entropy
        ));
        record.set_metric("merge_base", base as f64);
        record.set_metric("iterations", f64::from(run.iterations));
        record.set_metric("flop_work", run.counts.flop_work() as f64);
        record.set_metric("rmse_vs_gbp", rmse);
        record.set_metric("entropy", entropy);
        h.record(record);
    }
    h.say("\nBase 4 halves the passes over the data set (less off-chip traffic)");
    h.say("but pays more interpolation arithmetic per output sample; base 2 is");
    h.say("the paper's pick for the bandwidth-starved Epiphany.");
    h.finish();
}
