//! A6 — merge-base choice. The paper fixes merge base 2 (ten
//! iterations for 1024 pulses); base 4 halves the iteration count but
//! each combine touches four children. Compare arithmetic cost and
//! image quality.
//!
//! Usage: `cargo run -p bench --bin merge_base --release`

use std::time::Instant;

use sar_core::ffbp::{ffbp, FfbpConfig};
use sar_core::gbp::gbp;
use sar_core::quality::{image_entropy, normalized_rmse};

fn main() {
    let w = bench::reduced_ffbp(256, 513);
    let reference = gbp(&w.data, &w.geom, w.geom.num_pulses);
    println!(
        "FFBP merge-base ablation ({} pulses x {} bins)",
        w.geom.num_pulses, w.geom.num_bins
    );
    println!(
        "{:>5} {:>11} {:>14} {:>12} {:>12} {:>10}",
        "base", "iterations", "flop work", "host (ms)", "RMSE", "entropy"
    );
    for base in [2usize, 4] {
        let cfg = FfbpConfig { merge_base: base, ..w.config };
        let t = Instant::now();
        let run = ffbp(&w.data, &w.geom, &cfg);
        let host_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>5} {:>11} {:>14} {:>12.1} {:>12.4} {:>10.2}",
            base,
            run.iterations,
            run.counts.flop_work(),
            host_ms,
            normalized_rmse(&run.image, &reference.image),
            image_entropy(&run.image)
        );
    }
    println!("\nBase 4 halves the passes over the data set (less off-chip traffic)");
    println!("but pays more interpolation arithmetic per output sample; base 2 is");
    println!("the paper's pick for the bandwidth-starved Epiphany.");
}
