//! Programmability corollary (paper §VI-B): SPMD ships one program
//! image, MPMD ships a distinct image per core. The loader model makes
//! the startup cost of each style measurable, alongside the paper's
//! qualitative "separate C programs reduce productivity" argument.
//!
//! Usage: `cargo run -p bench --bin loader_cost --release [-- --json]`

use epiphany::loader::{load_programs, load_spmd, ProgramImage};
use epiphany::{Chip, EpiphanyParams};
use sim_harness::BenchHarness;

fn main() {
    let mut h = BenchHarness::new("loader_cost");
    h.say("Program-load cost on the Epiphany model (eLink-bound)");
    h.say(format_args!(
        "\n{:>26} {:>8} {:>12} {:>14}",
        "style", "images", "bytes", "load (us @1GHz)"
    ));

    // SPMD FFBP: one 14 KB image replicated to 16 cores.
    let mut chip = Chip::e16g3(EpiphanyParams::default());
    let cores: Vec<usize> = (0..16).collect();
    let spmd = load_spmd(
        &mut chip,
        &cores,
        &ProgramImage::new("ffbp_spmd", 14 * 1024),
    );
    h.say(format_args!(
        "{:>26} {:>8} {:>12} {:>14.1}",
        "SPMD FFBP (1 image x16)",
        1,
        spmd.bytes,
        spmd.done.raw() as f64 / 1e3
    ));
    let mut r = chip.report("Program load / SPMD FFBP (1 image x16)", 16);
    r.set_metric("images", 1.0);
    r.set_metric("bytes", spmd.bytes as f64);
    h.record(r);

    // MPMD autofocus: 13 distinct images (range/beam/corr variants).
    let mut chip = Chip::e16g3(EpiphanyParams::default());
    let targets: Vec<usize> = (0..13).collect();
    let programs: Vec<ProgramImage> = (0..13)
        .map(|i| {
            let (name, size) = match i {
                0..=5 => ("range", 9 * 1024),
                6..=11 => ("beam", 8 * 1024),
                _ => ("corr", 6 * 1024),
            };
            ProgramImage::new(&format!("{name}{i}"), size)
        })
        .collect();
    let mpmd = load_programs(&mut chip, &targets, &programs);
    h.say(format_args!(
        "{:>26} {:>8} {:>12} {:>14.1}",
        "MPMD autofocus (13 images)",
        13,
        mpmd.bytes,
        mpmd.done.raw() as f64 / 1e3
    ));
    let mut r = chip.report("Program load / MPMD autofocus (13 images)", 13);
    r.set_metric("images", 13.0);
    r.set_metric("bytes", mpmd.bytes as f64);
    h.record(r);

    h.say("\nLoad time is bandwidth-bound either way; the MPMD cost the paper");
    h.say("stresses is the *build and maintenance* of thirteen separate");
    h.say("programs — which the `streams` process-network layer removes");
    h.say("(see `sar-epiphany::autofocus_net`).");
    h.finish();
}
