//! Shared helpers for the benchmark harness and report binaries.
//!
//! Binaries (one per paper artefact or ablation — see DESIGN.md §4):
//!
//! * `table1` — Table I (all six configurations) + derived figures,
//! * `fig7` — Figure 7(a)-(d) as PGM images + quality metrics,
//! * `scaling` — FFBP core-count sweep (A1),
//! * `interp_ablation` — NN vs linear vs cubic (A2),
//! * `prefetch_ablation` — prefetch / write-stall attribution (A3),
//! * `bandwidth_sweep` — off-chip bandwidth sensitivity (A4),
//! * `clock_sweep` — 400 MHz board vs 1 GHz spec (A5),
//! * `merge_base` — merge base 2 vs 4 (A6),
//! * `mapping_ablation` — neighbour vs scattered placement (E5),
//! * `energy_report` — component-level energy breakdowns (E3),
//! * `autofocus_recovery` — the Figure-4 pipeline under non-linear
//!   tracks (A7),
//! * `loader_cost` — SPMD vs MPMD program-load cost (A8),
//! * `vs_multicore` — real host threads vs the simulated Epiphany on
//!   throughput per watt (A9),
//! * `run` — the unified runner: any registered Mapping × Platform ×
//!   Workload triple through `sim_harness::run`.
//!
//! Every binary sits on [`sim_harness::BenchHarness`]: the shared
//! `--small` / `--json` / `--out P` / `--no-write` flags, and one
//! versioned record document written under `results/`.

#![forbid(unsafe_code)]

use sar_core::geometry::SarGeometry;
use sar_core::scene::{simulate_compressed_data, Scene};
use sar_epiphany::workloads::FfbpWorkload;

/// An FFBP workload reduced to `pulses x bins` (power-of-two pulses),
/// six-target scene, deterministic seed — the knob the sweeps turn.
pub fn reduced_ffbp(pulses: usize, bins: usize) -> FfbpWorkload {
    assert!(pulses.is_power_of_two(), "merge base 2 needs 2^k pulses");
    let geom = SarGeometry {
        num_pulses: pulses,
        num_bins: bins,
        ..SarGeometry::paper_size()
    };
    let scene = Scene::six_targets(geom);
    FfbpWorkload {
        geom,
        data: simulate_compressed_data(&scene, 0.0, 7),
        config: Default::default(),
    }
}

/// Format a ratio column as `x.xx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_workload_has_requested_shape() {
        let w = reduced_ffbp(128, 257);
        assert_eq!(w.data.rows(), 128);
        assert_eq!(w.data.cols(), 257);
    }

    #[test]
    #[should_panic(expected = "2^k pulses")]
    fn non_pow2_rejected() {
        let _ = reduced_ffbp(100, 100);
    }
}
