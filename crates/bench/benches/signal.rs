//! Criterion microbenchmarks for the signal-chain substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sar_core::complex::c32;
use sar_core::signal::{fft_inplace, lfm_chirp, ChirpParams, MatchedFilter};

fn tone(n: usize) -> Vec<c32> {
    (0..n).map(|i| c32::cis(0.05 * i as f32)).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 1024, 4096] {
        let data = tone(n);
        group.bench_function(format!("radix2 n={n}"), |b| {
            b.iter_batched(
                || data.clone(),
                |mut buf| {
                    fft_inplace(&mut buf);
                    black_box(buf)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_pulse_compression(c: &mut Criterion) {
    let waveform = lfm_chirp(ChirpParams { samples: 128, fractional_bandwidth: 0.8 });
    let mf = MatchedFilter::new(&waveform, 1001);
    let signal = tone(1001);
    c.bench_function("matched filter 1001 bins", |b| {
        b.iter(|| mf.compress(black_box(&signal)))
    });
}

criterion_group!(benches, bench_fft, bench_pulse_compression);
criterion_main!(benches);
