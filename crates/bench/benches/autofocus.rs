//! Criterion microbenchmarks for the autofocus criterion kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use desim::OpCounts;
use sar_core::autofocus::{focus_criterion, range_stage, sweep_criterion, AutofocusConfig, Block6};
use sar_core::complex::c32;
use sar_core::ffbp::interp::neville4;

fn bench_neville(c: &mut Criterion) {
    let p = [
        c32::new(1.0, 0.2),
        c32::new(-0.5, 1.0),
        c32::new(0.7, -0.3),
        c32::new(0.1, 0.9),
    ];
    c.bench_function("neville4 complex", |b| {
        let mut counts = OpCounts::default();
        b.iter(|| neville4(black_box(p), black_box(0.37), &mut counts))
    });
}

fn bench_range_stage(c: &mut Criterion) {
    let block = Block6::gaussian_blob(0.0, 0.0);
    let cfg = AutofocusConfig::default();
    c.bench_function("range_stage (1 window, 1 iteration)", |b| {
        let mut counts = OpCounts::default();
        b.iter(|| range_stage(black_box(&block), 0, 0.2, 0, &cfg, &mut counts))
    });
}

fn bench_criterion_value(c: &mut Criterion) {
    let f_minus = Block6::gaussian_blob(0.0, 0.2);
    let f_plus = Block6::gaussian_blob(0.0, -0.2);
    let cfg = AutofocusConfig::default();
    c.bench_function("focus_criterion (one hypothesis)", |b| {
        let mut counts = OpCounts::default();
        b.iter(|| focus_criterion(black_box(&f_minus), &f_plus, 0.4, &cfg, &mut counts))
    });
}

fn bench_sweep(c: &mut Criterion) {
    let f_minus = Block6::gaussian_blob(0.0, 0.2);
    let f_plus = Block6::gaussian_blob(0.0, -0.2);
    let cfg = AutofocusConfig::default();
    let mut group = c.benchmark_group("shift sweep");
    group.sample_size(20);
    group.bench_function("24 hypotheses", |b| {
        let mut counts = OpCounts::default();
        b.iter(|| sweep_criterion(black_box(&f_minus), &f_plus, 1.0, 24, &cfg, &mut counts))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_neville,
    bench_range_stage,
    bench_criterion_value,
    bench_sweep
);
criterion_main!(benches);
