//! Criterion microbenchmarks for the image-formation kernels
//! (host-execution cost of the functional algorithms; the *simulated*
//! machine times come from the report binaries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use desim::OpCounts;
use sar_core::ffbp::{ffbp, merge_pair, FfbpConfig, InterpKind};
use sar_core::ffbp::pipeline::stage0;
use sar_core::gbp::gbp;
use sar_core::geometry::{merge_geometry, SarGeometry};
use sar_core::parallel::ffbp_parallel;
use sar_core::scene::{simulate_compressed_data, Scene};

fn workload() -> (sar_core::ComplexImage, SarGeometry) {
    let geom = SarGeometry::test_size();
    let scene = Scene::six_targets(geom);
    (simulate_compressed_data(&scene, 0.0, 7), geom)
}

fn bench_geometry(c: &mut Criterion) {
    c.bench_function("merge_geometry eqs 1-4", |b| {
        let mut counts = OpCounts::default();
        b.iter(|| merge_geometry(black_box(4500.0), black_box(1.57), black_box(64.0), &mut counts))
    });
}

fn bench_merge(c: &mut Criterion) {
    let (data, geom) = workload();
    let subs = stage0(&data, &geom);
    let mut group = c.benchmark_group("merge_pair 2 beams x 129 bins");
    for (name, kind) in [
        ("nearest", InterpKind::Nearest),
        ("linear", InterpKind::Linear),
        ("cubic", InterpKind::Cubic),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                OpCounts::default,
                |mut counts| merge_pair(&subs[0], &subs[1], &geom, kind, true, &mut counts),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_full_ffbp(c: &mut Criterion) {
    let (data, geom) = workload();
    let mut group = c.benchmark_group("ffbp 64x129");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| ffbp(black_box(&data), &geom, &FfbpConfig::default()))
    });
    group.bench_function("host-parallel x4", |b| {
        b.iter(|| ffbp_parallel(black_box(&data), &geom, &FfbpConfig::default(), 4))
    });
    group.finish();
}

fn bench_gbp(c: &mut Criterion) {
    let (data, geom) = workload();
    let mut group = c.benchmark_group("gbp");
    group.sample_size(10);
    group.bench_function("64 beams x 129 bins", |b| {
        b.iter(|| gbp(black_box(&data), &geom, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_geometry, bench_merge, bench_full_ffbp, bench_gbp);
criterion_main!(benches);
