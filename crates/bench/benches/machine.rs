//! Criterion microbenchmarks for the machine-model substrate itself:
//! simulator overhead per modelled transaction (keeps the harness
//! honest about how much host time a simulated run costs).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use desim::OpCounts;
use emesh::network::EMeshParams;
use emesh::{EMesh, Mesh2D, NodeId};
use epiphany::{Chip, EpiphanyParams};
use memsim::{GlobalAddr, HierarchyParams, MemoryHierarchy};

fn bench_mesh_transfer(c: &mut Criterion) {
    c.bench_function("emesh write_onchip (6 hops)", |b| {
        b.iter_batched(
            || EMesh::new(Mesh2D::e16g3(), EMeshParams::default()),
            |mut fabric| {
                for i in 0..64u64 {
                    fabric.write_onchip(desim::Cycle(i), NodeId(0), NodeId(15), 64);
                }
                black_box(fabric.cmesh.transfers())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_chip_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip primitives x64");
    group.bench_function("compute", |b| {
        b.iter_batched(
            || Chip::e16g3(EpiphanyParams::default()),
            |mut chip| {
                for core in 0..16 {
                    chip.compute(core, &OpCounts { fmas: 100, loads: 50, ..OpCounts::default() });
                }
                black_box(chip.elapsed())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("read_external", |b| {
        b.iter_batched(
            || Chip::e16g3(EpiphanyParams::default()),
            |mut chip| {
                for i in 0..64u32 {
                    chip.read_external((i % 16) as usize, GlobalAddr::external(i * 64), 8);
                }
                black_box(chip.elapsed())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("cache hierarchy sequential access x1024", |b| {
        b.iter_batched(
            || MemoryHierarchy::new(HierarchyParams::default()),
            |mut h| {
                let mut total = 0u64;
                for i in 0..1024u64 {
                    total += h.access(i * 64, false);
                }
                black_box(total)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_mesh_transfer, bench_chip_ops, bench_hierarchy);
criterion_main!(benches);
