//! The unified runner's `--placement` surface: hand names and
//! `@path/to/placement.json` files resolve through the same
//! `Placement::resolve` path, unknown names exit 2 with `CLI003`,
//! unreadable/malformed/out-of-bounds files exit 2 with `CLI007`, and
//! a placement file round-trips through a real simulated run.

use std::process::Command;

use sim_harness::Placement;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_placement(name: &str, text: &str) -> String {
    let path = std::env::temp_dir().join(format!("{name}-{}.json", std::process::id()));
    std::fs::write(&path, text).expect("placement written");
    path.to_string_lossy().into_owned()
}

#[test]
fn unknown_placement_name_exits_2_with_cli003() {
    let out = run(&["--placement", "diagonal", "--small", "--no-write"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI003"));
}

#[test]
fn unreadable_placement_file_exits_2_with_cli007() {
    let out = run(&[
        "--placement",
        "@/nonexistent/placement.json",
        "--small",
        "--no-write",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI007"));
}

#[test]
fn malformed_placement_file_exits_2_with_cli007() {
    // Valid JSON, wrong shape: a block is missing a core.
    let path = temp_placement(
        "placement-cli-bad",
        r#"{"version": 1, "range": [[0, 4], [3, 7, 11]],
            "beam": [[1, 5, 9], [2, 6, 10]], "corr": 13}"#,
    );
    let out = run(&["--placement", &format!("@{path}"), "--small", "--no-write"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI007"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn out_of_bounds_placement_file_exits_2_with_cli007() {
    // Structurally valid, but core 16 sits at (0, 4): off the 4x4
    // E16G3 mesh. The runner must refuse before the drivers panic.
    let mut off = Placement::neighbor();
    off.corr = 16;
    let path = temp_placement("placement-cli-off", &off.to_json().to_string_pretty());
    let out = run(&[
        "--placement",
        &format!("@{path}"),
        "--mapping",
        "autofocus_mpmd",
        "--platform",
        "epiphany",
        "--small",
        "--no-write",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI007"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn placement_file_simulates_like_its_hand_twin() {
    // `@file` holding the neighbor placement must behave exactly like
    // the literal name — same pair, same workload, exit 0.
    let path = temp_placement(
        "placement-cli-ok",
        &Placement::neighbor().to_json().to_string_pretty(),
    );
    let by_file = run(&[
        "--placement",
        &format!("@{path}"),
        "--mapping",
        "autofocus_mpmd",
        "--platform",
        "epiphany",
        "--small",
        "--json",
        "--no-write",
    ]);
    assert_eq!(by_file.status.code(), Some(0), "{by_file:?}");
    let by_name = run(&[
        "--placement",
        "neighbor",
        "--mapping",
        "autofocus_mpmd",
        "--platform",
        "epiphany",
        "--small",
        "--json",
        "--no-write",
    ]);
    assert_eq!(by_name.status.code(), Some(0), "{by_name:?}");
    assert_eq!(by_file.stdout, by_name.stdout, "placement file diverged");
    let _ = std::fs::remove_file(&path);
}
