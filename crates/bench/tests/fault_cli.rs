//! The unified runner's fault-injection surface: `--faults`/`--seed`
//! drive deterministic injection, malformed values exit 2 with their
//! `CLI004`/`CLI005` diagnostics, and a recovered run converges (exit
//! 0 with nonzero fault accounting on stdout).

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_spec(name: &str, text: &str) -> String {
    let path = std::env::temp_dir().join(format!("{name}-{}.json", std::process::id()));
    std::fs::write(&path, text).expect("spec written");
    path.to_string_lossy().into_owned()
}

#[test]
fn malformed_seed_exits_2_with_cli004() {
    let out = run(&["--seed", "banana", "--small", "--no-write"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI004"));
}

#[test]
fn malformed_fault_spec_exits_2_with_cli005() {
    let spec = temp_spec("fault-cli-bad", r#"{"version": 1, "faults": [{"at": 5}]}"#);
    let out = run(&["--faults", &spec, "--small", "--no-write"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI005"));
    let _ = std::fs::remove_file(&spec);

    // An unreadable path is the same contract.
    let out = run(&[
        "--faults",
        "/nonexistent/spec.json",
        "--small",
        "--no-write",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI005"));
}

#[test]
fn faulted_pair_converges_and_reports_recovery() {
    let spec = temp_spec(
        "fault-cli-ok",
        r#"{"version": 1, "faults": [
            {"kind": "flag_drop", "at": 2000},
            {"kind": "core_halt", "core": 5, "at": 20000}
        ]}"#,
    );
    let out = run(&[
        "--faults",
        &spec,
        "--seed",
        "42",
        "--mapping",
        "autofocus_mpmd",
        "--platform",
        "epiphany",
        "--small",
        "--no-write",
    ]);
    let _ = std::fs::remove_file(&spec);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("autofocus_mpmd"), "{stdout}");
    assert!(stdout.contains("faults: 2 injected"), "{stdout}");
    assert!(stdout.contains("1 degraded core(s)"), "{stdout}");
}
