//! The unified runner's `--analyze` gate: a pair with a hard sarlint
//! diagnostic is refused (nonzero exit naming the code), a clean pair
//! simulates normally, and bad command lines exit 2.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn scattered_pipeline_is_refused_by_the_gate() {
    let out = run(&[
        "--analyze",
        "--mapping",
        "autofocus_mpmd",
        "--placement",
        "scattered",
        "--small",
        "--no-write",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to simulate"), "{stderr}");
    assert!(stderr.contains("SL005"), "{stderr}");
    // The refused pair must not have produced a result row.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("autofocus_mpmd   epiphany"), "{stdout}");
}

#[test]
fn clean_pair_passes_the_gate_and_simulates() {
    let out = run(&[
        "--analyze",
        "--mapping",
        "autofocus_mpmd",
        "--small",
        "--no-write",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("autofocus_mpmd"), "{stdout}");
}

#[test]
fn bad_command_lines_exit_2_with_diagnostics() {
    let out = run(&["--mapping", "nosuch", "--no-write"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI001"));

    let out = run(&["--placement", "--small", "--no-write"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("CLI002"));
}
