//! The unified runner's `--power` surface: the flag renders the power
//! timeline and attribution table (smoke), and is presentation-only —
//! the versioned record document is byte-identical with and without
//! it (powertrace sampling always runs; `--power` only prints).

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn power_flag_renders_timeline_and_attribution() {
    let out = run(&[
        "--mapping",
        "ffbp_spmd",
        "--platform",
        "epiphany",
        "--small",
        "--power",
        "--no-write",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("power profile"), "{stdout}");
    assert!(stdout.contains("phase attribution:"), "{stdout}");
    assert!(stdout.contains("dominant"), "{stdout}");
}

#[test]
fn power_flag_does_not_change_the_document() {
    let args = [
        "--mapping",
        "ffbp_spmd",
        "--platform",
        "epiphany",
        "--small",
        "--json",
        "--no-write",
    ];
    let plain = run(&args);
    let powered = run(&[&args[..], &["--power"]].concat());
    assert!(plain.status.success() && powered.status.success());
    assert!(!plain.stdout.is_empty(), "document on stdout");
    assert_eq!(
        plain.stdout, powered.stdout,
        "--power changed the record document"
    );
}

#[test]
fn every_emitted_record_carries_a_power_block() {
    let out = run(&["--small", "--json", "--no-write"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = desim::Json::parse(&stdout).expect("document parses");
    let records = doc
        .get("records")
        .and_then(desim::Json::as_array)
        .expect("records array");
    assert!(records.len() >= 13, "all registered pairs ran");
    for r in records {
        let power = r.get("power").expect("record has a power block");
        let timeline = power
            .get("timeline")
            .and_then(desim::Json::as_array)
            .expect("power.timeline array");
        assert!(!timeline.is_empty(), "non-empty timeline");
        for epoch in timeline {
            for key in ["start_cycles", "end_cycles", "energy"] {
                assert!(epoch.get(key).is_some(), "epoch missing {key}");
            }
        }
        assert!(power.get("phases").is_some(), "power.phases present");
    }
}
