//! `sar-trace`: structured event tracing for the machine models
//! (DESIGN.md §3 S13).
//!
//! Machine models emit *spans* (a component occupied for an interval),
//! *instants* (a point event such as a bank conflict) and *counter
//! samples* (a gauge over time) onto semantic [`Track`]s — one per
//! core, per DMA engine, per directed mesh link, plus the eLink, the
//! SDRAM device and the run-level phase timeline. A [`Tracer`] is a
//! cheaply clonable handle to one shared event buffer; every model in
//! the stack (`emesh`, `memsim`, `epiphany`, the mapping drivers)
//! holds a clone and appends into the same timeline.
//!
//! The contract that keeps tracing free for ordinary runs: a
//! *disabled* tracer ([`Tracer::disabled`], the default) holds no
//! buffer at all, and every emission method returns after one branch —
//! no allocation, no formatting, no locking. The overhead guard test
//! (`crates/desim/tests/disabled_overhead.rs`) pins this down with a
//! counting allocator.
//!
//! [`chrome_trace`] renders a finished event buffer into the Chrome
//! `trace_event` JSON format, loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one process per component
//! family, one thread per track.

use std::borrow::Cow;
use std::cell::RefCell;
use std::rc::Rc;

use crate::json::Json;
use crate::time::{Cycle, Frequency};

/// Which of the three physical meshes a link belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MeshKind {
    /// On-chip write mesh.
    CMesh,
    /// Read-request mesh.
    RMesh,
    /// Off-chip mesh.
    XMesh,
}

impl MeshKind {
    /// Stable lowercase label (`"cmesh"`, …) used in heatmaps and
    /// trace process names.
    pub fn label(self) -> &'static str {
        match self {
            MeshKind::CMesh => "cmesh",
            MeshKind::RMesh => "rmesh",
            MeshKind::XMesh => "xmesh",
        }
    }
}

/// Compass letter for a router output direction index (the order of
/// `emesh::routing::Direction::index`).
pub fn direction_letter(dir: u8) -> &'static str {
    match dir {
        0 => "W",
        1 => "E",
        2 => "N",
        3 => "S",
        _ => "L",
    }
}

/// Where an event happened. Each track maps to one Chrome-trace
/// `(pid, tid)` pair; the pid groups a component family into one
/// named process row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Run-level phases: merge iterations, pipeline stages.
    Run,
    /// One core's execution timeline.
    Core(u32),
    /// One core's DMA engine.
    Dma(u32),
    /// A directed mesh link: the output of `node`'s router in
    /// direction `dir` (index per `direction_letter`).
    MeshLink {
        /// Which physical mesh.
        mesh: MeshKind,
        /// Router the link exits (row-major node index).
        node: u32,
        /// Output direction index.
        dir: u8,
    },
    /// The shared off-chip eLink.
    ELink,
    /// The external SDRAM device.
    Sdram,
    /// Host-side activity (program loading).
    Host,
}

impl Track {
    /// Chrome-trace process id: one per component family.
    pub fn pid(self) -> u32 {
        match self {
            Track::Run => 1,
            Track::Core(_) => 2,
            Track::Dma(_) => 3,
            Track::MeshLink { mesh, .. } => match mesh {
                MeshKind::CMesh => 4,
                MeshKind::RMesh => 5,
                MeshKind::XMesh => 6,
            },
            Track::ELink => 7,
            Track::Sdram => 8,
            Track::Host => 9,
        }
    }

    /// Chrome-trace thread id within the family.
    pub fn tid(self) -> u32 {
        match self {
            Track::Run | Track::ELink | Track::Sdram | Track::Host => 0,
            Track::Core(i) | Track::Dma(i) => i,
            Track::MeshLink { node, dir, .. } => node * 5 + u32::from(dir),
        }
    }

    /// Human name of the family (the Chrome process name).
    pub fn process_name(self) -> &'static str {
        match self {
            Track::Run => "run",
            Track::Core(_) => "cores",
            Track::Dma(_) => "dma",
            Track::MeshLink { mesh, .. } => mesh.label(),
            Track::ELink => "elink",
            Track::Sdram => "sdram",
            Track::Host => "host",
        }
    }

    /// Human name of the track (the Chrome thread name).
    pub fn thread_name(self) -> String {
        match self {
            Track::Run => "phases".to_string(),
            Track::Core(i) => format!("core {i}"),
            Track::Dma(i) => format!("dma {i}"),
            Track::MeshLink { node, dir, .. } => {
                format!("n{node} {}", direction_letter(dir))
            }
            Track::ELink => "elink".to_string(),
            Track::Sdram => "sdram".to_string(),
            Track::Host => "loader".to_string(),
        }
    }
}

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A complete span: the track was occupied for `dur` cycles
    /// starting at the event timestamp (Chrome phase `"X"`).
    Span {
        /// Span length.
        dur: Cycle,
    },
    /// A point event (Chrome phase `"i"`).
    Instant,
    /// A gauge sample (Chrome phase `"C"`).
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event label. Static for the hot emission points; owned for
    /// dynamic phase names.
    pub name: Cow<'static, str>,
    /// Where it happened.
    pub track: Track,
    /// When it happened (span start for spans).
    pub ts: Cycle,
    /// Span / instant / counter.
    pub kind: EventKind,
}

/// Default cap on buffered events; beyond it new events are counted
/// but dropped, so a paper-scale run cannot exhaust memory. Chrome
/// and Perfetto degrade well before this many events anyway.
pub const DEFAULT_EVENT_CAP: usize = 2_000_000;

#[derive(Debug, Default)]
struct TraceBuffer {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceBuffer {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }
}

/// A handle to one shared trace timeline.
///
/// Cloning is cheap (a reference-count bump, or nothing at all for a
/// disabled tracer); every machine model in a run holds a clone of the
/// same tracer. The default is [`Tracer::disabled`].
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Rc<RefCell<TraceBuffer>>>,
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing. All
    /// emission methods are a single branch.
    pub fn disabled() -> Tracer {
        Tracer { buf: None }
    }

    /// A recording tracer with the [`DEFAULT_EVENT_CAP`].
    pub fn enabled() -> Tracer {
        Tracer::with_event_cap(DEFAULT_EVENT_CAP)
    }

    /// A recording tracer that drops events beyond `cap`.
    pub fn with_event_cap(cap: usize) -> Tracer {
        Tracer {
            buf: Some(Rc::new(RefCell::new(TraceBuffer {
                events: Vec::new(),
                cap,
                dropped: 0,
            }))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Record a complete span `[start, end)` on `track`. No-op when
    /// disabled or when `end <= start` (zero-length spans add noise
    /// without information).
    #[inline]
    pub fn span(&self, track: Track, name: impl Into<Cow<'static, str>>, start: Cycle, end: Cycle) {
        if let Some(buf) = &self.buf {
            if end > start {
                buf.borrow_mut().push(TraceEvent {
                    name: name.into(),
                    track,
                    ts: start,
                    kind: EventKind::Span { dur: end - start },
                });
            }
        }
    }

    /// Record a point event on `track`. No-op when disabled.
    #[inline]
    pub fn instant(&self, track: Track, name: impl Into<Cow<'static, str>>, at: Cycle) {
        if let Some(buf) = &self.buf {
            buf.borrow_mut().push(TraceEvent {
                name: name.into(),
                track,
                ts: at,
                kind: EventKind::Instant,
            });
        }
    }

    /// Record a gauge sample on `track`. No-op when disabled.
    #[inline]
    pub fn counter(&self, track: Track, name: impl Into<Cow<'static, str>>, at: Cycle, value: f64) {
        if let Some(buf) = &self.buf {
            buf.borrow_mut().push(TraceEvent {
                name: name.into(),
                track,
                ts: at,
                kind: EventKind::Counter { value },
            });
        }
    }

    /// Number of buffered events (0 when disabled).
    pub fn event_count(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.borrow().events.len())
    }

    /// Events dropped past the cap.
    pub fn dropped(&self) -> u64 {
        self.buf.as_ref().map_or(0, |b| b.borrow().dropped)
    }

    /// Whether any span has been recorded on `track`.
    pub fn has_span_on(&self, track: Track) -> bool {
        self.buf.as_ref().is_some_and(|b| {
            b.borrow()
                .events
                .iter()
                .any(|e| e.track == track && matches!(e.kind, EventKind::Span { .. }))
        })
    }

    /// A copy of the buffered events in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf
            .as_ref()
            .map_or(Vec::new(), |b| b.borrow().events.clone())
    }

    /// Render the buffered events as a Chrome `trace_event` document;
    /// `clock` converts cycle timestamps into microseconds.
    pub fn to_chrome_json(&self, clock: Frequency) -> Json {
        chrome_trace(&self.snapshot(), clock, self.dropped())
    }
}

/// Microseconds for `at` cycles at `clock`.
fn micros(at: Cycle, clock: Frequency) -> f64 {
    at.raw() as f64 / clock.hz() * 1e6
}

/// Render `events` as a Chrome `trace_event`-format JSON document
/// (`{"traceEvents": [...]}`), one named process per component family
/// and one named thread per track. Events are ordered by `(ts, pid,
/// tid)` with a stable sort, so a deterministic simulation produces a
/// byte-identical document.
pub fn chrome_trace(events: &[TraceEvent], clock: Frequency, dropped: u64) -> Json {
    // Metadata first: name every process and thread that appears.
    let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
    tracks.sort();
    tracks.dedup();
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 2 * tracks.len());
    let mut named_pids: Vec<u32> = Vec::new();
    for t in &tracks {
        if !named_pids.contains(&t.pid()) {
            named_pids.push(t.pid());
            out.push(
                Json::obj()
                    .with("name", "process_name")
                    .with("ph", "M")
                    .with("ts", 0.0)
                    .with("pid", t.pid())
                    .with("tid", 0u64)
                    .with("args", Json::obj().with("name", t.process_name())),
            );
        }
        out.push(
            Json::obj()
                .with("name", "thread_name")
                .with("ph", "M")
                .with("ts", 0.0)
                .with("pid", t.pid())
                .with("tid", t.tid())
                .with("args", Json::obj().with("name", t.thread_name().as_str())),
        );
    }

    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        (a.ts, a.track.pid(), a.track.tid()).cmp(&(b.ts, b.track.pid(), b.track.tid()))
    });
    for e in sorted {
        let base = Json::obj()
            .with("name", e.name.as_ref())
            .with("ts", micros(e.ts, clock))
            .with("pid", e.track.pid())
            .with("tid", e.track.tid());
        out.push(match e.kind {
            EventKind::Span { dur } => base.with("ph", "X").with("dur", micros(dur, clock)),
            EventKind::Instant => base.with("ph", "i").with("s", "t"),
            EventKind::Counter { value } => base
                .with("ph", "C")
                .with("args", Json::obj().with("value", value)),
        });
    }

    Json::obj()
        .with("traceEvents", Json::Arr(out))
        .with("displayTimeUnit", "ms")
        .with(
            "metadata",
            Json::obj()
                .with("clock_hz", clock.hz())
                .with("dropped_events", dropped),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.span(Track::Core(0), "compute", Cycle(0), Cycle(10));
        t.instant(Track::ELink, "x", Cycle(5));
        t.counter(Track::Run, "energy_j", Cycle(5), 1.0);
        assert_eq!(t.event_count(), 0);
        assert!(t.snapshot().is_empty());
        assert!(!t.has_span_on(Track::Core(0)));
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let u = t.clone();
        t.span(Track::Core(1), "a", Cycle(0), Cycle(4));
        u.span(Track::Dma(1), "b", Cycle(2), Cycle(6));
        assert_eq!(t.event_count(), 2);
        assert_eq!(u.event_count(), 2);
        assert!(t.has_span_on(Track::Dma(1)));
    }

    #[test]
    fn zero_length_spans_are_skipped() {
        let t = Tracer::enabled();
        t.span(Track::Core(0), "empty", Cycle(7), Cycle(7));
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn event_cap_drops_and_counts() {
        let t = Tracer::with_event_cap(2);
        for i in 0..5u64 {
            t.instant(Track::Core(0), "e", Cycle(i));
        }
        assert_eq!(t.event_count(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn track_ids_are_unique_per_track() {
        let tracks = [
            Track::Run,
            Track::Core(0),
            Track::Core(15),
            Track::Dma(0),
            Track::MeshLink {
                mesh: MeshKind::CMesh,
                node: 3,
                dir: 1,
            },
            Track::MeshLink {
                mesh: MeshKind::RMesh,
                node: 3,
                dir: 1,
            },
            Track::MeshLink {
                mesh: MeshKind::CMesh,
                node: 3,
                dir: 2,
            },
            Track::ELink,
            Track::Sdram,
            Track::Host,
        ];
        let ids: Vec<(u32, u32)> = tracks.iter().map(|t| (t.pid(), t.tid())).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "pid/tid collision: {ids:?}");
    }

    #[test]
    fn chrome_export_carries_required_fields() {
        let t = Tracer::enabled();
        t.span(Track::Core(2), "compute", Cycle(1000), Cycle(3000));
        t.instant(Track::Sdram, "row_miss", Cycle(1500));
        t.counter(Track::Run, "energy_j", Cycle(3000), 0.25);
        let doc = t.to_chrome_json(Frequency::ghz(1.0));
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 3 events + per-track metadata (3 processes + 3 threads).
        assert_eq!(events.len(), 9);
        for e in events {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "event lacks {key}: {e:?}");
            }
        }
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("span event present");
        // 1000 cycles @ 1 GHz = 1 us.
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn chrome_export_is_sorted_and_deterministic() {
        let build = || {
            let t = Tracer::enabled();
            t.span(Track::Core(1), "b", Cycle(50), Cycle(60));
            t.span(Track::Core(0), "a", Cycle(10), Cycle(20));
            t.instant(Track::ELink, "x", Cycle(10));
            t.to_chrome_json(Frequency::ghz(1.0)).to_string_pretty()
        };
        let one = build();
        assert_eq!(one, build(), "same events must serialise identically");
        // Span at cycle 10 (pid 2) sorts before the eLink instant at
        // cycle 10 (pid 7), which sorts before the span at 50.
        let a = one.find("\"a\"").unwrap();
        let x = one.find("\"x\"").unwrap();
        let b = one.find("\"b\"").unwrap();
        assert!(a < x && x < b, "events out of order");
    }
}
