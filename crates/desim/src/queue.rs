//! Event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// One pending event: a firing time plus an opaque payload.
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first. The sequence number makes simultaneous events fire
        // in insertion order, which keeps runs reproducible.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of timed events, popped in `(time, insertion)` order.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an event firing at `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Firing time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A discrete-event simulator: an [`EventQueue`] plus a monotonically
/// advancing clock.
///
/// The simulator enforces causality: scheduling an event in the past of
/// the current clock panics, and popping an event advances the clock to
/// its firing time.
pub struct Simulator<T> {
    queue: EventQueue<T>,
    now: Cycle,
}

impl<T> Default for Simulator<T> {
    fn default() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: Cycle::ZERO,
        }
    }
}

impl<T> Simulator<T> {
    /// Fresh simulator at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock (causality violation).
    pub fn schedule(&mut self, at: Cycle, payload: T) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {}",
            self.now
        );
        self.queue.push(at, payload);
    }

    /// Schedule `payload` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, payload: T) {
        let at = self.now + delay;
        self.queue.push(at, payload);
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let (at, payload) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, payload))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Run the simulation to completion, calling `handler` for each event.
    /// The handler may schedule further events through the provided
    /// simulator reference.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, Cycle, T)) {
        while let Some((at, payload)) = self.pop() {
            handler(self, at, payload);
        }
    }
}

// `run` needs to hand `&mut Self` to the handler while iterating; do the
// pop inside the loop so the borrow is released between events.
impl<T> Simulator<T> {
    /// Advance the clock to `at` without firing events. Used by models
    /// that interleave analytic compute spans with evented communication.
    ///
    /// # Panics
    /// If `at` is in the past.
    pub fn advance_to(&mut self, at: Cycle) {
        assert!(
            at >= self.now,
            "cannot rewind clock from {} to {at}",
            self.now
        );
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), "c");
        q.push(Cycle(10), "a");
        q.push(Cycle(20), "b");
        assert_eq!(q.peek_time(), Some(Cycle(10)));
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
        assert_eq!(q.pop(), Some((Cycle(20), "b")));
        assert_eq!(q.pop(), Some((Cycle(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(5), i)));
        }
    }

    #[test]
    fn simulator_advances_clock() {
        let mut sim = Simulator::new();
        sim.schedule(Cycle(10), ());
        sim.schedule(Cycle(4), ());
        assert_eq!(sim.now(), Cycle::ZERO);
        sim.pop();
        assert_eq!(sim.now(), Cycle(4));
        sim.pop();
        assert_eq!(sim.now(), Cycle(10));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn rejects_past_events() {
        let mut sim = Simulator::new();
        sim.schedule(Cycle(10), ());
        sim.pop();
        sim.schedule(Cycle(5), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulator::new();
        sim.schedule(Cycle(10), 1);
        sim.pop();
        sim.schedule_in(Cycle(7), 2);
        let (at, v) = sim.pop().unwrap();
        assert_eq!((at, v), (Cycle(17), 2));
    }

    #[test]
    fn run_drains_and_allows_rescheduling() {
        // A self-perpetuating event chain that stops after 5 firings.
        let mut sim = Simulator::new();
        sim.schedule(Cycle(1), 0u32);
        let mut fired = Vec::new();
        sim.run(|sim, at, n| {
            fired.push((at, n));
            if n < 4 {
                sim.schedule_in(Cycle(2), n + 1);
            }
        });
        assert_eq!(
            fired,
            vec![
                (Cycle(1), 0),
                (Cycle(3), 1),
                (Cycle(5), 2),
                (Cycle(7), 3),
                (Cycle(9), 4)
            ]
        );
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance_to(Cycle(100));
        assert_eq!(sim.now(), Cycle(100));
    }
}
