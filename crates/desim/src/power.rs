//! `powertrace` — time-resolved power telemetry (DESIGN.md §3 S18).
//!
//! The run-level [`crate::record::EnergyRecord`] says *how many* joules
//! a run spent; this module says *when* and *where*. Producers snapshot
//! their cumulative energy breakdown at every phase boundary (the
//! "sampling epochs"), and the deltas between consecutive snapshots
//! become a [`PowerTimeline`] of [`PowerEpoch`]s — a piecewise-constant
//! per-component power curve whose total energy telescopes exactly to
//! the run total. Each closed phase additionally carries its own
//! component-resolved energy delta plus a [`PhaseAttribution`] block
//! (dominant component, busiest-link pressure, stall vs compute split),
//! so a record alone answers "which resource gated this phase".
//!
//! Epochs are serialised in raw cycles + joules — the exact quantities
//! the producers measure — and watts are derived by renderers from the
//! record's clock, so round-trips are bit-exact and the documents stay
//! byte-deterministic. All watt math guards zero-length spans.

use crate::json::Json;
use crate::record::EnergyRecord;
use crate::time::{Cycle, Frequency, TimeSpan};

/// Upper bound on serialised epochs per timeline. Producers emit one
/// epoch per phase boundary; a run with more boundaries than this gets
/// adjacent epochs merged pairwise (energy sums, spans union), which
/// halves the count while conserving total energy exactly.
pub const POWER_EPOCH_CAP: usize = 512;

/// One sampling epoch: the energy spent between two consecutive
/// boundary snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEpoch {
    /// Epoch start, cycles from the beginning of the run.
    pub start: Cycle,
    /// Epoch end, cycles.
    pub end: Cycle,
    /// Component-resolved energy spent within the epoch.
    pub energy: EnergyRecord,
}

impl PowerEpoch {
    /// Epoch length in cycles.
    pub fn span(&self) -> Cycle {
        self.end.saturating_sub(self.start)
    }

    /// Average power over the epoch at `clock`, watts. Zero-length
    /// epochs report zero rather than dividing by zero.
    pub fn avg_power_w(&self, clock: Frequency) -> f64 {
        let seconds = TimeSpan::new(self.span(), clock).seconds();
        self.energy.avg_power_w(seconds)
    }

    /// Serialise to a JSON object (cycles + joules, no derived watts).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("start_cycles", self.start.raw())
            .with("end_cycles", self.end.raw())
            .with("energy", self.energy.to_json())
    }

    /// Parse back from [`PowerEpoch::to_json`] output.
    pub fn from_json(json: &Json) -> Option<PowerEpoch> {
        let u = |key: &str| json.get(key).and_then(Json::as_u64);
        Some(PowerEpoch {
            start: Cycle(u("start_cycles")?),
            end: Cycle(u("end_cycles")?),
            energy: EnergyRecord::from_json(json.get("energy")?)?,
        })
    }
}

/// A bounded sequence of [`PowerEpoch`]s covering a run in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTimeline {
    /// Epochs in time order. Total energy equals the run's energy by
    /// construction (boundary deltas telescope).
    pub epochs: Vec<PowerEpoch>,
}

impl PowerTimeline {
    /// An empty timeline.
    pub fn new() -> PowerTimeline {
        PowerTimeline::default()
    }

    /// Epoch count.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the timeline holds no epochs.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Append an epoch. Degenerate epochs (zero span *and* zero
    /// energy — e.g. two boundaries at the same cursor) are dropped;
    /// when the cap is exceeded adjacent epochs are merged pairwise,
    /// conserving total energy exactly.
    pub fn push(&mut self, epoch: PowerEpoch) {
        if epoch.span() == Cycle::ZERO && epoch.energy.total_j() == 0.0 {
            return;
        }
        self.epochs.push(epoch);
        if self.epochs.len() > POWER_EPOCH_CAP {
            self.coalesce();
        }
    }

    /// Merge adjacent epoch pairs: `[a, b, c, d] -> [a+b, c+d]`. The
    /// merged epoch spans both parents and carries their summed
    /// energy, so the timeline total is unchanged.
    fn coalesce(&mut self) {
        let mut merged = Vec::with_capacity(self.epochs.len().div_ceil(2));
        let mut it = self.epochs.drain(..);
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => merged.push(PowerEpoch {
                    start: a.start,
                    end: b.end,
                    energy: a.energy.plus(&b.energy),
                }),
                None => merged.push(a),
            }
        }
        drop(it);
        self.epochs = merged;
    }

    /// Component-wise energy summed over every epoch.
    pub fn total_energy(&self) -> EnergyRecord {
        let mut total = EnergyRecord::default();
        for e in &self.epochs {
            total = total.plus(&e.energy);
        }
        total
    }

    /// Total joules across the timeline.
    pub fn total_j(&self) -> f64 {
        self.total_energy().total_j()
    }

    /// The highest per-epoch average power at `clock`, watts. Epochs
    /// with zero span contribute zero (see [`PowerEpoch::avg_power_w`]).
    pub fn peak_power_w(&self, clock: Frequency) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.avg_power_w(clock))
            .fold(0.0, f64::max)
    }

    /// Serialise to a JSON array of epochs.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.epochs.iter().map(PowerEpoch::to_json).collect())
    }

    /// Parse back from [`PowerTimeline::to_json`] output.
    pub fn from_json(json: &Json) -> Option<PowerTimeline> {
        let mut epochs = Vec::new();
        for e in json.as_array()? {
            epochs.push(PowerEpoch::from_json(e)?);
        }
        Some(PowerTimeline { epochs })
    }
}

/// Which resource gated one phase: the bottleneck-attribution block.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAttribution {
    /// Energy component with the largest share of the phase
    /// (`"compute"`, `"sram"`, `"mesh"`, `"elink"`, `"sdram"`,
    /// `"static"`); `"none"` when the phase spent no energy.
    pub dominant: String,
    /// The dominant component's fraction of the phase energy.
    pub dominant_share: f64,
    /// Busy fraction of the most loaded mesh link within the phase.
    /// NOT clamped to 1: a posted write reserves link time that can
    /// drain *after* the phase-end cursor, so short phases may show
    /// over-unity here (see [`crate::record::MeshUtilization`]). The
    /// [`PhaseAttribution::busiest_link_over_unity`] flag makes that
    /// case explicit instead of silently passing it through.
    pub busiest_link_fraction: f64,
    /// Whether `busiest_link_fraction` exceeded 1 (posted-write tails
    /// attributed to this phase drain during a later one).
    pub busiest_link_over_unity: bool,
    /// Fraction of core-cycles spent actively executing (busy cycles
    /// over `cores x span`); 0 when the producer models no occupancy.
    pub compute_fraction: f64,
    /// Fraction of core-cycles lost to stalls (the complement of
    /// `compute_fraction`, or the producer's own stall accounting).
    pub stall_fraction: f64,
}

impl PhaseAttribution {
    /// Build the block from a phase's energy split plus the producer's
    /// link-pressure and occupancy figures.
    pub fn attribute(
        energy: &EnergyRecord,
        busiest_link_fraction: f64,
        compute_fraction: f64,
        stall_fraction: f64,
    ) -> PhaseAttribution {
        let total = energy.total_j();
        let (dominant, dominant_share) = if total > 0.0 {
            let (name, joules) = energy
                .components()
                .into_iter()
                // max_by on a stable order: first maximum wins, so the
                // tie-break is deterministic.
                .fold(("none", 0.0), |best, c| if c.1 > best.1 { c } else { best });
            (name.to_string(), joules / total)
        } else {
            ("none".to_string(), 0.0)
        };
        PhaseAttribution {
            dominant,
            dominant_share,
            busiest_link_fraction,
            busiest_link_over_unity: busiest_link_fraction > 1.0,
            compute_fraction,
            stall_fraction,
        }
    }

    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("dominant", self.dominant.as_str())
            .with("dominant_share", self.dominant_share)
            .with("busiest_link_fraction", self.busiest_link_fraction)
            .with("busiest_link_over_unity", self.busiest_link_over_unity)
            .with("compute_fraction", self.compute_fraction)
            .with("stall_fraction", self.stall_fraction)
    }

    /// Parse back from [`PhaseAttribution::to_json`] output.
    pub fn from_json(json: &Json) -> Option<PhaseAttribution> {
        let f = |key: &str| json.get(key).and_then(Json::as_f64);
        Some(PhaseAttribution {
            dominant: json.get("dominant")?.as_str()?.to_string(),
            dominant_share: f("dominant_share")?,
            busiest_link_fraction: f("busiest_link_fraction")?,
            busiest_link_over_unity: json.get("busiest_link_over_unity")?.as_bool()?,
            compute_fraction: f("compute_fraction")?,
            stall_fraction: f("stall_fraction")?,
        })
    }
}

/// One phase's component-resolved energy delta plus its attribution.
/// Mirrors the record's `phases` array one-to-one (same name/index).
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePower {
    /// Phase family (matches [`crate::record::PhaseRecord::name`]).
    pub name: String,
    /// Occurrence number within the family.
    pub index: u32,
    /// Energy spent within the phase, by component. Sums (with the
    /// other phases) to the run total — the harness appends an
    /// `"unattributed"` entry for any gap the producer left.
    pub energy: EnergyRecord,
    /// Which resource gated the phase.
    pub attribution: PhaseAttribution,
}

impl PhasePower {
    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("index", self.index)
            .with("energy", self.energy.to_json())
            .with("attribution", self.attribution.to_json())
    }

    /// Parse back from [`PhasePower::to_json`] output.
    pub fn from_json(json: &Json) -> Option<PhasePower> {
        Some(PhasePower {
            name: json.get("name")?.as_str()?.to_string(),
            index: json.get("index")?.as_u64()? as u32,
            energy: EnergyRecord::from_json(json.get("energy")?)?,
            attribution: PhaseAttribution::from_json(json.get("attribution")?)?,
        })
    }
}

/// The record-level `power` block: the epoch timeline plus per-phase
/// energy deltas and attributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerRecord {
    /// The bounded power-over-time view.
    pub timeline: PowerTimeline,
    /// Per-phase deltas in execution order.
    pub phases: Vec<PhasePower>,
}

impl PowerRecord {
    /// The highest per-epoch average power at `clock`, watts.
    pub fn peak_power_w(&self, clock: Frequency) -> f64 {
        self.timeline.peak_power_w(clock)
    }

    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj().with("timeline", self.timeline.to_json()).with(
            "phases",
            Json::Arr(self.phases.iter().map(PhasePower::to_json).collect()),
        )
    }

    /// Parse back from [`PowerRecord::to_json`] output.
    pub fn from_json(json: &Json) -> Option<PowerRecord> {
        let timeline = PowerTimeline::from_json(json.get("timeline")?)?;
        let mut phases = Vec::new();
        for p in json.get("phases").and_then(Json::as_array).unwrap_or(&[]) {
            phases.push(PhasePower::from_json(p)?);
        }
        Some(PowerRecord { timeline, phases })
    }

    /// Render the ASCII power profile: one bar per epoch scaled to the
    /// peak, plus the per-phase attribution table.
    pub fn render(&self, clock: Frequency) -> String {
        const BAR: usize = 40;
        let peak = self.peak_power_w(clock);
        let mut out = format!(
            "power profile ({} epoch(s), peak {:.3} W, {:.6} J total)\n",
            self.timeline.len(),
            peak,
            self.timeline.total_j()
        );
        out.push_str("  start ms   end ms    avg W\n");
        for e in &self.timeline.epochs {
            let w = e.avg_power_w(clock);
            let filled = if peak > 0.0 {
                ((w / peak) * BAR as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "  {:>8.3} {:>8.3} {:>8.3}  |{:<width$}|\n",
                TimeSpan::new(e.start, clock).millis(),
                TimeSpan::new(e.end, clock).millis(),
                w,
                "#".repeat(filled.min(BAR)),
                width = BAR
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("phase attribution:\n");
            out.push_str(
                "  phase                 energy J   dominant          link%  compute/stall\n",
            );
            for p in &self.phases {
                let a = &p.attribution;
                out.push_str(&format!(
                    "  {:<20} {:>10.6}   {:<8} {:>5.1}%  {:>5.1}%{} {:>4.0}%/{:.0}%\n",
                    format!("{}[{}]", p.name, p.index),
                    p.energy.total_j(),
                    a.dominant,
                    a.dominant_share * 100.0,
                    a.busiest_link_fraction * 100.0,
                    if a.busiest_link_over_unity { "!" } else { " " },
                    a.compute_fraction * 100.0,
                    a.stall_fraction * 100.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joules(j: f64) -> EnergyRecord {
        EnergyRecord {
            compute_j: j,
            ..EnergyRecord::default()
        }
    }

    #[test]
    fn zero_length_epochs_report_zero_power() {
        let e = PowerEpoch {
            start: Cycle(100),
            end: Cycle(100),
            energy: joules(1.0),
        };
        assert_eq!(e.avg_power_w(Frequency::ghz(1.0)), 0.0);
        assert_eq!(e.span(), Cycle::ZERO);
    }

    #[test]
    fn degenerate_epochs_are_dropped() {
        let mut t = PowerTimeline::new();
        t.push(PowerEpoch {
            start: Cycle(5),
            end: Cycle(5),
            energy: EnergyRecord::default(),
        });
        assert!(t.is_empty());
        // Zero span with energy is kept (instantaneous attribution).
        t.push(PowerEpoch {
            start: Cycle(5),
            end: Cycle(5),
            energy: joules(1e-6),
        });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn coalescing_conserves_energy_and_bounds_the_count() {
        let mut t = PowerTimeline::new();
        for i in 0..(2 * POWER_EPOCH_CAP as u64 + 3) {
            t.push(PowerEpoch {
                start: Cycle(i * 10),
                end: Cycle(i * 10 + 10),
                energy: joules(1.0),
            });
        }
        assert!(t.len() <= POWER_EPOCH_CAP + 1);
        let expect = (2 * POWER_EPOCH_CAP as u64 + 3) as f64;
        assert!((t.total_j() - expect).abs() < 1e-9);
        // Merged epochs stay in time order with unioned spans.
        for pair in t.epochs.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
    }

    #[test]
    fn peak_power_tracks_the_hottest_epoch() {
        let mut t = PowerTimeline::new();
        let clock = Frequency::ghz(1.0);
        // 1 J over 1 ms = 1000 W; 1 J over 2 ms = 500 W.
        t.push(PowerEpoch {
            start: Cycle(0),
            end: Cycle(1_000_000),
            energy: joules(1.0),
        });
        t.push(PowerEpoch {
            start: Cycle(1_000_000),
            end: Cycle(3_000_000),
            energy: joules(1.0),
        });
        assert!((t.peak_power_w(clock) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_finds_the_dominant_component() {
        let e = EnergyRecord {
            compute_j: 1.0,
            sram_j: 0.25,
            static_j: 3.0,
            ..EnergyRecord::default()
        };
        let a = PhaseAttribution::attribute(&e, 0.5, 0.75, 0.25);
        assert_eq!(a.dominant, "static");
        assert!((a.dominant_share - 3.0 / 4.25).abs() < 1e-12);
        assert!(!a.busiest_link_over_unity);
        // Posted-write tails: over-unity is flagged, not clamped.
        let tail = PhaseAttribution::attribute(&e, 1.5, 0.0, 0.0);
        assert!(tail.busiest_link_over_unity);
        assert!((tail.busiest_link_fraction - 1.5).abs() < 1e-12);
        // No energy at all: explicit "none", not a division by zero.
        let idle = PhaseAttribution::attribute(&EnergyRecord::default(), 0.0, 0.0, 0.0);
        assert_eq!(idle.dominant, "none");
        assert_eq!(idle.dominant_share, 0.0);
    }

    #[test]
    fn json_roundtrip_preserves_the_block() {
        let mut timeline = PowerTimeline::new();
        timeline.push(PowerEpoch {
            start: Cycle(0),
            end: Cycle(500),
            energy: joules(2e-3),
        });
        let record = PowerRecord {
            timeline,
            phases: vec![PhasePower {
                name: "merge".into(),
                index: 3,
                energy: joules(2e-3),
                attribution: PhaseAttribution::attribute(&joules(2e-3), 1.25, 0.5, 0.5),
            }],
        };
        let text = record.to_json().to_string_pretty();
        let back = PowerRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, record);
        assert!(back.phases[0].attribution.busiest_link_over_unity);
    }

    #[test]
    fn render_shows_epochs_and_attribution() {
        let mut timeline = PowerTimeline::new();
        timeline.push(PowerEpoch {
            start: Cycle(0),
            end: Cycle(1_000_000),
            energy: joules(1e-3),
        });
        let record = PowerRecord {
            timeline,
            phases: vec![PhasePower {
                name: "stage".into(),
                index: 0,
                energy: joules(1e-3),
                attribution: PhaseAttribution::attribute(&joules(1e-3), 0.0, 1.0, 0.0),
            }],
        };
        let text = record.render(Frequency::ghz(1.0));
        assert!(text.contains("power profile (1 epoch(s)"));
        assert!(text.contains("stage[0]"));
        assert!(text.contains("compute"));
        // Empty record renders without dividing by zero.
        let empty = PowerRecord::default();
        assert!(empty.render(Frequency::ghz(1.0)).contains("0 epoch(s)"));
    }
}
