//! FIFO-arbitrated shared resources with a fixed service rate.
//!
//! Links, memory ports, DMA engines and DRAM channels are all modelled
//! as the same primitive: a server that processes `units` (bytes, words,
//! transactions) at a fixed rate, serving requests in arrival order.
//! A request made at time `t` for `n` units occupies the server from
//! `max(t, free_at)` until `start + service(n)`; the caller receives the
//! busy interval as a [`Reservation`] and layers any pipelined latency on
//! top itself.

use std::collections::VecDeque;

use crate::time::Cycle;

/// The interval a request occupies a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When service began (>= request time).
    pub start: Cycle,
    /// When the resource becomes free again (start + service time).
    pub end: Cycle,
}

impl Reservation {
    /// Queueing delay experienced by a request issued at `issued`.
    pub fn wait(&self, issued: Cycle) -> Cycle {
        self.start.saturating_sub(issued)
    }

    /// Cycles the resource was held.
    pub fn hold(&self) -> Cycle {
        self.end - self.start
    }
}

/// A single-server FIFO resource with service rate `den` units per `num`
/// cycles (i.e. one unit takes `num/den` cycles; requests are rounded up
/// to whole cycles).
///
/// # Example
///
/// An 8-byte-per-cycle mesh link:
///
/// ```
/// use desim::{Cycle, FifoResource};
/// let mut link = FifoResource::per_units(1, 8); // 1 cycle per 8 units
/// let r = link.request(Cycle(0), 64);           // 64 bytes -> 8 cycles
/// assert_eq!(r.start, Cycle(0));
/// assert_eq!(r.end, Cycle(8));
/// let r2 = link.request(Cycle(2), 8);           // queued behind first
/// assert_eq!(r2.start, Cycle(8));
/// assert_eq!(r2.end, Cycle(9));
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    /// Cycles per `units_per` units.
    cycles_per: u64,
    /// Units served in `cycles_per` cycles.
    units_per: u64,
    /// Earliest time the server is idle.
    free_at: Cycle,
    /// Recently observed idle intervals `[start, end)` before
    /// `free_at`, oldest first. Machine models issue requests from
    /// per-core time cursors, so a request can carry a timestamp
    /// *earlier* than one already served; letting it backfill capacity
    /// that was genuinely idle at its time keeps the model from
    /// serialising on call order instead of virtual time.
    gaps: VecDeque<(Cycle, Cycle)>,
    /// Accumulated busy cycles (for utilisation reporting).
    busy: Cycle,
    /// Number of requests served.
    served: u64,
    /// Total queueing delay across requests.
    total_wait: Cycle,
}

/// Idle gaps remembered per resource; older gaps are forgotten (their
/// capacity is conservatively lost).
const MAX_GAPS: usize = 128;

impl FifoResource {
    /// Resource serving `units_per` units every `cycles_per` cycles.
    ///
    /// # Panics
    /// If either parameter is zero.
    pub fn per_units(cycles_per: u64, units_per: u64) -> FifoResource {
        assert!(cycles_per > 0 && units_per > 0, "rate must be positive");
        FifoResource {
            cycles_per,
            units_per,
            free_at: Cycle::ZERO,
            gaps: VecDeque::new(),
            busy: Cycle::ZERO,
            served: 0,
            total_wait: Cycle::ZERO,
        }
    }

    /// Service time for `units`, rounded up to whole cycles; zero-unit
    /// requests still occupy one cycle (a transaction slot).
    pub fn service_cycles(&self, units: u64) -> Cycle {
        let units = units.max(1);
        // ceil(units * cycles_per / units_per)
        Cycle((units * self.cycles_per).div_ceil(self.units_per))
    }

    /// Reserve the resource for `units` at time `at`: behind earlier
    /// reservations, except that a request timestamped before the
    /// current frontier may backfill a remembered idle gap large
    /// enough to hold it (see the `gaps` field).
    pub fn request(&mut self, at: Cycle, units: u64) -> Reservation {
        let hold = self.service_cycles(units);

        // Try to backfill an idle gap for requests behind the frontier.
        if at < self.free_at {
            for i in 0..self.gaps.len() {
                let (gs, ge) = self.gaps[i];
                let start = gs.max(at);
                if start + hold <= ge {
                    let end = start + hold;
                    // Split the gap around the reservation.
                    let tail = (end, ge);
                    if start > gs {
                        self.gaps[i] = (gs, start);
                        if tail.0 < tail.1 {
                            self.gaps.insert(i + 1, tail);
                            if self.gaps.len() > MAX_GAPS {
                                self.gaps.pop_front();
                            }
                        }
                    } else if tail.0 < tail.1 {
                        self.gaps[i] = tail;
                    } else {
                        self.gaps.remove(i);
                    }
                    self.busy += hold;
                    self.served += 1;
                    self.total_wait += start - at;
                    return Reservation { start, end };
                }
            }
        }

        let start = at.max(self.free_at);
        if start > self.free_at {
            // The interval [free_at, start) was idle; remember it.
            self.gaps.push_back((self.free_at, start));
            if self.gaps.len() > MAX_GAPS {
                self.gaps.pop_front();
            }
        }
        let end = start + hold;
        self.free_at = end;
        self.busy += hold;
        self.served += 1;
        self.total_wait += start - at;
        Reservation { start, end }
    }

    /// Earliest instant the resource is idle.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total busy cycles so far.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay per request, in cycles.
    pub fn mean_wait(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_wait.raw() as f64 / self.served as f64
        }
    }

    /// Utilisation over `[0, horizon]`.
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon == Cycle::ZERO {
            0.0
        } else {
            (self.busy.raw() as f64 / horizon.raw() as f64).min(1.0)
        }
    }

    /// Forget all history (keep the rate). Used when reusing a machine
    /// model across runs.
    pub fn reset(&mut self) {
        self.free_at = Cycle::ZERO;
        self.gaps.clear();
        self.busy = Cycle::ZERO;
        self.served = 0;
        self.total_wait = Cycle::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = FifoResource::per_units(1, 1);
        let a = r.request(Cycle(0), 5);
        assert_eq!((a.start, a.end), (Cycle(0), Cycle(5)));
        let b = r.request(Cycle(0), 3);
        assert_eq!((b.start, b.end), (Cycle(5), Cycle(8)));
        assert_eq!(b.wait(Cycle(0)), Cycle(5));
        assert_eq!(b.hold(), Cycle(3));
    }

    #[test]
    fn idle_gaps_are_not_busy() {
        let mut r = FifoResource::per_units(1, 1);
        r.request(Cycle(0), 2);
        r.request(Cycle(100), 2);
        assert_eq!(r.busy_cycles(), Cycle(4));
        assert!((r.utilization(Cycle(104)) - 4.0 / 104.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_rates_round_up() {
        // 8 units per cycle.
        let r = FifoResource::per_units(1, 8);
        assert_eq!(r.service_cycles(1), Cycle(1));
        assert_eq!(r.service_cycles(8), Cycle(1));
        assert_eq!(r.service_cycles(9), Cycle(2));
        assert_eq!(r.service_cycles(64), Cycle(8));
        // 3 cycles per unit.
        let s = FifoResource::per_units(3, 1);
        assert_eq!(s.service_cycles(2), Cycle(6));
    }

    #[test]
    fn zero_unit_request_takes_a_slot() {
        let mut r = FifoResource::per_units(1, 8);
        let a = r.request(Cycle(0), 0);
        assert_eq!(a.hold(), Cycle(1));
    }

    #[test]
    fn mean_wait_tracks_queueing() {
        let mut r = FifoResource::per_units(1, 1);
        r.request(Cycle(0), 10); // no wait
        r.request(Cycle(0), 10); // waits 10
        assert!((r.mean_wait() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_history() {
        let mut r = FifoResource::per_units(2, 1);
        r.request(Cycle(0), 4);
        r.reset();
        assert_eq!(r.free_at(), Cycle::ZERO);
        assert_eq!(r.busy_cycles(), Cycle::ZERO);
        assert_eq!(r.served(), 0);
        let a = r.request(Cycle(1), 1);
        assert_eq!(a.start, Cycle(1));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        let _ = FifoResource::per_units(0, 1);
    }
}
