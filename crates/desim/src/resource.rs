//! FIFO-arbitrated shared resources with a fixed service rate.
//!
//! Links, memory ports, DMA engines and DRAM channels are all modelled
//! as the same primitive: a server that processes `units` (bytes, words,
//! transactions) at a fixed rate, serving requests in arrival order.
//! A request made at time `t` for `n` units occupies the server from
//! `max(t, free_at)` until `start + service(n)`; the caller receives the
//! busy interval as a [`Reservation`] and layers any pipelined latency on
//! top itself.

use std::collections::VecDeque;

use crate::time::Cycle;

/// The interval a request occupies a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When service began (>= request time).
    pub start: Cycle,
    /// When the resource becomes free again (start + service time).
    pub end: Cycle,
}

impl Reservation {
    /// Queueing delay experienced by a request issued at `issued`.
    pub fn wait(&self, issued: Cycle) -> Cycle {
        self.start.saturating_sub(issued)
    }

    /// Cycles the resource was held.
    pub fn hold(&self) -> Cycle {
        self.end - self.start
    }
}

/// A single-server FIFO resource with service rate `den` units per `num`
/// cycles (i.e. one unit takes `num/den` cycles; requests are rounded up
/// to whole cycles).
///
/// # Example
///
/// An 8-byte-per-cycle mesh link:
///
/// ```
/// use desim::{Cycle, FifoResource};
/// let mut link = FifoResource::per_units(1, 8); // 1 cycle per 8 units
/// let r = link.request(Cycle(0), 64);           // 64 bytes -> 8 cycles
/// assert_eq!(r.start, Cycle(0));
/// assert_eq!(r.end, Cycle(8));
/// let r2 = link.request(Cycle(2), 8);           // queued behind first
/// assert_eq!(r2.start, Cycle(8));
/// assert_eq!(r2.end, Cycle(9));
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    /// Cycles per `units_per` units.
    cycles_per: u64,
    /// Units served in `cycles_per` cycles.
    units_per: u64,
    /// `log2(units_per)` when `cycles_per == 1` and `units_per` is a
    /// power of two (every mesh link and the eLink): service time is
    /// then a shift instead of a 128-free 64-bit division on the
    /// hottest simulator path.
    unit_shift: Option<u32>,
    /// Earliest time the server is idle.
    free_at: Cycle,
    /// Recently observed idle intervals `[start, end)` before
    /// `free_at`, oldest first. Machine models issue requests from
    /// per-core time cursors, so a request can carry a timestamp
    /// *earlier* than one already served; letting it backfill capacity
    /// that was genuinely idle at its time keeps the model from
    /// serialising on call order instead of virtual time.
    gaps: VecDeque<(Cycle, Cycle)>,
    /// Accumulated busy cycles (for utilisation reporting).
    busy: Cycle,
    /// Number of requests served.
    served: u64,
    /// Total queueing delay across requests.
    total_wait: Cycle,
}

/// Idle gaps remembered per resource; older gaps are forgotten (their
/// capacity is conservatively lost).
const MAX_GAPS: usize = 128;

impl FifoResource {
    /// Resource serving `units_per` units every `cycles_per` cycles.
    ///
    /// # Panics
    /// If either parameter is zero.
    pub fn per_units(cycles_per: u64, units_per: u64) -> FifoResource {
        assert!(cycles_per > 0 && units_per > 0, "rate must be positive");
        FifoResource {
            cycles_per,
            units_per,
            unit_shift: (cycles_per == 1 && units_per.is_power_of_two())
                .then(|| units_per.trailing_zeros()),
            free_at: Cycle::ZERO,
            gaps: VecDeque::new(),
            busy: Cycle::ZERO,
            served: 0,
            total_wait: Cycle::ZERO,
        }
    }

    /// Service time for `units`, rounded up to whole cycles; zero-unit
    /// requests still occupy one cycle (a transaction slot).
    #[inline]
    pub fn service_cycles(&self, units: u64) -> Cycle {
        let units = units.max(1);
        if let Some(s) = self.unit_shift {
            // ceil(units / 2^s); same value as the general path below.
            return Cycle((units + ((1u64 << s) - 1)) >> s);
        }
        // ceil(units * cycles_per / units_per)
        Cycle((units * self.cycles_per).div_ceil(self.units_per))
    }

    /// Reserve the resource for `units` at time `at`: behind earlier
    /// reservations, except that a request timestamped before the
    /// current frontier may backfill a remembered idle gap large
    /// enough to hold it (see the `gaps` field).
    pub fn request(&mut self, at: Cycle, units: u64) -> Reservation {
        let hold = self.service_cycles(units);

        // Try to backfill an idle gap for requests behind the frontier.
        if at < self.free_at {
            // Gaps are disjoint idle intervals in time order, so their
            // end points are sorted: every gap ending before `at + hold`
            // is provably too early or too small — skipping them keeps
            // first-fit semantics while avoiding a linear scan of stale
            // gaps on the hot path.
            let first = self.gaps.partition_point(|&(_, ge)| ge < at + hold);
            for i in first..self.gaps.len() {
                let (gs, ge) = self.gaps[i];
                let start = gs.max(at);
                if start + hold <= ge {
                    let end = start + hold;
                    // Split the gap around the reservation.
                    let tail = (end, ge);
                    if start > gs {
                        self.gaps[i] = (gs, start);
                        if tail.0 < tail.1 {
                            self.gaps.insert(i + 1, tail);
                            if self.gaps.len() > MAX_GAPS {
                                self.gaps.pop_front();
                            }
                        }
                    } else if tail.0 < tail.1 {
                        self.gaps[i] = tail;
                    } else {
                        self.gaps.remove(i);
                    }
                    self.busy += hold;
                    self.served += 1;
                    self.total_wait += start - at;
                    return Reservation { start, end };
                }
            }
        }

        let start = at.max(self.free_at);
        if start > self.free_at {
            // The interval [free_at, start) was idle; remember it.
            self.gaps.push_back((self.free_at, start));
            if self.gaps.len() > MAX_GAPS {
                self.gaps.pop_front();
            }
        }
        let end = start + hold;
        self.free_at = end;
        self.busy += hold;
        self.served += 1;
        self.total_wait += start - at;
        Reservation { start, end }
    }

    /// Absorb a span of `n` uncontended reservations in one call.
    ///
    /// `req(i)` returns the `i`-th reservation's `(start, hold)`; the
    /// caller has already proven the span is uncontended and ordered:
    ///
    /// * `req(0).0 >= self.free_at()` — the span begins at or after
    ///   the frontier, and
    /// * for `i >= 1`, `req(i).0` strictly exceeds the previous
    ///   reservation's end (`req(i-1).0 + req(i-1).1`).
    ///
    /// Under those preconditions every reservation starts exactly at
    /// its request time, so the final state — frontier, busy cycles,
    /// served count, total wait *and the bounded idle-gap ring* — is
    /// identical to calling [`FifoResource::request`] `n` times.
    /// Aggregates update in closed form; only the (at most
    /// `MAX_GAPS`) gap entries that survive the ring are materialised,
    /// so the cost is `O(min(n, MAX_GAPS))` rather than `O(n)`.
    ///
    /// `total_hold` is the sum of all `n` holds, supplied by the
    /// caller (for periodic holds it is a single multiply).
    ///
    /// # Panics
    /// Debug builds assert the ordering preconditions on every
    /// materialised entry.
    pub fn absorb_run(&mut self, n: u64, total_hold: Cycle, req: impl Fn(u64) -> (Cycle, Cycle)) {
        if n == 0 {
            return;
        }
        let (first_start, _) = req(0);
        debug_assert!(
            first_start >= self.free_at,
            "absorb_run span starts before the frontier"
        );
        // Per `request`, a reservation opens a gap iff it leaves idle
        // time behind the frontier: the first entry only when it
        // starts strictly after `free_at`, later entries always
        // (strict separation is a precondition).
        let i0 = u64::from(first_start == self.free_at);
        let pushes = n - i0;
        // Ring semantics: after all pushes the deque holds the last
        // `MAX_GAPS` entries of (old ++ new). Evict the old entries
        // arithmetically, then materialise only the surviving news.
        let old_len = self.gaps.len() as u64;
        let drop_old = old_len.min((old_len + pushes).saturating_sub(MAX_GAPS as u64));
        self.gaps
            .drain(..usize::try_from(drop_old).expect("gap count fits usize"));
        let lo = i0 + pushes.saturating_sub(MAX_GAPS as u64);
        self.gaps
            .reserve(usize::try_from(n - lo).expect("span fits usize"));
        let mut prev_end = if lo == 0 {
            self.free_at
        } else {
            let (s, h) = req(lo - 1);
            s + h
        };
        for i in lo..n {
            let (s, h) = req(i);
            debug_assert!(
                if i == 0 { s >= prev_end } else { s > prev_end },
                "absorb_run reservations must be strictly separated"
            );
            if s > prev_end {
                self.gaps.push_back((prev_end, s));
            }
            prev_end = s + h;
        }
        self.free_at = prev_end;
        self.busy += total_hold;
        self.served += n;
        // Uncontended: every start equals its request time, so the
        // span contributes zero queueing delay.
    }

    /// Earliest instant the resource is idle.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total busy cycles so far.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay per request, in cycles.
    pub fn mean_wait(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_wait.raw() as f64 / self.served as f64
        }
    }

    /// Utilisation over `[0, horizon]`.
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon == Cycle::ZERO {
            0.0
        } else {
            (self.busy.raw() as f64 / horizon.raw() as f64).min(1.0)
        }
    }

    /// Forget all history (keep the rate). Used when reusing a machine
    /// model across runs.
    pub fn reset(&mut self) {
        self.free_at = Cycle::ZERO;
        self.gaps.clear();
        self.busy = Cycle::ZERO;
        self.served = 0;
        self.total_wait = Cycle::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = FifoResource::per_units(1, 1);
        let a = r.request(Cycle(0), 5);
        assert_eq!((a.start, a.end), (Cycle(0), Cycle(5)));
        let b = r.request(Cycle(0), 3);
        assert_eq!((b.start, b.end), (Cycle(5), Cycle(8)));
        assert_eq!(b.wait(Cycle(0)), Cycle(5));
        assert_eq!(b.hold(), Cycle(3));
    }

    #[test]
    fn idle_gaps_are_not_busy() {
        let mut r = FifoResource::per_units(1, 1);
        r.request(Cycle(0), 2);
        r.request(Cycle(100), 2);
        assert_eq!(r.busy_cycles(), Cycle(4));
        assert!((r.utilization(Cycle(104)) - 4.0 / 104.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_rates_round_up() {
        // 8 units per cycle.
        let r = FifoResource::per_units(1, 8);
        assert_eq!(r.service_cycles(1), Cycle(1));
        assert_eq!(r.service_cycles(8), Cycle(1));
        assert_eq!(r.service_cycles(9), Cycle(2));
        assert_eq!(r.service_cycles(64), Cycle(8));
        // 3 cycles per unit.
        let s = FifoResource::per_units(3, 1);
        assert_eq!(s.service_cycles(2), Cycle(6));
    }

    #[test]
    fn shift_fast_path_matches_the_general_division() {
        // (1, 8) takes the shift fast path; (2, 16) serves the same
        // rate through the general division: ceil(2u/16) == ceil(u/8).
        let fast = FifoResource::per_units(1, 8);
        let slow = FifoResource::per_units(2, 16);
        for units in [0u64, 1, 7, 8, 9, 63, 64, 65, 1 << 40] {
            assert_eq!(
                fast.service_cycles(units),
                slow.service_cycles(units),
                "units={units}"
            );
        }
    }

    #[test]
    fn backfill_skips_stale_gaps_but_keeps_first_fit() {
        let mut r = FifoResource::per_units(1, 1);
        // Build three idle gaps: [2,10), [20,30), [40,50).
        r.request(Cycle(0), 2);
        r.request(Cycle(10), 10);
        r.request(Cycle(30), 10);
        r.request(Cycle(50), 5);
        // A late-timestamped request that only fits from t=25 must land
        // in the second gap (first fit among gaps that can hold it).
        let a = r.request(Cycle(25), 5);
        assert_eq!((a.start, a.end), (Cycle(25), Cycle(30)));
        // An earlier request still backfills the first gap.
        let b = r.request(Cycle(3), 4);
        assert_eq!((b.start, b.end), (Cycle(3), Cycle(7)));
    }

    #[test]
    fn zero_unit_request_takes_a_slot() {
        let mut r = FifoResource::per_units(1, 8);
        let a = r.request(Cycle(0), 0);
        assert_eq!(a.hold(), Cycle(1));
    }

    #[test]
    fn mean_wait_tracks_queueing() {
        let mut r = FifoResource::per_units(1, 1);
        r.request(Cycle(0), 10); // no wait
        r.request(Cycle(0), 10); // waits 10
        assert!((r.mean_wait() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_history() {
        let mut r = FifoResource::per_units(2, 1);
        r.request(Cycle(0), 4);
        r.reset();
        assert_eq!(r.free_at(), Cycle::ZERO);
        assert_eq!(r.busy_cycles(), Cycle::ZERO);
        assert_eq!(r.served(), 0);
        let a = r.request(Cycle(1), 1);
        assert_eq!(a.start, Cycle(1));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        let _ = FifoResource::per_units(0, 1);
    }

    #[test]
    fn absorb_run_is_byte_identical_to_request_loop() {
        // Spans of varying length (including > MAX_GAPS, so the ring
        // evicts), alternating holds, and both a flush start
        // (start == free_at) and a gapped start. After absorbing, the
        // two resources must agree on every aggregate AND behave
        // identically under later backfill probes — which exercises
        // the remembered idle-gap ring entry by entry.
        for &(n, first_gap) in &[(1u64, 0u64), (1, 5), (7, 3), (140, 2), (300, 0)] {
            let mut a = FifoResource::per_units(1, 8);
            let mut b = FifoResource::per_units(1, 8);
            // Shared history so frontier and ring start non-trivial.
            for r in [&mut a, &mut b] {
                r.request(Cycle(0), 64);
                r.request(Cycle(20), 8);
            }
            let base = a.free_at() + Cycle(first_gap);
            // Alternating 8- and 24-unit reservations, 40 cycles apart.
            let start = |i: u64| base + Cycle(i * 40);
            let hold = |i: u64| Cycle(if i.is_multiple_of(2) { 1 } else { 3 });
            let units = |i: u64| if i.is_multiple_of(2) { 8 } else { 24 };
            let total: u64 = (0..n).map(|i| hold(i).raw()).sum();
            for i in 0..n {
                let r = a.request(start(i), units(i));
                assert_eq!((r.start, r.end), (start(i), start(i) + hold(i)));
            }
            b.absorb_run(n, Cycle(total), |i| (start(i), hold(i)));
            assert_eq!(a.free_at(), b.free_at(), "n={n}");
            assert_eq!(a.busy_cycles(), b.busy_cycles(), "n={n}");
            assert_eq!(a.served(), b.served(), "n={n}");
            assert!((a.mean_wait() - b.mean_wait()).abs() < 1e-12);
            // Probe every remembered gap position: identical first-fit
            // backfill proves the rings match (probes mutate both
            // sides equally, so they stay in lockstep).
            for i in 0..n {
                let at = start(i) + hold(i);
                let (ra, rb) = (a.request(at, 8), b.request(at, 8));
                assert_eq!(ra, rb, "n={n} probe after entry {i}");
            }
            assert_eq!(a.free_at(), b.free_at(), "n={n} after probes");
        }
    }
}
