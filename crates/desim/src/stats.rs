//! Lightweight simulation statistics: counters, histograms, busy-time.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Cycle;

/// A named monotonically increasing counter set.
///
/// Counters are keyed by static strings so machine models can account
/// events (`"flop"`, `"remote_read"`, …) without allocating per event.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `n` to counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Increment counter `key` by one.
    #[inline]
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Drop all counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:>24}: {v}")?;
        }
        Ok(())
    }
}

/// A fixed-bucket histogram of `u64` samples (e.g. latencies in cycles).
///
/// Buckets are power-of-two exponential: bucket `i` holds samples in
/// `[2^i, 2^(i+1))`, with bucket 0 holding `{0, 1}`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = if v <= 1 { 0 } else { 63 - v.leading_zeros() as usize };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile from the exponential buckets: returns the
    /// upper bound of the bucket containing quantile `q` (0..=1).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(if i == 0 { 1 } else { 1u64 << (i + 1) });
            }
        }
        Some(self.max)
    }
}

/// Tracks the busy fraction of a component for energy modelling: the
/// caller reports busy intervals, and the tracker exposes total busy
/// cycles without double counting an interval reported twice verbatim
/// (overlaps are the caller's responsibility — machine models report
/// reservation holds, which never overlap for a single server).
#[derive(Debug, Default, Clone)]
pub struct BusyTime {
    busy: Cycle,
    intervals: u64,
}

impl BusyTime {
    /// Zeroed tracker.
    pub fn new() -> BusyTime {
        BusyTime::default()
    }

    /// Report a busy interval of length `hold`.
    pub fn add(&mut self, hold: Cycle) {
        self.busy += hold;
        self.intervals += 1;
    }

    /// Total busy cycles.
    pub fn busy(&self) -> Cycle {
        self.busy
    }

    /// Intervals reported.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Busy fraction over `[0, horizon]`, clamped to 1.
    pub fn fraction(&self, horizon: Cycle) -> f64 {
        if horizon == Cycle::ZERO {
            0.0
        } else {
            (self.busy.raw() as f64 / horizon.raw() as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Counters::new();
        a.add("flop", 10);
        a.bump("flop");
        a.bump("load");
        assert_eq!(a.get("flop"), 11);
        assert_eq!(a.get("load"), 1);
        assert_eq!(a.get("absent"), 0);

        let mut b = Counters::new();
        b.add("flop", 5);
        b.add("store", 2);
        a.merge(&b);
        assert_eq!(a.get("flop"), 16);
        assert_eq!(a.get("store"), 2);

        let listed: Vec<_> = a.iter().collect();
        assert_eq!(listed.len(), 3); // flop, load, store
        a.clear();
        assert_eq!(a.get("flop"), 0);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(16));
        assert!((h.mean() - 6.2).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // Median of 0..1000 is ~500; exponential buckets give the bucket
        // upper bound, so p50 must be within [500, 1024].
        assert!((500..=1024).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0).unwrap() >= 999, true);
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_zero_and_one_share_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.quantile(0.01), Some(1));
    }

    #[test]
    fn busytime_fraction() {
        let mut b = BusyTime::new();
        b.add(Cycle(30));
        b.add(Cycle(20));
        assert_eq!(b.busy(), Cycle(50));
        assert_eq!(b.intervals(), 2);
        assert!((b.fraction(Cycle(100)) - 0.5).abs() < 1e-12);
        assert_eq!(b.fraction(Cycle::ZERO), 0.0);
        // Clamped at 1.
        assert_eq!(b.fraction(Cycle(10)), 1.0);
    }
}
