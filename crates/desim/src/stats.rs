//! Lightweight simulation statistics: counters, histograms, busy-time.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Cycle;

/// A named monotonically increasing counter set.
///
/// Counters are keyed by static strings so machine models can account
/// events (`"flop"`, `"remote_read"`, …) without allocating per event.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `n` to counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Increment counter `key` by one.
    #[inline]
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Whether `key` was ever touched (distinguishes an absent counter
    /// from one that accumulated zero).
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Overwrite `key` with an absolute value (marking it touched).
    /// Counters are otherwise monotone accumulators; `set` exists for
    /// re-stamping identity fields (e.g. a derived record's fault
    /// seed), not for accounting.
    pub fn set(&mut self, key: &'static str, value: u64) {
        self.map.insert(key, value);
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Drop all counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Difference against an earlier snapshot of the same accumulator:
    /// every counter's growth since `snapshot`, omitting zero deltas.
    /// Counters are monotone, so each value must be `>=` the snapshot's.
    pub fn since(&self, snapshot: &Counters) -> Counters {
        let mut delta = Counters::new();
        for (k, v) in self.iter() {
            let before = snapshot.get(k);
            debug_assert!(v >= before, "counter {k} went backwards ({before} -> {v})");
            if v > before {
                delta.add(k, v - before);
            }
        }
        delta
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:>24}: {v}")?;
        }
        Ok(())
    }
}

/// One closed phase on a [`PhaseTimeline`]: a named interval of the
/// simulation with the counter growth and gauges observed inside it.
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// Phase family (e.g. `"merge"`).
    pub name: String,
    /// Occurrence number within the family (0, 1, 2, … per name).
    pub index: u32,
    /// Phase start on the simulation timeline.
    pub start: Cycle,
    /// Phase end on the simulation timeline.
    pub end: Cycle,
    /// Counter deltas accumulated within the phase.
    pub counters: Counters,
    /// Free-form gauges sampled by the machine model (energy, busy
    /// cycles, queue depths, …).
    pub metrics: BTreeMap<String, f64>,
}

impl PhaseSpan {
    /// Phase length in cycles.
    pub fn cycles(&self) -> Cycle {
        self.end.saturating_sub(self.start)
    }
}

/// Phase-scoped statistics: machine models bracket interesting regions
/// (`begin` / `end`) and attach gauges; the run report turns the closed
/// spans into per-phase records.
///
/// The timeline is strictly sequential — phases cannot nest or overlap,
/// matching how the transaction-level machines execute (one mapping
/// drives the whole chip through one region at a time).
#[derive(Debug, Default, Clone)]
pub struct PhaseTimeline {
    spans: Vec<PhaseSpan>,
    open: Option<PhaseSpan>,
    occurrences: BTreeMap<String, u32>,
}

impl PhaseTimeline {
    /// Empty timeline.
    pub fn new() -> PhaseTimeline {
        PhaseTimeline::default()
    }

    /// Open a phase at `now`. `counters` is the model's current counter
    /// snapshot; the delta to the `end` snapshot becomes the phase's
    /// counters. Panics if a phase is already open.
    pub fn begin(&mut self, name: &str, now: Cycle, counters: Counters) {
        assert!(
            self.open.is_none(),
            "phase '{}' still open when beginning '{name}'",
            self.open.as_ref().unwrap().name
        );
        let index = self.occurrences.entry(name.to_string()).or_insert(0);
        self.open = Some(PhaseSpan {
            name: name.to_string(),
            index: *index,
            start: now,
            end: now,
            counters,
            metrics: BTreeMap::new(),
        });
        *index += 1;
    }

    /// Attach (or overwrite) a gauge on the open phase.
    pub fn metric(&mut self, key: &str, value: f64) {
        let span = self
            .open
            .as_mut()
            .expect("no open phase to attach a metric to");
        span.metrics.insert(key.to_string(), value);
    }

    /// Close the open phase at `now`, storing counter deltas against
    /// the `begin` snapshot. Returns the closed span.
    pub fn end(&mut self, now: Cycle, counters: &Counters) -> &PhaseSpan {
        let mut span = self.open.take().expect("no open phase to end");
        debug_assert!(
            now >= span.start,
            "phase '{}' ended before it began",
            span.name
        );
        span.end = now;
        span.counters = counters.since(&span.counters);
        self.spans.push(span);
        self.spans.last().unwrap()
    }

    /// Whether a phase is currently open.
    pub fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// Start cycle of the open phase, if one is open.
    pub fn open_start(&self) -> Option<Cycle> {
        self.open.as_ref().map(|s| s.start)
    }

    /// All closed phases in execution order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Drop every span and occurrence count (open phase included).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.open = None;
        self.occurrences.clear();
    }
}

/// A fixed-bucket histogram of `u64` samples (e.g. latencies in cycles).
///
/// Buckets are power-of-two exponential: bucket `i` holds samples in
/// `[2^i, 2^(i+1))`, with bucket 0 holding `{0, 1}`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples in one update — exact: counts,
    /// sum, min/max and every bucket land where `n` calls to
    /// [`Histogram::record`] would put them. Fast-forward executors
    /// use this to account a span of constant-latency events in O(1).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v * n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold another histogram into this one. Buckets are aligned (both
    /// sides use the same power-of-two layout), so the merge is exact:
    /// the result is indistinguishable from recording every sample of
    /// `other` into `self` directly — counts, sums, min/max and every
    /// quantile agree. This is what lets hot paths batch samples in a
    /// scratch histogram and flush at phase boundaries without
    /// changing any reported statistic.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile from the exponential buckets (`q` in 0..=1).
    ///
    /// Returns the *geometric midpoint* of the bucket containing
    /// quantile `q` — the unbiased point estimate for logarithmically
    /// spaced buckets — clamped to the observed `[min, max]` range so
    /// degenerate histograms (single sample, all samples equal) report
    /// exactly. `q >= 1` reports the exact maximum. (This used to
    /// return the bucket's upper bound, biasing p50/p95 high by up to
    /// 2x.)
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // Geometric midpoint of [2^i, 2^(i+1)) is 2^i * sqrt(2);
                // bucket 0 holds {0, 1}.
                let mid = if i == 0 {
                    1
                } else {
                    ((1u64 << i) as f64 * std::f64::consts::SQRT_2).round() as u64
                };
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Tracks the busy fraction of a component for energy modelling: the
/// caller reports busy intervals, and the tracker exposes total busy
/// cycles without double counting an interval reported twice verbatim
/// (overlaps are the caller's responsibility — machine models report
/// reservation holds, which never overlap for a single server).
#[derive(Debug, Default, Clone)]
pub struct BusyTime {
    busy: Cycle,
    intervals: u64,
}

impl BusyTime {
    /// Zeroed tracker.
    pub fn new() -> BusyTime {
        BusyTime::default()
    }

    /// Report a busy interval of length `hold`.
    pub fn add(&mut self, hold: Cycle) {
        self.busy += hold;
        self.intervals += 1;
    }

    /// Total busy cycles.
    pub fn busy(&self) -> Cycle {
        self.busy
    }

    /// Intervals reported.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Fold another tracker into this one (exact: totals and interval
    /// counts add).
    pub fn merge(&mut self, other: &BusyTime) {
        self.busy += other.busy;
        self.intervals += other.intervals;
    }

    /// Busy fraction over `[0, horizon]`, clamped to 1.
    pub fn fraction(&self, horizon: Cycle) -> f64 {
        if horizon == Cycle::ZERO {
            0.0
        } else {
            (self.busy.raw() as f64 / horizon.raw() as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Counters::new();
        a.add("flop", 10);
        a.bump("flop");
        a.bump("load");
        assert_eq!(a.get("flop"), 11);
        assert_eq!(a.get("load"), 1);
        assert_eq!(a.get("absent"), 0);

        let mut b = Counters::new();
        b.add("flop", 5);
        b.add("store", 2);
        a.merge(&b);
        assert_eq!(a.get("flop"), 16);
        assert_eq!(a.get("store"), 2);

        let listed: Vec<_> = a.iter().collect();
        assert_eq!(listed.len(), 3); // flop, load, store
        a.clear();
        assert_eq!(a.get("flop"), 0);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(16));
        assert!((h.mean() - 6.2).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // The 500th sample lands in bucket [256, 512) (cumulative count
        // reaches 512 there); the geometric midpoint is 256*sqrt(2).
        assert_eq!(p50, 362, "p50={p50}");
        // q >= 1 reports the exact observed maximum, not a bucket bound.
        assert_eq!(h.quantile(1.0), Some(999));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_empty_has_no_order_statistics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn histogram_single_sample_pins_every_quantile() {
        let mut h = Histogram::new();
        h.record(100);
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 100.0).abs() < 1e-12);
        // With a single sample the observed [min, max] range collapses
        // to a point, so the clamped midpoint is exact at every q.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(100), "q={q}");
        }
    }

    #[test]
    fn histogram_all_equal_samples_collapse_to_one_bucket() {
        let mut h = Histogram::new();
        for _ in 0..1_000 {
            h.record(37);
        }
        assert_eq!(h.count(), 1_000);
        assert_eq!(h.min(), Some(37));
        assert_eq!(h.max(), Some(37));
        assert!((h.mean() - 37.0).abs() < 1e-12);
        // All mass in bucket [32, 64) and min == max == 37: the clamp
        // to the observed range makes p01 through p100 exact.
        let lo = h.quantile(0.01).unwrap();
        let hi = h.quantile(1.0).unwrap();
        assert_eq!(lo, hi);
        assert_eq!(lo, 37);
        // Out-of-range q is clamped, not a panic.
        assert_eq!(h.quantile(-1.0), Some(lo));
        assert_eq!(h.quantile(2.0), Some(hi));
    }

    #[test]
    fn histogram_zero_and_one_share_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.quantile(0.01), Some(1));
    }

    #[test]
    fn counters_set_overwrites_and_marks_touched() {
        let mut c = Counters::new();
        c.add("fault_seed", 7);
        c.set("fault_seed", 42);
        assert_eq!(c.get("fault_seed"), 42);
        c.set("zeroed", 0);
        assert!(c.contains("zeroed"), "set must mark the key touched");
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn histogram_merge_equals_direct_recording() {
        // Record one stream directly, and the same stream split across
        // two histograms merged afterwards: every statistic must agree.
        let samples: Vec<u64> = (0..500u64).map(|i| i * i % 977).collect();
        let mut direct = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            direct.record(v);
            if i.is_multiple_of(3) {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), direct.count());
        assert_eq!(a.min(), direct.min());
        assert_eq!(a.max(), direct.max());
        assert!((a.mean() - direct.mean()).abs() < 1e-12);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), direct.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_record_n_equals_repeated_record() {
        for &(v, n) in &[(0u64, 3u64), (1, 1), (7, 200), (1 << 40, 5), (977, 0)] {
            let mut direct = Histogram::new();
            let mut bulk = Histogram::new();
            direct.record(3); // shared prior sample
            bulk.record(3);
            for _ in 0..n {
                direct.record(v);
            }
            bulk.record_n(v, n);
            assert_eq!(bulk.count(), direct.count(), "v={v} n={n}");
            assert_eq!(bulk.min(), direct.min());
            assert_eq!(bulk.max(), direct.max());
            assert!((bulk.mean() - direct.mean()).abs() < 1e-9);
            for q in [0.0, 0.5, 0.95, 1.0] {
                assert_eq!(bulk.quantile(q), direct.quantile(q), "v={v} n={n} q={q}");
            }
        }
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(1000);
        let snapshot = (h.count(), h.min(), h.max(), h.quantile(0.5));
        h.merge(&Histogram::new());
        assert_eq!((h.count(), h.min(), h.max(), h.quantile(0.5)), snapshot);
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty.count(), h.count());
        assert_eq!(empty.min(), h.min());
        assert_eq!(empty.max(), h.max());
    }

    #[test]
    fn busytime_merge_adds_totals() {
        let mut a = BusyTime::new();
        a.add(Cycle(30));
        let mut b = BusyTime::new();
        b.add(Cycle(20));
        b.add(Cycle(10));
        a.merge(&b);
        assert_eq!(a.busy(), Cycle(60));
        assert_eq!(a.intervals(), 3);
        a.merge(&BusyTime::new());
        assert_eq!(a.busy(), Cycle(60));
        assert_eq!(a.intervals(), 3);
    }

    #[test]
    fn counters_since_reports_growth_only() {
        let mut snap = Counters::new();
        snap.add("flop", 10);
        snap.add("load", 4);
        let mut now = snap.clone();
        now.add("flop", 5);
        now.add("store", 2);
        let delta = now.since(&snap);
        assert_eq!(delta.get("flop"), 5);
        assert_eq!(delta.get("store"), 2);
        assert_eq!(delta.get("load"), 0);
        assert_eq!(delta.iter().count(), 2, "zero deltas are omitted");
    }

    #[test]
    fn phase_timeline_tracks_sequential_phases() {
        let mut tl = PhaseTimeline::new();
        let mut c = Counters::new();

        tl.begin("merge", Cycle(0), c.clone());
        c.add("flop", 100);
        tl.metric("occupancy", 0.5);
        tl.metric("occupancy", 0.75); // overwrite wins
        tl.end(Cycle(40), &c);

        tl.begin("merge", Cycle(40), c.clone());
        c.add("flop", 50);
        c.add("dma_bytes", 8);
        tl.end(Cycle(100), &c);

        tl.begin("drain", Cycle(100), c.clone());
        assert!(tl.is_open());
        tl.end(Cycle(100), &c);
        assert!(!tl.is_open());

        let spans = tl.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].name.as_str(), spans[0].index), ("merge", 0));
        assert_eq!((spans[1].name.as_str(), spans[1].index), ("merge", 1));
        assert_eq!((spans[2].name.as_str(), spans[2].index), ("drain", 0));
        assert_eq!(spans[0].cycles(), Cycle(40));
        assert_eq!(spans[0].counters.get("flop"), 100);
        assert_eq!(spans[0].metrics["occupancy"], 0.75);
        assert_eq!(spans[1].counters.get("flop"), 50);
        assert_eq!(spans[1].counters.get("dma_bytes"), 8);
        assert_eq!(spans[2].cycles(), Cycle::ZERO);

        tl.clear();
        assert!(tl.spans().is_empty());
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn phase_timeline_rejects_nesting() {
        let mut tl = PhaseTimeline::new();
        tl.begin("a", Cycle(0), Counters::new());
        tl.begin("b", Cycle(1), Counters::new());
    }

    #[test]
    fn busytime_fraction() {
        let mut b = BusyTime::new();
        b.add(Cycle(30));
        b.add(Cycle(20));
        assert_eq!(b.busy(), Cycle(50));
        assert_eq!(b.intervals(), 2);
        assert!((b.fraction(Cycle(100)) - 0.5).abs() < 1e-12);
        assert_eq!(b.fraction(Cycle::ZERO), 0.0);
        // Clamped at 1.
        assert_eq!(b.fraction(Cycle(10)), 1.0);
    }
}
