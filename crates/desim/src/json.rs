//! Minimal JSON document model, writer, and parser.
//!
//! The harness serialises [`crate::record::RunRecord`]s to disk and the
//! golden-record regression test reads them back; with no external
//! crates available the (small) JSON subset we need lives here. Object
//! member order is preserved so written records diff cleanly.
//!
//! Non-finite numbers (which JSON cannot represent) are written as
//! `null`; the parser maps `null` back to [`Json::Null`].

use std::fmt;

/// A JSON value. Objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a member; builder-style.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Insert (or replace) a member. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let Json::Obj(members) = self else {
            panic!("Json::set on a non-object")
        };
        let value = value.into();
        match members.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => members.push((key.to_string(), value)),
        }
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer value, if this is a number that is exactly integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(members) => write_seq(out, indent, '{', '}', members.len(), |out, i, ind| {
                write_string(out, &members[i].0);
                out.push_str(": ");
                members[i].1.write(out, ind);
            }),
        }
    }

    /// Parse a JSON document (must consume the full input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, x: f64) {
    use fmt::Write;
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        write!(out, "{}", x as i64).unwrap();
    } else {
        // 17 significant digits round-trips every f64.
        let s = format!("{x:.17e}");
        let parsed: f64 = s.parse().unwrap();
        debug_assert_eq!(parsed, x);
        write!(out, "{s}").unwrap();
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', 2 * d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', 2 * d));
    }
    out.push(close);
}

/// Compact (single-line) serialisation.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not needed for our records.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::obj()
            .with("version", 1u64)
            .with("label", "ffbp spmd")
            .with("ok", true)
            .with("none", Json::Null)
            .with("time_ms", 12.345678901234567)
            .with(
                "phases",
                Json::Arr(vec![
                    Json::obj().with("name", "merge").with("index", 0u64),
                    Json::obj().with("name", "merge").with("index", 1u64),
                ]),
            );
        for text in [doc.to_string(), doc.to_string_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc, "failed on {text}");
        }
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for x in [
            0.0,
            -1.5,
            1e-300,
            123_456_789.123_456_78,
            f64::MIN_POSITIVE,
            2.0_f64.powi(60),
        ] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap(), x, "{text}");
        }
        // Counters are u64 but stay below 2^53 in practice.
        let text = Json::from(9_007_199_254_740_992u64 - 1).to_string();
        assert_eq!(
            Json::parse(&text).unwrap().as_u64().unwrap(),
            9_007_199_254_740_991
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" back\\slash \t tab £ λ";
        let text = Json::from(s).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
        assert_eq!(Json::parse(r#""λ""#).unwrap().as_str().unwrap(), "λ");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::from(f64::NAN), Json::Null);
        assert_eq!(Json::from(f64::INFINITY), Json::Null);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn set_replaces_and_get_finds() {
        let mut o = Json::obj().with("a", 1u64);
        o.set("a", 2u64);
        o.set("b", "x");
        assert_eq!(o.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(o.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(o.get("missing"), None);
        assert_eq!(o.as_object().unwrap().len(), 2);
    }
}
