//! Architecture-neutral workload descriptors.
//!
//! Instrumented kernels report *what they executed* as operation
//! counts; each machine model prices the counts with its own
//! microarchitecture constants. Keeping the descriptor here (in the
//! simulation substrate) lets the algorithm library, the Epiphany model
//! and the reference-CPU model agree on one type without depending on
//! each other.

/// Raw operation counts emitted by an instrumented kernel region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Plain single-precision FPU ops (add/sub/mul/compare).
    pub flops: u64,
    /// Fused multiply-adds (one instruction where supported, two
    /// flops of arithmetic work).
    pub fmas: u64,
    /// Integer/address ALU ops.
    pub ialu: u64,
    /// Word-size loads from local/cacheable memory.
    pub loads: u64,
    /// Word-size stores to local/cacheable memory.
    pub stores: u64,
    /// Square roots.
    pub sqrts: u64,
    /// Divides.
    pub divs: u64,
    /// Trigonometric/inverse-trigonometric evaluations.
    pub trigs: u64,
}

impl OpCounts {
    /// Component-wise accumulate.
    #[inline]
    pub fn add(&mut self, other: &OpCounts) {
        self.flops += other.flops;
        self.fmas += other.fmas;
        self.ialu += other.ialu;
        self.loads += other.loads;
        self.stores += other.stores;
        self.sqrts += other.sqrts;
        self.divs += other.divs;
        self.trigs += other.trigs;
    }

    /// Every count multiplied by `k` ("this region ran `k` times").
    pub fn scaled(&self, k: u64) -> OpCounts {
        OpCounts {
            flops: self.flops * k,
            fmas: self.fmas * k,
            ialu: self.ialu * k,
            loads: self.loads * k,
            stores: self.stores * k,
            sqrts: self.sqrts * k,
            divs: self.divs * k,
            trigs: self.trigs * k,
        }
    }

    /// Difference against an earlier snapshot of the same accumulator
    /// (each field of `self` must be >= the snapshot's).
    pub fn since(&self, snapshot: &OpCounts) -> OpCounts {
        OpCounts {
            flops: self.flops - snapshot.flops,
            fmas: self.fmas - snapshot.fmas,
            ialu: self.ialu - snapshot.ialu,
            loads: self.loads - snapshot.loads,
            stores: self.stores - snapshot.stores,
            sqrts: self.sqrts - snapshot.sqrts,
            divs: self.divs - snapshot.divs,
            trigs: self.trigs - snapshot.trigs,
        }
    }

    /// Total floating-point arithmetic *work* (an FMA counts as two).
    pub fn flop_work(&self) -> u64 {
        self.flops + 2 * self.fmas
    }

    /// Total dynamic instruction-ish count on a machine without FMA
    /// (an FMA lowers to multiply + add).
    pub fn instrs_no_fma(&self) -> u64 {
        self.flops + 2 * self.fmas + self.ialu + self.loads + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_scale_and_diff() {
        let unit = OpCounts {
            flops: 3,
            fmas: 1,
            loads: 2,
            ..OpCounts::default()
        };
        let mut acc = OpCounts::default();
        acc.add(&unit.scaled(4));
        assert_eq!(acc.flops, 12);
        assert_eq!(acc.fmas, 4);
        let snap = acc;
        acc.add(&unit);
        let delta = acc.since(&snap);
        assert_eq!(delta, unit);
    }

    #[test]
    fn flop_work_counts_fma_twice() {
        let o = OpCounts {
            flops: 5,
            fmas: 10,
            ..OpCounts::default()
        };
        assert_eq!(o.flop_work(), 25);
        assert_eq!(o.instrs_no_fma(), 25);
    }
}
