//! Small deterministic PRNG (xoshiro256++ seeded via splitmix64).
//!
//! The workspace builds offline with no external crates, so the few
//! places that need reproducible pseudo-randomness — scene synthesis,
//! perturbed flight tracks, property tests — use this generator
//! instead of the `rand` crate. Determinism per seed is part of the
//! contract: simulations and tests rely on bit-identical streams.

use std::ops::Range;

/// A small, fast, seedable PRNG. Not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Expand a 64-bit seed into the full state with splitmix64 (the
    /// initialisation recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[range.start, range.end)`.
    pub fn gen_range(&mut self, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_f32() * (range.end - range.start)
    }

    /// Uniform `usize` in `[range.start, range.end)` (multiply-shift;
    /// bias is negligible for the small ranges used in tests).
    pub fn gen_index(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u128;
        range.start + ((self.next_u64() as u128 * span) >> 64) as usize
    }

    /// Uniform `u64` in `[range.start, range.end)` (multiply-shift).
    pub fn gen_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = u128::from(range.end - range.start);
        range.start + ((u128::from(self.next_u64()) * span) >> 64) as u64
    }

    /// Fork an independent child stream: one draw from this generator
    /// seeds a fresh splitmix64-initialised state. The parent advances
    /// exactly one step, so `split` is itself deterministic — N splits
    /// from the same seed always yield the same N child streams, and a
    /// child's output does not depend on how much the parent is used
    /// afterwards. The fault scheduler leans on this to give every
    /// fault group its own stream.
    pub fn split(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y = rng.next_f64();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (mut lo_half, mut hi_half) = (0u32, 0u32);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..6.0);
            assert!((-2.0..6.0).contains(&x));
            if x < 2.0 {
                lo_half += 1;
            } else {
                hi_half += 1;
            }
        }
        // Roughly uniform: both halves get a sizeable share.
        assert!(lo_half > 3_000 && hi_half > 3_000, "{lo_half}/{hi_half}");
    }

    #[test]
    fn split_streams_are_deterministic_and_independent() {
        // Same seed, same split sequence -> identical child streams.
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut ca1 = a.split();
        let mut ca2 = a.split();
        let mut cb1 = b.split();
        let mut cb2 = b.split();
        let s = |r: &mut SmallRng| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>();
        assert_eq!(s(&mut ca1), s(&mut cb1));
        assert_eq!(s(&mut ca2), s(&mut cb2));
        // Sibling streams differ from each other and from the parent.
        let mut fresh1 = SmallRng::seed_from_u64(42).split();
        let mut fresh2 = {
            let mut p = SmallRng::seed_from_u64(42);
            p.split();
            p.split()
        };
        assert_ne!(s(&mut fresh1), s(&mut fresh2));
        assert_ne!(s(&mut fresh1), s(&mut SmallRng::seed_from_u64(42)));
    }

    #[test]
    fn split_child_is_insulated_from_parent_use() {
        // Drawing from the parent after the split must not change what
        // an earlier child produces.
        let mut p1 = SmallRng::seed_from_u64(9);
        let mut c1 = p1.split();
        let _ = p1.next_u64();
        let _ = p1.next_u64();
        let mut p2 = SmallRng::seed_from_u64(9);
        let mut c2 = p2.split();
        let xs: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn gen_u64_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_u64(100..1_000_000);
            assert!((100..1_000_000).contains(&v), "{v}");
        }
        // Degenerate single-value range always yields that value.
        assert_eq!(rng.gen_u64(7..8), 7);
    }

    #[test]
    fn gen_index_hits_every_bucket() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let i = rng.gen_index(10..15);
            assert!((10..15).contains(&i));
            seen[i - 10] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
